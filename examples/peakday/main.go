// Peak day: the paper's Fig. 5 walkthrough on the reconstructed household
// day — detect peaks against the daily average, filter them by the day's
// flexible energy, select one by size-weighted probability, and extract the
// day's flex-offer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/paperdata"
)

func main() {
	day := paperdata.Figure5Day()
	fmt.Printf("household day: %.2f kWh over %d x 15-min intervals (paper: 39.02 kWh)\n",
		day.Total(), day.Len())
	fmt.Printf("daily average per interval: %.3f kWh (the figure's thick line)\n\n", day.Mean())

	// Step 1: detect peaks above the daily average.
	peaks := core.DetectPeaks(day)
	fmt.Printf("detected %d peaks:\n", len(peaks))
	for i, p := range peaks {
		fmt.Printf("  peak %d: intervals %2d..%2d, size %.2f kWh\n", i+1, p.From, p.To, p.Size)
	}

	// Step 2: filter by the day's flexible part (5%).
	flexEnergy := 0.05 * day.Total()
	candidates := core.FilterPeaks(peaks, flexEnergy)
	fmt.Printf("\nflexible part of the day: %.3f kWh → %d candidate peaks survive\n",
		flexEnergy, len(candidates))

	// Step 3: size-proportional selection probabilities.
	for i, pr := range core.SelectionProbabilities(candidates) {
		fmt.Printf("  candidate %d (size %.2f): P(select) = %.0f%%\n", i+1, candidates[i].Size, pr*100)
	}

	// Step 4: full extraction — one offer for the day.
	params := core.DefaultParams()
	result, err := (&core.PeakExtractor{Params: params}).Extract(day)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range result.Offers {
		fmt.Printf("\nextracted %s:\n", f.ID)
		fmt.Printf("  positioned at %s (on the selected peak)\n", f.EarliestStart.Format("15:04"))
		fmt.Printf("  %d slices, %.3f kWh average energy, start window %v wide\n",
			len(f.Profile), f.TotalAvgEnergy(), f.TimeFlexibility())
	}
	fmt.Printf("\nmodified series: %.2f kWh (flexible energy moved into the offer)\n",
		result.Modified.Total())
}
