// EV charging: the paper's Fig. 1 scenario end to end. An electric vehicle
// must charge 50 kWh in a 2-hour window starting between 10 PM and 5 AM;
// the scheduler places the charge where overnight wind production peaks.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/paperdata"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

func main() {
	offer := paperdata.Figure1Offer()
	if err := offer.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the Fig. 1 flex-offer:")
	fmt.Printf("  start window   %s .. %s (flexibility %v)\n",
		offer.EarliestStart.Format("Mon 15:04"), offer.LatestStart.Format("Mon 15:04"), offer.TimeFlexibility())
	fmt.Printf("  latest end     %s\n", offer.LatestEnd().Format("Mon 15:04"))
	fmt.Printf("  energy         %.0f kWh (%.0f..%.0f with flexibility)\n",
		offer.TotalAvgEnergy(), offer.TotalMinEnergy(), offer.TotalMaxEnergy())

	// Overnight horizon covering the whole start window plus the profile.
	horizonStart := timeseries.TruncateDay(offer.EarliestStart)
	horizon, err := timeseries.Zeros(horizonStart, 15*time.Minute, 2*96)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated wind over those two days; the EV is the only load.
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = 40 // a home's share of a community turbine
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, horizonStart, 2, 15*time.Minute, 42)
	if err != nil {
		log.Fatal(err)
	}

	result, err := (&sched.Scheduler{}).Schedule(flexoffer.Set{offer}, horizon, supply)
	if err != nil {
		log.Fatal(err)
	}
	if len(result.Assignments) != 1 {
		log.Fatalf("offer not scheduled (skipped: %d)", len(result.Skipped))
	}
	asg := result.Assignments[0]
	fmt.Printf("\nscheduler picked %s (best wind slot among feasible starts)\n", asg.Start.Format("Mon 15:04"))
	fmt.Printf("  charging %.1f kWh over %v\n", asg.TotalEnergy(), offer.Duration())

	// How much of the charge is covered by wind at that slot?
	idx, _ := supply.IndexOf(asg.Start)
	var windDuring float64
	for i := 0; i < len(asg.Energies); i++ {
		windDuring += supply.Value(idx + i)
	}
	fmt.Printf("  wind production during the charge: %.1f kWh\n", windDuring)

	m, err := sched.Imbalance(result.Demand, supply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  demand not covered by wind over the horizon: %.1f kWh\n", m.UnmatchedDemand)

	// Contrast with charging immediately at 22:00 regardless of wind.
	naive, err := sched.ScheduleAtEarliest(flexoffer.Set{offer}, horizon)
	if err != nil {
		log.Fatal(err)
	}
	nm, err := sched.Imbalance(naive.Demand, supply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... charging at 22:00 sharp instead would leave %.1f kWh uncovered\n", nm.UnmatchedDemand)
}
