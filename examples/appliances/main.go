// Appliance-level extraction: simulate a household at 1-minute granularity
// (the paper notes 15-minute data is not fine enough, §6), disaggregate the
// total into appliance activations, mine usage frequencies, and extract
// per-appliance flex-offers — then score everything against the simulator's
// ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/household"
)

func main() {
	reg := appliance.Default()
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

	cfg := household.Config{
		ID: "example-home", Residents: 3,
		Appliances: []string{
			"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator",
		},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.9, NoiseStd: 0.05,
		Seed: 2024,
	}
	sim, err := household.Simulate(reg, cfg, start, 28, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d days at 1-min resolution: %.1f kWh, %d appliance runs\n",
		28, sim.Total.Total(), len(sim.Activations))
	fmt.Printf("ground-truth flexible share: %.1f%%\n\n", sim.FlexibleShare()*100)

	// Frequency-based extraction: Step 1 detects appliances + frequencies,
	// Step 2 emits one offer per detected flexible usage.
	ex := &core.FrequencyExtractor{Params: core.DefaultParams(), Registry: reg}
	result, report, err := ex.ExtractWithReport(sim.Total)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step 1 — appliance shortlist and usage frequencies:")
	for _, f := range report.Frequencies {
		fmt.Printf("  %-28s %.2f runs/day, %.2f kWh/run, usual start ~%02.0f:00\n",
			f.Appliance, f.RunsPerDay, f.MeanEnergy, f.MeanStartHour)
	}

	fmt.Printf("\nstep 2 — %d flex-offers extracted; examples:\n", len(result.Offers))
	for i, f := range result.Offers {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(result.Offers)-3)
			break
		}
		fmt.Printf("  %s: %s at %s, %.2f kWh, shiftable by %v\n",
			f.ID, f.Appliance, f.EarliestStart.Format("Mon 15:04"), f.TotalAvgEnergy(), f.TimeFlexibility())
	}

	// Score against ground truth — the comparison real data never allows.
	stats := eval.MatchOffers(result.Offers, sim.Activations, 15*time.Minute)
	fmt.Printf("\nagainst ground truth: precision %.2f, recall %.2f, F1 %.2f, mean energy error %.0f%%\n",
		stats.Precision, stats.Recall, stats.F1, stats.MeanEnergyError*100)
	fmt.Printf("energy accounting: input %.1f = modified %.1f + offers %.1f kWh\n",
		sim.Total.Total(), result.Modified.Total(), result.Offers.TotalAvgEnergy())
}
