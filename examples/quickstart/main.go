// Quickstart: build a flex-offer by hand, validate and schedule it, then
// extract flex-offers from a synthetic consumption day with the basic
// approach — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

func main() {
	// --- 1. A flex-offer by hand -----------------------------------------
	// "Charge my e-bike for one hour, 1.8-2.2 kWh, any time tonight."
	tonight := time.Date(2012, 6, 4, 21, 0, 0, 0, time.UTC)
	offer := &flexoffer.FlexOffer{
		ID:            "ebike-1",
		ConsumerID:    "quickstart",
		EarliestStart: tonight,
		LatestStart:   tonight.Add(8 * time.Hour),
		Profile:       flexoffer.UniformProfile(4, 15*time.Minute, 0.45, 0.55),
	}
	if err := offer.Validate(); err != nil {
		log.Fatalf("invalid offer: %v", err)
	}
	fmt.Println("offer:", offer)
	fmt.Printf("  time flexibility: %v, energy %.2f..%.2f kWh\n",
		offer.TimeFlexibility(), offer.TotalMinEnergy(), offer.TotalMaxEnergy())

	// Schedule it at 02:00 with average energies.
	asg, err := offer.AssignDefault(tonight.Add(5 * time.Hour))
	if err != nil {
		log.Fatalf("assign: %v", err)
	}
	fmt.Printf("  scheduled at %s for %.2f kWh\n\n", asg.Start.Format("15:04"), asg.TotalEnergy())

	// --- 2. Extract offers from a consumption series ----------------------
	// A synthetic day: low base with an evening peak.
	vals := make([]float64, 96)
	for i := range vals {
		vals[i] = 0.25
		if i >= 72 && i < 84 { // 18:00-21:00 peak
			vals[i] = 0.9
		}
	}
	day, err := timeseries.New(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), 15*time.Minute, vals)
	if err != nil {
		log.Fatal(err)
	}

	params := core.DefaultParams() // 5% flexible share, 15-min slices
	result, err := (&core.BasicExtractor{Params: params}).Extract(day)
	if err != nil {
		log.Fatalf("extract: %v", err)
	}
	fmt.Printf("basic extraction: %d offers from a %.1f kWh day\n", len(result.Offers), day.Total())
	for _, f := range result.Offers {
		fmt.Printf("  %s: start %s..%s, %.3f kWh avg\n",
			f.ID, f.EarliestStart.Format("15:04"), f.LatestStart.Format("15:04"), f.TotalAvgEnergy())
	}
	fmt.Printf("energy accounting: %.3f (input) = %.3f (modified) + %.3f (offers)\n",
		day.Total(), result.Modified.Total(), result.Offers.TotalAvgEnergy())
}
