// Market: the collection side of MIRABEL. A market server is started
// in-process; extracted flex-offers are submitted over HTTP, the market
// accepts them, a scheduler decides starts against wind production, and the
// assignments are pushed back — the full request/offer/assign protocol the
// flex-offer lifecycle timestamps exist for.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/household"
	"repro/internal/market"
	"repro/internal/res"
	"repro/internal/sched"
)

func main() {
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

	// A controllable clock keeps the 2012 lifecycle deadlines satisfiable.
	// The mutex covers the handoff between this goroutine (advancing time)
	// and the HTTP server goroutines (reading it).
	var mu sync.Mutex
	now := start
	setNow := func(t time.Time) {
		mu.Lock()
		now = t
		mu.Unlock()
	}
	store := market.NewStore(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})

	// Serve the market on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: market.NewServer(store)}
	go srv.Serve(ln)
	defer srv.Close()
	client := &market.Client{BaseURL: "http://" + ln.Addr().String()}
	fmt.Printf("market serving at %s\n\n", client.BaseURL)

	// 1. Extract offers from a simulated household and submit them.
	reg := appliance.Default()
	cfg := household.Config{
		ID: "market-home", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "television", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.1,
		Seed: 77,
	}
	sim, err := household.Simulate(reg, cfg, start, 3, 15*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	params := core.DefaultParams()
	params.ConsumerID = cfg.ID
	result, err := (&core.PeakExtractor{Params: params}).Extract(sim.Total)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range result.Offers {
		// Submission happens half a day before each offer's window opens.
		setNow(f.CreationTime)
		if err := client.Submit(f); err != nil {
			log.Fatalf("submit %s: %v", f.ID, err)
		}
	}
	counts, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. submitted %d offers carrying %.2f kWh of flexibility\n",
		counts.Offered, counts.TotalFlexibleEnergy)

	// 2. The market accepts everything before the acceptance deadlines.
	for _, f := range result.Offers {
		setNow(f.AcceptanceTime.Add(-time.Minute))
		if err := client.Accept(f.ID); err != nil {
			log.Fatalf("accept %s: %v", f.ID, err)
		}
	}
	fmt.Println("2. all offers accepted in time")

	// 3. Schedule the accepted offers against wind and assign the results.
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = 3
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, start, 3, 15*time.Minute, 77)
	if err != nil {
		log.Fatal(err)
	}
	accepted := store.AcceptedOffers()
	schedule, err := (&sched.Scheduler{}).Schedule(accepted, result.Modified, supply)
	if err != nil {
		log.Fatal(err)
	}
	for _, asg := range schedule.Assignments {
		setNow(asg.Offer.AssignmentTime.Add(-time.Minute))
		if err := client.Assign(asg.Offer.ID, asg.Start, asg.Energies); err != nil {
			log.Fatalf("assign %s: %v", asg.Offer.ID, err)
		}
		fmt.Printf("3. %s assigned: start %s, %.2f kWh\n",
			asg.Offer.ID, asg.Start.Format("Mon 15:04"), asg.TotalEnergy())
	}

	counts, err = client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal market state: %d assigned, %d still pending, %d expired\n",
		counts.Assigned, counts.Offered+counts.Accepted, counts.Expired)
}
