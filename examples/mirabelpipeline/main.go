// MIRABEL pipeline: the full loop the flex-offer concept serves — simulate
// a small neighbourhood, extract flex-offers with the peak-based approach
// (the one MIRABEL used for its evaluation, §6), aggregate them, schedule
// the aggregates against wind, and disaggregate the schedule back to
// per-household assignments.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/agg"
	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

func main() {
	reg := appliance.Default()
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	const nHouseholds, days = 30, 7

	// 1. Simulate the neighbourhood.
	cfgs := household.Population(nHouseholds, 7)
	results, popTotal, err := household.SimulatePopulation(reg, cfgs, start, days, 15*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. simulated %d households x %d days: %.0f kWh\n", nHouseholds, days, popTotal.Total())

	// 2. Extract one flex-offer per household per day (peak-based).
	var offers flexoffer.Set
	var inflexible []*timeseries.Series
	for i, r := range results {
		p := core.DefaultParams()
		p.Seed = int64(i)
		p.ConsumerID = r.Config.ID
		out, err := (&core.PeakExtractor{Params: p}).Extract(r.Total)
		if err != nil {
			log.Fatal(err)
		}
		offers = append(offers, out.Offers...)
		inflexible = append(inflexible, out.Modified)
	}
	inflex, err := timeseries.Sum(inflexible...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. extracted %d offers carrying %.0f kWh\n", len(offers), offers.TotalAvgEnergy())

	// 3. Aggregate.
	aggs, err := agg.AggregateSet(offers, agg.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	var aggOffers flexoffer.Set
	for _, a := range aggs {
		aggOffers = append(aggOffers, a.Offer)
	}
	fmt.Printf("3. aggregated into %d offers (%.1f members each)\n",
		len(aggs), float64(agg.TotalMembers(aggs))/float64(len(aggs)))

	// 4. Schedule against wind.
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / 0.25 * 1.5
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, start, days, 15*time.Minute, 7)
	if err != nil {
		log.Fatal(err)
	}
	schedule, err := (&sched.Scheduler{}).Schedule(aggOffers, inflex, supply)
	if err != nil {
		log.Fatal(err)
	}
	before, err := sched.Imbalance(popTotal, supply)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sched.Imbalance(schedule.Demand, supply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. scheduled %d aggregates: unmatched demand %.0f → %.0f kWh (%.1f%% better)\n",
		len(schedule.Assignments), before.UnmatchedDemand, after.UnmatchedDemand,
		(before.UnmatchedDemand-after.UnmatchedDemand)/before.UnmatchedDemand*100)

	// 5. Disaggregate the first aggregate's schedule back to households.
	if len(schedule.Assignments) > 0 {
		target := schedule.Assignments[0]
		for _, a := range aggs {
			if a.Offer != target.Offer {
				continue
			}
			members, err := a.Disaggregate(target)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("5. disaggregated %s back to %d household assignments, e.g.:\n",
				target.Offer.ID, len(members))
			for i, m := range members {
				if i >= 3 {
					break
				}
				fmt.Printf("   %s starts %s with %.2f kWh\n",
					m.Offer.ConsumerID, m.Start.Format("Mon 15:04"), m.TotalEnergy())
			}
			break
		}
	}
}
