// Forecasting: the MIRABEL stack schedules day-ahead, so it runs on
// *forecasts* of consumption and production ([6]). This example trains the
// three forecasters on three weeks of simulated population load, compares
// their accuracy on the following week, and then schedules flex-offers
// against a wind forecast instead of actual production.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/forecast"
	"repro/internal/household"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

func main() {
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	reg := appliance.Default()

	// Four weeks of population load: 3 to train, 1 to test.
	cfgs := household.Population(25, 4)
	results, popTotal, err := household.SimulatePopulation(reg, cfgs, start, 28, 15*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	split := 21 * 96
	train, err := popTotal.Slice(0, split)
	if err != nil {
		log.Fatal(err)
	}
	test, err := popTotal.Slice(split, popTotal.Len())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. consumption forecasting (21 train days, 7 test days):")
	for _, m := range []forecast.Model{
		&forecast.SeasonalNaive{Period: 96},
		&forecast.SES{Alpha: 0.3},
		&forecast.HoltWinters{Alpha: 0.25, Beta: 0.01, Gamma: 0.2, Period: 96, Damping: 0.9},
	} {
		metrics, err := forecast.Evaluate(m, train, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-32s MAE %5.2f kWh   RMSE %5.2f   MAPE %5.1f%%\n",
			m.Name(), metrics.MAE, metrics.RMSE, metrics.MAPE)
	}

	// 2. Extract offers and schedule them against a *forecast* of wind.
	var offers flexoffer.Set
	var inflexParts []*timeseries.Series
	for i, r := range results {
		p := core.DefaultParams()
		p.Seed = int64(i)
		out, err := (&core.PeakExtractor{Params: p}).Extract(r.Total)
		if err != nil {
			log.Fatal(err)
		}
		offers = append(offers, out.Offers...)
		inflexParts = append(inflexParts, out.Modified)
	}
	inflex, err := timeseries.Sum(inflexParts...)
	if err != nil {
		log.Fatal(err)
	}
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / 0.25 * 1.5
	actual, err := res.Simulate(res.DefaultWindModel(), turbine, start, 28, 15*time.Minute, 4)
	if err != nil {
		log.Fatal(err)
	}
	seen := res.ForecastWithError(actual, 0.2, 99) // day-ahead wind forecast, 20% error

	onForecast, err := (&sched.Scheduler{}).Schedule(offers, inflex, seen)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := (&sched.Scheduler{}).Schedule(offers, inflex, actual)
	if err != nil {
		log.Fatal(err)
	}
	// Both schedules are judged against what the wind actually did.
	realised, err := sched.Imbalance(onForecast.Demand, actual)
	if err != nil {
		log.Fatal(err)
	}
	best, err := sched.Imbalance(oracle.Demand, actual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2. scheduled %d offers day-ahead, judged against actual wind:\n", len(onForecast.Assignments))
	fmt.Printf("   scheduling on the forecast leaves %8.0f kWh unmatched\n", realised.UnmatchedDemand)
	fmt.Printf("   a perfect-forecast oracle leaves  %8.0f kWh unmatched\n", best.UnmatchedDemand)
	fmt.Printf("   cost of the 20%% forecast error:   %8.0f kWh\n", realised.UnmatchedDemand-best.UnmatchedDemand)
}
