package repro_bench

import (
	"bytes"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/market"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

// TestEndToEndPipelineConsistency drives the whole stack and checks the
// cross-module invariants: extraction accounting, aggregation energy
// conservation, scheduler feasibility, and disaggregation consistency —
// the member assignments of every aggregate rebuild exactly the energy the
// scheduler placed for it.
func TestEndToEndPipelineConsistency(t *testing.T) {
	cfgs := household.Population(8, 42)
	results, popTotal, err := household.SimulatePopulation(registry, cfgs, benchStart, 3, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	var offers flexoffer.Set
	var parts []*timeseries.Series
	for i, r := range results {
		p := core.DefaultParams()
		p.Seed = int64(i)
		p.ConsumerID = r.Config.ID
		out, err := (&core.PeakExtractor{Params: p}).Extract(r.Total)
		if err != nil {
			t.Fatal(err)
		}
		// Per-household extraction accounting.
		if math.Abs(out.Modified.Total()+out.Offers.TotalAvgEnergy()-r.Total.Total()) > 1e-6 {
			t.Fatalf("accounting broken for %s", r.Config.ID)
		}
		offers = append(offers, out.Offers...)
		parts = append(parts, out.Modified)
	}
	inflex, err := timeseries.Sum(parts...)
	if err != nil {
		t.Fatal(err)
	}
	// Population-level accounting.
	if math.Abs(inflex.Total()+offers.TotalAvgEnergy()-popTotal.Total()) > 1e-6 {
		t.Fatal("population accounting broken")
	}

	aggs, err := agg.AggregateSet(offers, agg.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalMembers(aggs) != len(offers) {
		t.Fatalf("aggregation lost offers: %d members vs %d offers", agg.TotalMembers(aggs), len(offers))
	}
	var aggOffers flexoffer.Set
	byOffer := make(map[*flexoffer.FlexOffer]*agg.Aggregate)
	for _, a := range aggs {
		aggOffers = append(aggOffers, a.Offer)
		byOffer[a.Offer] = a
	}

	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / 0.25 * 1.5
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, benchStart, 3, 15*time.Minute, 42)
	if err != nil {
		t.Fatal(err)
	}

	schedule, err := (&sched.Scheduler{}).Schedule(aggOffers, inflex, supply)
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range schedule.Assignments {
		if err := asg.Validate(); err != nil {
			t.Fatalf("scheduled assignment invalid: %v", err)
		}
		a := byOffer[asg.Offer]
		if a == nil {
			t.Fatal("assignment for unknown aggregate")
		}
		members, err := a.Disaggregate(asg)
		if err != nil {
			t.Fatalf("disaggregate %s: %v", asg.Offer.ID, err)
		}
		var memberEnergy float64
		for _, m := range members {
			if err := m.Validate(); err != nil {
				t.Fatalf("member assignment invalid: %v", err)
			}
			memberEnergy += m.TotalEnergy()
		}
		if math.Abs(memberEnergy-asg.TotalEnergy()) > 1e-6 {
			t.Fatalf("disaggregation energy mismatch for %s: %v vs %v",
				asg.Offer.ID, memberEnergy, asg.TotalEnergy())
		}
	}

	// Scheduling never makes the imbalance worse than ignoring flexibility.
	before, err := sched.Imbalance(popTotal, supply)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sched.Imbalance(schedule.Demand, supply)
	if err != nil {
		t.Fatal(err)
	}
	if after.UnmatchedDemand > before.UnmatchedDemand+1e-6 {
		t.Errorf("scheduling increased unmatched demand: %v -> %v",
			before.UnmatchedDemand, after.UnmatchedDemand)
	}
}

// TestSerializationPipeline pushes offers and series through their wire
// formats mid-pipeline and checks nothing changes.
func TestSerializationPipeline(t *testing.T) {
	cfg := household.Config{
		ID: "ser-test", Residents: 2,
		Appliances: []string{"washing machine Y", "television", "refrigerator"},
		BaseLoadKW: 0.2, MorningPeak: 0.6, EveningPeak: 1.0, NoiseStd: 0.1,
		Seed: 5,
	}
	sim, err := household.Simulate(registry, cfg, benchStart, 3, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Series CSV round trip.
	var csvBuf bytes.Buffer
	if err := sim.Total.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	series, err := timeseries.ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}

	p := core.DefaultParams()
	out, err := (&core.PeakExtractor{Params: p}).Extract(series)
	if err != nil {
		t.Fatal(err)
	}

	// Offer JSON round trip.
	var jsonBuf bytes.Buffer
	if err := out.Offers.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.ReadJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != len(out.Offers) {
		t.Fatalf("offers lost in round trip: %d vs %d", len(offers), len(out.Offers))
	}
	if math.Abs(offers.TotalAvgEnergy()-out.Offers.TotalAvgEnergy()) > 1e-9 {
		t.Error("offer energy changed in round trip")
	}
	// Round-tripped offers still schedule.
	horizon := sched.Horizon(series)
	if _, err := sched.ScheduleAtEarliest(offers, horizon); err != nil {
		t.Fatalf("round-tripped offers unschedulable: %v", err)
	}
}

// TestExtractionAccountingProperty: for random consumption series, every
// consumption-level extractor keeps the accounting identity and produces
// valid offers.
func TestExtractionAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		days := rng.Intn(3) + 1
		vals := make([]float64, days*96)
		for i := range vals {
			vals[i] = rng.Float64() * 2
		}
		input, err := timeseries.New(benchStart, 15*time.Minute, vals)
		if err != nil {
			return false
		}
		p := core.DefaultParams()
		p.Seed = seed
		for _, ex := range []core.Extractor{
			&core.BasicExtractor{Params: p},
			&core.PeakExtractor{Params: p},
			&core.RandomExtractor{Params: p},
		} {
			out, err := ex.Extract(input)
			if err != nil {
				return false
			}
			if out.Offers.Validate() != nil {
				return false
			}
			if math.Abs(out.Modified.Total()+out.Offers.TotalAvgEnergy()-input.Total()) > 1e-6 {
				return false
			}
			if out.Modified.Min() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRealismOrderingStableAcrossSeeds: the E10 realism ranking
// (peak > random in consumption correlation) holds across seeds, not just
// the one used in the experiment.
func TestRealismOrderingStableAcrossSeeds(t *testing.T) {
	day := make([]float64, 96*14)
	for i := range day {
		h := float64(i%96) / 4
		day[i] = 0.2 + 0.8*math.Exp(-(h-19)*(h-19)/3)
	}
	input := timeseries.MustNew(benchStart, 15*time.Minute, day)
	for seed := int64(0); seed < 5; seed++ {
		p := core.DefaultParams()
		p.Seed = seed
		pr, err := (&core.PeakExtractor{Params: p}).Extract(input)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := (&core.RandomExtractor{Params: p}).Extract(input)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := eval.Evaluate(pr.Offers, input)
		if err != nil {
			t.Fatal(err)
		}
		re, err := eval.Evaluate(rr.Offers, input)
		if err != nil {
			t.Fatal(err)
		}
		if pe.PeakShare <= re.PeakShare {
			t.Errorf("seed %d: peak share %v <= random %v", seed, pe.PeakShare, re.PeakShare)
		}
	}
}

// TestMarketPipelineIntegration drives extraction output through the
// collection store over HTTP: submit, accept, schedule, assign — asserting
// the lifecycle the examples/market program demonstrates.
func TestMarketPipelineIntegration(t *testing.T) {
	cfg := household.Config{
		ID: "market-int", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "television", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.1,
		Seed: 99,
	}
	sim, err := household.Simulate(registry, cfg, benchStart, 3, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.ConsumerID = cfg.ID
	out, err := (&core.PeakExtractor{Params: p}).Extract(sim.Total)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Offers) == 0 {
		t.Fatal("nothing extracted")
	}

	var mu sync.Mutex
	now := benchStart
	setNow := func(tm time.Time) { mu.Lock(); now = tm; mu.Unlock() }
	store := market.NewStore(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	srv := httptest.NewServer(market.NewServer(store))
	defer srv.Close()
	client := &market.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}

	for _, f := range out.Offers {
		setNow(f.CreationTime)
		if err := client.Submit(f); err != nil {
			t.Fatalf("submit %s: %v", f.ID, err)
		}
		setNow(f.AcceptanceTime.Add(-time.Minute))
		if err := client.Accept(f.ID); err != nil {
			t.Fatalf("accept %s: %v", f.ID, err)
		}
	}

	supply, err := res.Simulate(res.DefaultWindModel(), resTurbineFor(sim.Total), benchStart, 3, 15*time.Minute, 99)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := (&sched.Scheduler{}).Schedule(store.AcceptedOffers(), out.Modified, supply)
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range schedule.Assignments {
		setNow(asg.Offer.AssignmentTime.Add(-time.Minute))
		if err := client.Assign(asg.Offer.ID, asg.Start, asg.Energies); err != nil {
			t.Fatalf("assign %s: %v", asg.Offer.ID, err)
		}
	}
	counts, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if counts.Assigned != len(schedule.Assignments) || counts.Assigned == 0 {
		t.Errorf("assigned = %d, want %d", counts.Assigned, len(schedule.Assignments))
	}
	if counts.Expired != 0 {
		t.Errorf("expired = %d", counts.Expired)
	}
}

// resTurbineFor sizes a turbine to a consumption series.
func resTurbineFor(total *timeseries.Series) res.Turbine {
	tb := res.DefaultTurbine()
	tb.RatedPowerKW = total.Mean() / total.Resolution().Hours() * 1.5
	return tb
}
