// Command docscheck fails when an exported identifier in the given
// packages lacks a doc comment. It backs `make docs-check`, which gates
// the packages that define this repository's public contracts
// (internal/obs, internal/market): an undocumented exported name there is
// an undocumented promise.
//
// Usage:
//
//	go run ./scripts/docscheck ./internal/obs ./internal/market
//
// A GenDecl comment covers every spec it groups (the usual const/var
// block style); test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <package dir> ...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, missing...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d exported identifier(s) without doc comments\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns one
// "file:line: name" entry per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return missing, nil
}

func checkDecl(decl ast.Decl, report func(token.Pos, string, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			report(d.Name.Pos(), what, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					report(s.Name.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), d.Tok.String(), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = rt.X
		case *ast.IndexListExpr:
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}
