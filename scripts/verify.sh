#!/bin/sh
# verify.sh — the full pre-merge check: formatting, vet, doc coverage of
# the contract packages, the flexvet domain lints, build, test, then the
# race detector over the packages with real concurrency (the pipeline
# worker pool and the market store). Run from the repository root, or via
# `make verify`.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l ."
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed:"
    echo "$fmt"
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> flexvet doccheck (contract packages)"
go run ./scripts/flexvet -enable doccheck ./...

echo "==> flexvet (all analyzers)"
go run ./scripts/flexvet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/pipeline ./internal/market ./internal/wal ./internal/sched ./internal/kpi ./internal/admission ./cmd/flexextract ./cmd/mirabeld

echo "verify: OK"
