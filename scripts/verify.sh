#!/bin/sh
# verify.sh — the full pre-merge check: vet, build, test, then the race
# detector over the packages with real concurrency (the pipeline worker
# pool and the market store). Run from the repository root, or via
# `make verify`.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/pipeline ./internal/market ./cmd/flexextract ./cmd/mirabeld

echo "verify: OK"
