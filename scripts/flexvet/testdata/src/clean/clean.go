// Package clean is the driver-test fixture with nothing to report.
package clean

// Answer is documented and harmless.
const Answer = 42
