package market

// notify republishes the current sequence to late subscribers without
// taking the shard lock — the seeded publishcheck violation.
func (sh *flowShard) notify() {
	sh.publishLocked()
}
