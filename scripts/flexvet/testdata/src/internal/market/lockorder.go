package market

// drainInto moves every record from src into dst while holding both shard
// locks at once — the seeded lockorder violation: acquiring two locks of
// the same class can deadlock against the mirror-image caller.
func drainInto(dst, src *flowShard) {
	src.mu.Lock()
	dst.mu.Lock()
	for id, n := range src.records {
		dst.records[id] = n
	}
	src.records = map[string]int{}
	dst.mu.Unlock()
	src.mu.Unlock()
}
