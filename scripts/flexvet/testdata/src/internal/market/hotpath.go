package market

import "fmt"

// renderPage formats the listing page rows — the seeded alloccheck
// violation: a fmt.Sprintf allocation inside the loop of a hot path.
//
//flexvet:hotpath one row per record on every listing request
func renderPage(ids []string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("id=%s", id))
	}
	return out
}
