// Package market is a pared-down market shard seeded with one flow-analyzer
// violation per file; the driver test pins the exact (file, line, analyzer)
// set. This file carries the shared shard plus the seeded malformed
// directive.
package market

import "sync"

// flowShard is the durable slice of the market: records and the sequence
// stream, both journaled through the injected append hook.
type flowShard struct {
	mu      sync.Mutex
	seq     int
	records map[string]int
	subs    []chan int
	journal func(op string) error
}

// journalLocked appends op to the journal; callers hold the write lock.
func (sh *flowShard) journalLocked(op string) error {
	return sh.journal(op)
}

// insertLocked stores id under the write lock and publishes the change.
//
//flexvet:journaled journalLocked
func (sh *flowShard) insertLocked(id string) {
	sh.records[id] = len(sh.records)
	sh.publishLocked()
}

// publishLocked fans the next sequence number out to the subscribers.
func (sh *flowShard) publishLocked() {
	sh.seq++
	for _, c := range sh.subs {
		select {
		case c <- sh.seq:
		default:
		}
	}
}

// submit is the well-behaved write path: lock, journal, mutate, unlock.
// The annotation below is missing its gate argument, so the driver must
// surface the malformed directive instead of silently ignoring it.
//
//flexvet:journaled
func (sh *flowShard) submit(id string) error {
	sh.mu.Lock()
	if err := sh.journalLocked("insert " + id); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.insertLocked(id)
	sh.mu.Unlock()
	return nil
}
