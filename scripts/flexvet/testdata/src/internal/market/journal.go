package market

// applyDirect mutates the journaled records under the write lock without
// appending to the journal first — the seeded journalcheck violation. The
// lock is held, so only the write-ahead contract is broken here.
func (sh *flowShard) applyDirect(id string) {
	sh.mu.Lock()
	sh.insertLocked(id)
	sh.mu.Unlock()
}
