package market

// snapshotNote journals a marker for the next snapshot cut but never looks
// at the append result — the seeded errflow violation.
func (sh *flowShard) snapshotNote(op string) {
	sh.mu.Lock()
	sh.journalLocked(op)
	sh.mu.Unlock()
}
