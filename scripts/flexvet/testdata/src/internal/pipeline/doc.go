package pipeline

// The exported function below has no doc comment — the seeded doccheck
// violation. (This comment is detached by the blank line.)

func Exported() {}
