package pipeline

import "sync"

// registry is the seeded mutexguard fixture struct.
type registry struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// read touches the guarded field without holding the lock — the seeded
// mutexguard violation.
func (r *registry) read() int {
	return r.n
}
