// Package pipeline is the flexvet driver-test fixture: a multi-file package
// seeded with one violation per file, sitting at the internal/pipeline path
// suffix that the clockcheck and doccheck analyzers gate.
package pipeline

import "time"

// stamp reads the wall clock in a replayable path — the seeded clockcheck
// violation scripts/verify.sh's lint gate refuses to ship.
func stamp() time.Time {
	return time.Now()
}
