package main

import (
	"encoding/json"
	"io"

	"repro/internal/lint"
)

// SARIF 2.1.0 output (-format sarif): the minimal subset GitHub code
// scanning ingests — one run, the selected analyzers as rules, one result
// per diagnostic with a physical location. Fields are emitted in struct
// order and results arrive pre-sorted from lint.Run, so the output is
// deterministic for a given tree (the golden test pins it).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders diags as a SARIF 2.1.0 log. The rule table lists the
// analyzers that ran plus the "flexvet" pseudo-rule that carries malformed
// directive reports, so every result's ruleId resolves.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	rules = append(rules, sarifRule{
		ID:               "flexvet",
		ShortDescription: sarifMessage{Text: "lint directives must parse; malformed //lint: and //flexvet: comments are reported, not ignored"},
	})
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "flexvet", InformationURI: "docs/LINTING.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
