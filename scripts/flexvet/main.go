// Command flexvet is the repository's domain-aware static-analysis suite.
// It loads and type-checks packages with the standard library only and runs
// the internal/lint analyzers over them — the invariants of the flex-offer
// model that go vet cannot know about: offers validated before they travel,
// no exact float comparison on energies, injected clocks in replayable
// paths, bounded metric-label cardinality, mutex-guarded state accessed
// under its lock, and documented contract packages.
//
// Usage:
//
//	go run ./scripts/flexvet [-format text|json|sarif] [-enable a,b] [-disable a,b] [packages...]
//
// Packages default to ./... (module-wide). Findings print as
// file:line:col: [analyzer] message, as a JSON array with -format json
// (-json is a shorthand), or as a SARIF 2.1.0 log with -format sarif for
// code-scanning upload. A finding is suppressed by "//lint:ignore
// <analyzer> <reason>" on its line or the line above. Exit status: 0
// clean, 1 findings, 2 usage or load error. docs/LINTING.md describes
// every analyzer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: parse flags, load packages, run the
// selected analyzers, print findings.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (same as -format json)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: flexvet [-json] [-format text|json|sarif] [-enable a,b] [-disable a,b] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "flexvet: unknown format %q (text, json, sarif)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "flexvet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "flexvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "flexvet: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "flexvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, analyzers, diags); err != nil {
			fmt.Fprintf(stderr, "flexvet: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "flexvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -enable / -disable flags against the
// registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	chosen := lint.All()
	if enable != "" {
		chosen = chosen[:0:0]
		for _, name := range splitList(enable) {
			a := lint.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range splitList(disable) {
			if lint.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skip[name] = true
		}
		kept := chosen[:0:0]
		for _, a := range chosen {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Name < chosen[j].Name })
	return chosen, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
