package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixture is a synthetic multi-file package seeded with one violation per
// file; the driver must report exactly these, in this (sorted) order. It
// sits at the internal/pipeline path suffix, so the same seeded time.Now()
// would fail the scripts/verify.sh lint gate in a real package.
const fixture = "testdata/src/internal/pipeline"

var seeded = []struct {
	file     string
	line     int
	analyzer string
}{
	{"testdata/src/internal/pipeline/clock.go", 11, "clockcheck"},
	{"testdata/src/internal/pipeline/doc.go", 6, "doccheck"},
	{"testdata/src/internal/pipeline/guard.go", 14, "mutexguard"},
}

// flowFixture seeds the five flow-aware analyzers plus the malformed-
// directive pseudo-rule: exactly one violation per file, every other
// function clean under the full suite.
const flowFixture = "testdata/src/internal/market"

var seededFlow = []struct {
	file     string
	line     int
	analyzer string
}{
	{"testdata/src/internal/market/errflow.go", 7, "errflow"},
	{"testdata/src/internal/market/flow.go", 47, "flexvet"},
	{"testdata/src/internal/market/hotpath.go", 12, "alloccheck"},
	{"testdata/src/internal/market/journal.go", 8, "journalcheck"},
	{"testdata/src/internal/market/lockorder.go", 8, "lockorder"},
	{"testdata/src/internal/market/publish.go", 6, "publishcheck"},
}

func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSeededViolationsJSON(t *testing.T) {
	code, out, errOut := runDriver(t, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != len(seeded) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(seeded), out)
	}
	for i, want := range seeded {
		d := diags[i]
		if d.File != want.file || d.Line != want.line || d.Analyzer != want.analyzer {
			t.Errorf("diag[%d] = %s:%d [%s], want %s:%d [%s]",
				i, d.File, d.Line, d.Analyzer, want.file, want.line, want.analyzer)
		}
		if d.Col <= 0 || d.Message == "" {
			t.Errorf("diag[%d] is missing its column or message: %+v", i, d)
		}
	}
	if !strings.Contains(errOut, "3 finding(s)") {
		t.Errorf("stderr summary missing finding count: %q", errOut)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, out, _ := runDriver(t, "-json", fixture)
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf.String() != out {
		t.Errorf("decode/encode does not reproduce the driver output\n got:\n%s\nwant:\n%s", buf.String(), out)
	}
}

func TestSeededViolationsText(t *testing.T) {
	code, out, _ := runDriver(t, fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(seeded) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(seeded), out)
	}
	for i, want := range seeded {
		prefix := fmt.Sprintf("%s:%d:", want.file, want.line)
		tag := "[" + want.analyzer + "]"
		if !strings.HasPrefix(lines[i], prefix) || !strings.Contains(lines[i], tag) {
			t.Errorf("line %d = %q, want prefix %q and tag %q", i, lines[i], prefix, tag)
		}
	}
}

// TestSeededFlowViolations pins the flow-analyzer fixture to its exact
// finding set: one violation per file, nothing else. A regression in the
// CFG, the dominator computation or any analyzer's matching shows up here
// as a changed set.
func TestSeededFlowViolations(t *testing.T) {
	code, out, errOut := runDriver(t, "-json", flowFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != len(seededFlow) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(seededFlow), out)
	}
	for i, want := range seededFlow {
		d := diags[i]
		if d.File != want.file || d.Line != want.line || d.Analyzer != want.analyzer {
			t.Errorf("diag[%d] = %s:%d [%s], want %s:%d [%s]",
				i, d.File, d.Line, d.Analyzer, want.file, want.line, want.analyzer)
		}
	}
	if !strings.Contains(errOut, "6 finding(s)") {
		t.Errorf("stderr summary missing finding count: %q", errOut)
	}
}

// TestSARIFGolden pins the -format sarif rendering of the pipeline fixture
// byte-for-byte. Regenerate with:
//
//	go run . -format sarif testdata/src/internal/pipeline > testdata/pipeline.sarif
func TestSARIFGolden(t *testing.T) {
	code, out, _ := runDriver(t, "-format", "sarif", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	golden, err := os.ReadFile("testdata/pipeline.sarif")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("SARIF output diverges from testdata/pipeline.sarif\n got:\n%s\nwant:\n%s", out, golden)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "flexvet" {
		t.Fatalf("SARIF envelope is malformed: version=%q runs=%d", log.Version, len(log.Runs))
	}
	rules := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, a := range lint.All() {
		if !rules[a.Name] {
			t.Errorf("rule table is missing analyzer %s", a.Name)
		}
	}
	if !rules["flexvet"] {
		t.Error("rule table is missing the flexvet pseudo-rule")
	}
	for i, r := range log.Runs[0].Results {
		if !rules[r.RuleID] {
			t.Errorf("result[%d] ruleId %q does not resolve in the rule table", i, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result[%d] level = %q, want error", i, r.Level)
		}
	}
}

// TestSARIFCleanRun checks the empty-tree shape: a run with a full rule
// table and an empty (non-null) results array, exit 0.
func TestSARIFCleanRun(t *testing.T) {
	code, out, errOut := runDriver(t, "-format", "sarif", "testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errOut)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean SARIF run must carry an empty results array, got:\n%s", out)
	}
}

func TestCleanPackage(t *testing.T) {
	code, out, errOut := runDriver(t, "testdata/src/clean")
	if code != 0 || out != "" || errOut != "" {
		t.Errorf("clean run: exit=%d stdout=%q stderr=%q, want 0 with no output", code, out, errOut)
	}
	code, out, _ = runDriver(t, "-json", "testdata/src/clean")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run: exit=%d stdout=%q, want 0 with an empty array", code, out)
	}
}

func TestEnableDisable(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "-enable", "doccheck", fixture)
	if code != 1 {
		t.Fatalf("-enable doccheck exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "doccheck" {
		t.Errorf("-enable doccheck reported %v, want exactly the doccheck finding", diags)
	}

	code, out, _ = runDriver(t, "-json", "-disable", "doccheck", fixture)
	if code != 1 {
		t.Fatalf("-disable doccheck exit = %d, want 1", code)
	}
	diags = nil
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Analyzer != "clockcheck" || diags[1].Analyzer != "mutexguard" {
		t.Errorf("-disable doccheck reported %v, want the clockcheck and mutexguard findings", diags)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, errOut := runDriver(t, "-enable", "bogus", fixture); code != 2 || !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit=%d stderr=%q, want 2 with an explanation", code, errOut)
	}
	if code, _, _ := runDriver(t, "-disable", "bogus", fixture); code != 2 {
		t.Errorf("unknown -disable analyzer must exit 2, got %d", code)
	}
	if code, _, _ := runDriver(t, "no/such/dir"); code != 2 {
		t.Errorf("missing package dir must exit 2, got %d", code)
	}
	if code, _, errOut := runDriver(t, "-format", "yaml", fixture); code != 2 || !strings.Contains(errOut, "unknown format") {
		t.Errorf("unknown format: exit=%d stderr=%q, want 2 with an explanation", code, errOut)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runDriver(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("-list output is missing analyzer %s", a.Name)
		}
	}
}
