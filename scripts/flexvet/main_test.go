package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixture is a synthetic multi-file package seeded with one violation per
// file; the driver must report exactly these, in this (sorted) order. It
// sits at the internal/pipeline path suffix, so the same seeded time.Now()
// would fail the scripts/verify.sh lint gate in a real package.
const fixture = "testdata/src/internal/pipeline"

var seeded = []struct {
	file     string
	line     int
	analyzer string
}{
	{"testdata/src/internal/pipeline/clock.go", 11, "clockcheck"},
	{"testdata/src/internal/pipeline/doc.go", 6, "doccheck"},
	{"testdata/src/internal/pipeline/guard.go", 14, "mutexguard"},
}

func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSeededViolationsJSON(t *testing.T) {
	code, out, errOut := runDriver(t, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errOut)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != len(seeded) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(seeded), out)
	}
	for i, want := range seeded {
		d := diags[i]
		if d.File != want.file || d.Line != want.line || d.Analyzer != want.analyzer {
			t.Errorf("diag[%d] = %s:%d [%s], want %s:%d [%s]",
				i, d.File, d.Line, d.Analyzer, want.file, want.line, want.analyzer)
		}
		if d.Col <= 0 || d.Message == "" {
			t.Errorf("diag[%d] is missing its column or message: %+v", i, d)
		}
	}
	if !strings.Contains(errOut, "3 finding(s)") {
		t.Errorf("stderr summary missing finding count: %q", errOut)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, out, _ := runDriver(t, "-json", fixture)
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf.String() != out {
		t.Errorf("decode/encode does not reproduce the driver output\n got:\n%s\nwant:\n%s", buf.String(), out)
	}
}

func TestSeededViolationsText(t *testing.T) {
	code, out, _ := runDriver(t, fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(seeded) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(seeded), out)
	}
	for i, want := range seeded {
		prefix := fmt.Sprintf("%s:%d:", want.file, want.line)
		tag := "[" + want.analyzer + "]"
		if !strings.HasPrefix(lines[i], prefix) || !strings.Contains(lines[i], tag) {
			t.Errorf("line %d = %q, want prefix %q and tag %q", i, lines[i], prefix, tag)
		}
	}
}

func TestCleanPackage(t *testing.T) {
	code, out, errOut := runDriver(t, "testdata/src/clean")
	if code != 0 || out != "" || errOut != "" {
		t.Errorf("clean run: exit=%d stdout=%q stderr=%q, want 0 with no output", code, out, errOut)
	}
	code, out, _ = runDriver(t, "-json", "testdata/src/clean")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run: exit=%d stdout=%q, want 0 with an empty array", code, out)
	}
}

func TestEnableDisable(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "-enable", "doccheck", fixture)
	if code != 1 {
		t.Fatalf("-enable doccheck exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "doccheck" {
		t.Errorf("-enable doccheck reported %v, want exactly the doccheck finding", diags)
	}

	code, out, _ = runDriver(t, "-json", "-disable", "doccheck", fixture)
	if code != 1 {
		t.Fatalf("-disable doccheck exit = %d, want 1", code)
	}
	diags = nil
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Analyzer != "clockcheck" || diags[1].Analyzer != "mutexguard" {
		t.Errorf("-disable doccheck reported %v, want the clockcheck and mutexguard findings", diags)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, errOut := runDriver(t, "-enable", "bogus", fixture); code != 2 || !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("unknown analyzer: exit=%d stderr=%q, want 2 with an explanation", code, errOut)
	}
	if code, _, _ := runDriver(t, "-disable", "bogus", fixture); code != 2 {
		t.Errorf("unknown -disable analyzer must exit 2, got %d", code)
	}
	if code, _, _ := runDriver(t, "no/such/dir"); code != 2 {
		t.Errorf("missing package dir must exit 2, got %d", code)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runDriver(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("-list output is missing analyzer %s", a.Name)
		}
	}
}
