#!/bin/sh
# benchdiff.sh — guard against latency/throughput regressions: build
# mirabeld and flexload, run a short load pass against a sharded journaled
# store, and compare the fresh report with the committed baseline via
# scripts/benchdiff. Fails when any op's p95 regresses more than 10%
# (plus a 5ms absolute slack) or throughput drops more than 10%.
#
# Tunables (environment):
#   BENCHDIFF_BASELINE     baseline report path   (default: BENCH_6.json)
#   BENCHDIFF_DURATION     flexload run length    (default: 10s)
#   BENCHDIFF_CONCURRENCY  flexload workers       (default: 8)
#   BENCHDIFF_SHARDS       mirabeld -shards       (default: 8)
set -eu

BASELINE="${BENCHDIFF_BASELINE:-BENCH_6.json}"
DURATION="${BENCHDIFF_DURATION:-10s}"
CONCURRENCY="${BENCHDIFF_CONCURRENCY:-8}"
SHARDS="${BENCHDIFF_SHARDS:-8}"
ADDR="${BENCHDIFF_ADDR:-127.0.0.1:7697}"

tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "benchdiff: building mirabeld and flexload"
go build -o "$tmp/mirabeld" ./cmd/mirabeld
go build -o "$tmp/flexload" ./cmd/flexload

"$tmp/mirabeld" -addr "$ADDR" -shards "$SHARDS" -sweep 5s >"$tmp/mirabeld.log" 2>&1 &
pid=$!

ready=0
i=0
while [ "$i" -lt 100 ]; do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "benchdiff: mirabeld exited during startup:" >&2
        cat "$tmp/mirabeld.log" >&2
        exit 1
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ "$ready" -ne 1 ]; then
    echo "benchdiff: mirabeld never became ready" >&2
    cat "$tmp/mirabeld.log" >&2
    exit 1
fi

echo "benchdiff: driving $DURATION of load at concurrency $CONCURRENCY ($SHARDS shards)"
"$tmp/flexload" -base "http://$ADDR" -c "$CONCURRENCY" -duration "$DURATION" -report "$tmp/report.json" >/dev/null

go run ./scripts/benchdiff -base "$BASELINE" -current "$tmp/report.json"
