// Command benchdiff compares a fresh flexload report against a committed
// baseline (BENCH_N.json) and exits non-zero on regression: any op whose
// p95 latency exceeds the baseline by more than the tolerance (plus a
// small absolute slack so microsecond-level baselines don't fail on
// scheduler noise), any op that vanished, or a throughput drop beyond the
// same tolerance. scripts/benchdiff.sh builds the binaries, drives a
// short load run and feeds the two reports in; `make benchdiff` is the
// entry point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// opStats is the per-operation slice of a flexload report.
type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50    float64 `json:"p50_ms"`
	P95    float64 `json:"p95_ms"`
	P99    float64 `json:"p99_ms"`
}

// report is the subset of the flexload report benchdiff compares.
type report struct {
	Ops         map[string]opStats `json:"ops"`
	TotalOps    int                `json:"total_ops"`
	TotalErrors int                `json:"total_errors"`
	Throughput  float64            `json:"throughput_ops_per_sec"`
}

// compare returns one message per regression of cur against base.
// tolerance is fractional (0.10 = 10%); slackMs is an absolute p95
// allowance on top, absorbing noise when the baseline p95 is tiny.
func compare(base, cur report, tolerance, slackMs float64) []string {
	var regressions []string
	names := make([]string, 0, len(base.Ops))
	for name := range base.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Ops[name]
		if b.Count == 0 {
			continue
		}
		c, ok := cur.Ops[name]
		if !ok || c.Count == 0 {
			regressions = append(regressions, fmt.Sprintf("op %q: present in baseline (%d samples) but absent from the current run", name, b.Count))
			continue
		}
		if limit := b.P95*(1+tolerance) + slackMs; c.P95 > limit {
			regressions = append(regressions, fmt.Sprintf("op %q: p95 %.3fms exceeds baseline %.3fms + %.0f%% + %.0fms slack (limit %.3fms)",
				name, c.P95, b.P95, tolerance*100, slackMs, limit))
		}
	}
	if base.Throughput > 0 && cur.Throughput < base.Throughput*(1-tolerance) {
		regressions = append(regressions, fmt.Sprintf("throughput %.1f ops/s is more than %.0f%% below baseline %.1f ops/s",
			cur.Throughput, tolerance*100, base.Throughput))
	}
	if cur.TotalErrors > 0 && base.TotalErrors == 0 {
		regressions = append(regressions, fmt.Sprintf("current run reports %d errors, baseline had none", cur.TotalErrors))
	}
	return regressions
}

// readReport loads and decodes one report file.
func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Ops) == 0 {
		return r, fmt.Errorf("%s: no ops in report", path)
	}
	return r, nil
}

func main() {
	basePath := flag.String("base", "", "baseline report (committed BENCH_N.json)")
	curPath := flag.String("current", "", "fresh flexload report to compare")
	tolerance := flag.Float64("tolerance", 0.10, "fractional regression budget for p95 and throughput")
	slackMs := flag.Float64("slack-ms", 5, "absolute p95 allowance in ms on top of the tolerance")
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base BENCH_N.json -current report.json")
		os.Exit(2)
	}
	base, err := readReport(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := readReport(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions := compare(base, cur, *tolerance, *slackMs)
	if len(regressions) == 0 {
		fmt.Printf("benchdiff: ok — %d ops within %.0f%% of %s (throughput %.1f vs %.1f ops/s)\n",
			len(base.Ops), *tolerance*100, *basePath, cur.Throughput, base.Throughput)
		return
	}
	for _, msg := range regressions {
		fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION:", msg)
	}
	os.Exit(1)
}
