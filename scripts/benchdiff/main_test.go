package main

import (
	"strings"
	"testing"
)

func mkReport(listP95, throughput float64) report {
	return report{
		Ops: map[string]opStats{
			"submit": {Count: 1000, P95: 10},
			"list":   {Count: 100, P95: listP95},
		},
		Throughput: throughput,
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := mkReport(8, 1000)
	// 10% over on p95 plus the 5ms slack, throughput 10% down: all at the
	// edge of the budget, none over it.
	cur := mkReport(8*1.10+4.9, 901)
	if regs := compare(base, cur, 0.10, 5); len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}
}

func TestCompareP95RegressionFails(t *testing.T) {
	base := mkReport(8, 1000)
	cur := mkReport(8*1.10+5.1, 1000)
	regs := compare(base, cur, 0.10, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], `op "list"`) {
		t.Fatalf("regressions = %v, want one list p95 finding", regs)
	}
}

func TestCompareThroughputRegressionFails(t *testing.T) {
	base := mkReport(8, 1000)
	cur := mkReport(8, 899)
	regs := compare(base, cur, 0.10, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "throughput") {
		t.Fatalf("regressions = %v, want one throughput finding", regs)
	}
}

func TestCompareMissingOpFails(t *testing.T) {
	base := mkReport(8, 1000)
	cur := report{
		Ops:        map[string]opStats{"submit": {Count: 1000, P95: 10}},
		Throughput: 1000,
	}
	regs := compare(base, cur, 0.10, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "absent") {
		t.Fatalf("regressions = %v, want one missing-op finding", regs)
	}
}

func TestCompareNewErrorsFail(t *testing.T) {
	base := mkReport(8, 1000)
	cur := mkReport(8, 1000)
	cur.TotalErrors = 3
	regs := compare(base, cur, 0.10, 5)
	if len(regs) != 1 || !strings.Contains(regs[0], "errors") {
		t.Fatalf("regressions = %v, want one new-errors finding", regs)
	}
}

func TestCompareSlackAbsorbsTinyBaselines(t *testing.T) {
	// A sub-millisecond baseline would fail any purely relative check on
	// scheduler noise; the absolute slack keeps it green.
	base := report{Ops: map[string]opStats{"stats": {Count: 50, P95: 0.2}}, Throughput: 100}
	cur := report{Ops: map[string]opStats{"stats": {Count: 50, P95: 3.0}}, Throughput: 100}
	if regs := compare(base, cur, 0.10, 5); len(regs) != 0 {
		t.Fatalf("slack did not absorb a tiny-baseline wobble: %v", regs)
	}
}
