GO ?= go

.PHONY: build test race vet fmt-check docs-check lint bench benchdiff fuzz fuzz-smoke soak soak-overload crash sched-crash verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the batch-extraction
# worker pool, the market store (event stream included), its write-ahead
# journal, the scheduler and KPI services, the admission gate (plus the
# commands that drive them).
race:
	$(GO) test -race ./internal/pipeline ./internal/market ./internal/wal ./internal/sched ./internal/kpi ./internal/admission ./cmd/flexextract ./cmd/mirabeld

race-all:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Fail when an exported identifier in the contract packages lacks a doc
# comment. The check is flexvet's doccheck analyzer (the former standalone
# scripts/docscheck), scoped by the analyzer itself to the contract packages.
docs-check:
	$(GO) run ./scripts/flexvet -enable doccheck ./...

# Run the full flexvet suite — the domain invariants go vet cannot know
# about (docs/LINTING.md describes every analyzer).
lint:
	$(GO) run ./scripts/flexvet ./...

bench:
	$(GO) test -bench . -benchmem -run XXX .

# Regression gate for the committed load-test baseline: run a short
# flexload pass against a freshly built sharded mirabeld and fail when any
# op's p95 (or total throughput) regresses >10% vs BENCH_6.json
# (BENCHDIFF_* environment variables tune baseline/duration/shards).
benchdiff:
	sh scripts/benchdiff.sh

fuzz:
	$(GO) test -run XXX -fuzz FuzzParamsValidate -fuzztime 30s ./internal/core
	$(GO) test -run XXX -fuzz FuzzOfferValidate -fuzztime 30s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzReadJSON -fuzztime 30s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzSubmitBatch -fuzztime 30s ./internal/market
	$(GO) test -run XXX -fuzz FuzzListQuery -fuzztime 30s ./internal/market
	$(GO) test -run XXX -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal
	$(GO) test -run XXX -fuzz FuzzScheduleQuery -fuzztime 30s ./internal/sched
	$(GO) test -run XXX -fuzz FuzzKPIQuery -fuzztime 30s ./internal/kpi
	$(GO) test -run XXX -fuzz FuzzLintDirectives -fuzztime 30s ./internal/lint

# Short fuzz pass for CI: 10 seconds per target, enough to catch a freshly
# introduced panic without stalling the workflow.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzParamsValidate -fuzztime 10s ./internal/core
	$(GO) test -run XXX -fuzz FuzzOfferValidate -fuzztime 10s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzReadJSON -fuzztime 10s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzSubmitBatch -fuzztime 10s ./internal/market
	$(GO) test -run XXX -fuzz FuzzListQuery -fuzztime 10s ./internal/market
	$(GO) test -run XXX -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal
	$(GO) test -run XXX -fuzz FuzzScheduleQuery -fuzztime 10s ./internal/sched
	$(GO) test -run XXX -fuzz FuzzKPIQuery -fuzztime 10s ./internal/kpi
	$(GO) test -run XXX -fuzz FuzzLintDirectives -fuzztime 10s ./internal/lint

# Soak: the end-to-end extraction→market loop under fault injection and
# the race detector (see docs/TESTING.md).
soak:
	$(GO) test -race -timeout 5m -run TestSoak ./cmd/flexload

# Overload soak only: flexload -overload at several times the admission
# capacity (shed accounting, Retry-After compliance, bounded-subscription
# resync) plus the mid-soak drain with zero acked-offer loss
# (see docs/TESTING.md). A subset of `make soak` for fast iteration on
# the overload path.
soak-overload:
	$(GO) test -race -timeout 5m -run 'TestSoakOverload|TestSoakDrainShutdown' ./cmd/flexload

# Crash: the kill-and-recover suite under the race detector — seeded disk
# faults tear the journal mid-append and recovery must rebuild exactly
# the acknowledged state (see docs/TESTING.md). Covers the market store's
# journal and the scheduler's decision ledger.
crash:
	$(GO) test -race -timeout 5m -run 'TestCrash|TestJournaled|TestDiskFault|TestTornTail|TestCorrupt' ./internal/wal ./internal/faultinject ./internal/market ./internal/sched

# Just the scheduler-ledger half of the crash suite: seeded kills around
# the write-ahead decision journal, then the acked ≤ recovered ≤ acked+1
# invariant on reopen (docs/SCHEDULING.md).
sched-crash:
	$(GO) test -race -timeout 5m -run TestCrashSchedulerLedger ./internal/sched

verify:
	sh scripts/verify.sh
