GO ?= go

.PHONY: build test race vet bench fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the batch-extraction
# worker pool and the market store (plus the commands that drive them).
race:
	$(GO) test -race ./internal/pipeline ./internal/market ./cmd/flexextract ./cmd/mirabeld

race-all:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run XXX .

fuzz:
	$(GO) test -run XXX -fuzz FuzzParamsValidate -fuzztime 30s ./internal/core
	$(GO) test -run XXX -fuzz FuzzOfferValidate -fuzztime 30s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzReadJSON -fuzztime 30s ./internal/flexoffer

verify:
	sh scripts/verify.sh
