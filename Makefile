GO ?= go

.PHONY: build test race vet fmt-check docs-check bench fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the packages with real concurrency: the batch-extraction
# worker pool and the market store (plus the commands that drive them).
race:
	$(GO) test -race ./internal/pipeline ./internal/market ./cmd/flexextract ./cmd/mirabeld

race-all:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Fail when an exported identifier in the contract packages lacks a doc
# comment (the HTTP/metrics surface must stay documented).
docs-check:
	$(GO) run ./scripts/docscheck ./internal/obs ./internal/market

bench:
	$(GO) test -bench . -benchmem -run XXX .

fuzz:
	$(GO) test -run XXX -fuzz FuzzParamsValidate -fuzztime 30s ./internal/core
	$(GO) test -run XXX -fuzz FuzzOfferValidate -fuzztime 30s ./internal/flexoffer
	$(GO) test -run XXX -fuzz FuzzReadJSON -fuzztime 30s ./internal/flexoffer

verify:
	sh scripts/verify.sh
