// Package experiments regenerates every table and figure of the paper plus
// the extension experiments listed in DESIGN.md (E1–E15). Each experiment
// is a self-contained function writing a textual report; cmd/experiments
// runs them from the command line and the root benchmark suite wraps them
// in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/appliance"
	"repro/internal/household"
	"repro/internal/timeseries"
)

// Experiment is one reproducible paper artefact.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md, e.g. "E3".
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the paper artefact being reproduced.
	Paper string
	// Run executes the experiment, writing its report to w.
	Run func(w io.Writer) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "EV flex-offer example", Paper: "Figure 1", Run: RunE1},
		{ID: "E2", Title: "Basic extraction output", Paper: "Figure 4", Run: RunE2},
		{ID: "E3", Title: "Peak-based extraction walkthrough", Paper: "Figure 5", Run: RunE3},
		{ID: "E4", Title: "Appliance information registry", Paper: "Table 1", Run: RunE4},
		{ID: "E5", Title: "Flexible share of demand", Paper: "§1 (0.1–6.5% band [7])", Run: RunE5},
		{ID: "E6", Title: "Multi-tariff extraction sweep", Paper: "§3.3 (no data in paper)", Run: RunE6},
		{ID: "E7", Title: "Frequency-based extraction accuracy", Paper: "§4.1 (future work in paper)", Run: RunE7},
		{ID: "E8", Title: "Disaggregation vs granularity", Paper: "§6 (15-min insufficient)", Run: RunE8},
		{ID: "E9", Title: "Schedule-based extraction accuracy", Paper: "§4.2 (future work in paper)", Run: RunE9},
		{ID: "E10", Title: "Realism vs random baseline", Paper: "§1 + §6", Run: RunE10},
		{ID: "E11", Title: "Aggregated offers vs population load", Paper: "§6", Run: RunE11},
		{ID: "E12", Title: "End-to-end MIRABEL pipeline", Paper: "§1 (global evaluation)", Run: RunE12},
		{ID: "E13", Title: "Forecasting substrate + forecast-driven scheduling", Paper: "extension ([6])", Run: RunE13},
		{ID: "E14", Title: "Peak-threshold ablation", Paper: "extension (DESIGN.md §5)", Run: RunE14},
		{ID: "E15", Title: "Production flex-offers", Paper: "extension (§6 future work)", Run: RunE15},
		{ID: "E16", Title: "Base-load estimator ablation", Paper: "extension (disaggregation)", Run: RunE16},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := header(w, e); err != nil {
			return err
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func header(w io.Writer, e Experiment) error {
	_, err := fmt.Fprintf(w, "=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
	return err
}

// --- shared fixtures --------------------------------------------------------

// day0 anchors all experiments on the paper-era date used across the repo.
var day0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// defaultRegistry is shared by all experiments.
var defaultRegistry = appliance.Default()

// fineHousehold returns the standard appliance-level test household at
// 1-minute resolution.
func fineHousehold(days int, seed int64) (*household.Result, error) {
	cfg := household.Config{
		ID: "exp-household", Residents: 3,
		Appliances: []string{
			"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator",
		},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.9, NoiseStd: 0.05,
		Seed: seed,
	}
	return household.Simulate(defaultRegistry, cfg, day0, days, time.Minute)
}

// resampleOrPanic converts a series to a resolution known to divide it.
func resampleOrPanic(s *timeseries.Series, res time.Duration) *timeseries.Series {
	out, err := s.ResampleTo(res)
	if err != nil {
		panic(err)
	}
	return out
}
