package experiments

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
)

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("experiments = %d, want 16", len(exps))
	}
	seen := map[string]bool{}
	for i, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if e, ok := ByID("E3"); !ok || e.ID != "E3" {
		t.Errorf("ByID(E3) = %+v, %v", e, ok)
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestRunE1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE1(&buf); err != nil {
		t.Fatalf("RunE1: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"22:00", "05:00", "07:00", "7h0m0s", "50.0 kWh", "charging profile"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

func TestRunE2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE2(&buf); err != nil {
		t.Fatalf("RunE2: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 flex-offers extracted") {
		t.Errorf("E2 did not extract 4 offers:\n%s", out)
	}
	if !strings.Contains(out, "energy accounting") {
		t.Error("E2 missing accounting line")
	}
}

func TestRunE3ReproducesPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE3(&buf); err != nil {
		t.Fatalf("RunE3: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"39.02", "1.951", "2.22", "5.47"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q", want)
		}
	}
	// Empirical selection frequencies within a few points of 29/71.
	re := regexp.MustCompile(`peak6 \(15:30\) (\d+\.\d)%, peak7 \(18:00\) (\d+\.\d)%`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("E3 missing selection line:\n%s", out)
	}
}

func TestRunE4ListsTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE4(&buf); err != nil {
		t.Fatalf("RunE4: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"vacuum cleaning robot X", "washing machine Y", "dishwasher Z",
		"small electric vehicle", "medium electric vehicle", "large electric vehicle"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 missing %q", want)
		}
	}
}

// Small-sized versions of the heavier experiments keep the test suite fast
// while still executing every code path.
func TestRunE5Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE5Sized(&buf, 5, 7); err != nil {
		t.Fatalf("E5: %v", err)
	}
	if !strings.Contains(buf.String(), "in 0.1-6.5% band") {
		t.Error("E5 missing band column")
	}
}

func TestRunE6Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE6Sized(&buf, 14); err != nil {
		t.Fatalf("E6: %v", err)
	}
	if !strings.Contains(buf.String(), "shift prob") {
		t.Error("E6 missing sweep table")
	}
}

func TestRunE7Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE7Sized(&buf, 10); err != nil {
		t.Fatalf("E7: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "precision") || !strings.Contains(out, "energy accounting") {
		t.Errorf("E7 output incomplete:\n%s", out)
	}
}

func TestRunE8Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE8Sized(&buf, 7); err != nil {
		t.Fatalf("E8: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"1m0s", "15m0s", "30m0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("E8 missing resolution %q", want)
		}
	}
}

func TestRunE9Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE9Sized(&buf, 21); err != nil {
		t.Fatalf("E9: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "schedule-based") || !strings.Contains(out, "frequency-based") {
		t.Errorf("E9 missing comparison:\n%s", out)
	}
}

func TestRunE10Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE10Sized(&buf, 10); err != nil {
		t.Fatalf("E10: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"random", "basic", "peak", "frequency"} {
		if !strings.Contains(out, want) {
			t.Errorf("E10 missing approach %q", want)
		}
	}
}

func TestRunE11Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE11Sized(&buf, 10, 3); err != nil {
		t.Fatalf("E11: %v", err)
	}
	if !strings.Contains(buf.String(), "corr. w/ population load") {
		t.Error("E11 missing correlation column")
	}
}

func TestRunE12Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE12Sized(&buf, 10, 3); err != nil {
		t.Fatalf("E12: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "no-flexibility baseline") || !strings.Contains(out, "improvement vs baseline") {
		t.Errorf("E12 output incomplete:\n%s", out)
	}
}

func TestAsciiChart(t *testing.T) {
	var buf bytes.Buffer
	s := timeseries.MustNew(day0, 15*time.Minute, []float64{0, 1, 2, 1, 0})
	asciiChart(&buf, s, 4, 1, "test")
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "test") {
		t.Errorf("chart output:\n%s", out)
	}
	// Degenerate cases do not panic.
	asciiChart(io.Discard, timeseries.MustNew(day0, time.Minute, nil), 4, 0, "empty")
	asciiChart(io.Discard, s, 0, 0, "no height")
	zero := timeseries.MustNew(day0, time.Minute, []float64{0, 0})
	asciiChart(io.Discard, zero, 3, 0, "zeros")
}

func TestTableWriter(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("a", "bee")
	tb.add("1", "2")
	tb.addf("%d|%s", 10, "xyz")
	tb.write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "bee") || !strings.Contains(lines[3], "xyz") {
		t.Errorf("table content:\n%s", out)
	}
}

func TestRunE13Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE13Sized(&buf, 5, 3); err != nil {
		t.Fatalf("E13: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "holt-winters") || !strings.Contains(out, "forecast error") {
		t.Errorf("E13 output incomplete:\n%s", out)
	}
}

func TestRunE14Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE14Sized(&buf, 7); err != nil {
		t.Fatalf("E14: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "daily mean (paper)") || !strings.Contains(out, "q90") {
		t.Errorf("E14 output incomplete:\n%s", out)
	}
}

func TestRunE15Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE15Sized(&buf, 3); err != nil {
		t.Fatalf("E15: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "offered kWh") || !strings.Contains(out, "uncertainty") {
		t.Errorf("E15 output incomplete:\n%s", out)
	}
}

func TestRunE16Small(t *testing.T) {
	var buf bytes.Buffer
	if err := runE16Sized(&buf, 7); err != nil {
		t.Fatalf("E16: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase median") || !strings.Contains(out, "block quantile") {
		t.Errorf("E16 output incomplete:\n%s", out)
	}
}
