package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/res"
	"repro/internal/sched"
)

// RunE15 is an extension experiment covering the paper's §6 closing vision:
// production flex-offers. A wind producer with a local forecast issues
// offers whose start can slide a little and whose energy band reflects
// forecast uncertainty; the scheduler then matches *consumption* flex-offers
// against the firm production plus the scheduled production offers.
func RunE15(w io.Writer) error {
	return runE15Sized(w, 7)
}

func runE15Sized(w io.Writer, days int) error {
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = 120
	forecastSeries, err := res.Simulate(res.DefaultWindModel(), turbine, day0, days, 15*time.Minute, 15)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "wind forecast: %d days, %.0f kWh total\n\n", days, forecastSeries.Total())
	t := newTable("uncertainty", "offers", "offered kWh", "share of production", "energy flexibility kWh")
	for _, u := range []float64{0.05, 0.15, 0.30} {
		e := &core.ProductionExtractor{Params: core.DefaultParams(), ForecastUncertainty: u}
		out, err := e.Extract(forecastSeries)
		if err != nil {
			return err
		}
		offered := -out.Offers.TotalAvgEnergy()
		var flex float64
		for _, f := range out.Offers {
			flex += f.EnergyFlexibility()
		}
		t.addf("%.0f%%|%d|%.0f|%.0f%%|%.0f",
			u*100, len(out.Offers), offered, offered/forecastSeries.Total()*100, flex)
	}
	t.write(w)

	// Sanity: a production offer scheduled at its earliest start renders as
	// negative demand (supply) and nets out against consumption.
	e := &core.ProductionExtractor{Params: core.DefaultParams()}
	out, err := e.Extract(forecastSeries)
	if err != nil {
		return err
	}
	if len(out.Offers) > 0 {
		f := out.Offers[0]
		asg, err := f.AssignDefault(f.EarliestStart)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nexample: %s offers %.1f kWh of production starting %s..%s\n",
			f.ID, -asg.TotalEnergy(), f.EarliestStart.Format("Mon 15:04"), f.LatestStart.Format("Mon 15:04"))
	}

	// End-to-end: consumption offers scheduled against firm production plus
	// the production offers' average commitment.
	demandHorizon := sched.Horizon(forecastSeries)
	supply := out.Modified.Clone()
	for _, f := range out.Offers {
		asg, err := f.AssignDefault(f.EarliestStart)
		if err != nil {
			return err
		}
		neg, err := asg.ToSeries(15 * time.Minute)
		if err != nil {
			return err
		}
		for i := 0; i < neg.Len(); i++ {
			if idx, ok := supply.IndexOf(neg.TimeAt(i)); ok {
				supply.SetValue(idx, supply.Value(idx)-neg.Value(i)) // minus a negative = plus
			}
		}
	}
	factory := &flexoffer.FlexOffer{
		ID: "factory-shift", EarliestStart: day0.Add(6 * time.Hour),
		LatestStart: day0.Add(18 * time.Hour),
		Profile:     flexoffer.UniformProfile(16, 15*time.Minute, 2, 4),
	}
	if err := factory.Validate(); err != nil {
		return err
	}
	consumers := flexoffer.Set{factory}
	schedule, err := (&sched.Scheduler{}).Schedule(consumers, demandHorizon, supply)
	if err != nil {
		return err
	}
	if len(schedule.Assignments) == 1 {
		fmt.Fprintf(w, "a 32-96 kWh flexible industrial load was scheduled at %s against the offered wind\n",
			schedule.Assignments[0].Start.Format("Mon 15:04"))
	}
	fmt.Fprintln(w, "\nexpected shape: offered production share grows with what the threshold admits;")
	fmt.Fprintln(w, "uncertainty widens the energy bands without changing placement.")
	return nil
}
