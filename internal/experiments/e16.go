package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/disagg"
	"repro/internal/household"
)

// RunE16 is the base-load estimator ablation for the disaggregation
// substrate. Two regimes are compared: (a) a household whose appliance
// start times vary day to day, and (b) a strictly habitual household where
// the same appliance runs in the same narrow window every day. The
// per-phase-median estimator shines in (a) but absorbs the daily-periodic
// load in (b) — the block-quantile baseline does not.
func RunE16(w io.Writer) error {
	return runE16Sized(w, 14)
}

func runE16Sized(w io.Writer, days int) error {
	type regime struct {
		name string
		sim  *household.Result
	}
	varied, err := fineHousehold(days, 16)
	if err != nil {
		return err
	}
	// A strictly habitual household: the robot runs in a fixed one-hour
	// window every day, the washer in a fixed evening hour.
	reg := habitualRegistry()
	hab, err := household.Simulate(reg, household.Config{
		ID: "e16-habitual", Residents: 3,
		Appliances: []string{"washing machine Y", "vacuum cleaning robot X", "refrigerator"},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.9, NoiseStd: 0.05,
		Seed: 16,
	}, day0, days, time.Minute)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%d days at 1-minute resolution\n\n", days)
	t := newTable("household", "base estimator", "detections", "precision", "recall", "F1")
	for _, r := range []regime{{"varied habits", varied}, {"strict daily habits", hab}} {
		var flexTruth []household.Activation
		for _, a := range r.sim.Activations {
			if a.Flexible {
				flexTruth = append(flexTruth, a)
			}
		}
		for _, est := range []struct {
			name string
			cfg  disagg.Config
		}{
			{"phase median", disagg.Config{Base: disagg.PhaseMedian}},
			{"block quantile", disagg.Config{Base: disagg.BlockQuantile}},
		} {
			regUsed := defaultRegistry
			if r.name == "strict daily habits" {
				regUsed = reg
			}
			out, err := disagg.Detect(r.sim.Total, regUsed, est.cfg)
			if err != nil {
				return err
			}
			tp := 0
			used := make([]bool, len(flexTruth))
			for _, d := range out.Detections {
				for i, a := range flexTruth {
					if used[i] || a.Appliance != d.Appliance {
						continue
					}
					delta := d.Start.Sub(a.Start)
					if delta < 0 {
						delta = -delta
					}
					if delta <= 11*time.Minute {
						used[i] = true
						tp++
						break
					}
				}
			}
			precision, recall, f1 := prf(tp, len(out.Detections)-tp, len(flexTruth)-tp)
			t.addf("%s|%s|%d|%.2f|%.2f|%.2f",
				r.name, est.name, len(out.Detections), precision, recall, f1)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: the block-quantile baseline matches or beats the phase median")
	fmt.Fprintln(w, "in both regimes, with the largest gap on strict daily habits, where the phase")
	fmt.Fprintln(w, "median absorbs the daily-periodic appliance into the base estimate. The phase")
	fmt.Fprintln(w, "median remains the default for its fidelity to the base load's daily shape,")
	fmt.Fprintln(w, "but this ablation shows the quantile baseline is the safer choice when")
	fmt.Fprintln(w, "appliance schedules may be strongly periodic.")
	return nil
}
