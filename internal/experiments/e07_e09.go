package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/disagg"
	"repro/internal/eval"
	"repro/internal/household"
)

// RunE7 evaluates the frequency-based appliance-level extraction (designed
// but unimplemented in the paper, §4.1) against the simulator's ground
// truth: detection quality, estimated vs true usage frequencies, and
// offer-level precision/recall.
func RunE7(w io.Writer) error {
	return runE7Sized(w, 28)
}

func runE7Sized(w io.Writer, days int) error {
	sim, err := fineHousehold(days, 7)
	if err != nil {
		return err
	}
	e := &core.FrequencyExtractor{Params: core.DefaultParams(), Registry: defaultRegistry}
	res, report, err := e.ExtractWithReport(sim.Total)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "input: %d days at 1-minute resolution; %d ground-truth activations\n\n",
		days, len(sim.Activations))

	// Step 1: shortlist and frequency table vs ground truth.
	truthRuns := map[string]int{}
	for _, a := range sim.Activations {
		truthRuns[a.Appliance]++
	}
	t := newTable("appliance", "est runs/day", "true runs/day", "est mean kWh", "mean start hour")
	for _, f := range report.Frequencies {
		t.addf("%s|%.2f|%.2f|%.2f|%04.1f",
			f.Appliance, f.RunsPerDay, float64(truthRuns[f.Appliance])/float64(days),
			f.MeanEnergy, f.MeanStartHour)
	}
	t.write(w)

	// Step 2: offer quality vs ground truth.
	stats := eval.MatchOffers(res.Offers, sim.Activations, 15*time.Minute)
	fmt.Fprintf(w, "\noffers: %d; precision %.2f, recall %.2f, F1 %.2f, mean energy error %.1f%%\n",
		len(res.Offers), stats.Precision, stats.Recall, stats.F1, stats.MeanEnergyError*100)
	fmt.Fprintf(w, "energy accounting: input %.2f = modified %.2f + offers %.2f kWh\n",
		sim.Total.Total(), res.Modified.Total(), res.Offers.TotalAvgEnergy())
	fmt.Fprintln(w, "\nexpected shape: appliance-level offers match ground truth far better than any")
	fmt.Fprintln(w, "consumption-level approach can (they name the appliance and its true usage time).")
	return nil
}

// RunE8 quantifies the paper's §6 blocker — "the granularity of the
// available time series is not sufficient (only 15 min)" — by running the
// disaggregator at 1/5/15/30-minute resolutions against ground truth.
func RunE8(w io.Writer) error {
	return runE8Sized(w, 14)
}

func runE8Sized(w io.Writer, days int) error {
	sim, err := fineHousehold(days, 8)
	if err != nil {
		return err
	}
	var flexTruth []household.Activation
	for _, a := range sim.Activations {
		if a.Flexible {
			flexTruth = append(flexTruth, a)
		}
	}
	fmt.Fprintf(w, "household: %d days, %d flexible ground-truth runs\n\n", days, len(flexTruth))

	t := newTable("resolution", "detections", "precision", "recall", "F1")
	for _, res := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, 30 * time.Minute} {
		total := resampleOrPanic(sim.Total, res)
		out, err := disagg.Detect(total, defaultRegistry, disagg.Config{})
		if err != nil {
			return err
		}
		tp, fp := 0, 0
		used := make([]bool, len(flexTruth))
		for _, d := range out.Detections {
			matched := false
			for i, a := range flexTruth {
				if used[i] || a.Appliance != d.Appliance {
					continue
				}
				delta := d.Start.Sub(a.Start)
				if delta < 0 {
					delta = -delta
				}
				if delta <= res+10*time.Minute {
					used[i] = true
					matched = true
					break
				}
			}
			if matched {
				tp++
			} else {
				fp++
			}
		}
		precision, recall, f1 := prf(tp, fp, len(flexTruth)-tp)
		t.addf("%s|%d|%.2f|%.2f|%.2f", res, len(out.Detections), precision, recall, f1)
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: F1 degrades as the resolution coarsens — the paper's stated")
	fmt.Fprintln(w, "reason for leaving appliance-level extraction as future work at 15-min data.")
	return nil
}

func prf(tp, fp, fn int) (precision, recall, f1 float64) {
	if tp == 0 {
		return 0, 0, 0
	}
	precision = float64(tp) / float64(tp+fp)
	recall = float64(tp) / float64(tp+fn)
	f1 = 2 * precision * recall / (precision + recall)
	return
}

// RunE9 evaluates the schedule-based extraction (§4.2): the mined schedule
// against the appliances' configured habits, and the extracted offers
// against ground truth, side by side with the frequency-based approach.
//
// The §4.2 premise is that households have sharp habits ("the dishwasher is
// more used during the weekends"), so E9 simulates a habitual household: the
// same appliance models as Table 1 but with concentrated start-hour
// propensities (robot in the 9-11 morning block, washer around 18:00,
// dishwasher around 19:00).
func RunE9(w io.Writer) error {
	return runE9Sized(w, 84) // 12 weeks: schedules need repetition
}

// habitualRegistry clones the default registry with sharply concentrated
// start-hour habits for the three flexible household appliances.
func habitualRegistry() *appliance.Registry {
	reg := appliance.NewRegistry()
	for _, a := range defaultRegistry.All() {
		c := *a
		switch c.Name {
		case "vacuum cleaning robot X":
			// A 3-hour morning habit: sharp enough to mine, spread enough
			// that the robot does not run at identical minutes every day
			// (a strictly daily-periodic load would be absorbed into the
			// median base-load estimate — a classic NILM blind spot).
			c.HourWeights = [24]float64{}
			c.HourWeights[9], c.HourWeights[10], c.HourWeights[11] = 1, 1, 1
		case "washing machine Y":
			c.HourWeights = [24]float64{}
			c.HourWeights[18] = 3
			c.HourWeights[19] = 1
		case "dishwasher Z":
			c.HourWeights = [24]float64{}
			c.HourWeights[19] = 3
			c.HourWeights[20] = 1
		}
		if err := reg.Add(&c); err != nil {
			panic(err)
		}
	}
	return reg
}

func runE9Sized(w io.Writer, days int) error {
	reg := habitualRegistry()
	cfg := household.Config{
		ID: "e9-habitual", Residents: 3,
		Appliances: []string{
			"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator",
		},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.9, NoiseStd: 0.05,
		Seed: 9,
	}
	sim, err := household.Simulate(reg, cfg, day0, days, time.Minute)
	if err != nil {
		return err
	}
	p := core.DefaultParams()
	se := &core.ScheduleExtractor{Params: p, Registry: reg, MinSupport: 0.2}
	sres, sreport, err := se.ExtractWithReport(sim.Total)
	if err != nil {
		return err
	}
	fe := &core.FrequencyExtractor{Params: p, Registry: reg}
	fres, err := fe.Extract(sim.Total)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "mined schedule (%d cells at support >= %.2f):\n", len(sreport.Schedule), se.MinSupport)
	t := newTable("appliance", "day type", "hour", "probability", "mean kWh")
	for _, s := range sreport.Schedule {
		t.addf("%s|%s|%02d:00|%.2f|%.2f", s.Appliance, s.DayType, s.Hour, s.Probability, s.MeanEnergy)
	}
	t.write(w)

	sstats := eval.MatchOffers(sres.Offers, sim.Activations, 15*time.Minute)
	fstats := eval.MatchOffers(fres.Offers, sim.Activations, 15*time.Minute)
	fmt.Fprintln(w)
	ct := newTable("approach", "offers", "precision", "recall", "F1")
	ct.addf("schedule-based|%d|%.2f|%.2f|%.2f", len(sres.Offers), sstats.Precision, sstats.Recall, sstats.F1)
	ct.addf("frequency-based|%d|%.2f|%.2f|%.2f", len(fres.Offers), fstats.Precision, fstats.Recall, fstats.F1)
	ct.write(w)
	fmt.Fprintln(w, "\nexpected shape: schedule-based extracts a subset of the frequency-based offers")
	fmt.Fprintln(w, "(habitual usages only) at equal or higher precision, trading recall for realism.")
	return nil
}
