package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/household"
	"repro/internal/tariff"
)

// expTariff is the time-of-use scheme used by E6 and the tariff-aware
// simulations: low price from 22:00 to 06:00.
var expTariff = tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}

// RunE5 checks the extracted flexible share against the 0.1–6.5 % band the
// paper quotes from the MIRABEL trial specification [7]: the extraction
// parameter sweeps the band and the measured share of every
// consumption-level approach must track it.
func RunE5(w io.Writer) error {
	return runE5Sized(w, 30, 28)
}

// runE5Sized is the parameterised body (the benchmark uses a smaller size).
func runE5Sized(w io.Writer, households, days int) error {
	cfgs := household.Population(households, 1)
	results, _, err := household.SimulatePopulation(defaultRegistry, cfgs, day0, days, 15*time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "population: %d households x %d days at 15 min\n\n", households, days)

	t := newTable("flex % param", "basic share", "peak share", "random share", "in 0.1-6.5% band")
	for _, pct := range []float64{0.001, 0.01, 0.025, 0.05, 0.065} {
		p := core.DefaultParams()
		p.FlexPercentage = pct
		var basicE, peakE, randE, totalE float64
		for _, r := range results {
			for name, e := range map[string]*float64{"basic": &basicE, "peak": &peakE, "random": &randE} {
				var ex core.Extractor
				switch name {
				case "basic":
					ex = &core.BasicExtractor{Params: p}
				case "peak":
					ex = &core.PeakExtractor{Params: p}
				case "random":
					ex = &core.RandomExtractor{Params: p}
				}
				res, err := ex.Extract(r.Total)
				if err != nil {
					return err
				}
				*e += res.Offers.TotalAvgEnergy()
			}
			totalE += r.Total.Total()
		}
		basicShare := basicE / totalE
		peakShare := peakE / totalE
		randShare := randE / totalE
		inBand := basicShare >= 0.001-1e-9 && basicShare <= 0.065+1e-9
		t.addf("%.1f%%|%.2f%%|%.2f%%|%.2f%%|%v",
			pct*100, basicShare*100, peakShare*100, randShare*100, inBand)
	}
	t.write(w)
	fmt.Fprintln(w, "\nnote: the peak approach extracts less than the parameter on days where no peak")
	fmt.Fprintln(w, "can host the day's flexible energy (it then skips the day, per §3.2).")
	return nil
}

// RunE6 evaluates the multi-tariff extraction the paper designed but could
// not test for lack of paired one-tariff/multi-tariff series (§3.3). The
// household simulator's tariff response supplies the pairs; the extracted
// energy must grow with the consumers' shifting behaviour and sit in the
// low-tariff window.
func RunE6(w io.Writer) error {
	return runE6Sized(w, 28)
}

func runE6Sized(w io.Writer, days int) error {
	cfg := household.Config{
		ID: "e6-household", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "tumble dryer", "television", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.08,
		Seed: 6,
	}
	fmt.Fprintf(w, "paired series: %d days flat billing, then %d days under %s\n\n", days, days, expTariff.Name())

	t := newTable("shift prob", "offers", "extracted kWh", "share of multi-tariff", "offers in low window",
		"ground-truth shifted kWh")
	for _, prob := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		flat, multi, err := household.SimulatePair(defaultRegistry, cfg, expTariff,
			tariff.Response{ShiftProbability: prob}, day0, days, 15*time.Minute)
		if err != nil {
			return err
		}
		e := &core.MultiTariffExtractor{Params: core.DefaultParams(), Tariff: expTariff}
		res, err := e.ExtractPair(flat.Total, multi.Total)
		if err != nil {
			return err
		}
		inLow := 0
		for _, f := range res.Offers {
			if expTariff.IsLow(f.EarliestStart) {
				inLow++
			}
		}
		var shiftedTruth float64
		for _, a := range multi.Activations {
			if a.Shifted {
				shiftedTruth += a.Energy
			}
		}
		lowPct := 0.0
		if len(res.Offers) > 0 {
			lowPct = float64(inLow) / float64(len(res.Offers)) * 100
		}
		t.addf("%.2f|%d|%.2f|%.2f%%|%.0f%%|%.2f",
			prob, len(res.Offers), res.Offers.TotalAvgEnergy(),
			res.Offers.TotalAvgEnergy()/multi.Total.Total()*100, lowPct, shiftedTruth)
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: extracted energy grows with shift probability; all offers start")
	fmt.Fprintln(w, "inside the 22:00-06:00 low-tariff window, where delayed consumption surfaces.")
	return nil
}
