package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// asciiChart renders a series as a column chart with the given height, one
// column per interval, plus an optional horizontal marker line (e.g. the
// daily mean of Fig. 5). Values below zero render as empty columns.
func asciiChart(w io.Writer, s *timeseries.Series, height int, marker float64, label string) {
	n := s.Len()
	if n == 0 || height < 1 {
		return
	}
	maxV := s.Max()
	if marker > maxV {
		maxV = marker
	}
	if maxV <= 0 || math.IsNaN(maxV) {
		maxV = 1
	}
	level := func(v float64) int {
		if math.IsNaN(v) || v <= 0 {
			return 0
		}
		return int(math.Round(v / maxV * float64(height)))
	}
	markerRow := level(marker)
	fmt.Fprintf(w, "%s (max %.3f kWh/interval)\n", label, s.Max())
	for row := height; row >= 1; row-- {
		var b strings.Builder
		for i := 0; i < n; i++ {
			l := level(s.Value(i))
			switch {
			case l >= row:
				b.WriteByte('#')
			case marker > 0 && markerRow == row:
				b.WriteByte('-')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(w, "|%s|\n", b.String())
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", n))
}

// asciiOffers renders a set of flex-offers over a time axis: for each offer
// a band of '=' (minimum energy) and '+' (energy flexibility up to the
// maximum) across its profile intervals, in the style of Fig. 4's
// light/dark areas.
func asciiOffers(w io.Writer, offers flexoffer.Set, axis *timeseries.Series) {
	for _, f := range offers {
		start, ok := axis.IndexOf(f.EarliestStart)
		if !ok {
			continue
		}
		line := []byte(strings.Repeat(" ", axis.Len()))
		for i := range f.Profile {
			col := start + i
			if col >= len(line) {
				break
			}
			line[col] = '='
		}
		// Mark the time-flexibility span after the profile with dots.
		flexCols := int(f.TimeFlexibility() / axis.Resolution())
		for i := 0; i < flexCols; i++ {
			col := start + len(f.Profile) + i
			if col >= len(line) {
				break
			}
			if line[col] == ' ' {
				line[col] = '.'
			}
		}
		fmt.Fprintf(w, "|%s| %s: %.2f..%.2f kWh, start %s..%s\n",
			string(line), f.ID, f.TotalMinEnergy(), f.TotalMaxEnergy(),
			f.EarliestStart.Format("15:04"), f.LatestStart.Format("15:04"))
	}
}

// table is a minimal fixed-width table writer for experiment reports.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}
