package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flexoffer"
	"repro/internal/forecast"
	"repro/internal/household"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

// RunE13 is an extension experiment covering the paper's forecasting
// dependency ([6]: MIRABEL relies on "reliable and near real-time
// forecasting of energy production and consumption"): (a) the forecasting
// substrate's accuracy on simulated consumption, and (b) how scheduling
// quality degrades when the scheduler sees a *forecast* of wind production
// instead of the actual one.
func RunE13(w io.Writer) error {
	return runE13Sized(w, 40, 21)
}

func runE13Sized(w io.Writer, households, days int) error {
	cfgs := household.Population(households, 13)
	results, popTotal, err := household.SimulatePopulation(defaultRegistry, cfgs, day0, days+7, 15*time.Minute)
	if err != nil {
		return err
	}

	// (a) Consumption forecasting: train on the first `days`, test on the
	// final week.
	split := days * 96
	train, err := popTotal.Slice(0, split)
	if err != nil {
		return err
	}
	test, err := popTotal.Slice(split, popTotal.Len())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(a) population consumption forecasting: train %d days, test 7 days\n\n", days)
	ft := newTable("model", "MAE kWh", "RMSE kWh", "MAPE")
	for _, m := range []forecast.Model{
		&forecast.SeasonalNaive{Period: 96},
		&forecast.SES{Alpha: 0.3},
		&forecast.HoltWinters{Alpha: 0.25, Beta: 0.01, Gamma: 0.2, Period: 96, Damping: 0.9},
	} {
		metrics, err := forecast.Evaluate(m, train, test)
		if err != nil {
			return err
		}
		ft.addf("%s|%.2f|%.2f|%.1f%%", m.Name(), metrics.MAE, metrics.RMSE, metrics.MAPE)
	}
	ft.write(w)

	// (b) Scheduling against forecast wind. Extract offers over the whole
	// horizon, schedule using forecasts of varying error, evaluate against
	// the actual production.
	var offers flexoffer.Set
	var inflexParts []*timeseries.Series
	for i, r := range results {
		p := core.DefaultParams()
		p.Seed = int64(i)
		out, err := (&core.PeakExtractor{Params: p}).Extract(r.Total)
		if err != nil {
			return err
		}
		offers = append(offers, out.Offers...)
		inflexParts = append(inflexParts, out.Modified)
	}
	inflex, err := timeseries.Sum(inflexParts...)
	if err != nil {
		return err
	}
	aggs, err := agg.AggregateSet(offers, agg.DefaultParams())
	if err != nil {
		return err
	}
	var aggOffers flexoffer.Set
	for _, a := range aggs {
		aggOffers = append(aggOffers, a.Offer)
	}
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / 0.25 * 1.5
	actual, err := res.Simulate(res.DefaultWindModel(), turbine, day0, days+7, 15*time.Minute, 13)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n(b) scheduling against forecast wind (%d aggregated offers)\n\n", len(aggOffers))
	st := newTable("forecast error", "unmatched kWh (vs actual)", "degradation vs perfect")
	var perfect float64
	for _, errStd := range []float64{0, 0.1, 0.2, 0.4} {
		seen := res.ForecastWithError(actual, errStd, 99)
		schedule, err := (&sched.Scheduler{}).Schedule(aggOffers, inflex, seen)
		if err != nil {
			return err
		}
		m, err := sched.Imbalance(schedule.Demand, actual)
		if err != nil {
			return err
		}
		if errStd == 0 {
			perfect = m.UnmatchedDemand
		}
		st.addf("%.0f%%|%.0f|%+.1f%%", errStd*100, m.UnmatchedDemand,
			(m.UnmatchedDemand-perfect)/perfect*100)
	}
	st.write(w)
	fmt.Fprintln(w, "\nexpected shape: the season-aware models (seasonal naive, damped Holt-Winters)")
	fmt.Fprintln(w, "beat plain SES on the strongly daily-seasonal load; scheduling quality degrades")
	fmt.Fprintln(w, "gracefully, not catastrophically, as wind-forecast error grows.")
	return nil
}

// RunE14 is the design-decision ablation from DESIGN.md §5: how the peak
// *threshold* definition (the paper's daily mean vs quantiles) changes what
// the peak-based extractor sees and produces.
func RunE14(w io.Writer) error {
	return runE14Sized(w, 28)
}

func runE14Sized(w io.Writer, days int) error {
	sim, err := fineHousehold(days, 14)
	if err != nil {
		return err
	}
	input := resampleOrPanic(sim.Total, 15*time.Minute)

	fmt.Fprintf(w, "household: %d days at 15 min\n\n", days)
	t := newTable("threshold", "avg peaks/day", "avg candidates/day", "offers", "corr. w/ consumption", "peak-hour share")
	for _, tc := range []struct {
		name     string
		quantile float64
	}{
		{"daily mean (paper)", 0},
		{"median (q50)", 0.50},
		{"q75", 0.75},
		{"q90", 0.90},
	} {
		p := core.DefaultParams()
		ex := &core.PeakExtractor{Params: p, ThresholdQuantile: tc.quantile}
		out, err := ex.Extract(input)
		if err != nil {
			return err
		}
		var peaks, candidates int
		for _, day := range input.Days() {
			threshold := day.Mean()
			if tc.quantile > 0 {
				threshold = day.Quantile(tc.quantile)
			}
			ps := core.DetectPeaksAbove(day, threshold)
			peaks += len(ps)
			candidates += len(core.FilterPeaks(ps, p.FlexPercentage*day.Total()))
		}
		r, err := eval.Evaluate(out.Offers, input)
		if err != nil {
			return err
		}
		t.addf("%s|%.1f|%.1f|%d|%.2f|%.2f",
			tc.name, float64(peaks)/float64(days), float64(candidates)/float64(days),
			len(out.Offers), r.ConsumptionCorrelation, r.PeakShare)
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: higher thresholds find fewer, sharper peaks; very high")
	fmt.Fprintln(w, "thresholds leave days without a candidate able to host the flexible energy,")
	fmt.Fprintln(w, "reducing the offer count. The paper's daily-mean rule is a balanced default.")
	return nil
}
