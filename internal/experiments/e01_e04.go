package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/paperdata"
)

// RunE1 reproduces Figure 1: the electric-vehicle flex-offer with its
// profile, energy flexibility and time flexibility, instantiated at one
// admissible start.
func RunE1(w io.Writer) error {
	f := paperdata.Figure1Offer()
	if err := f.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "offer %s (%s)\n", f.ID, f.Appliance)
	t := newTable("attribute", "value", "paper (Fig. 1)")
	t.addf("earliest start|%s|10 PM", f.EarliestStart.Format("15:04"))
	t.addf("latest start|%s|5 AM", f.LatestStart.Format("15:04"))
	t.addf("latest end|%s|7 AM", f.LatestEnd().Format("15:04"))
	t.addf("start time flexibility|%s|7 h", f.TimeFlexibility())
	t.addf("profile duration|%s|2 h", f.Duration())
	t.addf("profile slices|%d x %s|15-min intervals", len(f.Profile), f.Profile[0].Duration)
	t.addf("minimum required energy|%.1f kWh|dark area", f.TotalMinEnergy())
	t.addf("maximum required energy|%.1f kWh|dotted area", f.TotalMaxEnergy())
	t.addf("total (average) energy|%.1f kWh|50 kWh", f.TotalAvgEnergy())
	t.write(w)

	// Schedule the charging at 02:00 (inside the window) and render it.
	start := paperdata.Day0.Add(26 * time.Hour)
	asg, err := f.AssignDefault(start)
	if err != nil {
		return err
	}
	s, err := asg.ToSeries(15 * time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nscheduled at %s: %.1f kWh over %d intervals\n",
		asg.Start.Format("15:04"), asg.TotalEnergy(), s.Len())
	asciiChart(w, s, 6, 0, "charging profile")
	return nil
}

// RunE2 reproduces Figure 4: flex-offers extracted from one household day
// with the basic approach — four offers, each occupying its own period of
// the time axis, with min (light) and max (dark) energy bands.
func RunE2(w io.Writer) error {
	day := paperdata.Figure5Day() // a realistic household day
	p := core.DefaultParams()
	res, err := (&core.BasicExtractor{Params: p}).Extract(day)
	if err != nil {
		return err
	}
	asciiChart(w, day, 8, day.Mean(), "input household day (96 x 15 min)")
	fmt.Fprintf(w, "\n%d flex-offers extracted (flex share %.0f%%):\n", len(res.Offers), p.FlexPercentage*100)
	asciiOffers(w, res.Offers, day)

	t := newTable("offer", "earliest", "latest", "slices", "min kWh", "max kWh", "avg kWh")
	for _, f := range res.Offers {
		t.addf("%s|%s|%s|%d|%.3f|%.3f|%.3f",
			f.ID, f.EarliestStart.Format("15:04"), f.LatestStart.Format("15:04"),
			len(f.Profile), f.TotalMinEnergy(), f.TotalMaxEnergy(), f.TotalAvgEnergy())
	}
	fmt.Fprintln(w)
	t.write(w)
	fmt.Fprintf(w, "\nenergy accounting: input %.3f = modified %.3f + offers %.3f kWh\n",
		day.Total(), res.Modified.Total(), res.Offers.TotalAvgEnergy())
	return nil
}

// RunE3 reproduces Figure 5: the peak-based walkthrough with the paper's
// exact numbers — 39.02 kWh day, eight peaks, 5 % flexible part = 1.951
// kWh threshold, survivors of sizes 2.22 and 5.47 kWh with probabilities
// 29 % and 71 %.
func RunE3(w io.Writer) error {
	day := paperdata.Figure5Day()
	asciiChart(w, day, 8, day.Mean(), "household day (thick line = daily average)")
	fmt.Fprintf(w, "\nday total: %.2f kWh (paper: 39.02)\n", day.Total())
	flexEnergy := 0.05 * day.Total()
	fmt.Fprintf(w, "flexible part at 5%%: %.3f kWh (paper: 1.951)\n\n", flexEnergy)

	peaks := core.DetectPeaks(day)
	candidates := core.FilterPeaks(peaks, flexEnergy)
	probs := core.SelectionProbabilities(candidates)

	t := newTable("peak", "interval span", "size kWh", "paper size", "survives filter", "P(select)")
	paper := paperdata.Figure5Peaks()
	ci := 0
	for i, pk := range peaks {
		survives := pk.Size >= flexEnergy
		prob := "-"
		if survives && ci < len(probs) {
			prob = fmt.Sprintf("%.0f%%", probs[ci]*100)
			ci++
		}
		t.addf("%d|%02d..%02d|%.2f|%.2f|%v|%s",
			i+1, pk.From, pk.To, pk.Size, paper[i].Size, survives, prob)
	}
	t.write(w)

	// Selection frequencies over many seeds approach 29/71.
	const trials = 1000
	counts := map[int]int{}
	for seed := int64(0); seed < trials; seed++ {
		p := core.DefaultParams()
		p.Seed = seed
		res, err := (&core.PeakExtractor{Params: p}).Extract(day)
		if err != nil {
			return err
		}
		if len(res.Offers) == 1 {
			counts[res.Offers[0].EarliestStart.UTC().Hour()]++
		}
	}
	fmt.Fprintf(w, "\nempirical selection over %d seeds: peak6 (15:30) %.1f%%, peak7 (18:00) %.1f%% (paper: 29%% / 71%%)\n",
		trials, float64(counts[15])/trials*100, float64(counts[18])/trials*100)
	return nil
}

// RunE4 reproduces Table 1: the appliance information registry with energy
// consumption ranges and profile metadata.
func RunE4(w io.Writer) error {
	t := newTable("appliance", "category", "energy range kWh", "run", "flexible", "runs/day", "time flex")
	for _, a := range defaultRegistry.All() {
		t.addf("%s|%s|%.2g - %.2g|%s|%v|%.2g|%s",
			a.Name, a.Category, a.MinRunEnergy, a.MaxRunEnergy,
			a.RunDuration(), a.Flexible, a.RunsPerDay, a.TimeFlexibility)
	}
	t.write(w)
	fmt.Fprintf(w, "\npaper rows: vacuum robot 0.5-1, washing machine 1.2-3, dishwasher 1.2-2, EVs 30-50/50-60/60-70 kWh\n")
	fmt.Fprintf(w, "profile granularity: 1 minute per band (paper: \"even smaller than 15min\")\n")
	return nil
}
