package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

// RunE10 compares the realism of every extraction approach against the
// random baseline the paper criticises (§1): placement entropy (random ≈
// uniform), correlation of offer placement with consumption, and the share
// of offered energy inside peak consumption hours.
func RunE10(w io.Writer) error {
	return runE10Sized(w, 28)
}

func runE10Sized(w io.Writer, days int) error {
	sim, err := fineHousehold(days, 10)
	if err != nil {
		return err
	}
	quarter := resampleOrPanic(sim.Total, 15*time.Minute)
	p := core.DefaultParams()

	type entry struct {
		name   string
		offers flexoffer.Set
		input  *timeseries.Series
	}
	var entries []entry
	for _, ex := range []core.Extractor{
		&core.RandomExtractor{Params: p},
		&core.BasicExtractor{Params: p},
		&core.PeakExtractor{Params: p},
	} {
		r, err := ex.Extract(quarter)
		if err != nil {
			return err
		}
		entries = append(entries, entry{ex.Name(), r.Offers, quarter})
	}
	fx := &core.FrequencyExtractor{Params: p, Registry: defaultRegistry}
	fr, err := fx.Extract(sim.Total)
	if err != nil {
		return err
	}
	entries = append(entries, entry{"frequency (appliance)", fr.Offers, quarter})

	t := newTable("approach", "offers/day", "flex share", "placement entropy", "corr. w/ consumption", "peak-hour share")
	for _, e := range entries {
		r, err := eval.Evaluate(e.offers, e.input)
		if err != nil {
			return err
		}
		t.addf("%s|%.2f|%.2f%%|%.2f|%.2f|%.2f",
			e.name, r.OffersPerDay, r.FlexibleShare*100, r.PlacementEntropy,
			r.ConsumptionCorrelation, r.PeakShare)
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: random has the highest entropy and lowest correlation;")
	fmt.Fprintln(w, "peak-based concentrates offers into peak hours; appliance-level sits where")
	fmt.Fprintln(w, "actual flexible appliances ran.")
	return nil
}

// RunE11 reproduces the §6 claim that aggregated flex-offers are "pretty
// realistic" even when individual peak-based offers are not: offers from a
// population are aggregated and the aggregate's placement profile is
// correlated with the population consumption profile.
func RunE11(w io.Writer) error {
	return runE11Sized(w, 100, 7)
}

func runE11Sized(w io.Writer, households, days int) error {
	cfgs := household.Population(households, 11)
	results, popTotal, err := household.SimulatePopulation(defaultRegistry, cfgs, day0, days, 15*time.Minute)
	if err != nil {
		return err
	}
	p := core.DefaultParams()

	t := newTable("approach", "offers", "aggregates", "members/agg", "corr. w/ population load")
	for _, name := range []string{"peak", "random"} {
		var all flexoffer.Set
		for i, r := range results {
			pp := p
			pp.Seed = int64(i)
			pp.ConsumerID = r.Config.ID
			var ex core.Extractor
			if name == "peak" {
				ex = &core.PeakExtractor{Params: pp}
			} else {
				ex = &core.RandomExtractor{Params: pp}
			}
			res, err := ex.Extract(r.Total)
			if err != nil {
				return err
			}
			all = append(all, res.Offers...)
		}
		aggs, err := agg.AggregateSet(all, agg.DefaultParams())
		if err != nil {
			return err
		}
		var aggOffers flexoffer.Set
		for _, a := range aggs {
			aggOffers = append(aggOffers, a.Offer)
		}
		r, err := eval.Evaluate(aggOffers, popTotal)
		if err != nil {
			return err
		}
		t.addf("%s|%d|%d|%.1f|%.2f",
			name, len(all), len(aggs), float64(agg.TotalMembers(aggs))/float64(len(aggs)),
			r.ConsumptionCorrelation)
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: aggregated peak-based offers correlate strongly with the")
	fmt.Fprintln(w, "population load curve; aggregated random offers stay uncorrelated.")
	return nil
}

// RunE12 runs the end-to-end MIRABEL pipeline the flex-offer concept exists
// for: simulate a population, extract flexibility, aggregate, schedule
// against wind production, and measure the imbalance reduction. It also
// prints the offers-per-hour histogram behind the paper's peak-hours
// scalability concern (§1).
func RunE12(w io.Writer) error {
	return runE12Sized(w, 100, 7)
}

func runE12Sized(w io.Writer, households, days int) error {
	cfgs := household.Population(households, 12)
	// Simulate at 1-minute resolution so the appliance-level approach can
	// participate; the consumption-level approaches run on the 15-minute
	// resampling of the same population.
	fineResults, finePopTotal, err := household.SimulatePopulation(defaultRegistry, cfgs, day0, days, time.Minute)
	if err != nil {
		return err
	}
	results := make([]*household.Result, len(fineResults))
	for i, r := range fineResults {
		quarter, err := r.Total.ResampleTo(15 * time.Minute)
		if err != nil {
			return err
		}
		coarse := *r
		coarse.Total = quarter
		results[i] = &coarse
	}
	popTotal, err := finePopTotal.ResampleTo(15 * time.Minute)
	if err != nil {
		return err
	}
	// Wind sized to cover roughly the population average load.
	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / popTotal.Resolution().Hours() * 1.6
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, day0, days, 15*time.Minute, 12)
	if err != nil {
		return err
	}

	baseline, err := sched.Imbalance(popTotal, supply)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "population %d households x %d days; wind farm rated %.0f kW\n", households, days, turbine.RatedPowerKW)
	fmt.Fprintf(w, "no-flexibility baseline: unmatched demand %.0f kWh, spilled supply %.0f kWh, RMSE %.2f\n\n",
		baseline.UnmatchedDemand, baseline.UnusedSupply, baseline.RMSE)

	t := newTable("extraction", "offers", "aggregates", "sched unmatched kWh", "improvement vs baseline", "earliest-start unmatched")
	for _, name := range []string{"peak", "random", "frequency"} {
		var all flexoffer.Set
		var inflexParts []*timeseries.Series
		for i, r := range results {
			pp := core.DefaultParams()
			pp.Seed = int64(1000 + i)
			pp.ConsumerID = r.Config.ID
			var res *core.Result
			var err error
			switch name {
			case "peak":
				res, err = (&core.PeakExtractor{Params: pp}).Extract(r.Total)
			case "random":
				res, err = (&core.RandomExtractor{Params: pp}).Extract(r.Total)
			case "frequency":
				// Appliance-level extraction runs on the household's
				// 1-minute series; its modified remainder is resampled to
				// the market's 15-minute grid.
				fe := &core.FrequencyExtractor{Params: pp, Registry: defaultRegistry}
				res, err = fe.Extract(fineResults[i].Total)
				if err == nil {
					res.Modified, err = res.Modified.ResampleTo(15 * time.Minute)
				}
			}
			if err != nil {
				return err
			}
			all = append(all, res.Offers...)
			inflexParts = append(inflexParts, res.Modified)
		}
		inflex, err := timeseries.Sum(inflexParts...)
		if err != nil {
			return err
		}
		aggs, err := agg.AggregateSet(all, agg.DefaultParams())
		if err != nil {
			return err
		}
		var aggOffers flexoffer.Set
		for _, a := range aggs {
			aggOffers = append(aggOffers, a.Offer)
		}
		smart, err := (&sched.Scheduler{}).Schedule(aggOffers, inflex, supply)
		if err != nil {
			return err
		}
		naive, err := sched.ScheduleAtEarliest(aggOffers, inflex)
		if err != nil {
			return err
		}
		ms, err := sched.Imbalance(smart.Demand, supply)
		if err != nil {
			return err
		}
		mn, err := sched.Imbalance(naive.Demand, supply)
		if err != nil {
			return err
		}
		improvement := (baseline.UnmatchedDemand - ms.UnmatchedDemand) / baseline.UnmatchedDemand * 100
		t.addf("%s|%d|%d|%.0f|%.1f%%|%.0f",
			name, len(all), len(aggs), ms.UnmatchedDemand, improvement, mn.UnmatchedDemand)

		if name == "peak" {
			// Offers-per-hour histogram: the peak-hour concentration that
			// motivates testing MIRABEL scalability on realistic offers.
			var hist [24]int
			for _, f := range all {
				hist[f.EarliestStart.UTC().Hour()]++
			}
			fmt.Fprint(w, "peak-based offers per hour of day: ")
			for h, c := range hist {
				if c > 0 {
					fmt.Fprintf(w, "%02d:%d ", h, c)
				}
			}
			fmt.Fprintln(w)
			fmt.Fprintln(w)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\nexpected shape: scheduling extracted flexibility reduces unmatched demand")
	fmt.Fprintln(w, "below both the no-flexibility baseline and earliest-start placement. Peak-based")
	fmt.Fprintln(w, "offers concentrate in morning/evening hours (the histogram above) — exactly the")
	fmt.Fprintln(w, "peak-hour load the paper says random generation cannot exercise (§1). Random")
	fmt.Fprintln(w, "offers, pretending flexibility exists at any hour, schedule slightly *better*,")
	fmt.Fprintln(w, "i.e. the random baseline makes the MIRABEL evaluation over-optimistic. The")
	fmt.Fprintln(w, "appliance-level offers carry real appliance time flexibilities (up to the")
	fmt.Fprintln(w, "robot's 22 h) and more energy, so they deliver the largest genuine reduction.")
	return nil
}
