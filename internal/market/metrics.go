package market

import "repro/internal/obs"

// StoreMetrics holds the store-level instruments that are updated outside
// the HTTP request path — currently the background sweeper's counter.
// State-count gauges need no struct: they are sampled from the store at
// scrape time by RegisterStoreMetrics.
type StoreMetrics struct {
	// SweeperExpired counts offers the background deadline sweeper moved
	// to Expired (offers expired through POST /expire are visible in the
	// request metrics instead).
	SweeperExpired *obs.Counter
}

// RegisterStoreMetrics exports a store's state on reg and returns the
// instruments the caller updates itself:
//
//	market_offers{state=...}        gauge: offers per lifecycle state
//	market_flexible_energy_kwh     gauge: summed flexible energy on offer
//	market_sweeper_expired_total   counter: offers expired by the sweeper
//	offers_expired_total           counter: offers expired by any path
//
// The gauges are computed from a store snapshot at scrape time, so they
// never drift from the store's actual contents. offers_expired_total is
// sampled the same way: Expired is terminal and records are never
// deleted, so the current count is the all-time total regardless of
// whether the sweeper, POST /expire, or a lapsed accept/assign deadline
// expired the offer.
func RegisterStoreMetrics(reg *obs.Registry, store *Store) *StoreMetrics {
	reg.NewCounterFunc("offers_expired_total", "Offers moved to Expired by any path (sweeper, POST /expire, lapsed deadlines).", func() uint64 {
		return uint64(store.Stats().Expired)
	})
	reg.NewSampledGauge("market_offers", "Collected flex-offers by lifecycle state.", func() []obs.Sample {
		c := store.Stats()
		return []obs.Sample{
			{Labels: []obs.Label{{Name: "state", Value: Offered.String()}}, Value: float64(c.Offered)},
			{Labels: []obs.Label{{Name: "state", Value: Accepted.String()}}, Value: float64(c.Accepted)},
			{Labels: []obs.Label{{Name: "state", Value: Rejected.String()}}, Value: float64(c.Rejected)},
			{Labels: []obs.Label{{Name: "state", Value: Assigned.String()}}, Value: float64(c.Assigned)},
			{Labels: []obs.Label{{Name: "state", Value: Expired.String()}}, Value: float64(c.Expired)},
		}
	})
	reg.NewGaugeFunc("market_flexible_energy_kwh", "Summed average energy of non-terminal offers, in kWh.", func() float64 {
		return store.Stats().TotalFlexibleEnergy
	})
	return &StoreMetrics{
		SweeperExpired: reg.NewCounter("market_sweeper_expired_total", "Offers expired by the background deadline sweeper."),
	}
}
