package market

import (
	"strconv"

	"repro/internal/obs"
)

// StoreMetrics holds the store-level instruments that are updated outside
// the HTTP request path — currently the background sweeper's counter.
// State-count gauges need no struct: they are sampled from the store at
// scrape time by RegisterStoreMetrics.
type StoreMetrics struct {
	// SweeperExpired counts offers the background deadline sweeper moved
	// to Expired (offers expired through POST /expire are visible in the
	// request metrics instead).
	SweeperExpired *obs.Counter
}

// RegisterStoreMetrics exports a store's state on reg and returns the
// instruments the caller updates itself:
//
//	market_offers{state=...}        gauge: offers per lifecycle state
//	market_flexible_energy_kwh     gauge: summed flexible energy on offer
//	market_sweeper_expired_total   counter: offers expired by the sweeper
//	offers_expired_total           counter: offers expired by any path
//	market_shards                  gauge: shards the store is partitioned into
//	market_shard_offers            gauge: resident offers, per shard
//	market_shard_lock_wait_seconds_total  gauge: lock wait time, per shard
//	market_shard_lock_hold_seconds_total  gauge: write-lock hold time, per shard
//	market_shard_lock_queue_depth  gauge: goroutines blocked, per shard
//
// The gauges are computed from a store snapshot at scrape time, so they
// never drift from the store's actual contents. offers_expired_total is
// sampled the same way: Expired is terminal and records are never
// deleted, so the current count is the all-time total regardless of
// whether the sweeper, POST /expire, or a lapsed accept/assign deadline
// expired the offer.
func RegisterStoreMetrics(reg *obs.Registry, store *Store) *StoreMetrics {
	reg.NewCounterFunc("offers_expired_total", "Offers moved to Expired by any path (sweeper, POST /expire, lapsed deadlines).", func() uint64 {
		return uint64(store.Stats().Expired)
	})
	reg.NewSampledGauge("market_offers", "Collected flex-offers by lifecycle state.", func() []obs.Sample {
		c := store.Stats()
		return []obs.Sample{
			{Labels: []obs.Label{{Name: "state", Value: Offered.String()}}, Value: float64(c.Offered)},
			{Labels: []obs.Label{{Name: "state", Value: Accepted.String()}}, Value: float64(c.Accepted)},
			{Labels: []obs.Label{{Name: "state", Value: Rejected.String()}}, Value: float64(c.Rejected)},
			{Labels: []obs.Label{{Name: "state", Value: Assigned.String()}}, Value: float64(c.Assigned)},
			{Labels: []obs.Label{{Name: "state", Value: Expired.String()}}, Value: float64(c.Expired)},
		}
	})
	reg.NewGaugeFunc("market_flexible_energy_kwh", "Summed average energy of non-terminal offers, in kWh.", func() float64 {
		return store.Stats().TotalFlexibleEnergy
	})
	reg.NewGaugeFunc("market_shards", "Shards the store is partitioned into.", func() float64 {
		return float64(store.ShardCount())
	})
	reg.NewSampledGauge("market_shard_offers", "Offers resident per store shard.", func() []obs.Sample {
		return shardSamples(store, func(c ShardContention) float64 { return float64(c.Offers) })
	})
	reg.NewSampledGauge("market_shard_lock_wait_seconds_total", "Cumulative time callers waited for each shard's lock.", func() []obs.Sample {
		return shardSamples(store, func(c ShardContention) float64 { return c.LockWaitSeconds })
	})
	reg.NewSampledGauge("market_shard_lock_hold_seconds_total", "Cumulative time each shard's write lock was held.", func() []obs.Sample {
		return shardSamples(store, func(c ShardContention) float64 { return c.LockHoldSeconds })
	})
	reg.NewSampledGauge("market_shard_lock_queue_depth", "Goroutines currently blocked on each shard's lock.", func() []obs.Sample {
		return shardSamples(store, func(c ShardContention) float64 { return float64(c.QueueDepth) })
	})
	return &StoreMetrics{
		SweeperExpired: reg.NewCounter("market_sweeper_expired_total", "Offers expired by the background deadline sweeper."),
	}
}

// shardSamples renders one per-shard metric family from the store's
// contention counters. The shard label set is fixed at store construction,
// so cardinality is bounded by the -shards flag.
func shardSamples(store *Store, value func(ShardContention) float64) []obs.Sample {
	cont := store.Contention()
	samples := make([]obs.Sample, len(cont))
	for i, c := range cont {
		samples[i] = obs.Sample{
			Labels: []obs.Label{{Name: "shard", Value: strconv.Itoa(c.Shard)}},
			Value:  value(c),
		}
	}
	return samples
}
