package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/obs"
	"repro/internal/wal"
)

// eventKind names one journaled store transition.
type eventKind string

const (
	// evSubmit records offers entering the store (Submit and the accepted
	// subset of SubmitBatch).
	evSubmit eventKind = "submit"
	// evDecide records a single-offer state change: accept, reject, or a
	// deadline expiry observed during accept/assign.
	evDecide eventKind = "decide"
	// evAssign records a successful assignment; replay re-derives the
	// Assignment from the stored start and energies.
	evAssign eventKind = "assign"
	// evExpire records one ExpireOverdue sweep with every expired ID.
	evExpire eventKind = "expire"
)

// event is one journaled transition. It records the applied outcome —
// including the clock value the store used — not the request, so replay
// reconstructs state without re-evaluating deadlines against a new clock.
type event struct {
	Kind eventKind `json:"kind"`
	At   time.Time `json:"at"`
	// Offers carries the submitted offers of an evSubmit.
	Offers flexoffer.Set `json:"offers,omitempty"`
	// ID addresses the offer of an evDecide or evAssign.
	ID string `json:"id,omitempty"`
	// To is the target state of an evDecide.
	To State `json:"to,omitempty"`
	// Start and Energies reproduce an evAssign's assignment.
	Start    time.Time `json:"start,omitempty"`
	Energies []float64 `json:"energies,omitempty"`
	// IDs lists the offers expired by an evExpire sweep.
	IDs []string `json:"ids,omitempty"`
}

// applyEvent replays one journaled event onto the store, bypassing clock
// and deadline checks: the event records an outcome that was already
// acknowledged, so replay must reproduce it verbatim. Errors mean the
// journal does not match the state it claims to extend — corruption, not
// a lifecycle violation.
func (s *Store) applyEvent(ev event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case evSubmit:
		for _, f := range ev.Offers {
			if f == nil || f.ID == "" {
				return errors.New("submit event with empty offer")
			}
			if _, dup := s.records[f.ID]; dup {
				return fmt.Errorf("submit event duplicates offer %s", f.ID)
			}
			s.records[f.ID] = &Record{Offer: f, State: Offered, SubmittedAt: ev.At}
			s.order = append(s.order, f.ID)
		}
	case evDecide:
		r, ok := s.records[ev.ID]
		if !ok {
			return fmt.Errorf("decide event for unknown offer %s", ev.ID)
		}
		r.State = ev.To
		r.DecidedAt = ev.At
	case evAssign:
		r, ok := s.records[ev.ID]
		if !ok {
			return fmt.Errorf("assign event for unknown offer %s", ev.ID)
		}
		asg, err := r.Offer.Assign(ev.Start, ev.Energies)
		if err != nil {
			return fmt.Errorf("assign event for %s does not replay: %v", ev.ID, err)
		}
		r.State = Assigned
		r.DecidedAt = ev.At
		r.Assignment = asg
	case evExpire:
		for _, id := range ev.IDs {
			r, ok := s.records[id]
			if !ok {
				return fmt.Errorf("expire event for unknown offer %s", id)
			}
			r.State = Expired
			r.DecidedAt = ev.At
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

// storeSnapshot is the JSON shape of a full store image. encoding/json
// emits map keys sorted, so marshalling the same logical state always
// yields the same bytes — the property the byte-identical recovery tests
// pin.
type storeSnapshot struct {
	Order   []string           `json:"order"`
	Records map[string]*Record `json:"records"`
}

// marshalState serialises the full store state.
func (s *Store) marshalState() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.Marshal(storeSnapshot{Order: s.order, Records: s.records})
}

// restoreState replaces the store's contents with a marshalState image.
func (s *Store) restoreState(data []byte) error {
	var snap storeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if snap.Records == nil {
		snap.Records = make(map[string]*Record)
	}
	if len(snap.Order) != len(snap.Records) {
		return fmt.Errorf("snapshot lists %d ordered ids for %d records", len(snap.Order), len(snap.Records))
	}
	for _, id := range snap.Order {
		r, ok := snap.Records[id]
		if !ok || r.Offer == nil {
			return fmt.Errorf("snapshot order references missing or empty record %s", id)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = snap.Records
	s.order = snap.Order
	return nil
}

// JournalOptions configures OpenJournaled.
type JournalOptions struct {
	// Dir is the journal directory (the daemon's -data-dir).
	Dir string
	// Policy selects when appends are fsynced; the zero value is
	// wal.SyncAlways.
	Policy wal.SyncPolicy
	// SyncInterval is the background fsync cadence under wal.SyncEvery.
	SyncInterval time.Duration
	// SnapshotEvery triggers an automatic snapshot after that many
	// journaled events; zero disables automatic snapshots (Close still
	// takes a final one).
	SnapshotEvery int
	// SegmentBytes overrides the WAL segment-rotation threshold.
	SegmentBytes int64
	// FS overrides the filesystem (tests and fault injection).
	FS wal.FS
	// Clock is the store clock, as in NewStore.
	Clock func() time.Time
}

// RecoveryStats describes what OpenJournaled found on disk and how the
// state was rebuilt.
type RecoveryStats struct {
	// WAL is the log-level recovery outcome (segments, torn tail).
	WAL wal.RecoveryInfo
	// SnapshotUsed reports whether a snapshot seeded the state.
	SnapshotUsed bool
	// SnapshotLSN is the LSN the used snapshot covered up to.
	SnapshotLSN uint64
	// EventsReplayed is the number of journal events applied after the
	// snapshot.
	EventsReplayed uint64
	// Offers is the number of offers in the recovered store.
	Offers int
	// Duration is the wall-clock time recovery took.
	Duration time.Duration
}

// Journal is the durability attachment of a Store: it owns the write-ahead
// log, appends one event per acknowledged transition, and snapshots the
// full state periodically and on Close.
type Journal struct {
	log   *wal.Log
	store *Store
	every uint64 // events between automatic snapshots; 0 = never

	mu        sync.Mutex
	sinceSnap uint64 // guarded by mu: events since the last snapshot trigger
	closed    bool   // guarded by mu
	snapErrs  uint64 // guarded by mu: failed snapshot attempts
	lastErr   error  // guarded by mu: last snapshot failure

	recovery RecoveryStats // immutable after OpenJournaled
	snapc    chan struct{} // nil unless automatic snapshots are on
	donec    chan struct{}
}

// OpenJournaled opens (or creates) a journaled store: it recovers the
// state persisted in opts.Dir — newest valid snapshot plus WAL tail — and
// returns the store with the journal attached, so every subsequent
// transition is durable before it is acknowledged. A torn final WAL
// record is repaired silently (RecoveryStats.WAL says so); interior
// corruption fails with wal.ErrCorrupt rather than dropping acknowledged
// transitions.
func OpenJournaled(opts JournalOptions) (*Store, *Journal, error) {
	t0 := time.Now()
	log, walInfo, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		SegmentBytes: opts.SegmentBytes,
		Policy:       opts.Policy,
		Interval:     opts.SyncInterval,
		FS:           opts.FS,
	})
	if err != nil {
		return nil, nil, err
	}
	store := NewStore(opts.Clock)
	j := &Journal{log: log, store: store, every: uint64(max(opts.SnapshotEvery, 0))}

	rec := RecoveryStats{WAL: walInfo}
	from := uint64(0)
	payload, snapLSN, err := log.LatestSnapshot()
	switch {
	case err == nil:
		if err := store.restoreState(payload); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("market: restore snapshot at lsn %d: %w", snapLSN, err)
		}
		from = snapLSN
		rec.SnapshotUsed = true
		rec.SnapshotLSN = snapLSN
	case errors.Is(err, wal.ErrNoSnapshot):
		// Fresh directory or never snapshotted: replay from the start.
	default:
		log.Close()
		return nil, nil, fmt.Errorf("market: load snapshot: %w", err)
	}
	if err := log.ReplayFrom(from, func(lsn uint64, payload []byte) error {
		var ev event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("event at lsn %d: %v", lsn, err)
		}
		if err := store.applyEvent(ev); err != nil {
			return fmt.Errorf("event at lsn %d: %v", lsn, err)
		}
		rec.EventsReplayed++
		return nil
	}); err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("market: replay journal: %w", err)
	}
	rec.Offers = len(store.List())
	rec.Duration = time.Since(t0)
	j.recovery = rec

	store.journal = j.append
	if j.every > 0 {
		j.snapc = make(chan struct{}, 1)
		j.donec = make(chan struct{})
		go j.snapshotLoop()
	}
	return store, j, nil
}

// append journals one event. It runs with the store's write lock held, so
// WAL append order is exactly store mutation order.
func (j *Journal) append(ev event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("encode event: %v", err)
	}
	if _, err := j.log.Append(payload); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sinceSnap++
	if j.snapc != nil && !j.closed && j.sinceSnap >= j.every {
		// Non-blocking: if a snapshot is already pending, this event is
		// covered by it anyway.
		select {
		case j.snapc <- struct{}{}:
			j.sinceSnap = 0
		default:
		}
	}
	return nil
}

// snapshotLoop services automatic snapshot requests in the background, so
// snapshot writes never sit on the request path.
func (j *Journal) snapshotLoop() {
	defer close(j.donec)
	for range j.snapc {
		j.Snapshot()
	}
}

// Snapshot captures the current store state into a durable snapshot and
// compacts WAL segments the snapshot made redundant. Failures are
// recorded in Stats and returned; the journal keeps appending either way.
func (j *Journal) Snapshot() error {
	s := j.store
	// Holding the store's read lock while reading NextLSN pins the pair:
	// appends mutate both under the write lock, so the image is exactly
	// the state produced by every record below lsn.
	s.mu.RLock()
	lsn := j.log.NextLSN()
	payload, err := json.Marshal(storeSnapshot{Order: s.order, Records: s.records})
	s.mu.RUnlock()
	if err == nil {
		err = j.log.WriteSnapshot(lsn, payload)
	}
	if err == nil {
		_, err = j.log.Compact(lsn)
	}
	if err != nil {
		j.mu.Lock()
		j.snapErrs++
		j.lastErr = err
		j.mu.Unlock()
		return fmt.Errorf("market: snapshot: %w", err)
	}
	return nil
}

// JournalStats is a point-in-time view of the journal's counters, the
// source of the wal_* and snapshot_* metric families.
type JournalStats struct {
	// WAL carries the log-level counters (appends, fsyncs, bytes,
	// segments, snapshots).
	WAL wal.Stats
	// SnapshotErrors counts failed snapshot attempts.
	SnapshotErrors uint64
	// LastSnapshotError is the most recent snapshot failure, nil when all
	// succeeded.
	LastSnapshotError error
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	st := JournalStats{WAL: j.log.Stats()}
	j.mu.Lock()
	st.SnapshotErrors = j.snapErrs
	st.LastSnapshotError = j.lastErr
	j.mu.Unlock()
	return st
}

// Recovery reports how the store's state was rebuilt at open.
func (j *Journal) Recovery() RecoveryStats { return j.recovery }

// Close takes a final snapshot and closes the log. It is idempotent; the
// store refuses further transitions once the log is closed (ErrJournal).
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if j.snapc != nil {
		close(j.snapc)
	}
	j.mu.Unlock()
	if j.donec != nil {
		<-j.donec
	}
	err := j.Snapshot()
	if cerr := j.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// RegisterJournalMetrics exports the journal's durability counters on reg:
//
//	wal_appends_total         counter: journaled events appended
//	wal_fsyncs_total          counter: fsync calls issued by the log
//	wal_bytes_total           counter: record bytes written
//	wal_segments              gauge: live WAL segment files
//	snapshot_writes_total     counter: snapshots taken since open
//	snapshot_errors_total     counter: snapshot attempts that failed
//	snapshot_last_lsn         gauge: LSN covered by the newest snapshot
//	recovery_duration_seconds gauge: wall-clock time boot recovery took
//	recovery_events_replayed  gauge: WAL events replayed at boot
func RegisterJournalMetrics(reg *obs.Registry, j *Journal) {
	reg.NewCounterFunc("wal_appends_total", "Journaled events appended to the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Appends
	})
	reg.NewCounterFunc("wal_fsyncs_total", "Fsync calls issued by the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Fsyncs
	})
	reg.NewCounterFunc("wal_bytes_total", "Record bytes written to the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Bytes
	})
	reg.NewGaugeFunc("wal_segments", "Live write-ahead log segment files.", func() float64 {
		return float64(j.Stats().WAL.Segments)
	})
	reg.NewCounterFunc("snapshot_writes_total", "Store snapshots written since open.", func() uint64 {
		return j.Stats().WAL.Snapshots
	})
	reg.NewCounterFunc("snapshot_errors_total", "Store snapshot attempts that failed.", func() uint64 {
		return j.Stats().SnapshotErrors
	})
	reg.NewGaugeFunc("snapshot_last_lsn", "LSN covered by the newest snapshot.", func() float64 {
		return float64(j.Stats().WAL.SnapshotLSN)
	})
	reg.NewGaugeFunc("recovery_duration_seconds", "Wall-clock time the boot recovery took.", func() float64 {
		return j.recovery.Duration.Seconds()
	})
	reg.NewGaugeFunc("recovery_events_replayed", "Write-ahead log events replayed at boot.", func() float64 {
		return float64(j.recovery.EventsReplayed)
	})
}
