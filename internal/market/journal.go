package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/obs"
	"repro/internal/wal"
)

// eventKind names one journaled store transition.
type eventKind string

const (
	// evSubmit records offers entering the store (Submit and the accepted
	// subset of SubmitBatch).
	evSubmit eventKind = "submit"
	// evDecide records a single-offer state change: accept, reject, or a
	// deadline expiry observed during accept/assign.
	evDecide eventKind = "decide"
	// evAssign records a successful assignment; replay re-derives the
	// Assignment from the stored start and energies.
	evAssign eventKind = "assign"
	// evExpire records one ExpireOverdue sweep with every expired ID.
	evExpire eventKind = "expire"
)

// event is one journaled transition. It records the applied outcome —
// including the clock value the store used — not the request, so replay
// reconstructs state without re-evaluating deadlines against a new clock.
// Every offer an event touches routes to the same shard, and the event is
// journaled in that shard's WAL stream (evExpire sweeps journal one event
// per touched shard).
type event struct {
	Kind eventKind `json:"kind"`
	At   time.Time `json:"at"`
	// Offers carries the submitted offers of an evSubmit.
	Offers flexoffer.Set `json:"offers,omitempty"`
	// ID addresses the offer of an evDecide or evAssign.
	ID string `json:"id,omitempty"`
	// To is the target state of an evDecide.
	To State `json:"to,omitempty"`
	// Start and Energies reproduce an evAssign's assignment.
	Start    time.Time `json:"start,omitempty"`
	Energies []float64 `json:"energies,omitempty"`
	// IDs lists the offers expired by an evExpire sweep.
	IDs []string `json:"ids,omitempty"`
}

// applyEvent replays one journaled event onto the store, bypassing clock
// and deadline checks: the event records an outcome that was already
// acknowledged, so replay must reproduce it verbatim. Errors mean the
// journal does not match the state it claims to extend — corruption, not
// a lifecycle violation.
//
//flexvet:replay events read back from the journal were appended before they were applied
func (s *Store) applyEvent(ev event) error {
	switch ev.Kind {
	case evSubmit:
		for _, f := range ev.Offers {
			if f == nil || f.ID == "" {
				return errors.New("submit event with empty offer")
			}
			sh := s.shardFor(f.ID)
			sh.mu.Lock()
			if _, dup := sh.records[f.ID]; dup {
				sh.mu.Unlock()
				return fmt.Errorf("submit event duplicates offer %s", f.ID)
			}
			sh.insertLocked(&Record{Offer: f, State: Offered, SubmittedAt: ev.At})
			sh.mu.Unlock()
		}
	case evDecide:
		sh := s.shardFor(ev.ID)
		sh.mu.Lock()
		r, ok := sh.records[ev.ID]
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("decide event for unknown offer %s", ev.ID)
		}
		sh.transitionLocked(r, ev.To, ev.At)
		sh.mu.Unlock()
	case evAssign:
		sh := s.shardFor(ev.ID)
		sh.mu.Lock()
		r, ok := sh.records[ev.ID]
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("assign event for unknown offer %s", ev.ID)
		}
		asg, err := r.Offer.Assign(ev.Start, ev.Energies)
		if err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("assign event for %s does not replay: %v", ev.ID, err)
		}
		r.Assignment = asg
		sh.transitionLocked(r, Assigned, ev.At)
		sh.mu.Unlock()
	case evExpire:
		for _, id := range ev.IDs {
			sh := s.shardFor(id)
			sh.mu.Lock()
			r, ok := sh.records[id]
			if !ok {
				sh.mu.Unlock()
				return fmt.Errorf("expire event for unknown offer %s", id)
			}
			sh.transitionLocked(r, Expired, ev.At)
			sh.mu.Unlock()
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

// shardOfEvent reports which shard every offer the event touches routes
// to, and errors when the event spans shards — an event read from shard
// k's WAL stream must only touch shard k, or the stream was corrupted
// (or written under a different shard count).
func (s *Store) shardOfEvent(ev event) (int, error) {
	ids := make([]string, 0, 1+len(ev.Offers)+len(ev.IDs))
	if ev.ID != "" {
		ids = append(ids, ev.ID)
	}
	for _, f := range ev.Offers {
		if f != nil && f.ID != "" {
			ids = append(ids, f.ID)
		}
	}
	ids = append(ids, ev.IDs...)
	if len(ids) == 0 {
		return -1, nil
	}
	k := s.ShardIndex(ids[0])
	for _, id := range ids[1:] {
		if s.ShardIndex(id) != k {
			return -1, fmt.Errorf("event spans shards (%s routes to %d, %s to %d)", ids[0], k, id, s.ShardIndex(id))
		}
	}
	return k, nil
}

// storeSnapshot is the JSON shape of a full store (or single shard) image.
// encoding/json emits map keys sorted, so marshalling the same logical
// state always yields the same bytes — the property the byte-identical
// recovery tests pin.
type storeSnapshot struct {
	Order   []string           `json:"order"`
	Records map[string]*Record `json:"records"`
}

// validate checks the image's internal consistency.
func (snap *storeSnapshot) validate() error {
	if snap.Records == nil {
		snap.Records = make(map[string]*Record)
	}
	if len(snap.Order) != len(snap.Records) {
		return fmt.Errorf("snapshot lists %d ordered ids for %d records", len(snap.Order), len(snap.Records))
	}
	for _, id := range snap.Order {
		r, ok := snap.Records[id]
		if !ok || r.Offer == nil {
			return fmt.Errorf("snapshot order references missing or empty record %s", id)
		}
	}
	return nil
}

// marshalState serialises the full store state: every shard's records,
// with the order merged shard-major — the same order List reports.
func (s *Store) marshalState() ([]byte, error) {
	snap := storeSnapshot{Records: make(map[string]*Record)}
	for _, sh := range s.shards {
		sh.mu.RLock()
		snap.Order = append(snap.Order, sh.order...)
		for id, r := range sh.records {
			snap.Records[id] = r
		}
		sh.mu.RUnlock()
	}
	return json.Marshal(snap)
}

// restoreState replaces the store's contents with a marshalState image,
// splitting the records across the shards by ID hash.
func (s *Store) restoreState(data []byte) error {
	var snap storeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if err := snap.validate(); err != nil {
		return err
	}
	order := make([][]string, len(s.shards))
	for _, id := range snap.Order {
		k := s.ShardIndex(id)
		order[k] = append(order[k], id)
	}
	for k, sh := range s.shards {
		sh.mu.Lock()
		sh.order = order[k]
		sh.records = make(map[string]*Record, len(order[k]))
		for _, id := range order[k] {
			sh.records[id] = snap.Records[id]
		}
		sh.rebuildIndexesLocked()
		sh.mu.Unlock()
	}
	return nil
}

// restoreShard replaces one shard's contents with a per-shard snapshot
// image. Every record must route to shard k — a violation means the
// snapshot was written under a different shard count.
func (s *Store) restoreShard(k int, data []byte) error {
	var snap storeSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	if err := snap.validate(); err != nil {
		return err
	}
	for _, id := range snap.Order {
		if got := s.ShardIndex(id); got != k {
			return fmt.Errorf("snapshot record %s routes to shard %d, not %d (shard count changed?)", id, got, k)
		}
	}
	sh := s.shards[k]
	sh.mu.Lock()
	sh.records = snap.Records
	sh.order = snap.Order
	sh.rebuildIndexesLocked()
	sh.mu.Unlock()
	return nil
}

// JournalOptions configures OpenJournaled.
type JournalOptions struct {
	// Dir is the journal directory (the daemon's -data-dir). Each shard
	// journals into its own shard-NNN subdirectory.
	Dir string
	// Shards is the store partition count. Zero adopts whatever an
	// existing directory holds (defaulting to 1 on a fresh directory);
	// a non-zero value that disagrees with an existing directory is an
	// error — shard counts are fixed at directory creation because the
	// ID-hash routing bakes the count into every stream.
	Shards int
	// Policy selects when appends are fsynced; the zero value is
	// wal.SyncAlways.
	Policy wal.SyncPolicy
	// SyncInterval is the background fsync cadence under wal.SyncEvery.
	SyncInterval time.Duration
	// SnapshotEvery triggers an automatic per-shard snapshot after that
	// many events journaled into that shard; zero disables automatic
	// snapshots (Close still takes final ones).
	SnapshotEvery int
	// SegmentBytes overrides the WAL segment-rotation threshold.
	SegmentBytes int64
	// FS overrides the filesystem (tests and fault injection).
	FS wal.FS
	// Clock is the store clock, as in NewStore.
	Clock func() time.Time
}

// ShardRecovery describes how one shard's state was rebuilt at open.
type ShardRecovery struct {
	// Shard is the shard index.
	Shard int
	// WAL is the shard stream's log-level recovery outcome.
	WAL wal.RecoveryInfo
	// SnapshotUsed reports whether a snapshot seeded the shard.
	SnapshotUsed bool
	// SnapshotLSN is the LSN the used snapshot covered up to.
	SnapshotLSN uint64
	// EventsReplayed is the number of events applied after the snapshot.
	EventsReplayed uint64
	// Offers is the number of offers recovered into the shard.
	Offers int
}

// RecoveryStats describes what OpenJournaled found on disk and how the
// state was rebuilt. The top-level fields aggregate across shards (on a
// single-shard store they are exactly that shard's outcome); Shards holds
// the per-shard detail.
type RecoveryStats struct {
	// WAL aggregates the log-level recovery outcome: segments, records
	// and torn bytes are summed, TornTail reports whether any shard's
	// stream had one, NextLSN is the largest across shards.
	WAL wal.RecoveryInfo
	// SnapshotUsed reports whether any shard was seeded from a snapshot.
	SnapshotUsed bool
	// SnapshotLSN is the smallest LSN covered by a used snapshot (the
	// replay floor across shards).
	SnapshotLSN uint64
	// EventsReplayed is the number of journal events applied after the
	// snapshots, summed across shards.
	EventsReplayed uint64
	// Offers is the number of offers in the recovered store.
	Offers int
	// Duration is the wall-clock time recovery took.
	Duration time.Duration
	// Shards is the per-shard recovery detail, in shard order.
	Shards []ShardRecovery
}

// journalShard is one shard's durability stream: its own WAL segment
// files and snapshots under the shard's subdirectory.
type journalShard struct {
	log       *wal.Log
	sinceSnap uint64 // events since the last snapshot trigger; guarded by Journal.mu
}

// Journal is the durability attachment of a Store: one WAL stream per
// shard, appending one event per acknowledged transition and snapshotting
// each shard periodically and on Close.
type Journal struct {
	shards []*journalShard // immutable after OpenJournaled
	store  *Store
	every  uint64 // events between automatic snapshots per shard; 0 = never

	mu       sync.Mutex
	closed   bool   // guarded by mu
	snapErrs uint64 // guarded by mu: failed snapshot attempts
	lastErr  error  // guarded by mu: last snapshot failure

	recovery RecoveryStats // immutable after OpenJournaled
	snapc    chan int      // nil unless automatic snapshots are on
	donec    chan struct{}
}

// shardDirName renders shard k's subdirectory name.
func shardDirName(k int) string { return fmt.Sprintf("shard-%03d", k) }

// parseShardDirName extracts the shard index from a subdirectory name.
func parseShardDirName(name string) (int, bool) {
	var k int
	if _, err := fmt.Sscanf(name, "shard-%03d", &k); err != nil || shardDirName(k) != name {
		return 0, false
	}
	return k, true
}

// findShardCount inspects dir and reports how many shard subdirectories
// it holds (the largest index + 1, so a crash mid-creation cannot shrink
// the count as long as directories are created in descending order). A
// directory holding flat WAL files — the pre-sharding layout — is
// rejected explicitly rather than silently shadowed by empty shard
// subdirectories.
func findShardCount(wfs wal.FS, dir string) (int, error) {
	entries, err := wfs.ReadDir(dir)
	if err != nil {
		// A missing directory is a fresh start; wal.Open creates it.
		return 0, nil
	}
	count := 0
	for _, e := range entries {
		if k, ok := parseShardDirName(e.Name()); ok && e.IsDir() {
			if k+1 > count {
				count = k + 1
			}
			continue
		}
		if !e.IsDir() && (matchesWALFile(e.Name()) || matchesSnapshotFile(e.Name())) {
			return 0, fmt.Errorf("market: %s holds a pre-sharding flat journal layout; migrate it into %s before opening", dir, filepath.Join(dir, shardDirName(0)))
		}
	}
	return count, nil
}

func matchesWALFile(name string) bool {
	ok, _ := filepath.Match("wal-*.log", name)
	return ok
}

func matchesSnapshotFile(name string) bool {
	ok, _ := filepath.Match("snap-*.snap", name)
	return ok
}

// OpenJournaled opens (or creates) a journaled store: it recovers the
// state persisted in opts.Dir — each shard's newest valid snapshot plus
// its WAL tail — and returns the store with the journal attached, so
// every subsequent transition is durable before it is acknowledged.
// Shard streams are opened and their snapshots restored sequentially;
// the WAL tails then replay concurrently (replay is pure reads and the
// shards are disjoint). A torn final record in any stream is repaired
// silently (RecoveryStats says so); interior corruption fails with
// wal.ErrCorrupt rather than dropping acknowledged transitions.
func OpenJournaled(opts JournalOptions) (*Store, *Journal, error) {
	t0 := time.Now()
	wfs := opts.FS
	if wfs == nil {
		wfs = wal.DiskFS
	}
	found, err := findShardCount(wfs, opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	n := opts.Shards
	switch {
	case found > 0 && n == 0:
		n = found
	case found > 0 && n != found:
		return nil, nil, fmt.Errorf("market: %s holds %d shard(s) but %d were requested; shard counts are fixed at directory creation", opts.Dir, found, n)
	case n == 0:
		n = 1
	case n < 0:
		return nil, nil, fmt.Errorf("market: shard count %d out of range", n)
	}
	// Create the shard directories highest-index first: if a crash
	// interrupts creation, the surviving directories still imply the full
	// count (findShardCount takes the largest index), so a reopen never
	// adopts a smaller shard count and mis-routes offers.
	for k := n - 1; k >= 0; k-- {
		if err := wfs.MkdirAll(filepath.Join(opts.Dir, shardDirName(k)), fs.FileMode(0o755)); err != nil {
			return nil, nil, fmt.Errorf("market: create shard directory: %w", err)
		}
	}

	store := NewShardedStore(n, opts.Clock)
	j := &Journal{store: store, every: uint64(max(opts.SnapshotEvery, 0))}
	rec := RecoveryStats{Shards: make([]ShardRecovery, n)}
	closeAll := func() {
		for _, js := range j.shards {
			js.log.Close()
		}
	}

	// Phase 1 — sequential: open each shard's stream (torn-tail repair
	// writes happen here, in deterministic shard order, which keeps
	// fault-injection draws reproducible) and restore its snapshot.
	replayFrom := make([]uint64, n)
	for k := 0; k < n; k++ {
		log, walInfo, err := wal.Open(wal.Options{
			Dir:          filepath.Join(opts.Dir, shardDirName(k)),
			SegmentBytes: opts.SegmentBytes,
			Policy:       opts.Policy,
			Interval:     opts.SyncInterval,
			FS:           opts.FS,
		})
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("market: open shard %d: %w", k, err)
		}
		j.shards = append(j.shards, &journalShard{log: log})
		sr := &rec.Shards[k]
		sr.Shard = k
		sr.WAL = walInfo
		payload, snapLSN, err := log.LatestSnapshot()
		switch {
		case err == nil:
			if err := store.restoreShard(k, payload); err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("market: restore shard %d snapshot at lsn %d: %w", k, snapLSN, err)
			}
			replayFrom[k] = snapLSN
			sr.SnapshotUsed = true
			sr.SnapshotLSN = snapLSN
		case errors.Is(err, wal.ErrNoSnapshot):
			// Fresh shard or never snapshotted: replay from the start.
		default:
			closeAll()
			return nil, nil, fmt.Errorf("market: load shard %d snapshot: %w", k, err)
		}
	}

	// Phase 2 — concurrent: replay each shard's WAL tail. Replay only
	// reads the stream and mutates its own shard, so the shards are
	// independent.
	var wg sync.WaitGroup
	replayErrs := make([]error, n)
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sr := &rec.Shards[k]
			replayErrs[k] = j.shards[k].log.ReplayFrom(replayFrom[k], func(lsn uint64, payload []byte) error {
				var ev event
				if err := json.Unmarshal(payload, &ev); err != nil {
					return fmt.Errorf("event at lsn %d: %v", lsn, err)
				}
				if at, err := store.shardOfEvent(ev); err != nil {
					return fmt.Errorf("event at lsn %d: %v", lsn, err)
				} else if at >= 0 && at != k {
					return fmt.Errorf("event at lsn %d routes to shard %d, found in shard %d's stream (shard count changed?)", lsn, at, k)
				}
				if err := store.applyEvent(ev); err != nil {
					return fmt.Errorf("event at lsn %d: %v", lsn, err)
				}
				sr.EventsReplayed++
				return nil
			})
		}(k)
	}
	wg.Wait()
	for k, err := range replayErrs {
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("market: replay shard %d journal: %w", k, err)
		}
	}

	// Aggregate the per-shard outcomes into the top-level view.
	for k := range rec.Shards {
		sr := &rec.Shards[k]
		sh := store.shards[k]
		sh.mu.RLock()
		sr.Offers = len(sh.order)
		sh.mu.RUnlock()
		rec.Offers += sr.Offers
		rec.EventsReplayed += sr.EventsReplayed
		rec.WAL.Segments += sr.WAL.Segments
		rec.WAL.Records += sr.WAL.Records
		rec.WAL.TornBytes += sr.WAL.TornBytes
		rec.WAL.TornTail = rec.WAL.TornTail || sr.WAL.TornTail
		if sr.WAL.NextLSN > rec.WAL.NextLSN {
			rec.WAL.NextLSN = sr.WAL.NextLSN
		}
		if sr.SnapshotUsed {
			if !rec.SnapshotUsed || sr.SnapshotLSN < rec.SnapshotLSN {
				rec.SnapshotLSN = sr.SnapshotLSN
			}
			rec.SnapshotUsed = true
		}
	}
	rec.Duration = time.Since(t0)
	j.recovery = rec

	for k := range store.shards {
		k := k
		store.shards[k].journal = func(ev event) error { return j.appendShard(k, ev) }
	}
	if j.every > 0 {
		j.snapc = make(chan int, n)
		j.donec = make(chan struct{})
		go j.snapshotLoop()
	}
	return store, j, nil
}

// appendShard journals one event into shard k's stream. It runs with that
// shard's write lock held, so each stream's append order is exactly its
// shard's mutation order.
func (j *Journal) appendShard(k int, ev event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("encode event: %v", err)
	}
	js := j.shards[k]
	if _, err := js.log.Append(payload); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	js.sinceSnap++
	if j.snapc != nil && !j.closed && js.sinceSnap >= j.every {
		// Non-blocking: if this shard's snapshot is already pending, the
		// event is covered by it anyway.
		select {
		case j.snapc <- k:
			js.sinceSnap = 0
		default:
		}
	}
	return nil
}

// snapshotLoop services automatic snapshot requests in the background, so
// snapshot writes never sit on the request path.
func (j *Journal) snapshotLoop() {
	defer close(j.donec)
	for k := range j.snapc {
		j.snapshotShard(k)
	}
}

// snapshotShard captures shard k's state into a durable snapshot in its
// stream and compacts the stream's segments the snapshot made redundant.
func (j *Journal) snapshotShard(k int) error {
	sh := j.store.shards[k]
	js := j.shards[k]
	// Holding the shard's read lock while reading NextLSN pins the pair:
	// appends mutate both under the write lock, so the image is exactly
	// the state produced by every record below lsn.
	sh.mu.RLock()
	lsn := js.log.NextLSN()
	payload, err := json.Marshal(storeSnapshot{Order: sh.order, Records: sh.records})
	sh.mu.RUnlock()
	if err == nil {
		err = js.log.WriteSnapshot(lsn, payload)
	}
	if err == nil {
		_, err = js.log.Compact(lsn)
	}
	if err != nil {
		j.mu.Lock()
		j.snapErrs++
		j.lastErr = err
		j.mu.Unlock()
		return fmt.Errorf("market: snapshot shard %d: %w", k, err)
	}
	return nil
}

// Snapshot captures every shard's current state into durable snapshots
// and compacts the WAL segments they made redundant. Failures are
// recorded in Stats and the first is returned; the journal keeps
// appending either way.
func (j *Journal) Snapshot() error {
	var first error
	for k := range j.shards {
		if err := j.snapshotShard(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JournalStats is a point-in-time view of the journal's counters, the
// source of the wal_* and snapshot_* metric families.
type JournalStats struct {
	// WAL aggregates the log-level counters across shard streams:
	// appends, fsyncs, bytes, segments and snapshots are summed, NextLSN
	// is the largest stream position, SnapshotLSN the smallest snapshot
	// floor. On a single-shard store these are exactly the one stream's
	// counters.
	WAL wal.Stats
	// SnapshotErrors counts failed snapshot attempts.
	SnapshotErrors uint64
	// LastSnapshotError is the most recent snapshot failure, nil when all
	// succeeded.
	LastSnapshotError error
}

// Stats snapshots the journal's counters, aggregated across shards.
func (j *Journal) Stats() JournalStats {
	var st JournalStats
	for i, js := range j.shards {
		ws := js.log.Stats()
		st.WAL.Appends += ws.Appends
		st.WAL.Fsyncs += ws.Fsyncs
		st.WAL.Bytes += ws.Bytes
		st.WAL.Segments += ws.Segments
		st.WAL.Snapshots += ws.Snapshots
		if ws.NextLSN > st.WAL.NextLSN {
			st.WAL.NextLSN = ws.NextLSN
		}
		if i == 0 || ws.SnapshotLSN < st.WAL.SnapshotLSN {
			st.WAL.SnapshotLSN = ws.SnapshotLSN
		}
	}
	j.mu.Lock()
	st.SnapshotErrors = j.snapErrs
	st.LastSnapshotError = j.lastErr
	j.mu.Unlock()
	return st
}

// Recovery reports how the store's state was rebuilt at open.
func (j *Journal) Recovery() RecoveryStats { return j.recovery }

// ShardCount reports the number of WAL streams the journal maintains
// (always the store's shard count).
func (j *Journal) ShardCount() int { return len(j.shards) }

// Close takes final per-shard snapshots and closes every stream. It is
// idempotent; the store refuses further transitions once the streams are
// closed (ErrJournal).
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if j.snapc != nil {
		close(j.snapc)
	}
	j.mu.Unlock()
	if j.donec != nil {
		<-j.donec
	}
	err := j.Snapshot()
	for _, js := range j.shards {
		if cerr := js.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RegisterJournalMetrics exports the journal's durability counters on reg:
//
//	wal_appends_total         counter: journaled events appended (all shards)
//	wal_fsyncs_total          counter: fsync calls issued by the logs
//	wal_bytes_total           counter: record bytes written
//	wal_segments              gauge: live WAL segment files across shards
//	snapshot_writes_total     counter: snapshots taken since open
//	snapshot_errors_total     counter: snapshot attempts that failed
//	snapshot_last_lsn         gauge: smallest LSN floor across shard snapshots
//	recovery_duration_seconds gauge: wall-clock time boot recovery took
//	recovery_events_replayed  gauge: WAL events replayed at boot
func RegisterJournalMetrics(reg *obs.Registry, j *Journal) {
	reg.NewCounterFunc("wal_appends_total", "Journaled events appended to the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Appends
	})
	reg.NewCounterFunc("wal_fsyncs_total", "Fsync calls issued by the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Fsyncs
	})
	reg.NewCounterFunc("wal_bytes_total", "Record bytes written to the write-ahead log.", func() uint64 {
		return j.Stats().WAL.Bytes
	})
	reg.NewGaugeFunc("wal_segments", "Live write-ahead log segment files.", func() float64 {
		return float64(j.Stats().WAL.Segments)
	})
	reg.NewCounterFunc("snapshot_writes_total", "Store snapshots written since open.", func() uint64 {
		return j.Stats().WAL.Snapshots
	})
	reg.NewCounterFunc("snapshot_errors_total", "Store snapshot attempts that failed.", func() uint64 {
		return j.Stats().SnapshotErrors
	})
	reg.NewGaugeFunc("snapshot_last_lsn", "LSN covered by the newest snapshot.", func() float64 {
		return float64(j.Stats().WAL.SnapshotLSN)
	})
	reg.NewGaugeFunc("recovery_duration_seconds", "Wall-clock time the boot recovery took.", func() float64 {
		return j.recovery.Duration.Seconds()
	})
	reg.NewGaugeFunc("recovery_events_replayed", "Write-ahead log events replayed at boot.", func() float64 {
		return float64(j.recovery.EventsReplayed)
	})
}
