package market

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubscriptionHighWaterLatchesLag: live events past the high-water
// mark are refused, the lag latch fires exactly once, the queued prefix
// stays readable, and Next reports ok=false once the prefix is drained.
func TestSubscriptionHighWaterLatchesLag(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe(WithHighWater(4))
	defer sub.Close()

	for i := 0; i < 10; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("hw-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := sub.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want the high-water mark 4", got)
	}
	if !sub.Lagged() {
		t.Fatal("subscription did not latch lagged past the high-water mark")
	}
	if sub.Dropped() == 0 {
		t.Fatal("Dropped = 0 after refused deliveries")
	}
	if sub.Closed() {
		t.Fatal("lag latch must not close the subscription")
	}

	// The contiguous prefix stays readable...
	for i := 0; i < 4; i++ {
		ev, ok := sub.Next()
		if !ok {
			t.Fatalf("Next() = !ok at queued event %d", i)
		}
		if ev.Offer.ID != fmt.Sprintf("hw-%d", i) {
			t.Fatalf("event %d = %s, want hw-%d (prefix order)", i, ev.Offer.ID, i)
		}
	}
	// ...and a drained lagged subscription unblocks instead of hanging.
	if _, ok := sub.Next(); ok {
		t.Fatal("Next() = ok on a drained lagged subscription")
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("TryNext() = ok on a drained lagged subscription")
	}
}

// TestSubscriptionHighWaterPublisherDetach: once lagged, every shard
// drops the subscription, so later mutations are not delivered even if
// the consumer drains below the mark.
func TestSubscriptionHighWaterPublisherDetach(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe(WithHighWater(2))
	defer sub.Close()

	for i := 0; i < 3; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("d-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sub.Lagged() {
		t.Fatal("not lagged after overflowing")
	}
	drained := drainPending(sub)
	if len(drained) != 2 {
		t.Fatalf("drained %d events, want 2", len(drained))
	}
	// Draining does not reattach: this event must not arrive.
	if err := s.Submit(testOffer("d-after")); err != nil {
		t.Fatal(err)
	}
	if got := sub.Pending(); got != 0 {
		t.Fatalf("detached subscription received %d events after lag", got)
	}
}

// TestSubscriptionCloseWhileLagged: Close on a lagged subscription is
// safe, wakes blocked readers, and keeps reporting closed.
func TestSubscriptionCloseWhileLagged(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe(WithHighWater(1))
	for i := 0; i < 3; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("c-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !sub.Lagged() {
		t.Fatal("not lagged")
	}
	sub.Close()
	if !sub.Closed() || !sub.Lagged() {
		t.Fatalf("Closed=%v Lagged=%v after Close, want true/true", sub.Closed(), sub.Lagged())
	}
	// Queued events remain readable after Close, then Next unblocks.
	if _, ok := sub.Next(); !ok {
		t.Fatal("queued event unreadable after Close")
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("Next() = ok on drained closed subscription")
	}
}

// TestSubscribeReplayBootstrapExemptFromHighWater: the replay bootstrap
// always arrives whole, even when it exceeds the high-water mark; only
// live events past it count against the bound.
func TestSubscribeReplayBootstrapExemptFromHighWater(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 10; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sub := s.SubscribeReplay(WithHighWater(4))
	defer sub.Close()
	if got := sub.Pending(); got != 10 {
		t.Fatalf("bootstrap delivered %d events, want all 10", got)
	}
	if sub.Lagged() {
		t.Fatal("bootstrap alone must not latch lag")
	}
	// Live events on top of the over-mark bootstrap latch immediately.
	if err := s.Submit(testOffer("b-live")); err != nil {
		t.Fatal(err)
	}
	if !sub.Lagged() {
		t.Fatal("live event past the mark did not latch lag")
	}
	if got := sub.Pending(); got != 10 {
		t.Fatalf("Pending = %d after refused live event, want 10", got)
	}
}

// TestSubscriptionUnboundedUnchanged: without WithHighWater the original
// contract holds — no latch, no drops, everything delivered.
func TestSubscriptionUnboundedUnchanged(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe()
	defer sub.Close()
	for i := 0; i < 100; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("u-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if sub.Lagged() || sub.Dropped() != 0 {
		t.Fatalf("unbounded subscription lagged=%v dropped=%d", sub.Lagged(), sub.Dropped())
	}
	if got := sub.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want 100", got)
	}
}

// TestSubscriptionHighWaterStress races concurrent submitters against one
// fast consumer (drains everything) and one artificially slow consumer
// with a small bound: the slow queue must never exceed its high-water
// mark, the fast consumer must see every event, and the slow consumer
// must end lagged with an intact prefix. Run with -race.
func TestSubscriptionHighWaterStress(t *testing.T) {
	const (
		highWater = 8
		writers   = 4
		perWriter = 200
	)
	s := NewShardedStore(4, (&fakeClock{now: t0}).Now)
	fast := s.Subscribe()
	defer fast.Close()
	slow := s.Subscribe(WithHighWater(highWater))
	defer slow.Close()

	var stop atomic.Bool
	var maxPending atomic.Int64
	var slowSeen atomic.Int64
	var wg sync.WaitGroup

	// The slow consumer: sample Pending, consume with a delay.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if p := int64(slow.Pending()); p > maxPending.Load() {
				maxPending.Store(p)
			}
			if _, ok := slow.TryNext(); ok {
				slowSeen.Add(1)
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	// The fast consumer keeps its queue near-empty.
	var fastSeen atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			ev, ok := fast.Next()
			if !ok {
				return
			}
			_ = ev
			fastSeen.Add(1)
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Submit(testOffer(fmt.Sprintf("st-%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	writersWG.Wait()

	// Fast consumer must observe every submitted event.
	deadline := time.Now().Add(5 * time.Second)
	for fastSeen.Load() < writers*perWriter && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fast.Close()
	stop.Store(true)
	wg.Wait()

	if got := fastSeen.Load(); got != writers*perWriter {
		t.Errorf("fast consumer saw %d events, want %d", got, writers*perWriter)
	}
	if got := maxPending.Load(); got > highWater {
		t.Errorf("slow queue reached %d, must never exceed high-water %d", got, highWater)
	}
	if !slow.Lagged() {
		t.Error("slow consumer never lagged under 4x sustained overload")
	}
	if seen := slowSeen.Load() + int64(slow.Pending()); seen > writers*perWriter {
		t.Errorf("slow consumer accounted %d events, more than were published", seen)
	}
}
