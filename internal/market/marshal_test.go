package market

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/flexoffer"
)

// wireAssignment mirrors the trimmed assignment inside a record's wire
// form with default struct encoding.
type wireAssignment struct {
	Start    time.Time `json:"start"`
	Energies []float64 `json:"energies_kwh"`
}

// recordWire mirrors Record's wire form with the default encoding, so the
// test can pin the hand-built Record.MarshalJSON against what
// encoding/json would produce on the same shape.
type recordWire struct {
	Offer       *flexoffer.FlexOffer `json:"offer"`
	State       State                `json:"state"`
	SubmittedAt time.Time            `json:"submitted_at"`
	DecidedAt   time.Time            `json:"decided_at"`
	Assignment  *wireAssignment      `json:"assignment,omitempty"`
}

func wireOf(rec Record) recordWire {
	w := recordWire{Offer: rec.Offer, State: rec.State, SubmittedAt: rec.SubmittedAt, DecidedAt: rec.DecidedAt}
	if rec.Assignment != nil {
		w.Assignment = &wireAssignment{Start: rec.Assignment.Start, Energies: rec.Assignment.Energies}
	}
	return w
}

// TestRecordMarshalMatchesDefaultEncoding pins the hand-built
// Record.MarshalJSON byte-for-byte against the default struct encoding of
// the wire shape, with and without the cached offer bytes, across
// lifecycle states. The journal's snapshot byte-identity property depends
// on this staying exact.
func TestRecordMarshalMatchesDefaultEncoding(t *testing.T) {
	clock := func() time.Time { return t0 }
	s := NewShardedStore(3, clock)

	f := testOffer("marshal-1")
	if err := s.Submit(f); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := s.Accept(f.ID); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if _, err := s.Assign(f.ID, f.EarliestStart, []float64{1, 1, 1, 1}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	g := testOffer("marshal-2")
	if err := s.Submit(g); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	for _, id := range []string{"marshal-1", "marshal-2"} {
		rec, ok := s.Get(id)
		if !ok {
			t.Fatalf("Get(%s): not found", id)
		}
		got, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal record %s: %v", id, err)
		}
		want, err := json.Marshal(wireOf(rec))
		if err != nil {
			t.Fatalf("marshal wire %s: %v", id, err)
		}
		if string(got) != string(want) {
			t.Errorf("record %s: hand-built marshal diverges from default encoding\n got: %s\nwant: %s", id, got, want)
		}

		// Without the insert-time cache the marshal must produce the same
		// bytes from scratch.
		rec.offerRaw = nil
		fresh, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal uncached %s: %v", id, err)
		}
		if string(fresh) != string(want) {
			t.Errorf("record %s: uncached marshal diverges\n got: %s\nwant: %s", id, fresh, want)
		}

		// The round trip must lose nothing: the decoded record carries the
		// full offer, the assignment reattaches that same offer, and a
		// re-encode is byte-identical (the snapshot-restore cycle).
		var back Record
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", id, err)
		}
		if !reflect.DeepEqual(back.Offer, rec.Offer) {
			t.Errorf("record %s: offer did not survive the round trip", id)
		}
		if rec.Assignment != nil {
			if back.Assignment == nil {
				t.Fatalf("record %s: assignment lost in round trip", id)
			}
			if back.Assignment.Offer != back.Offer {
				t.Errorf("record %s: assignment not reattached to the record's offer", id)
			}
			if !back.Assignment.Start.Equal(rec.Assignment.Start) ||
				!reflect.DeepEqual(back.Assignment.Energies, rec.Assignment.Energies) {
				t.Errorf("record %s: assignment fields diverged in round trip", id)
			}
			if err := back.Assignment.Validate(); err != nil {
				t.Errorf("record %s: round-tripped assignment invalid: %v", id, err)
			}
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal %s: %v", id, err)
		}
		if string(again) != string(got) {
			t.Errorf("record %s: decode/encode round trip not byte-identical\n got: %s\nwant: %s", id, again, got)
		}
	}

	// The page stitcher must agree with the default encoding of its
	// shape too (records array plus optional cursor).
	page, err := s.Page(ListQuery{Limit: 1})
	if err != nil {
		t.Fatalf("Page: %v", err)
	}
	if page.NextCursor == "" {
		t.Fatal("expected a continuation cursor")
	}
	got, err := json.Marshal(page)
	if err != nil {
		t.Fatalf("marshal page: %v", err)
	}
	var wire struct {
		Records    []recordWire `json:"records"`
		NextCursor string       `json:"next_cursor,omitempty"`
	}
	for _, r := range page.Records {
		wire.Records = append(wire.Records, wireOf(r))
	}
	wire.NextCursor = page.NextCursor
	want, err := json.Marshal(wire)
	if err != nil {
		t.Fatalf("marshal page wire: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("page: hand-built marshal diverges from default encoding\n got: %s\nwant: %s", got, want)
	}
}
