package market

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/flexoffer"
)

func TestStateJSONRoundTrip(t *testing.T) {
	for st := Offered; st <= Expired; st++ {
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", st, err)
		}
		var back State
		if err := json.Unmarshal(data, &back); err != nil || back != st {
			t.Errorf("round trip %v via %s: %v, %v", st, data, back, err)
		}
	}
	// The numeric legacy form still decodes.
	var st State
	if err := json.Unmarshal([]byte("3"), &st); err != nil || st != Assigned {
		t.Errorf("numeric state: %v, %v", st, err)
	}
}

func TestStateJSONErrorPaths(t *testing.T) {
	for name, data := range map[string]string{
		"unknown name":   `"pondering"`,
		"wrong type":     `{"state": 1}`,
		"bool":           `true`,
		"negative":       `-1`,
		"past the enum":  `99`,
		"fractional":     `1.5`,
		"unquoted chars": `offered`,
	} {
		t.Run(name, func(t *testing.T) {
			var st State
			err := json.Unmarshal([]byte(data), &st)
			if err == nil {
				t.Fatalf("Unmarshal(%s) accepted a bad state (got %v)", data, st)
			}
			// Everything except raw syntax errors carries ErrBadRequest so
			// the HTTP layer maps it to 400.
			if json.Valid([]byte(data)) && !errors.Is(err, ErrBadRequest) {
				t.Errorf("Unmarshal(%s) = %v, want ErrBadRequest", data, err)
			}
		})
	}
}

func TestParseStateErrors(t *testing.T) {
	for _, bad := range []string{"", "Offered", "OFFERED", "offered ", "unknown", "5"} {
		if st, err := ParseState(bad); !errors.Is(err, ErrBadRequest) {
			t.Errorf("ParseState(%q) = %v, %v, want ErrBadRequest", bad, st, err)
		}
	}
}

func TestBatchResultFailedOffersOutOfRange(t *testing.T) {
	offers := flexoffer.Set{testOffer("x0"), testOffer("x1"), testOffer("x2")}
	res := BatchResult{
		Submitted: len(offers),
		Failures: []BatchFailure{
			{Index: -1, Err: ErrBadRequest},
			{Index: 1, ID: "x1", Err: ErrDuplicate},
			{Index: 99, Err: ErrBadRequest},
		},
	}
	// Out-of-range indices are dropped rather than panicking; in-range
	// failures still map back onto the submitted set.
	failed := res.FailedOffers(offers)
	if len(failed) != 1 || failed[0].ID != "x1" {
		t.Fatalf("FailedOffers = %v, want just x1", failed)
	}
	if res.Rejected() != 3 {
		t.Errorf("Rejected = %d, want 3", res.Rejected())
	}
	if err := res.FirstErr(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("FirstErr = %v", err)
	}
	// An all-success result maps to no failed offers and a nil first error.
	ok := BatchResult{Submitted: 2, Accepted: 2}
	if got := ok.FailedOffers(offers); got != nil {
		t.Errorf("FailedOffers on success = %v", got)
	}
	if err := ok.FirstErr(); err != nil {
		t.Errorf("FirstErr on success = %v", err)
	}
}

func TestSubmitBatchMixedFailuresIndexOrder(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Submit(testOffer("dup")); err != nil {
		t.Fatal(err)
	}
	bad := testOffer("bad")
	bad.Profile = nil
	batch := flexoffer.Set{testOffer("a"), bad, testOffer("dup"), nil, testOffer("b")}
	res := s.SubmitBatch(batch)
	if res.Accepted != 2 || res.Rejected() != 3 {
		t.Fatalf("result = %+v", res)
	}
	for i := 1; i < len(res.Failures); i++ {
		if res.Failures[i-1].Index >= res.Failures[i].Index {
			t.Fatalf("failures out of index order: %+v", res.Failures)
		}
	}
	failed := res.FailedOffers(batch)
	if len(failed) != 3 {
		t.Fatalf("FailedOffers = %d offers, want 3", len(failed))
	}
}
