// Package market implements the flex-offer collection infrastructure of the
// MIRABEL prototype (the paper's reference [3]: "near real-time flex-offer
// collection"). Offers move through the lifecycle their timestamps encode —
// submitted while collection is open, accepted or rejected before their
// acceptance deadline, assigned a concrete start before their assignment
// deadline — and the store enforces every transition. A small HTTP API
// (http.go) and client (client.go) expose the store over the network.
package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/flexoffer"
)

// State is the lifecycle state of a collected offer.
type State int

const (
	// Offered: collected, awaiting the market's accept/reject decision.
	Offered State = iota
	// Accepted: the market committed to schedule the offer.
	Accepted
	// Rejected: declined; terminal.
	Rejected
	// Assigned: a concrete start time and energies are fixed; terminal
	// for the market's purposes.
	Assigned
	// Expired: a deadline lapsed before the required transition; terminal.
	Expired
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Offered:
		return "offered"
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	case Assigned:
		return "assigned"
	case Expired:
		return "expired"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its textual name — the same form the
// HTTP API's ?state= filter and lifecycle responses use, so the wire
// contract (docs/API.md) never exposes internal enum values.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the textual state name, and the numeric form for
// compatibility with payloads recorded before states marshalled as text.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		st, err := ParseState(name)
		if err != nil {
			return err
		}
		*s = st
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("%w: state must be a name or number", ErrBadRequest)
	}
	if n < int(Offered) || n > int(Expired) {
		return fmt.Errorf("%w: state %d out of range", ErrBadRequest, n)
	}
	*s = State(n)
	return nil
}

// ParseState parses the textual state names used by the HTTP API.
func ParseState(s string) (State, error) {
	for st := Offered; st <= Expired; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown state %q", ErrBadRequest, s)
}

// Common errors.
var (
	ErrNotFound   = errors.New("market: offer not found")
	ErrDuplicate  = errors.New("market: duplicate offer id")
	ErrDeadline   = errors.New("market: lifecycle deadline passed")
	ErrTransition = errors.New("market: invalid state transition")
	ErrBadRequest = errors.New("market: bad request")
	// ErrJournal reports that a state transition could not be made durable:
	// the write-ahead journal refused the event, so the store did not apply
	// the transition. The in-memory state is unchanged and still consistent
	// with what the journal holds.
	ErrJournal = errors.New("market: journal write failed")
)

// Record is one collected offer with its lifecycle state.
type Record struct {
	Offer       *flexoffer.FlexOffer  `json:"offer"`
	State       State                 `json:"state"`
	SubmittedAt time.Time             `json:"submitted_at"`
	DecidedAt   time.Time             `json:"decided_at,omitempty"`
	Assignment  *flexoffer.Assignment `json:"assignment,omitempty"`
}

// Store is a concurrent-safe flex-offer store. By itself it is purely
// in-memory; OpenJournaled (journal.go) attaches a write-ahead journal so
// every lifecycle transition is made durable before it is acknowledged.
type Store struct {
	mu      sync.RWMutex
	records map[string]*Record // guarded by mu
	order   []string           // guarded by mu: submission order, for deterministic listings
	clock   func() time.Time   // immutable after NewStore
	// journal, when non-nil, persists an event before the mutation it
	// describes is applied; a journal error aborts the transition with
	// ErrJournal. Attached by OpenJournaled before the store serves
	// requests; immutable afterwards. Always invoked with mu held, so the
	// journal's event order is the store's mutation order.
	journal func(ev event) error
}

// NewStore builds a store. clock defaults to time.Now when nil; tests and
// simulations inject their own.
func NewStore(clock func() time.Time) *Store {
	if clock == nil {
		clock = time.Now
	}
	return &Store{records: make(map[string]*Record), clock: clock}
}

// Submit collects a new offer. The offer must validate, carry a unique ID,
// and still be inside its acceptance window (when it declares one).
func (s *Store) Submit(f *flexoffer.FlexOffer) error {
	if f == nil {
		return fmt.Errorf("%w: nil offer", ErrBadRequest)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if f.ID == "" {
		return fmt.Errorf("%w: empty offer id", ErrBadRequest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	if !f.AcceptanceTime.IsZero() && now.After(f.AcceptanceTime) {
		return fmt.Errorf("%w: acceptance deadline %v already passed", ErrDeadline, f.AcceptanceTime)
	}
	if _, dup := s.records[f.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, f.ID)
	}
	offer := f.Clone()
	if err := s.journalEvent(event{Kind: evSubmit, At: now, Offers: flexoffer.Set{offer}}); err != nil {
		return err
	}
	s.records[f.ID] = &Record{Offer: offer, State: Offered, SubmittedAt: now}
	s.order = append(s.order, f.ID)
	return nil
}

// journalEvent persists ev through the attached journal, if any. Callers
// hold s.mu and apply the mutation ev describes only on nil return — the
// write-ahead contract: nothing is acknowledged that is not durable first.
func (s *Store) journalEvent(ev event) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal(ev); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// BatchFailure attributes one rejected offer within a SubmitBatch call to
// its position in the submitted set, so retry paths can resubmit exactly
// the failures.
type BatchFailure struct {
	// Index is the offer's position in the submitted set.
	Index int
	// ID is the rejected offer's ID ("" for a nil offer).
	ID string
	// Err is why the offer was rejected; never nil.
	Err error
}

// BatchResult reports a SubmitBatch outcome: how many offers the store
// accepted and exactly which ones it did not.
type BatchResult struct {
	// Submitted is the size of the submitted set.
	Submitted int
	// Accepted is the number of offers collected into the store.
	Accepted int
	// Failures lists the rejected offers in submission order; empty when
	// the whole batch was accepted.
	Failures []BatchFailure
}

// Rejected reports the number of failed offers.
func (r BatchResult) Rejected() int { return len(r.Failures) }

// FirstErr returns the first failure's error, or nil when the whole batch
// was accepted.
func (r BatchResult) FirstErr() error {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0].Err
}

// FailedOffers maps the failures back onto the submitted set: the subset
// of offers that did not land, in submission order. offers must be the
// same set that was passed to SubmitBatch.
func (r BatchResult) FailedOffers(offers flexoffer.Set) flexoffer.Set {
	if len(r.Failures) == 0 {
		return nil
	}
	failed := make(flexoffer.Set, 0, len(r.Failures))
	for _, f := range r.Failures {
		if f.Index >= 0 && f.Index < len(offers) {
			failed = append(failed, offers[f.Index])
		}
	}
	return failed
}

// SubmitBatch collects many offers under a single lock acquisition — the
// bulk ingest path used by the extraction pipeline. Validation runs outside
// the lock; insertion is atomic per offer, not per batch: each offer is
// accepted or rejected independently, and the result names every failure
// by index so callers can resubmit only what did not land.
func (s *Store) SubmitBatch(offers flexoffer.Set) BatchResult {
	res := BatchResult{Submitted: len(offers)}
	fail := func(i int, id string, err error) {
		res.Failures = append(res.Failures, BatchFailure{Index: i, ID: id, Err: err})
	}
	type pending struct {
		i int
		f *flexoffer.FlexOffer
	}
	ok := make([]pending, 0, len(offers))
	for i, f := range offers {
		switch {
		case f == nil:
			fail(i, "", fmt.Errorf("%w: nil offer", ErrBadRequest))
		case f.ID == "":
			fail(i, "", fmt.Errorf("%w: empty offer id", ErrBadRequest))
		default:
			if err := f.Validate(); err != nil {
				fail(i, f.ID, fmt.Errorf("%w: %v", ErrBadRequest, err))
			} else {
				ok = append(ok, pending{i, f})
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	// Decide which offers will land before mutating anything, so the
	// journal can record exactly the accepted subset ahead of the insert.
	accepted := make([]pending, 0, len(ok))
	batch := make(flexoffer.Set, 0, len(ok))
	seen := make(map[string]bool, len(ok))
	for _, p := range ok {
		f := p.f
		if !f.AcceptanceTime.IsZero() && now.After(f.AcceptanceTime) {
			fail(p.i, f.ID, fmt.Errorf("%w: acceptance deadline %v already passed", ErrDeadline, f.AcceptanceTime))
			continue
		}
		_, dup := s.records[f.ID]
		if dup || seen[f.ID] {
			fail(p.i, f.ID, fmt.Errorf("%w: %s", ErrDuplicate, f.ID))
			continue
		}
		seen[f.ID] = true
		clone := f.Clone()
		accepted = append(accepted, pending{p.i, clone})
		batch = append(batch, clone)
	}
	insert := true
	if len(batch) > 0 {
		if err := s.journalEvent(event{Kind: evSubmit, At: now, Offers: batch}); err != nil {
			// Nothing was applied; surface the journal failure per offer so
			// retry paths resubmit the whole accepted subset.
			for _, p := range accepted {
				fail(p.i, p.f.ID, err)
			}
			insert = false
		}
	}
	if insert {
		for _, p := range accepted {
			s.records[p.f.ID] = &Record{Offer: p.f, State: Offered, SubmittedAt: now}
			s.order = append(s.order, p.f.ID)
			res.Accepted++
		}
	}
	// Failures accumulate in two passes (validation, then insertion), so
	// restore submission order for callers that walk them.
	sort.Slice(res.Failures, func(i, j int) bool { return res.Failures[i].Index < res.Failures[j].Index })
	return res
}

// Accept moves an offered flex-offer to Accepted, enforcing the acceptance
// deadline.
func (s *Store) Accept(id string) error {
	return s.decide(id, Accepted)
}

// Reject moves an offered flex-offer to Rejected.
func (s *Store) Reject(id string) error {
	return s.decide(id, Rejected)
}

func (s *Store) decide(id string, to State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.State != Offered {
		return fmt.Errorf("%w: %s is %s, not offered", ErrTransition, id, r.State)
	}
	now := s.clock()
	if to == Accepted && !r.Offer.AcceptanceTime.IsZero() && now.After(r.Offer.AcceptanceTime) {
		if err := s.journalEvent(event{Kind: evDecide, At: now, ID: id, To: Expired}); err != nil {
			return err
		}
		r.State = Expired
		r.DecidedAt = now
		return fmt.Errorf("%w: acceptance deadline %v passed", ErrDeadline, r.Offer.AcceptanceTime)
	}
	if err := s.journalEvent(event{Kind: evDecide, At: now, ID: id, To: to}); err != nil {
		return err
	}
	r.State = to
	r.DecidedAt = now
	return nil
}

// Assign fixes the start time and per-slice energies of an accepted offer,
// enforcing the assignment deadline and feasibility.
func (s *Store) Assign(id string, start time.Time, energies []float64) (*flexoffer.Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.State != Accepted {
		return nil, fmt.Errorf("%w: %s is %s, not accepted", ErrTransition, id, r.State)
	}
	now := s.clock()
	if !r.Offer.AssignmentTime.IsZero() && now.After(r.Offer.AssignmentTime) {
		if err := s.journalEvent(event{Kind: evDecide, At: now, ID: id, To: Expired}); err != nil {
			return nil, err
		}
		r.State = Expired
		r.DecidedAt = now
		return nil, fmt.Errorf("%w: assignment deadline %v passed", ErrDeadline, r.Offer.AssignmentTime)
	}
	asg, err := r.Offer.Assign(start, energies)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := s.journalEvent(event{Kind: evAssign, At: now, ID: id, Start: start, Energies: energies}); err != nil {
		return nil, err
	}
	r.State = Assigned
	r.DecidedAt = now
	r.Assignment = asg
	return asg, nil
}

// Get returns a copy of the record for id.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// List returns copies of the records, in submission order, optionally
// filtered to the given states.
func (s *Store) List(states ...State) []Record {
	want := make(map[State]bool, len(states))
	for _, st := range states {
		want[st] = true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		r := s.records[id]
		if len(want) == 0 || want[r.State] {
			out = append(out, *r)
		}
	}
	return out
}

// ExpireOverdue sweeps the store: offered records past their acceptance
// deadline and accepted records past their assignment deadline become
// Expired. The number of expired records is returned. On a journaled
// store the sweep is durable before it applies; a journal failure leaves
// every record untouched and returns ErrJournal.
func (s *Store) ExpireOverdue() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	// Collect in submission order so the journaled event is deterministic
	// for a given store state, then expire in one batch.
	var overdue []string
	for _, id := range s.order {
		r := s.records[id]
		switch r.State {
		case Offered:
			if !r.Offer.AcceptanceTime.IsZero() && now.After(r.Offer.AcceptanceTime) {
				overdue = append(overdue, id)
			}
		case Accepted:
			if !r.Offer.AssignmentTime.IsZero() && now.After(r.Offer.AssignmentTime) {
				overdue = append(overdue, id)
			}
		}
	}
	if len(overdue) == 0 {
		return 0, nil
	}
	if err := s.journalEvent(event{Kind: evExpire, At: now, IDs: overdue}); err != nil {
		return 0, err
	}
	for _, id := range overdue {
		r := s.records[id]
		r.State = Expired
		r.DecidedAt = now
	}
	return len(overdue), nil
}

// Counts summarises the store by state.
type Counts struct {
	Offered  int `json:"offered"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Assigned int `json:"assigned"`
	Expired  int `json:"expired"`
	// TotalFlexibleEnergy is the summed average energy of non-terminal
	// (offered + accepted) offers, in kWh.
	TotalFlexibleEnergy float64 `json:"total_flexible_energy_kwh"`
}

// Stats reports the store summary.
func (s *Store) Stats() Counts {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var c Counts
	for _, r := range s.records {
		switch r.State {
		case Offered:
			c.Offered++
			c.TotalFlexibleEnergy += r.Offer.TotalAvgEnergy()
		case Accepted:
			c.Accepted++
			c.TotalFlexibleEnergy += r.Offer.TotalAvgEnergy()
		case Rejected:
			c.Rejected++
		case Assigned:
			c.Assigned++
		case Expired:
			c.Expired++
		}
	}
	return c
}

// AcceptedOffers returns the accepted offers as a Set (for the scheduler),
// sorted by earliest start.
func (s *Store) AcceptedOffers() flexoffer.Set {
	var set flexoffer.Set
	for _, r := range s.List(Accepted) {
		set = append(set, r.Offer)
	}
	sort.SliceStable(set, func(i, j int) bool {
		return set[i].EarliestStart.Before(set[j].EarliestStart)
	})
	return set
}
