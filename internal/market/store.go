// Package market implements the flex-offer collection infrastructure of the
// MIRABEL prototype (the paper's reference [3]: "near real-time flex-offer
// collection"). Offers move through the lifecycle their timestamps encode —
// submitted while collection is open, accepted or rejected before their
// acceptance deadline, assigned a concrete start before their assignment
// deadline — and the store enforces every transition. A small HTTP API
// (http.go) and client (client.go) expose the store over the network.
//
// The store is partitioned into shards keyed by an FNV-1a hash of the
// offer ID (shard.go): each shard carries its own lock, per-state
// indexes, deadline heap and — when journaled — its own write-ahead log
// stream, so point operations on different shards never contend and
// reads never scan the whole store.
package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/flexoffer"
)

// State is the lifecycle state of a collected offer.
type State int

const (
	// Offered: collected, awaiting the market's accept/reject decision.
	Offered State = iota
	// Accepted: the market committed to schedule the offer.
	Accepted
	// Rejected: declined; terminal.
	Rejected
	// Assigned: a concrete start time and energies are fixed; terminal
	// for the market's purposes.
	Assigned
	// Expired: a deadline lapsed before the required transition; terminal.
	Expired
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Offered:
		return "offered"
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	case Assigned:
		return "assigned"
	case Expired:
		return "expired"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its textual name — the same form the
// HTTP API's ?state= filter and lifecycle responses use, so the wire
// contract (docs/API.md) never exposes internal enum values.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the textual state name, and the numeric form for
// compatibility with payloads recorded before states marshalled as text.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		st, err := ParseState(name)
		if err != nil {
			return err
		}
		*s = st
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("%w: state must be a name or number", ErrBadRequest)
	}
	if n < int(Offered) || n > int(Expired) {
		return fmt.Errorf("%w: state %d out of range", ErrBadRequest, n)
	}
	*s = State(n)
	return nil
}

// ParseState parses the textual state names used by the HTTP API.
func ParseState(s string) (State, error) {
	for st := Offered; st <= Expired; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown state %q", ErrBadRequest, s)
}

// Common errors.
var (
	ErrNotFound   = errors.New("market: offer not found")
	ErrDuplicate  = errors.New("market: duplicate offer id")
	ErrDeadline   = errors.New("market: lifecycle deadline passed")
	ErrTransition = errors.New("market: invalid state transition")
	ErrBadRequest = errors.New("market: bad request")
	// ErrJournal reports that a state transition could not be made durable:
	// the write-ahead journal refused the event, so the store did not apply
	// the transition. The in-memory state is unchanged and still consistent
	// with what the journal holds.
	ErrJournal = errors.New("market: journal write failed")
)

// Record is one collected offer with its lifecycle state.
type Record struct {
	Offer       *flexoffer.FlexOffer  `json:"offer"`
	State       State                 `json:"state"`
	SubmittedAt time.Time             `json:"submitted_at"`
	DecidedAt   time.Time             `json:"decided_at,omitempty"`
	Assignment  *flexoffer.Assignment `json:"assignment,omitempty"`

	// offerRaw caches the offer's JSON, marshaled once at insert. The
	// offer is immutable for the record's lifetime while listings
	// re-encode it on every page, so the cache turns the dominant cost of
	// a 100-record page from reflection into a memcpy. Nil (records
	// restored from a snapshot, hand-built literals) falls back to a
	// fresh marshal.
	offerRaw json.RawMessage
}

// recordAssignment is the assignment's shape inside a record's wire form:
// start and energies only. The full Assignment embeds its offer, which in
// a record sits right next to it — emitting it twice doubled every
// assigned record on the wire. UnmarshalJSON reattaches the record's
// offer, so the round trip loses nothing (the WAL's assign events
// normalise the same way).
type recordAssignment struct {
	Start    time.Time `json:"start"`
	Energies []float64 `json:"energies_kwh"`
}

// recordWireJSON mirrors Record's wire form for decoding; the offer slot
// stays raw so it can seed the marshal cache.
type recordWireJSON struct {
	Offer       json.RawMessage   `json:"offer"`
	State       State             `json:"state"`
	SubmittedAt time.Time         `json:"submitted_at"`
	DecidedAt   time.Time         `json:"decided_at"`
	Assignment  *recordAssignment `json:"assignment"`
}

// MarshalJSON emits the record's wire form (docs/API.md): the offer, its
// lifecycle fields, and — once assigned — the assignment as start plus
// energies, without repeating the offer. The bytes are assembled by hand,
// reusing the offer JSON cached at insert; a 100-record page is the
// market's hottest response, and this turns its encoding cost from the
// dominant term into a series of copies.
func (r Record) MarshalJSON() ([]byte, error) {
	return r.appendJSON(make([]byte, 0, 1280))
}

// appendJSON appends the record's wire form to buf; Page.MarshalJSON
// stitches whole pages into one buffer through it.
//
//flexvet:hotpath runs once per record on every listing page
func (r Record) appendJSON(buf []byte) ([]byte, error) {
	raw := r.offerRaw
	if raw == nil {
		b, err := json.Marshal(r.Offer)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	buf = append(buf, `{"offer":`...)
	buf = append(buf, raw...)
	buf = append(buf, `,"state":"`...)
	buf = append(buf, r.State.String()...)
	buf = append(buf, `","submitted_at":"`...)
	buf = r.SubmittedAt.AppendFormat(buf, time.RFC3339Nano)
	// The decided_at tag says omitempty, but a time.Time is a struct so
	// the default encoder always emitted it — keep that shape.
	buf = append(buf, `","decided_at":"`...)
	buf = r.DecidedAt.AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, '"')
	if r.Assignment != nil {
		buf = append(buf, `,"assignment":`...)
		ab, err := json.Marshal(recordAssignment{Start: r.Assignment.Start, Energies: r.Assignment.Energies})
		if err != nil {
			return nil, err
		}
		buf = append(buf, ab...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON decodes the wire form MarshalJSON produces, reattaching
// the record's offer to its assignment and seeding the offer-JSON
// marshal cache with the bytes as received, so a decode/encode round
// trip (snapshot restore, client relay) is byte-identical.
func (r *Record) UnmarshalJSON(data []byte) error {
	var w recordWireJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	var offer *flexoffer.FlexOffer
	if len(w.Offer) > 0 && string(w.Offer) != "null" {
		offer = new(flexoffer.FlexOffer)
		if err := json.Unmarshal(w.Offer, offer); err != nil {
			return err
		}
	} else {
		w.Offer = nil
	}
	*r = Record{
		Offer:       offer,
		State:       w.State,
		SubmittedAt: w.SubmittedAt,
		DecidedAt:   w.DecidedAt,
		offerRaw:    append(json.RawMessage(nil), w.Offer...),
	}
	if w.Assignment != nil {
		r.Assignment = &flexoffer.Assignment{Offer: offer, Start: w.Assignment.Start, Energies: w.Assignment.Energies}
	}
	return nil
}

// Store is a concurrent-safe flex-offer store, partitioned into shards by
// offer-ID hash. By itself it is purely in-memory; OpenJournaled
// (journal.go) attaches one write-ahead journal stream per shard so every
// lifecycle transition is made durable before it is acknowledged.
//
// Listings are ordered shard-major: every record of shard 0 in its
// submission order, then shard 1, and so on. A single-shard store
// (NewStore) therefore lists in global submission order, matching the
// pre-sharding contract.
type Store struct {
	shards []*shard         // immutable after NewShardedStore
	clock  func() time.Time // immutable after NewShardedStore
}

// NewStore builds a single-shard store — global submission order, one
// lock — which is exactly the pre-sharding behaviour. clock defaults to
// time.Now when nil; tests and simulations inject their own.
func NewStore(clock func() time.Time) *Store {
	return NewShardedStore(1, clock)
}

// NewShardedStore builds a store partitioned into n shards (clamped to at
// least 1). Offers are routed to shards by an FNV-1a hash of their ID, so
// the mapping is stable across processes and restarts. clock defaults to
// time.Now when nil.
func NewShardedStore(n int, clock func() time.Time) *Store {
	if n < 1 {
		n = 1
	}
	if clock == nil {
		clock = time.Now
	}
	s := &Store{shards: make([]*shard, n), clock: clock}
	for i := range s.shards {
		s.shards[i] = newShard(i)
	}
	return s
}

// ShardCount reports the number of shards the store is partitioned into.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardIndex reports which shard the given offer ID routes to: the
// FNV-1a 32-bit hash of the ID modulo the shard count.
func (s *Store) ShardIndex(id string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(len(s.shards)))
}

// shardFor returns the shard the given offer ID lives in.
func (s *Store) shardFor(id string) *shard { return s.shards[s.ShardIndex(id)] }

// setJournal attaches fn as every shard's journal hook — the test seam
// behind journal-failure tests; OpenJournaled attaches per-shard hooks
// directly.
func (s *Store) setJournal(fn func(ev event) error) {
	for _, sh := range s.shards {
		sh.journal = fn
	}
}

// Submit collects a new offer. The offer must validate, carry a unique ID,
// and still be inside its acceptance window (when it declares one).
func (s *Store) Submit(f *flexoffer.FlexOffer) error {
	if f == nil {
		return fmt.Errorf("%w: nil offer", ErrBadRequest)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if f.ID == "" {
		return fmt.Errorf("%w: empty offer id", ErrBadRequest)
	}
	sh := s.shardFor(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := s.clock()
	if !f.AcceptanceTime.IsZero() && now.After(f.AcceptanceTime) {
		return fmt.Errorf("%w: acceptance deadline %v already passed", ErrDeadline, f.AcceptanceTime)
	}
	if _, dup := sh.records[f.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, f.ID)
	}
	offer := f.Clone()
	if err := sh.journalLocked(event{Kind: evSubmit, At: now, Offers: flexoffer.Set{offer}}); err != nil {
		return err
	}
	sh.insertLocked(&Record{Offer: offer, State: Offered, SubmittedAt: now})
	return nil
}

// BatchFailure attributes one rejected offer within a SubmitBatch call to
// its position in the submitted set, so retry paths can resubmit exactly
// the failures.
type BatchFailure struct {
	// Index is the offer's position in the submitted set.
	Index int
	// ID is the rejected offer's ID ("" for a nil offer).
	ID string
	// Err is why the offer was rejected; never nil.
	Err error
}

// BatchResult reports a SubmitBatch outcome: how many offers the store
// accepted and exactly which ones it did not.
type BatchResult struct {
	// Submitted is the size of the submitted set.
	Submitted int
	// Accepted is the number of offers collected into the store.
	Accepted int
	// Failures lists the rejected offers in submission order; empty when
	// the whole batch was accepted.
	Failures []BatchFailure
}

// Rejected reports the number of failed offers.
func (r BatchResult) Rejected() int { return len(r.Failures) }

// FirstErr returns the first failure's error, or nil when the whole batch
// was accepted.
func (r BatchResult) FirstErr() error {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0].Err
}

// FailedOffers maps the failures back onto the submitted set: the subset
// of offers that did not land, in submission order. offers must be the
// same set that was passed to SubmitBatch.
func (r BatchResult) FailedOffers(offers flexoffer.Set) flexoffer.Set {
	if len(r.Failures) == 0 {
		return nil
	}
	failed := make(flexoffer.Set, 0, len(r.Failures))
	for _, f := range r.Failures {
		if f.Index >= 0 && f.Index < len(offers) {
			failed = append(failed, offers[f.Index])
		}
	}
	return failed
}

// SubmitBatch collects many offers with one lock acquisition per touched
// shard — the bulk ingest path used by the extraction pipeline.
// Validation runs outside the locks; insertion is atomic per offer, not
// per batch: each offer is accepted or rejected independently, and the
// result names every failure by index so callers can resubmit only what
// did not land. On a journaled store each shard's accepted subset is
// journaled as one event in that shard's WAL stream; a journal failure
// fails that shard's subset without touching the others.
func (s *Store) SubmitBatch(offers flexoffer.Set) BatchResult {
	res := BatchResult{Submitted: len(offers)}
	fail := func(i int, id string, err error) {
		res.Failures = append(res.Failures, BatchFailure{Index: i, ID: id, Err: err})
	}
	type pending struct {
		i int
		f *flexoffer.FlexOffer
	}
	// Validate everything and group the survivors by shard, preserving
	// submission order within each group. Duplicates *within* the batch
	// are decided here, before any lock, so the outcome does not depend
	// on shard processing order.
	byShard := make(map[int][]pending)
	seen := make(map[string]bool, len(offers))
	for i, f := range offers {
		switch {
		case f == nil:
			fail(i, "", fmt.Errorf("%w: nil offer", ErrBadRequest))
		case f.ID == "":
			fail(i, "", fmt.Errorf("%w: empty offer id", ErrBadRequest))
		default:
			if err := f.Validate(); err != nil {
				fail(i, f.ID, fmt.Errorf("%w: %v", ErrBadRequest, err))
				continue
			}
			if seen[f.ID] {
				fail(i, f.ID, fmt.Errorf("%w: %s", ErrDuplicate, f.ID))
				continue
			}
			seen[f.ID] = true
			k := s.ShardIndex(f.ID)
			byShard[k] = append(byShard[k], pending{i, f})
		}
	}
	// Process shards in ascending order so lock acquisition order is
	// deterministic (only one shard is held at a time regardless).
	keys := make([]int, 0, len(byShard))
	for k := range byShard {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		group := byShard[k]
		sh := s.shards[k]
		sh.mu.Lock()
		now := s.clock()
		// Decide which offers will land before mutating anything, so the
		// journal records exactly the accepted subset ahead of the insert.
		accepted := make([]pending, 0, len(group))
		batch := make(flexoffer.Set, 0, len(group))
		for _, p := range group {
			f := p.f
			if !f.AcceptanceTime.IsZero() && now.After(f.AcceptanceTime) {
				fail(p.i, f.ID, fmt.Errorf("%w: acceptance deadline %v already passed", ErrDeadline, f.AcceptanceTime))
				continue
			}
			if _, dup := sh.records[f.ID]; dup {
				fail(p.i, f.ID, fmt.Errorf("%w: %s", ErrDuplicate, f.ID))
				continue
			}
			clone := f.Clone()
			accepted = append(accepted, pending{p.i, clone})
			batch = append(batch, clone)
		}
		if len(batch) == 0 {
			sh.mu.Unlock()
			continue
		}
		if err := sh.journalLocked(event{Kind: evSubmit, At: now, Offers: batch}); err != nil {
			// Nothing was applied to this shard; surface the journal
			// failure per offer so retry paths resubmit the subset.
			for _, p := range accepted {
				fail(p.i, p.f.ID, err)
			}
			sh.mu.Unlock()
			continue
		}
		for _, p := range accepted {
			sh.insertLocked(&Record{Offer: p.f, State: Offered, SubmittedAt: now})
			res.Accepted++
		}
		sh.mu.Unlock()
	}
	// Failures accumulate in two passes (validation, then insertion), so
	// restore submission order for callers that walk them.
	sort.Slice(res.Failures, func(i, j int) bool { return res.Failures[i].Index < res.Failures[j].Index })
	return res
}

// Accept moves an offered flex-offer to Accepted, enforcing the acceptance
// deadline.
func (s *Store) Accept(id string) error {
	return s.decide(id, Accepted)
}

// Reject moves an offered flex-offer to Rejected.
func (s *Store) Reject(id string) error {
	return s.decide(id, Rejected)
}

func (s *Store) decide(id string, to State) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.State != Offered {
		return fmt.Errorf("%w: %s is %s, not offered", ErrTransition, id, r.State)
	}
	now := s.clock()
	if to == Accepted && !r.Offer.AcceptanceTime.IsZero() && now.After(r.Offer.AcceptanceTime) {
		if err := sh.journalLocked(event{Kind: evDecide, At: now, ID: id, To: Expired}); err != nil {
			return err
		}
		sh.transitionLocked(r, Expired, now)
		return fmt.Errorf("%w: acceptance deadline %v passed", ErrDeadline, r.Offer.AcceptanceTime)
	}
	if err := sh.journalLocked(event{Kind: evDecide, At: now, ID: id, To: to}); err != nil {
		return err
	}
	sh.transitionLocked(r, to, now)
	return nil
}

// Assign fixes the start time and per-slice energies of an accepted offer,
// enforcing the assignment deadline and feasibility.
func (s *Store) Assign(id string, start time.Time, energies []float64) (*flexoffer.Assignment, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.records[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.State != Accepted {
		return nil, fmt.Errorf("%w: %s is %s, not accepted", ErrTransition, id, r.State)
	}
	now := s.clock()
	if !r.Offer.AssignmentTime.IsZero() && now.After(r.Offer.AssignmentTime) {
		if err := sh.journalLocked(event{Kind: evDecide, At: now, ID: id, To: Expired}); err != nil {
			return nil, err
		}
		sh.transitionLocked(r, Expired, now)
		return nil, fmt.Errorf("%w: assignment deadline %v passed", ErrDeadline, r.Offer.AssignmentTime)
	}
	asg, err := r.Offer.Assign(start, energies)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := sh.journalLocked(event{Kind: evAssign, At: now, ID: id, Start: start, Energies: energies}); err != nil {
		return nil, err
	}
	// The assignment is attached before the transition so the published
	// EventAssigned carries the schedule.
	r.Assignment = asg
	sh.transitionLocked(r, Assigned, now)
	return asg, nil
}

// Get returns a copy of the record for id.
func (s *Store) Get(id string) (Record, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.records[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// List returns copies of the records in shard-major submission order
// (global submission order on a single-shard store), optionally filtered
// to the given states. A single-state filter walks that state's index
// list instead of the whole shard. For bounded reads at scale, use Page.
//
//flexvet:hotpath full-store listings copy every matching record
func (s *Store) List(states ...State) []Record {
	var want [numStates]bool
	for _, st := range states {
		if st >= 0 && int(st) < numStates {
			want[st] = true
		}
	}
	// Pre-size from the per-shard state counters (O(shards)) so the copy
	// loop below never regrows the result. Records may transition between
	// the two passes, so the sum is a hint, not a bound.
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if len(states) == 0 {
			n += len(sh.order)
		} else {
			for st := 0; st < numStates; st++ {
				if want[st] {
					n += sh.counts[st]
				}
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]Record, 0, n)
	for _, sh := range s.shards {
		sh.mu.RLock()
		switch len(states) {
		case 0:
			for _, id := range sh.order {
				out = append(out, *sh.records[id])
			}
		case 1:
			st := states[0]
			for _, id := range sh.byState[st] {
				if r := sh.records[id]; r.State == st {
					out = append(out, *r)
				}
			}
		default:
			for _, id := range sh.order {
				if r := sh.records[id]; want[r.State] {
					out = append(out, *r)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// ExpireOverdue sweeps the store: offered records past their acceptance
// deadline and accepted records past their assignment deadline become
// Expired. The number of expired records is returned. The sweep pops the
// per-shard deadline heaps instead of scanning records, so its cost is
// proportional to the number of due deadlines, not the store size. On a
// journaled store each shard's sweep is durable before it applies; a
// journal failure rolls that shard's heap back, leaves its records
// untouched and returns ErrJournal (shards already swept stay swept —
// their expiries were acknowledged durably).
func (s *Store) ExpireOverdue() (int, error) {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		now := s.clock()
		due := sh.overdueLocked(now)
		if len(due) == 0 {
			sh.mu.Unlock()
			continue
		}
		ids := make([]string, len(due))
		for i, e := range due {
			ids[i] = e.id
		}
		if err := sh.journalLocked(event{Kind: evExpire, At: now, IDs: ids}); err != nil {
			sh.rollbackLocked(due)
			sh.mu.Unlock()
			return total, err
		}
		for _, id := range ids {
			sh.transitionLocked(sh.records[id], Expired, now)
		}
		total += len(ids)
		sh.mu.Unlock()
	}
	return total, nil
}

// sweepExaminedTotal reports how many expiry-heap entries every sweep so
// far has popped (due or stale) — the cost measure the sweep regression
// test pins against the expired count.
func (s *Store) sweepExaminedTotal() uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.sweepExamined
		sh.mu.RUnlock()
	}
	return n
}

// Counts summarises the store by state.
type Counts struct {
	Offered  int `json:"offered"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Assigned int `json:"assigned"`
	Expired  int `json:"expired"`
	// TotalFlexibleEnergy is the summed average energy of non-terminal
	// (offered + accepted) offers, in kWh.
	TotalFlexibleEnergy float64 `json:"total_flexible_energy_kwh"`
}

// Stats reports the store summary from the shards' incrementally
// maintained counters — O(shards), never a record scan.
func (s *Store) Stats() Counts {
	var c Counts
	for _, sh := range s.shards {
		sh.mu.RLock()
		c.Offered += sh.counts[Offered]
		c.Accepted += sh.counts[Accepted]
		c.Rejected += sh.counts[Rejected]
		c.Assigned += sh.counts[Assigned]
		c.Expired += sh.counts[Expired]
		c.TotalFlexibleEnergy += sh.energy
		sh.mu.RUnlock()
	}
	return c
}

// Contention reports every shard's lock-contention counters and resident
// record count, in shard order.
func (s *Store) Contention() []ShardContention {
	out := make([]ShardContention, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		offers := len(sh.records)
		sh.mu.RUnlock()
		out[i] = ShardContention{
			Shard:           i,
			LockWaitSeconds: float64(sh.mu.waitNanos.Load()) / 1e9,
			LockHoldSeconds: float64(sh.mu.holdNanos.Load()) / 1e9,
			QueueDepth:      sh.mu.waiters.Load(),
			Offers:          offers,
		}
	}
	return out
}

// AcceptedOffers returns the accepted offers as a Set (for the scheduler),
// sorted by earliest start.
func (s *Store) AcceptedOffers() flexoffer.Set {
	accepted := s.List(Accepted)
	set := make(flexoffer.Set, 0, len(accepted))
	for _, r := range accepted {
		set = append(set, r.Offer)
	}
	sort.SliceStable(set, func(i, j int) bool {
		return set[i].EarliestStart.Before(set[j].EarliestStart)
	})
	return set
}
