package market

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// shedServer answers every request with the given shed response.
func shedServer(status int, retryAfter, body string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
}

// TestClientShedError: 429 and 503 responses surface as *ShedError with
// the parsed Retry-After hint and the server's message; other error
// statuses keep the plain error path.
func TestClientShedError(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string
		body       string
		wantHint   time.Duration
		wantMsg    string
	}{
		{"queue full", http.StatusTooManyRequests, "2", `{"error":"admission: queue full"}`, 2 * time.Second, "admission: queue full"},
		{"draining", http.StatusServiceUnavailable, "5", `{"error":"admission: draining"}`, 5 * time.Second, "admission: draining"},
		{"no header", http.StatusServiceUnavailable, "", `{"error":"admission: wait timeout"}`, 0, "admission: wait timeout"},
		{"bad header", http.StatusTooManyRequests, "soon", `{"error":"admission: queue full"}`, 0, "admission: queue full"},
		{"no body", http.StatusTooManyRequests, "1", "", time.Second, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := shedServer(c.status, c.retryAfter, c.body)
			defer ts.Close()
			cl := &Client{BaseURL: ts.URL}

			err := cl.Submit(testOffer("shed-1"))
			var shed *ShedError
			if !errors.As(err, &shed) {
				t.Fatalf("Submit error %v (%T), want *ShedError", err, err)
			}
			if shed.StatusCode != c.status {
				t.Errorf("StatusCode = %d, want %d", shed.StatusCode, c.status)
			}
			if shed.RetryAfter != c.wantHint {
				t.Errorf("RetryAfter = %v, want %v", shed.RetryAfter, c.wantHint)
			}
			if shed.RetryAfterHint() != c.wantHint {
				t.Errorf("RetryAfterHint() = %v, want %v", shed.RetryAfterHint(), c.wantHint)
			}
			if shed.Message != c.wantMsg {
				t.Errorf("Message = %q, want %q", shed.Message, c.wantMsg)
			}
			if !strings.Contains(shed.Error(), "shed") {
				t.Errorf("Error() = %q, want it to name the shed", shed.Error())
			}
		})
	}
}

// TestClientNonShedStatusStaysPlainError: statuses outside the overload
// set keep the original error shape, so state-machine errors (404, 409)
// never trigger Retry-After pacing.
func TestClientNonShedStatusStaysPlainError(t *testing.T) {
	ts := shedServer(http.StatusNotFound, "3", `{"error":"offer not found"}`)
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	_, err := cl.Get("nope")
	if err == nil {
		t.Fatal("Get succeeded against a 404 server")
	}
	var shed *ShedError
	if errors.As(err, &shed) {
		t.Fatalf("404 mapped to ShedError %v; must stay a plain error", shed)
	}
	if !strings.Contains(err.Error(), "offer not found") {
		t.Errorf("error %q lost the server message", err)
	}
}

// TestParseRetryAfter covers the header decoding edge cases.
func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"0":                             0,
		"1":                             time.Second,
		"30":                            30 * time.Second,
		"-1":                            0,
		"":                              0,
		"soon":                          0,
		"Wed, 21 Oct 2015 07:28:00 GMT": 0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
