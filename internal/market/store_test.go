package market

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flexoffer"
)

var t0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// fakeClock is a controllable clock for deadline tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testOffer builds an offer whose acceptance deadline is t0+2h, assignment
// deadline t0+4h, start window t0+6h..t0+10h.
func testOffer(id string) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		ConsumerID:     "c1",
		CreationTime:   t0,
		AcceptanceTime: t0.Add(2 * time.Hour),
		AssignmentTime: t0.Add(4 * time.Hour),
		EarliestStart:  t0.Add(6 * time.Hour),
		LatestStart:    t0.Add(10 * time.Hour),
		Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
	}
}

func newTestStore() (*Store, *fakeClock) {
	clock := &fakeClock{now: t0}
	return NewStore(clock.Now), clock
}

func TestLifecycleHappyPath(t *testing.T) {
	s, _ := newTestStore()
	f := testOffer("a")
	if err := s.Submit(f); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rec, ok := s.Get("a")
	if !ok || rec.State != Offered {
		t.Fatalf("after submit: %+v, %v", rec, ok)
	}
	if err := s.Accept("a"); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	energies := []float64{0.75, 0.75, 0.75, 0.75}
	asg, err := s.Assign("a", f.EarliestStart.Add(time.Hour), energies)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if asg.TotalEnergy() != 3 {
		t.Errorf("assignment energy = %v", asg.TotalEnergy())
	}
	rec, _ = s.Get("a")
	if rec.State != Assigned || rec.Assignment == nil {
		t.Errorf("final record: %+v", rec)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, clock := newTestStore()
	if err := s.Submit(nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil offer: %v", err)
	}
	bad := testOffer("")
	if err := s.Submit(bad); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty id: %v", err)
	}
	invalid := testOffer("x")
	invalid.Profile = nil
	if err := s.Submit(invalid); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid offer: %v", err)
	}
	ok := testOffer("a")
	if err := s.Submit(ok); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := s.Submit(testOffer("a")); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	// Past the acceptance deadline, new submissions are refused.
	clock.Advance(3 * time.Hour)
	if err := s.Submit(testOffer("late")); !errors.Is(err, ErrDeadline) {
		t.Errorf("late submit: %v", err)
	}
}

func TestSubmitClonesOffer(t *testing.T) {
	s, _ := newTestStore()
	f := testOffer("a")
	if err := s.Submit(f); err != nil {
		t.Fatal(err)
	}
	f.Profile[0].MinEnergy = 999
	rec, _ := s.Get("a")
	if rec.Offer.Profile[0].MinEnergy == 999 {
		t.Error("store shares memory with caller's offer")
	}
}

func TestAcceptanceDeadline(t *testing.T) {
	s, clock := newTestStore()
	if err := s.Submit(testOffer("a")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Hour) // past acceptance (t0+2h)
	err := s.Accept("a")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("late accept: %v", err)
	}
	// The record expired as a side effect.
	rec, _ := s.Get("a")
	if rec.State != Expired {
		t.Errorf("state after late accept = %v", rec.State)
	}
}

func TestAssignmentDeadline(t *testing.T) {
	s, clock := newTestStore()
	f := testOffer("a")
	if err := s.Submit(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("a"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Hour) // past assignment (t0+4h)
	if _, err := s.Assign("a", f.EarliestStart, []float64{0.75, 0.75, 0.75, 0.75}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("late assign: %v", err)
	}
	rec, _ := s.Get("a")
	if rec.State != Expired {
		t.Errorf("state = %v", rec.State)
	}
}

func TestInvalidTransitions(t *testing.T) {
	s, _ := newTestStore()
	f := testOffer("a")
	if err := s.Submit(f); err != nil {
		t.Fatal(err)
	}
	// Assign before accept.
	if _, err := s.Assign("a", f.EarliestStart, []float64{0.75, 0.75, 0.75, 0.75}); !errors.Is(err, ErrTransition) {
		t.Errorf("assign before accept: %v", err)
	}
	if err := s.Reject("a"); err != nil {
		t.Fatal(err)
	}
	// Accept after reject.
	if err := s.Accept("a"); !errors.Is(err, ErrTransition) {
		t.Errorf("accept after reject: %v", err)
	}
	// Unknown IDs.
	if err := s.Accept("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("accept unknown: %v", err)
	}
	if _, err := s.Assign("nope", f.EarliestStart, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("assign unknown: %v", err)
	}
}

func TestAssignInfeasible(t *testing.T) {
	s, _ := newTestStore()
	f := testOffer("a")
	if err := s.Submit(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("a"); err != nil {
		t.Fatal(err)
	}
	// Start outside the window.
	if _, err := s.Assign("a", t0, []float64{0.75, 0.75, 0.75, 0.75}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("infeasible start: %v", err)
	}
	// The offer remains accepted after a failed assignment.
	rec, _ := s.Get("a")
	if rec.State != Accepted {
		t.Errorf("state after failed assign = %v", rec.State)
	}
}

func TestListAndStats(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 5; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("o%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Accept("o0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("o1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject("o2"); err != nil {
		t.Fatal(err)
	}

	all := s.List()
	if len(all) != 5 || all[0].Offer.ID != "o0" {
		t.Errorf("List() = %d records, first %s", len(all), all[0].Offer.ID)
	}
	accepted := s.List(Accepted)
	if len(accepted) != 2 {
		t.Errorf("accepted = %d", len(accepted))
	}
	counts := s.Stats()
	if counts.Offered != 2 || counts.Accepted != 2 || counts.Rejected != 1 {
		t.Errorf("stats = %+v", counts)
	}
	// 4 pending offers × 3 kWh average each.
	if counts.TotalFlexibleEnergy != 12 {
		t.Errorf("flexible energy = %v", counts.TotalFlexibleEnergy)
	}
	set := s.AcceptedOffers()
	if len(set) != 2 {
		t.Errorf("AcceptedOffers = %d", len(set))
	}
}

func TestExpireOverdue(t *testing.T) {
	s, clock := newTestStore()
	if err := s.Submit(testOffer("pending")); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testOffer("accepted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("accepted"); err != nil {
		t.Fatal(err)
	}
	if n, err := s.ExpireOverdue(); err != nil || n != 0 {
		t.Errorf("premature expiry: %d (err %v)", n, err)
	}
	clock.Advance(3 * time.Hour) // past acceptance, before assignment deadline
	if n, err := s.ExpireOverdue(); err != nil || n != 1 {
		t.Errorf("expired = %d (err %v), want 1 (the offered one)", n, err)
	}
	clock.Advance(2 * time.Hour) // past assignment deadline
	if n, err := s.ExpireOverdue(); err != nil || n != 1 {
		t.Errorf("expired = %d (err %v), want 1 (the accepted one)", n, err)
	}
	counts := s.Stats()
	if counts.Expired != 2 {
		t.Errorf("stats = %+v", counts)
	}
}

func TestStoreConcurrentSubmitters(t *testing.T) {
	s, _ := newTestStore()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Submit(testOffer(fmt.Sprintf("c%03d", i))); err != nil {
				t.Errorf("Submit %d: %v", i, err)
			}
			_ = s.Stats()
			_, _ = s.Get(fmt.Sprintf("c%03d", i))
		}(i)
	}
	wg.Wait()
	if got := len(s.List()); got != n {
		t.Errorf("records = %d, want %d", got, n)
	}
}

func TestStateStringAndParse(t *testing.T) {
	for st := Offered; st <= Expired; st++ {
		parsed, err := ParseState(st.String())
		if err != nil || parsed != st {
			t.Errorf("round trip %v: %v, %v", st, parsed, err)
		}
	}
	if State(99).String() != "unknown" {
		t.Error("unknown state string")
	}
	if _, err := ParseState("bogus"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bogus state: %v", err)
	}
}

func TestNewStoreDefaultClock(t *testing.T) {
	s := NewStore(nil)
	f := testOffer("now")
	// Deadlines in 2012 are long past for the real clock.
	if err := s.Submit(f); !errors.Is(err, ErrDeadline) {
		t.Errorf("2012 deadline with real clock: %v", err)
	}
	// An offer without lifecycle stamps is always accepted.
	free := &flexoffer.FlexOffer{
		ID:            "free",
		EarliestStart: time.Now().Add(time.Hour),
		LatestStart:   time.Now().Add(2 * time.Hour),
		Profile:       flexoffer.UniformProfile(2, 15*time.Minute, 1, 2),
	}
	if err := s.Submit(free); err != nil {
		t.Errorf("stamp-free offer: %v", err)
	}
}
