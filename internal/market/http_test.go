package market

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Client, *fakeClock, *Store) {
	t.Helper()
	clock := &fakeClock{now: t0}
	store := NewStore(clock.Now)
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}, clock, store
}

func TestHTTPLifecycle(t *testing.T) {
	client, _, _ := newTestServer(t)
	f := testOffer("h1")
	if err := client.Submit(f); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rec, err := client.Get("h1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.State != Offered || rec.Offer.ID != "h1" {
		t.Fatalf("record = %+v", rec)
	}
	if err := client.Accept("h1"); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := client.Assign("h1", f.EarliestStart.Add(time.Hour), []float64{0.75, 0.75, 0.75, 0.75}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	rec, err = client.Get("h1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Assigned || rec.Assignment == nil {
		t.Fatalf("final record = %+v", rec)
	}
	if rec.Assignment.TotalEnergy() != 3 {
		t.Errorf("assignment energy = %v", rec.Assignment.TotalEnergy())
	}
}

// TestHTTPQualifiedIDs drives the per-offer endpoints with the slash-
// qualified IDs batch extraction produces (<series>/<offer>).
func TestHTTPQualifiedIDs(t *testing.T) {
	client, _, _ := newTestServer(t)
	const id = "family-house-001/peak-0001"
	if err := client.Submit(testOffer(id)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rec, err := client.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.Offer.ID != id {
		t.Fatalf("got offer %q, want %q", rec.Offer.ID, id)
	}
	if err := client.Accept(id); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := client.Accept(id); err == nil {
		t.Fatal("second accept succeeded")
	}
	rec, err = client.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Accepted {
		t.Fatalf("state = %v, want accepted", rec.State)
	}
}

func TestHTTPListAndStats(t *testing.T) {
	client, _, _ := newTestServer(t)
	for _, id := range []string{"a", "b", "c"} {
		if err := client.Submit(testOffer(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Reject("c"); err != nil {
		t.Fatal(err)
	}
	all, err := client.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List all = %d, %v", len(all), err)
	}
	offered, err := client.List("offered")
	if err != nil || len(offered) != 2 {
		t.Fatalf("List offered = %d, %v", len(offered), err)
	}
	counts, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if counts.Offered != 2 || counts.Rejected != 1 {
		t.Errorf("stats = %+v", counts)
	}
	if _, err := client.List("bogus"); err == nil {
		t.Error("bogus state filter accepted")
	}
}

func TestHTTPExpire(t *testing.T) {
	client, clock, _ := newTestServer(t)
	if err := client.Submit(testOffer("e1")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Hour)
	n, err := client.Expire()
	if err != nil {
		t.Fatalf("Expire: %v", err)
	}
	if n != 1 {
		t.Errorf("expired = %d", n)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	client, clock, _ := newTestServer(t)

	// 404 for unknown offers.
	if err := client.Accept("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown accept: %v", err)
	}
	if _, err := client.Get("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown get: %v", err)
	}
	// 409 for duplicates and bad transitions.
	if err := client.Submit(testOffer("dup")); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(testOffer("dup")); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate: %v", err)
	}
	if err := client.Assign("dup", t0, nil); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("assign before accept: %v", err)
	}
	// 410 for deadline violations.
	clock.Advance(3 * time.Hour)
	if err := client.Submit(testOffer("late")); err == nil || !strings.Contains(err.Error(), "410") {
		t.Errorf("late submit: %v", err)
	}
	// 400 for malformed bodies.
	resp, err := http.Post(client.BaseURL+"/offers", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit status = %d", resp.StatusCode)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	client, _, _ := newTestServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodDelete, "/offers"},
		{http.MethodPut, "/offers/x/accept"},
		{http.MethodPost, "/stats"},
		{http.MethodGet, "/expire"},
	} {
		req, err := http.NewRequest(tc.method, client.BaseURL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.HTTPClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

func TestHTTPMissingID(t *testing.T) {
	client, _, _ := newTestServer(t)
	resp, err := client.HTTPClient.Get(client.BaseURL + "/offers/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id status = %d", resp.StatusCode)
	}
}
