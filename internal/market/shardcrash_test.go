// Per-shard crash-recovery tests: the acked ⊆ recovered ⊆ acked+1 ledger
// property applied to every shard's WAL stream independently. External
// package for the same reason as crash_test.go (faultinject would cycle).
package market_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/wal"
)

// partitionByShard groups offer IDs by the shard they route to.
func partitionByShard(s *market.Store, ids []string) [][]string {
	out := make([][]string, s.ShardCount())
	for _, id := range ids {
		k := s.ShardIndex(id)
		out[k] = append(out[k], id)
	}
	return out
}

// TestCrashPerShardLedger runs the seeded kill-and-recover scenario
// against a 4-shard journaled store and asserts the ledger property per
// shard stream: every shard recovers all of its acknowledged offers in
// order, and each shard holds at most one unacknowledged trailing offer —
// the one whose record reached that shard's disk but whose ack was lost.
// Streams fail independently, so the bound is per shard, not global.
func TestCrashPerShardLedger(t *testing.T) {
	const shards = 4
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			clock := &crashClock{now: crashT0}
			sched := faultinject.NewSchedule(faultinject.Profile{
				Seed:        seed,
				ErrorRate:   0.10,
				PartialRate: 0.10,
				PanicRate:   0.05,
			})
			s, _, err := market.OpenJournaled(market.JournalOptions{
				Dir:    dir,
				Shards: shards,
				Clock:  clock.Now,
				FS:     faultinject.WrapFS(wal.DiskFS, sched),
			})
			if err != nil {
				t.Fatalf("OpenJournaled: %v", err)
			}
			acked := submitUntilDone(t, s, 40)
			// Crash: abandon the journal without closing it.

			got, s2, j2 := recoveredIDs(t, dir, clock)
			if j2.ShardCount() != shards {
				t.Fatalf("recovered journal has %d shards, want %d", j2.ShardCount(), shards)
			}
			ackedBy := partitionByShard(s2, acked)
			gotBy := partitionByShard(s2, got)
			for k := 0; k < shards; k++ {
				if len(gotBy[k]) > len(ackedBy[k])+1 {
					t.Fatalf("shard %d recovered %d offers from %d acked", k, len(gotBy[k]), len(ackedBy[k]))
				}
				// Acked offers survive in order within their shard's stream.
				i := 0
				for _, id := range gotBy[k] {
					if i < len(ackedBy[k]) && id == ackedBy[k][i] {
						i++
					}
				}
				if i != len(ackedBy[k]) {
					t.Fatalf("shard %d lost acked offers:\nacked %v\ngot   %v", k, ackedBy[k], gotBy[k])
				}
			}
			// Per-shard recovery detail covers every stream.
			if rec := j2.Recovery(); len(rec.Shards) != shards {
				t.Fatalf("RecoveryStats.Shards has %d entries, want %d", len(rec.Shards), shards)
			}
		})
	}
}

// TestShardCountPinnedAcrossReopen checks that a directory's shard count
// is adopted on reopen (Shards: 0), that a conflicting explicit count is
// refused, and that the count survives even when higher-index shards
// never journaled a single event.
func TestShardCountPinnedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	clock := &crashClock{now: crashT0}
	s, j, err := market.OpenJournaled(market.JournalOptions{Dir: dir, Shards: 5, Clock: clock.Now})
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	// One offer is enough: most shards stay empty, yet their directories
	// must still pin the count.
	if err := s.Submit(crashOffer("only")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, _, err := market.OpenJournaled(market.JournalOptions{Dir: dir, Shards: 2, Clock: clock.Now}); err == nil {
		t.Fatal("reopen with a conflicting shard count was accepted")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("conflicting reopen error %q does not explain the shard mismatch", err)
	}

	s2, j2, err := market.OpenJournaled(market.JournalOptions{Dir: dir, Clock: clock.Now})
	if err != nil {
		t.Fatalf("adopting reopen: %v", err)
	}
	defer j2.Close()
	if s2.ShardCount() != 5 || j2.ShardCount() != 5 {
		t.Fatalf("reopen adopted %d shards, want 5", s2.ShardCount())
	}
	if _, ok := s2.Get("only"); !ok {
		t.Fatal("offer lost across the sharded reopen")
	}
}

// TestFlatLayoutRefused checks that a pre-sharding flat journal directory
// is refused with a migration hint instead of being silently shadowed.
func TestFlatLayoutRefused(t *testing.T) {
	dir := t.TempDir()
	clock := &crashClock{now: crashT0}
	// Build a flat layout the way the pre-sharding code did: a WAL
	// segment directly in the directory.
	log, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if _, err := log.Append([]byte(`{"kind":"submit"}`)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, _, err = market.OpenJournaled(market.JournalOptions{Dir: dir, Clock: clock.Now})
	if err == nil {
		t.Fatal("flat layout accepted")
	}
	if !strings.Contains(err.Error(), "flat") {
		t.Fatalf("error %q does not name the flat layout", err)
	}
	if errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("flat layout misreported as corruption: %v", err)
	}
}
