// Crash-recovery tests for the journaled store, driven by the disk-level
// fault injector. They live in an external test package because
// faultinject imports pipeline, which imports market: the white-box
// package cannot import the injector without a cycle.
package market_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flexoffer"
	"repro/internal/market"
	"repro/internal/wal"
)

var crashT0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// crashClock is a minimal controllable clock for the external package.
type crashClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *crashClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *crashClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// crashOffer mirrors the white-box testOffer fixture: acceptance at
// t0+2h, assignment at t0+4h, start window t0+6h..t0+10h.
func crashOffer(id string) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		ConsumerID:     "c1",
		CreationTime:   crashT0,
		AcceptanceTime: crashT0.Add(2 * time.Hour),
		AssignmentTime: crashT0.Add(4 * time.Hour),
		EarliestStart:  crashT0.Add(6 * time.Hour),
		LatestStart:    crashT0.Add(10 * time.Hour),
		Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
	}
}

// submitUntilDone pushes maxOps offers through a store whose journal sits
// on a faulty disk and returns the IDs the store acknowledged. Injected
// journal failures surface as ErrJournal and must leave the store
// unchanged; anything else is a test failure.
func submitUntilDone(t *testing.T, s *market.Store, maxOps int) (acked []string) {
	t.Helper()
	for i := 0; i < maxOps; i++ {
		id := fmt.Sprintf("offer-%04d", i)
		switch err := s.Submit(crashOffer(id)); {
		case err == nil:
			acked = append(acked, id)
		case errors.Is(err, market.ErrJournal):
			// Transient fault or broken log; either way the offer must
			// not have been admitted.
		default:
			t.Fatalf("Submit %s: unexpected error %v", id, err)
		}
	}
	return acked
}

// recoveredIDs reopens dir with a clean disk and returns the offer IDs in
// store order plus the journal for further inspection.
func recoveredIDs(t *testing.T, dir string, clock *crashClock) ([]string, *market.Store, *market.Journal) {
	t.Helper()
	s, j, err := market.OpenJournaled(market.JournalOptions{Dir: dir, Clock: clock.Now})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	var ids []string
	for _, rec := range s.List() {
		ids = append(ids, rec.Offer.ID)
	}
	return ids, s, j
}

// TestCrashMidAppendLedger is the acknowledged-offer ledger property end
// to end: under seeded mixes of clean write errors, short writes, fsync
// failures and torn tails, a clean reopen recovers every acknowledged
// offer in submission order, plus at most one trailing offer whose
// record reached the disk but whose fsync failed before the ack.
func TestCrashMidAppendLedger(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			clock := &crashClock{now: crashT0}
			sched := faultinject.NewSchedule(faultinject.Profile{
				Seed:        seed,
				ErrorRate:   0.10,
				PartialRate: 0.10,
				PanicRate:   0.05,
			})
			s, _, err := market.OpenJournaled(market.JournalOptions{
				Dir:   dir,
				Clock: clock.Now,
				FS:    faultinject.WrapFS(wal.DiskFS, sched),
			})
			if err != nil {
				t.Fatalf("OpenJournaled: %v", err)
			}
			acked := submitUntilDone(t, s, 40)
			// Crash: abandon the journal without closing it, so no final
			// snapshot papers over the torn state.

			got, _, _ := recoveredIDs(t, dir, clock)
			if len(got) > len(acked)+1 {
				t.Fatalf("recovered %d offers from %d acked", len(got), len(acked))
			}
			// Every acknowledged offer must survive, in order, as a
			// subsequence of the recovered sequence.
			i := 0
			for _, id := range got {
				if i < len(acked) && id == acked[i] {
					i++
				}
			}
			if i != len(acked) {
				t.Fatalf("acked offers not recovered in order:\nacked %v\ngot   %v", acked, got)
			}
		})
	}
}

// TestCrashTornTailNotResurrected forces every fault to be a torn write
// (write tears, rollback truncate fails) and checks that recovery repairs
// the tail without inventing the unacknowledged offer.
func TestCrashTornTailNotResurrected(t *testing.T) {
	dir := t.TempDir()
	clock := &crashClock{now: crashT0}
	// First three appends clean, then a guaranteed tear.
	sched := faultinject.NewSchedule(faultinject.Profile{Seed: 7, PanicRate: 1})
	clean, _, err := market.OpenJournaled(market.JournalOptions{Dir: dir, Clock: clock.Now})
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := clean.Submit(crashOffer(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Reopen the same directory behind a tearing disk, without closing the
	// clean journal first — the torn write lands after the good records.
	torn, _, err := market.OpenJournaled(market.JournalOptions{
		Dir:   dir,
		Clock: clock.Now,
		FS:    faultinject.WrapFS(wal.DiskFS, sched),
	})
	if err != nil {
		t.Fatalf("OpenJournaled (faulty): %v", err)
	}
	if err := torn.Submit(crashOffer("torn")); !errors.Is(err, market.ErrJournal) {
		t.Fatalf("torn submit = %v, want ErrJournal", err)
	}

	got, s2, j2 := recoveredIDs(t, dir, clock)
	if rec := j2.Recovery(); !rec.WAL.TornTail {
		t.Fatalf("recovery = %+v, want a repaired torn tail", rec)
	}
	want := []string{"good-0", "good-1", "good-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("the torn, unacknowledged offer was resurrected")
	}
}

// TestCrashSameSeedByteIdentical replays the same seeded fault schedule
// against two fresh directories and requires recovery to land both stores
// on byte-identical state.
func TestCrashSameSeedByteIdentical(t *testing.T) {
	const seed = 99
	run := func(t *testing.T) []byte {
		dir := t.TempDir()
		clock := &crashClock{now: crashT0}
		sched := faultinject.NewSchedule(faultinject.Profile{
			Seed:        seed,
			ErrorRate:   0.15,
			PartialRate: 0.10,
			PanicRate:   0.05,
		})
		s, _, err := market.OpenJournaled(market.JournalOptions{
			Dir:   dir,
			Clock: clock.Now,
			FS:    faultinject.WrapFS(wal.DiskFS, sched),
		})
		if err != nil {
			t.Fatalf("OpenJournaled: %v", err)
		}
		submitUntilDone(t, s, 30)

		_, s2, _ := recoveredIDs(t, dir, clock)
		img, err := json.Marshal(s2.List())
		if err != nil {
			t.Fatalf("marshal recovered state: %v", err)
		}
		return img
	}
	a, b := run(t), run(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed recoveries differ:\n%s\n%s", a, b)
	}
}
