package market

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// drainPending consumes every currently queued event without blocking.
func drainPending(sub *Subscription) []StoreEvent {
	var out []StoreEvent
	for {
		ev, ok := sub.TryNext()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestEventStreamLifecycle(t *testing.T) {
	s, clock := newTestStore()
	sub := s.Subscribe()
	defer sub.Close()

	a := testOffer("a")
	if err := s.Submit(a); err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	if err := s.Submit(testOffer("b")); err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	if err := s.Submit(testOffer("c")); err != nil {
		t.Fatalf("Submit c: %v", err)
	}
	if err := s.Accept("a"); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := s.Reject("b"); err != nil {
		t.Fatalf("Reject: %v", err)
	}
	start := a.EarliestStart.Add(time.Hour)
	energies := []float64{0.75, 0.75, 0.75, 0.75}
	if _, err := s.Assign("a", start, energies); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	clock.Advance(3 * time.Hour) // past c's acceptance deadline
	if n, err := s.ExpireOverdue(); err != nil || n != 1 {
		t.Fatalf("ExpireOverdue = %d, %v", n, err)
	}

	events := drainPending(sub)
	want := []struct {
		kind EventKind
		id   string
	}{
		{EventSubmitted, "a"},
		{EventSubmitted, "b"},
		{EventSubmitted, "c"},
		{EventAccepted, "a"},
		{EventRejected, "b"},
		{EventAssigned, "a"},
		{EventExpired, "c"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, ev := range events {
		if ev.Kind != want[i].kind || ev.Offer.ID != want[i].id {
			t.Errorf("event %d = %s %s, want %s %s", i, ev.Kind, ev.Offer.ID, want[i].kind, want[i].id)
		}
		if ev.Replay {
			t.Errorf("event %d: unexpected replay flag", i)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Kind == EventAssigned {
			if !ev.Start.Equal(start) || len(ev.Energies) != len(energies) {
				t.Errorf("assigned event schedule = %v %v", ev.Start, ev.Energies)
			}
		}
	}
}

func TestSubscribeReplayBootstrap(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewShardedStore(4, clock.Now)

	ids := []string{"r1", "r2", "r3", "r4", "r5"}
	for _, id := range ids {
		if err := s.Submit(testOffer(id)); err != nil {
			t.Fatalf("Submit %s: %v", id, err)
		}
	}
	if err := s.Accept("r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject("r2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Accept("r3"); err != nil {
		t.Fatal(err)
	}
	start := testOffer("r3").EarliestStart
	if _, err := s.Assign("r3", start, []float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}

	sub := s.SubscribeReplay()
	defer sub.Close()
	replay := drainPending(sub)
	if len(replay) != len(ids) {
		t.Fatalf("got %d replay events, want %d", len(replay), len(ids))
	}
	got := make(map[string]StoreEvent)
	for _, ev := range replay {
		if !ev.Replay {
			t.Errorf("event for %s not marked replay", ev.Offer.ID)
		}
		if ev.Seq != 0 {
			t.Errorf("replay event for %s has seq %d", ev.Offer.ID, ev.Seq)
		}
		if _, dup := got[ev.Offer.ID]; dup {
			t.Errorf("duplicate replay event for %s", ev.Offer.ID)
		}
		got[ev.Offer.ID] = ev
	}
	wantKinds := map[string]EventKind{
		"r1": EventAccepted,
		"r2": EventRejected,
		"r3": EventAssigned,
		"r4": EventSubmitted,
		"r5": EventSubmitted,
	}
	for id, kind := range wantKinds {
		ev, ok := got[id]
		if !ok {
			t.Errorf("no replay event for %s", id)
			continue
		}
		if ev.Kind != kind {
			t.Errorf("replay kind for %s = %s, want %s", id, ev.Kind, kind)
		}
	}
	if ev := got["r3"]; !ev.Start.Equal(start) || len(ev.Energies) != 4 {
		t.Errorf("replay assignment for r3 = %v %v", ev.Start, ev.Energies)
	}

	// Live events keep flowing after the bootstrap.
	if err := s.Accept("r4"); err != nil {
		t.Fatal(err)
	}
	live := drainPending(sub)
	if len(live) != 1 || live[0].Kind != EventAccepted || live[0].Offer.ID != "r4" || live[0].Replay {
		t.Fatalf("live events after replay = %+v", live)
	}
}

func TestSubscriptionClose(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe()

	if err := s.Submit(testOffer("x")); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	if !sub.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Events published after Close are dropped, and the publisher detaches
	// the subscription.
	if err := s.Submit(testOffer("y")); err != nil {
		t.Fatal(err)
	}
	// Queued events stay readable after Close.
	if ev, ok := sub.Next(); !ok || ev.Offer.ID != "x" {
		t.Fatalf("Next after close = %+v, %v", ev, ok)
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("Next returned an event after drain on a closed subscription")
	}
	s.shards[0].mu.Lock()
	n := len(s.shards[0].subs)
	s.shards[0].mu.Unlock()
	if n != 0 {
		t.Errorf("shard still holds %d subscriptions after close", n)
	}
}

func TestEventStreamCloseWakesNext(t *testing.T) {
	s, _ := newTestStore()
	sub := s.Subscribe()
	done := make(chan bool)
	go func() {
		_, ok := sub.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event from an empty closed subscription")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake up on Close")
	}
}

// TestEventStreamConcurrent checks the per-shard ordering contract under
// concurrent mutators: within each shard, delivered Seq values are
// contiguous, and each offer's submitted event precedes its accepted one.
func TestEventStreamConcurrent(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewShardedStore(8, clock.Now)
	sub := s.Subscribe()
	defer sub.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Submit(testOffer(id)); err != nil {
					t.Errorf("Submit %s: %v", id, err)
					return
				}
				if err := s.Accept(id); err != nil {
					t.Errorf("Accept %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	wantEvents := workers * perWorker * 2
	lastSeq := make(map[int]uint64)
	state := make(map[string]EventKind)
	for i := 0; i < wantEvents; i++ {
		ev, ok := sub.Next()
		if !ok {
			t.Fatalf("stream ended after %d of %d events", i, wantEvents)
		}
		if prev, seen := lastSeq[ev.Shard]; seen && ev.Seq != prev+1 {
			t.Fatalf("shard %d: seq jumped %d -> %d", ev.Shard, prev, ev.Seq)
		}
		lastSeq[ev.Shard] = ev.Seq
		switch ev.Kind {
		case EventSubmitted:
			if prior, seen := state[ev.Offer.ID]; seen {
				t.Fatalf("offer %s: submitted after %s", ev.Offer.ID, prior)
			}
		case EventAccepted:
			if state[ev.Offer.ID] != EventSubmitted {
				t.Fatalf("offer %s: accepted before submitted", ev.Offer.ID)
			}
		default:
			t.Fatalf("unexpected event kind %s", ev.Kind)
		}
		state[ev.Offer.ID] = ev.Kind
	}
	if sub.Pending() != 0 {
		t.Fatalf("%d unexpected trailing events", sub.Pending())
	}
	for id, k := range state {
		if k != EventAccepted {
			t.Errorf("offer %s ended in %s", id, k)
		}
	}
}

// TestSubscribeReplayAtomic races SubscribeReplay against concurrent
// submissions and acceptances: folding replay plus live events must
// converge on the store's final state — nothing lost, nothing duplicated.
func TestSubscribeReplayAtomic(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewShardedStore(8, clock.Now)

	const workers, perWorker = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("ra-%d-%d", w, i)
				if err := s.Submit(testOffer(id)); err != nil {
					t.Errorf("Submit %s: %v", id, err)
					return
				}
				if i%2 == 0 {
					if err := s.Accept(id); err != nil {
						t.Errorf("Accept %s: %v", id, err)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(time.Millisecond) // let some mutations land first
	sub := s.SubscribeReplay()
	defer sub.Close()
	wg.Wait()

	// Drain until the fold covers every offer in its final state. Replay
	// events may race live ones from other shards, but per shard the replay
	// snapshot precedes every subsequent transition, so the fold is exact.
	state := make(map[string]EventKind)
	deadline := time.Now().Add(10 * time.Second)
	for {
		for {
			ev, ok := sub.TryNext()
			if !ok {
				break
			}
			state[ev.Offer.ID] = ev.Kind
		}
		if converged(t, s, state, workers, perWorker) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fold did not converge: %d offers seen", len(state))
		}
		time.Sleep(time.Millisecond)
	}
}

// converged reports whether the folded event state matches the store.
func converged(t *testing.T, s *Store, state map[string]EventKind, workers, perWorker int) bool {
	t.Helper()
	if len(state) != workers*perWorker {
		return false
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			id := fmt.Sprintf("ra-%d-%d", w, i)
			want := EventSubmitted
			if i%2 == 0 {
				want = EventAccepted
			}
			if state[id] != want {
				return false
			}
			rec, ok := s.Get(id)
			if !ok {
				t.Fatalf("offer %s missing from store", id)
			}
			if stateEventKind(rec.State) != want {
				t.Fatalf("store state for %s = %v, fold = %v", id, rec.State, state[id])
			}
		}
	}
	return true
}
