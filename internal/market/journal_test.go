package market

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/obs"
	"repro/internal/wal"
)

// openTestJournaled opens a journaled store over dir with the shared fake
// clock and registers cleanup.
func openTestJournaled(t *testing.T, dir string, clock *fakeClock, opts JournalOptions) (*Store, *Journal) {
	t.Helper()
	opts.Dir = dir
	opts.Clock = clock.Now
	s, j, err := OpenJournaled(opts)
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return s, j
}

// driveLifecycle pushes a deterministic mix of transitions through the
// store: submits, accepts, a reject, one assignment, and an expiry sweep.
func driveLifecycle(t *testing.T, s *Store, clock *fakeClock) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("offer-%d", i))); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Accept(fmt.Sprintf("offer-%d", i)); err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
	}
	if err := s.Reject("offer-4"); err != nil {
		t.Fatalf("Reject: %v", err)
	}
	if _, err := s.Assign("offer-0", t0.Add(6*time.Hour), midEnergies()); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	clock.Advance(3 * time.Hour) // past the acceptance deadline
	if n, err := s.ExpireOverdue(); err != nil || n == 0 {
		t.Fatalf("ExpireOverdue = (%d, %v), want expiries", n, err)
	}
}

// midEnergies builds the midpoint energy vector for testOffer profiles.
func midEnergies() []float64 {
	f := testOffer("template")
	energies := make([]float64, len(f.Profile))
	for k, sl := range f.Profile {
		energies[k] = (sl.MinEnergy + sl.MaxEnergy) / 2
	}
	return energies
}

// stateImage captures the full store state deterministically.
func stateImage(t *testing.T, s *Store) []byte {
	t.Helper()
	img, err := s.marshalState()
	if err != nil {
		t.Fatalf("marshalState: %v", err)
	}
	return img
}

// segmentFiles lists the WAL segment files under dir's shard
// subdirectories, oldest first.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	return segs
}

// closeLogs closes every shard stream directly, without a snapshot, as a
// crash would: recovery must come entirely from the WAL tails.
func closeLogs(t *testing.T, j *Journal) {
	t.Helper()
	for i, js := range j.shards {
		if err := js.log.Close(); err != nil {
			t.Fatalf("close shard %d log: %v", i, err)
		}
	}
}

func TestJournaledStoreRecoversFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	s1, j1 := openTestJournaled(t, dir, clock, JournalOptions{})
	driveLifecycle(t, s1, clock)
	before := stateImage(t, s1)
	if err := j1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, j2 := openTestJournaled(t, dir, clock, JournalOptions{})
	if got := stateImage(t, s2); !bytes.Equal(got, before) {
		t.Fatalf("recovered state differs from the state at shutdown:\n got %s\nwant %s", got, before)
	}
	rec := j2.Recovery()
	// Close wrote a final snapshot, so recovery is snapshot-only.
	if !rec.SnapshotUsed || rec.EventsReplayed != 0 {
		t.Fatalf("recovery after clean shutdown = %+v, want snapshot and no replay", rec)
	}
	if rec.Offers != 8 {
		t.Fatalf("recovered %d offers, want 8", rec.Offers)
	}
	// The recovered store keeps enforcing lifecycle rules and journaling.
	clock.Advance(-3 * time.Hour) // back before the acceptance deadline
	if err := s2.Submit(testOffer("offer-0")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("resubmitting a recovered offer = %v, want ErrDuplicate", err)
	}
	clock.Advance(3 * time.Hour)
	if err := s2.Submit(testOffer("offer-9")); !errors.Is(err, ErrDeadline) {
		t.Fatalf("submit past the advanced clock = %v, want ErrDeadline", err)
	}
}

func TestJournaledStoreReplaysWALTailWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	s1, j1 := openTestJournaled(t, dir, clock, JournalOptions{})
	driveLifecycle(t, s1, clock)
	before := stateImage(t, s1)
	closeLogs(t, j1)

	s2, j2 := openTestJournaled(t, dir, clock, JournalOptions{})
	if got := stateImage(t, s2); !bytes.Equal(got, before) {
		t.Fatalf("WAL-only recovery differs:\n got %s\nwant %s", got, before)
	}
	rec := j2.Recovery()
	if rec.SnapshotUsed || rec.EventsReplayed == 0 {
		t.Fatalf("recovery = %+v, want replay without snapshot", rec)
	}
}

func TestAutomaticSnapshotsCompactTheLog(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	// Tiny segments plus a snapshot every 4 events force both rotation
	// and background snapshots during a short lifecycle.
	s1, j1 := openTestJournaled(t, dir, clock, JournalOptions{SnapshotEvery: 4, SegmentBytes: 256})
	driveLifecycle(t, s1, clock)
	deadline := time.Now().Add(5 * time.Second)
	for j1.Stats().WAL.Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic snapshot was taken")
		}
		time.Sleep(time.Millisecond)
	}
	before := stateImage(t, s1)
	if err := j1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, _ := openTestJournaled(t, dir, clock, JournalOptions{SnapshotEvery: 4, SegmentBytes: 256})
	if got := stateImage(t, s2); !bytes.Equal(got, before) {
		t.Fatalf("recovery after auto-snapshots differs:\n got %s\nwant %s", got, before)
	}
}

// failingJournal is a journal hook that refuses every event.
func failingJournal(event) error { return errors.New("disk on fire") }

func TestJournalFailureLeavesStoreUnchanged(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewStore(clock.Now)
	if err := s.Submit(testOffer("pre")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := s.Accept("pre"); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	before := stateImage(t, s)

	s.setJournal(failingJournal)
	if err := s.Submit(testOffer("a")); !errors.Is(err, ErrJournal) {
		t.Fatalf("Submit = %v, want ErrJournal", err)
	}
	if _, err := s.Assign("pre", t0.Add(6*time.Hour), midEnergies()); !errors.Is(err, ErrJournal) {
		t.Fatalf("Assign = %v, want ErrJournal", err)
	}
	clock.Advance(5 * time.Hour) // past the assignment deadline, so "pre" is overdue
	if _, err := s.ExpireOverdue(); !errors.Is(err, ErrJournal) {
		t.Fatalf("ExpireOverdue = %v, want ErrJournal", err)
	}
	// The deadline-expiry side path of Accept must not apply either.
	if err := s.Accept("a2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Accept unknown = %v, want ErrNotFound", err)
	}
	clock.Advance(-5 * time.Hour)
	if err := s.Reject("pre"); !errors.Is(err, ErrTransition) {
		// "pre" is Accepted; Reject fails before journaling.
		t.Fatalf("Reject accepted = %v, want ErrTransition", err)
	}
	if got := stateImage(t, s); !bytes.Equal(got, before) {
		t.Fatalf("journal failures mutated the store:\n got %s\nwant %s", got, before)
	}
}

func TestSubmitBatchJournalFailureFailsWholeBatch(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewStore(clock.Now)
	s.setJournal(failingJournal)
	batch := flexoffer.Set{testOffer("b0"), testOffer("b1"), testOffer("b2")}
	res := s.SubmitBatch(batch)
	if res.Accepted != 0 || len(res.Failures) != len(batch) {
		t.Fatalf("BatchResult = %+v, want every offer failed", res)
	}
	if err := res.FirstErr(); !errors.Is(err, ErrJournal) {
		t.Fatalf("FirstErr = %v, want ErrJournal", err)
	}
	if failed := res.FailedOffers(batch); len(failed) != len(batch) {
		t.Fatalf("FailedOffers returned %d of %d", len(failed), len(batch))
	}
	if got := s.Stats(); got.Offered != 0 {
		t.Fatalf("store not empty after journal-failed batch: %+v", got)
	}
}

func TestStoreRefusesTransitionsAfterJournalClose(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	s, j := openTestJournaled(t, dir, clock, JournalOptions{})
	if err := s.Submit(testOffer("a")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Submit(testOffer("b")); !errors.Is(err, ErrJournal) {
		t.Fatalf("Submit after Close = %v, want ErrJournal", err)
	}
	// Reads keep working on the frozen state.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("Get after Close lost the record")
	}
}

func TestApplyEventRejectsCorruptEvents(t *testing.T) {
	cases := map[string]event{
		"unknown kind":        {Kind: "explode"},
		"decide unknown id":   {Kind: evDecide, ID: "ghost", To: Accepted},
		"assign unknown id":   {Kind: evAssign, ID: "ghost"},
		"expire unknown id":   {Kind: evExpire, IDs: []string{"ghost"}},
		"submit nil offer":    {Kind: evSubmit, Offers: flexoffer.Set{nil}},
		"assign infeasible":   {Kind: evAssign, ID: "a", Start: t0.Add(6 * time.Hour), Energies: []float64{999}},
		"submit duplicate id": {Kind: evSubmit, Offers: flexoffer.Set{testOffer("a")}},
	}
	for name, ev := range cases {
		t.Run(name, func(t *testing.T) {
			clock := &fakeClock{now: t0}
			s := NewStore(clock.Now)
			if err := s.Submit(testOffer("a")); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if err := s.applyEvent(ev); err == nil {
				t.Fatalf("applyEvent(%s) accepted a corrupt event", name)
			}
		})
	}
	// An empty submit event is a harmless no-op, not corruption.
	s := NewStore(nil)
	if err := s.applyEvent(event{Kind: evSubmit}); err != nil {
		t.Fatalf("applyEvent(empty submit) = %v", err)
	}
}

func TestRestoreStateRejectsInconsistentSnapshots(t *testing.T) {
	s := NewStore(nil)
	for name, data := range map[string]string{
		"not json":        "{",
		"order too long":  `{"order":["a"],"records":{}}`,
		"order missing":   `{"order":["a"],"records":{"b":{"offer":null,"state":"offered"}}}`,
		"record no offer": `{"order":["a"],"records":{"a":{"offer":null,"state":"offered"}}}`,
	} {
		if err := s.restoreState([]byte(data)); err == nil {
			t.Errorf("restoreState(%s) accepted a bad snapshot", name)
		}
	}
}

func TestCorruptInteriorJournalRefusedTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	s1, j1 := openTestJournaled(t, dir, clock, JournalOptions{})
	for i := 0; i < 5; i++ {
		if err := s1.Submit(testOffer(fmt.Sprintf("offer-%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Crash without snapshot.
	closeLogs(t, j1)
	segs := segmentFiles(t, dir)
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}

	t.Run("torn tail repaired", func(t *testing.T) {
		if err := os.WriteFile(last, data[:len(data)-5], 0o644); err != nil {
			t.Fatalf("tear segment: %v", err)
		}
		s2, j2 := openTestJournaled(t, dir, clock, JournalOptions{})
		rec := j2.Recovery()
		if !rec.WAL.TornTail || rec.Offers != 4 {
			t.Fatalf("recovery = %+v, want torn tail and 4 offers", rec)
		}
		if _, ok := s2.Get("offer-3"); !ok {
			t.Fatal("offer-3 lost")
		}
		if _, ok := s2.Get("offer-4"); ok {
			t.Fatal("the torn, unacknowledgeable record was resurrected")
		}
		j2.Close()
	})

	t.Run("interior corruption refused", func(t *testing.T) {
		mangled := append([]byte(nil), data...)
		mangled[12] ^= 0xff // inside the first record's payload
		if err := os.WriteFile(last, mangled, 0o644); err != nil {
			t.Fatalf("corrupt segment: %v", err)
		}
		_, _, err := OpenJournaled(JournalOptions{Dir: dir, Clock: clock.Now})
		if !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("OpenJournaled on corrupt journal = %v, want wal.ErrCorrupt", err)
		}
	})
}

func TestJournalMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: t0}
	s, j := openTestJournaled(t, dir, clock, JournalOptions{})
	if err := s.Submit(testOffer("a")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	reg := obs.NewRegistry()
	RegisterJournalMetrics(reg, j)
	RegisterStoreMetrics(reg, s)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"wal_appends_total 1", "wal_fsyncs_total", "wal_bytes_total",
		"wal_segments 1", "snapshot_writes_total 1", "snapshot_errors_total 0",
		"snapshot_last_lsn 1", "recovery_duration_seconds", "recovery_events_replayed 0",
		"offers_expired_total 0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
