package market

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newObservedServer(t *testing.T) (*Client, *obs.Registry, *obs.HTTPMetrics, *fakeClock) {
	t.Helper()
	clock := &fakeClock{now: t0}
	store := NewStore(clock.Now)
	reg := obs.NewRegistry()
	m := obs.NewHTTPMetrics(reg, "mirabeld")
	RegisterStoreMetrics(reg, store)
	ts := httptest.NewServer(NewServer(store, WithObservability(m, nil)))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}, reg, m, clock
}

// TestMiddlewareScriptedSequence drives a fixed request script through the
// instrumented server and asserts the exact counter and histogram state
// the middleware must have accumulated.
func TestMiddlewareScriptedSequence(t *testing.T) {
	client, _, m, _ := newObservedServer(t)

	// Script: 2 submits (201), 1 duplicate submit (409), 1 list (200),
	// 1 get of a missing offer (404), 1 accept (200), 1 stats (200).
	if err := client.Submit(testOffer("s1")); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(testOffer("s2")); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(testOffer("s1")); err == nil {
		t.Fatal("duplicate submit succeeded")
	}
	if _, err := client.List(""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("ghost"); err == nil {
		t.Fatal("ghost get succeeded")
	}
	if err := client.Accept("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		route, method, status string
		want                  uint64
	}{
		{"/offers", "POST", "2xx", 2},
		{"/offers", "POST", "4xx", 1}, // duplicate -> 409
		{"/offers", "GET", "2xx", 1},
		{"/offers/{id}", "GET", "4xx", 1}, // ghost -> 404
		{"/offers/{id}/accept", "POST", "2xx", 1},
		{"/stats", "GET", "2xx", 1},
	} {
		if got := m.Requests.With(tc.route, tc.method, tc.status).Value(); got != tc.want {
			t.Errorf("requests{route=%q,method=%q,status=%q} = %d, want %d",
				tc.route, tc.method, tc.status, got, tc.want)
		}
	}

	// Latency histograms saw every request on their route, in plausible
	// buckets: an in-process request cannot take 10 seconds, so the last
	// bucket boundary must already hold the full count.
	if got := m.Latency.With("/offers").Snapshot().Count; got != 4 {
		t.Errorf("latency{/offers} count = %d, want 4", got)
	}
	snap := m.Latency.With("/offers/{id}/accept").Snapshot()
	if snap.Count != 1 {
		t.Errorf("latency{accept} count = %d, want 1", snap.Count)
	}
	var cum uint64
	for i := range snap.Bounds {
		cum += snap.Counts[i]
	}
	if cum != snap.Count {
		t.Errorf("accept latency fell in +Inf bucket (counts %v)", snap.Counts)
	}
}

// TestStoreGaugesTrackLifecycle renders the registry after lifecycle
// transitions and checks the per-state gauge samples.
func TestStoreGaugesTrackLifecycle(t *testing.T) {
	client, reg, _, clock := newObservedServer(t)
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := client.Submit(testOffer(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Accept("a"); err != nil {
		t.Fatal(err)
	}
	if err := client.Reject("b"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Hour)
	if _, err := client.Expire(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`market_offers{state="offered"} 0`,
		`market_offers{state="accepted"} 1`,
		`market_offers{state="rejected"} 1`,
		`market_offers{state="expired"} 2`,
		`market_sweeper_expired_total 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestRouteLabel(t *testing.T) {
	for path, want := range map[string]string{
		"/offers":                         "/offers",
		"/offers/h1":                      "/offers/{id}",
		"/offers/family-house-001/peak-1": "/offers/{id}",
		"/offers/h1/accept":               "/offers/{id}/accept",
		"/offers/a/b/reject":              "/offers/{id}/reject",
		"/offers/h1/assign":               "/offers/{id}/assign",
		"/stats":                          "/stats",
		"/expire":                         "/expire",
		"/metrics":                        "/metrics",
		"/healthz":                        "/healthz",
		"/readyz":                         "/readyz",
		"/debug/pprof/heap":               "/debug/pprof",
		"/favicon.ico":                    "other",
	} {
		r := httptest.NewRequest("GET", path, nil)
		if got := RouteLabel(r); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestRoutesRegistered asserts the Routes inventory and the mux agree:
// every advertised route must reach a market handler (handlers answer an
// unknown method with 405), never the mux's own 404.
func TestRoutesRegistered(t *testing.T) {
	store := NewStore(func() time.Time { return t0 })
	srv := NewServer(store)
	for _, route := range Routes() {
		path := strings.NewReplacer("{id}", "some-id").Replace(route.Pattern)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, httptest.NewRequest("PATCH", path, nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("PATCH %s = %d, want 405 (route not wired to a handler?)", path, rr.Code)
		}
	}
}
