package market

import (
	"sync"
	"time"

	"repro/internal/flexoffer"
)

// EventKind names one lifecycle transition published on the store's event
// stream.
type EventKind string

const (
	// EventSubmitted: an offer entered the store (Submit or SubmitBatch).
	EventSubmitted EventKind = "submitted"
	// EventAccepted: an offered flex-offer was accepted.
	EventAccepted EventKind = "accepted"
	// EventRejected: an offered flex-offer was rejected.
	EventRejected EventKind = "rejected"
	// EventAssigned: an accepted offer received a concrete schedule.
	EventAssigned EventKind = "assigned"
	// EventExpired: a lifecycle deadline lapsed (a sweep, or the lazy
	// expiry observed during accept/assign).
	EventExpired EventKind = "expired"
)

// stateEventKind maps a lifecycle state onto the event kind a record in
// that state implies — the translation SubscribeReplay uses to render the
// store's current contents as a bootstrap event sequence.
func stateEventKind(st State) EventKind {
	switch st {
	case Accepted:
		return EventAccepted
	case Rejected:
		return EventRejected
	case Assigned:
		return EventAssigned
	case Expired:
		return EventExpired
	default:
		return EventSubmitted
	}
}

// StoreEvent is one store lifecycle transition as delivered to event-stream
// subscribers. Events from one shard arrive in exactly that shard's
// mutation order with monotonically increasing Seq; events from different
// shards interleave arbitrarily (the shards are independent, so there is no
// cross-shard order to preserve). The Offer pointer is shared with the
// store and must be treated as read-only — the store never mutates an
// offer after insert, and neither may a consumer.
type StoreEvent struct {
	// Kind is the transition that produced the event.
	Kind EventKind
	// Shard is the index of the shard the offer lives in.
	Shard int
	// Seq numbers live events within their shard: monotonically
	// increasing, and contiguous from the subscriber's first delivered
	// live event of that shard. Replay events carry Seq 0.
	Seq uint64
	// Replay marks a synthetic bootstrap event from SubscribeReplay: it
	// describes a record's state at subscription time, not a transition
	// that happened while subscribed.
	Replay bool
	// At is the store-clock time of the transition (for replay events:
	// SubmittedAt for offered records, DecidedAt otherwise).
	At time.Time
	// Offer is the affected offer; read-only, shared with the store.
	Offer *flexoffer.FlexOffer
	// Start and Energies carry the schedule of an EventAssigned.
	Start time.Time
	// Energies is the assigned per-slice energy vector of an EventAssigned.
	Energies []float64
}

// Subscription is one consumer's ordered view of the store's event stream.
// Enqueueing never blocks, so a slow consumer delays only itself — never a
// store mutation, which publishes while holding a shard's write lock. By
// default the queue is unbounded; WithHighWater bounds it, and on overflow
// the subscription latches a lagged state (see Lagged) instead of growing
// forever: publishers detach it, already-queued events stay readable, and
// the consumer is expected to resync with a fresh SubscribeReplay.
type Subscription struct {
	mu        sync.Mutex
	cond      *sync.Cond   // signalled on enqueue, lag latch and Close
	queue     []StoreEvent // guarded by mu
	closed    bool         // guarded by mu
	lagged    bool         // guarded by mu: latched when the high-water mark overflowed
	dropped   uint64       // guarded by mu: live events refused since the latch
	highWater int          // immutable after subscribe; 0 = unbounded
}

// SubOption configures a subscription at attach time.
type SubOption func(*Subscription)

// WithHighWater bounds the subscription's pending queue to n events. A
// live event that would grow the queue past n is not delivered: the
// subscription latches lagged instead, publishers drop it, and the
// consumer must resync (typically via a fresh SubscribeReplay). n <= 0
// leaves the queue unbounded. The SubscribeReplay bootstrap is exempt —
// it is inherently O(resident records) and useless when truncated.
func WithHighWater(n int) SubOption {
	return func(sub *Subscription) { sub.highWater = n }
}

// newSubscription builds an empty open subscription.
func newSubscription(opts ...SubOption) *Subscription {
	sub := &Subscription{}
	sub.cond = sync.NewCond(&sub.mu)
	for _, opt := range opts {
		opt(sub)
	}
	return sub
}

// Next blocks until an event is available and returns it. ok is false once
// the subscription has been closed — or has latched lagged — and every
// queued event was consumed.
func (sub *Subscription) Next() (ev StoreEvent, ok bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for len(sub.queue) == 0 && !sub.closed && !sub.lagged {
		sub.cond.Wait()
	}
	if len(sub.queue) == 0 {
		return StoreEvent{}, false
	}
	ev = sub.queue[0]
	sub.queue = sub.queue[1:]
	return ev, true
}

// TryNext returns the next pending event without blocking; ok is false
// when the queue is currently empty (closed or not).
func (sub *Subscription) TryNext() (ev StoreEvent, ok bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if len(sub.queue) == 0 {
		return StoreEvent{}, false
	}
	ev = sub.queue[0]
	sub.queue = sub.queue[1:]
	return ev, true
}

// Pending reports the number of queued, not-yet-consumed events.
func (sub *Subscription) Pending() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.queue)
}

// Closed reports whether Close has been called.
func (sub *Subscription) Closed() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.closed
}

// Lagged reports whether the subscription overflowed its high-water mark
// and was detached from the live stream. A lagged subscription's queue
// holds the events accepted before the latch — a contiguous but truncated
// prefix — so a consumer that needs the full state must discard its fold
// and resync with a fresh SubscribeReplay.
func (sub *Subscription) Lagged() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.lagged
}

// Dropped reports how many live deliveries were refused since the lag
// latch. It undercounts the events the consumer missed — each shard stops
// attempting delivery after its first refusal — so treat any non-zero
// value as "resync required", not as a gap size.
func (sub *Subscription) Dropped() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// HighWater reports the configured queue bound (0 = unbounded).
func (sub *Subscription) HighWater() int { return sub.highWater }

// Close detaches the subscription: publishers drop it on their next
// delivery attempt, a blocked Next wakes up, and already-queued events
// remain readable until drained.
func (sub *Subscription) Close() {
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	sub.cond.Broadcast()
}

// enqueue appends ev and reports whether the subscription is still live;
// publishers discard the subscription on false. A live event that would
// grow a bounded queue past its high-water mark is refused: the
// subscription latches lagged (waking any blocked Next so the consumer
// notices promptly) and every publisher drops it on their next attempt.
func (sub *Subscription) enqueue(ev StoreEvent) bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed || sub.lagged {
		if sub.lagged && !sub.closed {
			sub.dropped++
		}
		return false
	}
	if sub.highWater > 0 && len(sub.queue) >= sub.highWater {
		sub.lagged = true
		sub.dropped++
		sub.cond.Broadcast()
		return false
	}
	sub.queue = append(sub.queue, ev)
	sub.cond.Signal()
	return true
}

// enqueueBootstrap appends a SubscribeReplay bootstrap event, exempt from
// the high-water mark: the bootstrap is the resync mechanism itself, so
// truncating it would make recovery from lag impossible.
func (sub *Subscription) enqueueBootstrap(ev StoreEvent) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.queue = append(sub.queue, ev)
	sub.cond.Signal()
}

// Subscribe attaches a live event-stream consumer: every lifecycle
// transition applied after Subscribe returns is delivered, in per-shard
// mutation order (see StoreEvent). The consumer must eventually call
// Close — or bound the queue with WithHighWater — or it grows without
// bound.
func (s *Store) Subscribe(opts ...SubOption) *Subscription { return s.subscribe(false, opts...) }

// SubscribeReplay attaches a consumer bootstrapped with the store's
// current contents: for every resident record, one synthetic event
// (Replay=true) describing its current lifecycle state is queued before
// any live event of that record's shard, with no transition lost or
// duplicated in between — the registration and the per-shard snapshot
// happen under the same shard lock. A consumer that folds replay events
// like live ones therefore converges on the store's exact state. The
// bootstrap itself is exempt from any WithHighWater bound (it is the
// resync mechanism); only live events past it count against the mark.
func (s *Store) SubscribeReplay(opts ...SubOption) *Subscription { return s.subscribe(true, opts...) }

// subscribe registers a new subscription on every shard, optionally
// synthesizing the bootstrap replay under each shard's lock.
func (s *Store) subscribe(replay bool, opts ...SubOption) *Subscription {
	sub := newSubscription(opts...)
	for k, sh := range s.shards {
		sh.mu.Lock()
		if replay {
			for _, id := range sh.order {
				r := sh.records[id]
				ev := StoreEvent{Kind: stateEventKind(r.State), Shard: k, Replay: true, At: r.SubmittedAt, Offer: r.Offer}
				if r.State != Offered {
					ev.At = r.DecidedAt
				}
				if r.Assignment != nil {
					ev.Start, ev.Energies = r.Assignment.Start, r.Assignment.Energies
				}
				sub.enqueueBootstrap(ev)
			}
		}
		sh.subs = append(sh.subs, sub)
		sh.mu.Unlock()
	}
	return sub
}

// publishLocked delivers one live event to every attached subscriber,
// numbering it with the shard's event sequence. It is called with sh.mu
// held at the mutation site (insertLocked, transitionLocked), so each
// shard's delivery order is exactly its mutation order and a concurrent
// SubscribeReplay can never observe a record without also receiving every
// later transition. Closed subscriptions are dropped in place.
func (sh *shard) publishLocked(kind EventKind, r *Record, at time.Time) {
	if len(sh.subs) == 0 {
		return
	}
	sh.eventSeq++
	ev := StoreEvent{Kind: kind, Shard: sh.idx, Seq: sh.eventSeq, At: at, Offer: r.Offer}
	if kind == EventAssigned && r.Assignment != nil {
		ev.Start, ev.Energies = r.Assignment.Start, r.Assignment.Energies
	}
	live := sh.subs[:0]
	for _, sub := range sh.subs {
		if sub.enqueue(ev) {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(sh.subs); i++ {
		sh.subs[i] = nil // let dropped subscriptions be collected
	}
	sh.subs = live
}
