package market

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// numStates is the number of lifecycle states, sizing the per-shard
// per-state bookkeeping arrays.
const numStates = int(Expired) + 1

// lockMeter is a sync.RWMutex with contention accounting: writer and
// reader acquisitions count their wait time, the current queue depth is
// tracked while callers block, and writer hold time is measured between
// Lock and Unlock. The counters feed the market_shard_* metric families
// (metrics.go), which is how flexload reports per-shard contention. The
// meter reads the wall clock directly — lock timings are observability,
// not replayable lifecycle state, so the injected store clock does not
// apply.
type lockMeter struct {
	mu sync.RWMutex

	waiters   atomic.Int64  // goroutines currently blocked in Lock/RLock
	waitNanos atomic.Uint64 // cumulative time spent waiting for the lock
	holdNanos atomic.Uint64 // cumulative time the write lock was held
	heldAt    time.Time     // guarded by mu: when the write lock was taken
}

// Lock acquires the write lock, accounting wait time and queue depth.
func (m *lockMeter) Lock() {
	m.waiters.Add(1)
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	m.waiters.Add(-1)
	m.waitNanos.Add(uint64(now.Sub(start)))
	m.heldAt = now
}

// Unlock releases the write lock, accounting the hold time.
func (m *lockMeter) Unlock() {
	//lint:ignore mutexguard Unlock runs with the write lock held by contract; it is the release half of Lock
	m.holdNanos.Add(uint64(time.Since(m.heldAt)))
	m.mu.Unlock()
}

// RLock acquires the read lock, accounting wait time and queue depth.
// Reader hold time is not tracked: readers overlap, so a cumulative sum
// would not mean anything.
func (m *lockMeter) RLock() {
	m.waiters.Add(1)
	start := time.Now()
	m.mu.RLock()
	m.waitNanos.Add(uint64(time.Since(start)))
	m.waiters.Add(-1)
}

// RUnlock releases the read lock.
func (m *lockMeter) RUnlock() { m.mu.RUnlock() }

// ShardContention is one shard's point-in-time contention counters, as
// exported on /metrics and echoed into flexload reports.
type ShardContention struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// LockWaitSeconds is the cumulative time callers spent waiting for
	// the shard lock (readers and writers).
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
	// LockHoldSeconds is the cumulative time the write lock was held.
	LockHoldSeconds float64 `json:"lock_hold_seconds"`
	// QueueDepth is the number of goroutines blocked on the lock right
	// now.
	QueueDepth int64 `json:"queue_depth"`
	// Offers is the number of records resident in the shard.
	Offers int `json:"offers"`
}

// expiryEntry schedules one deadline check: when `at` has passed and the
// record is still in `state`, the offer is overdue. Entries are never
// removed when a record moves on — they become stale and are discarded
// the next time they surface at the top of the heap (lazy deletion).
type expiryEntry struct {
	at    time.Time
	id    string
	state State
}

// expiryHeap is a min-heap of expiry entries ordered by deadline (ties
// broken by ID so sweep order is deterministic for a given store state).
type expiryHeap []expiryEntry

func (h expiryHeap) Len() int { return len(h) }
func (h expiryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}
func (h expiryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)   { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
func (h expiryHeap) peek() expiryEntry { return h[0] }

// shard is one partition of the store: a records map plus the indexes
// that keep every read and sweep path proportional to its result size —
// per-state ID lists for filtered listings, incremental state counts and
// an energy sum for Stats, and a deadline min-heap for the sweeper.
type shard struct {
	mu lockMeter

	// idx is the shard's index within the store; immutable.
	idx int

	records map[string]*Record // guarded by mu
	// order is the shard-local submission order, append-only; listing
	// cursors index into it, so positions are stable forever.
	order []string // guarded by mu
	// byState[st] lists the IDs that entered state st, append-only with
	// lazy deletion: an entry whose record has moved on is skipped at
	// read time. A record enters each state at most once (the lifecycle
	// is a DAG), so no list ever holds duplicates.
	byState [numStates][]string // guarded by mu
	// counts is the live number of records per state.
	counts [numStates]int // guarded by mu
	// energy is the summed TotalAvgEnergy of non-terminal (offered +
	// accepted) records.
	energy float64 // guarded by mu
	// expiry schedules the shard's deadline checks for the sweeper.
	expiry expiryHeap // guarded by mu
	// sweepExamined counts expiry-heap entries the sweeper popped (due or
	// stale) — the regression guard that sweep cost tracks the expired
	// count, not the store size.
	sweepExamined uint64 // guarded by mu

	// subs are the event-stream subscriptions attached to this shard;
	// publishLocked (events.go) delivers every mutation to them and drops
	// the closed ones.
	subs []*Subscription // guarded by mu
	// eventSeq numbers this shard's published live events.
	eventSeq uint64 // guarded by mu

	// journal, when non-nil, persists an event before the mutation it
	// describes is applied; a journal error aborts the transition with
	// ErrJournal. Attached by OpenJournaled before the store serves
	// requests; immutable afterwards. Always invoked with mu held, so
	// this shard's WAL stream order is its mutation order.
	journal func(ev event) error
}

func newShard(idx int) *shard {
	return &shard{idx: idx, records: make(map[string]*Record)}
}

// journalLocked persists ev through the shard's attached journal, if any.
// Callers hold sh.mu and apply the mutation ev describes only on nil
// return — the write-ahead contract: nothing is acknowledged that is not
// durable first.
func (sh *shard) journalLocked(ev event) error {
	if sh.journal == nil {
		return nil
	}
	if err := sh.journal(ev); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// insertLocked adds a freshly submitted record and maintains every index.
//
//flexvet:journaled journalLocked
func (sh *shard) insertLocked(f *Record) {
	id := f.Offer.ID
	if f.offerRaw == nil {
		if b, err := json.Marshal(f.Offer); err == nil {
			f.offerRaw = b
		}
	}
	sh.records[id] = f
	sh.order = append(sh.order, id)
	sh.byState[Offered] = append(sh.byState[Offered], id)
	sh.counts[Offered]++
	sh.energy += f.Offer.TotalAvgEnergy()
	if !f.Offer.AcceptanceTime.IsZero() {
		heap.Push(&sh.expiry, expiryEntry{at: f.Offer.AcceptanceTime, id: id, state: Offered})
	}
	sh.publishLocked(EventSubmitted, f, f.SubmittedAt)
}

// transitionLocked moves a record to state `to` at time `at` and
// maintains the per-state indexes, counts and the energy sum.
//
//flexvet:journaled journalLocked
func (sh *shard) transitionLocked(r *Record, to State, at time.Time) {
	from := r.State
	sh.counts[from]--
	sh.counts[to]++
	sh.byState[to] = append(sh.byState[to], r.Offer.ID)
	if nonTerminal(from) && !nonTerminal(to) {
		sh.energy -= r.Offer.TotalAvgEnergy()
	}
	if to == Accepted && !r.Offer.AssignmentTime.IsZero() {
		heap.Push(&sh.expiry, expiryEntry{at: r.Offer.AssignmentTime, id: r.Offer.ID, state: Accepted})
	}
	r.State = to
	r.DecidedAt = at
	sh.publishLocked(stateEventKind(to), r, at)
}

// nonTerminal reports whether records in st still count as flexible
// energy on offer.
func nonTerminal(st State) bool { return st == Offered || st == Accepted }

// overdueLocked pops every due expiry entry off the heap and returns the
// IDs whose records are genuinely overdue, in deterministic (deadline,
// ID) order. Stale entries — the record moved on since the entry was
// pushed — are discarded permanently; due entries are returned to the
// caller, who must either expire them or push them back (rollbackLocked)
// if the sweep cannot be made durable.
func (sh *shard) overdueLocked(now time.Time) []expiryEntry {
	var due []expiryEntry
	for len(sh.expiry) > 0 {
		e := sh.expiry.peek()
		if !now.After(e.at) {
			break
		}
		heap.Pop(&sh.expiry)
		sh.sweepExamined++
		r := sh.records[e.id]
		if r == nil || r.State != e.state {
			continue // stale: the record moved on before the deadline hit
		}
		due = append(due, e)
	}
	return due
}

// rollbackLocked pushes due entries back onto the heap after a failed
// (unjournalable) sweep, so no deadline check is ever lost.
func (sh *shard) rollbackLocked(due []expiryEntry) {
	for _, e := range due {
		heap.Push(&sh.expiry, e)
	}
}

// compactStateLocked rewrites byState[st] without stale entries when more
// than half the list is stale — amortised O(1) per transition, and it
// never runs for terminal states (their entries cannot go stale).
func (sh *shard) compactStateLocked(st State) {
	if len(sh.byState[st]) <= 2*sh.counts[st] || len(sh.byState[st]) < 64 {
		return
	}
	live := make([]string, 0, sh.counts[st])
	for _, id := range sh.byState[st] {
		if r := sh.records[id]; r != nil && r.State == st {
			live = append(live, id)
		}
	}
	sh.byState[st] = live
}

// rebuildIndexesLocked derives every index (order stays as loaded) from
// the records map after a snapshot restore: per-state lists, counts,
// energy and the expiry heap.
func (sh *shard) rebuildIndexesLocked() {
	sh.byState = [numStates][]string{}
	sh.counts = [numStates]int{}
	sh.energy = 0
	sh.expiry = sh.expiry[:0]
	for _, id := range sh.order {
		r := sh.records[id]
		sh.counts[r.State]++
		sh.byState[r.State] = append(sh.byState[r.State], id)
		if nonTerminal(r.State) {
			sh.energy += r.Offer.TotalAvgEnergy()
		}
		switch r.State {
		case Offered:
			if !r.Offer.AcceptanceTime.IsZero() {
				sh.expiry = append(sh.expiry, expiryEntry{at: r.Offer.AcceptanceTime, id: id, state: Offered})
			}
		case Accepted:
			if !r.Offer.AssignmentTime.IsZero() {
				sh.expiry = append(sh.expiry, expiryEntry{at: r.Offer.AssignmentTime, id: id, state: Accepted})
			}
		}
	}
	heap.Init(&sh.expiry)
}
