package market

import (
	"fmt"
	"testing"
	"time"
)

// TestSweepCostProportionalToExpiredCount pins the sweeper's cost model:
// ExpireOverdue pops the per-shard deadline heaps, so the work done is
// counted in heap entries examined — and that count must track the number
// of offers actually expired (plus lazily-deleted stale entries), never
// the store's resident size. The guard is the sweepExamined counter, not
// wall clock, so the test is immune to scheduler noise.
func TestSweepCostProportionalToExpiredCount(t *testing.T) {
	const farOffers, nearOffers = 2000, 50
	for _, shards := range []int{1, 5} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			clock := &fakeClock{now: t0}
			s := NewShardedStore(shards, clock.Now)
			// A large population whose deadlines are far in the future...
			for i := 0; i < farOffers; i++ {
				f := testOffer(fmt.Sprintf("far-%04d", i))
				f.AcceptanceTime = t0.Add(100 * time.Hour)
				f.AssignmentTime = t0.Add(101 * time.Hour)
				f.EarliestStart = t0.Add(102 * time.Hour)
				f.LatestStart = t0.Add(106 * time.Hour)
				if err := s.Submit(f); err != nil {
					t.Fatalf("Submit far: %v", err)
				}
			}
			// ...plus a small population about to lapse.
			for i := 0; i < nearOffers; i++ {
				f := testOffer(fmt.Sprintf("near-%04d", i))
				f.AcceptanceTime = t0.Add(time.Hour)
				if err := s.Submit(f); err != nil {
					t.Fatalf("Submit near: %v", err)
				}
			}

			clock.Advance(90 * time.Minute) // past the near deadlines only
			before := s.sweepExaminedTotal()
			n, err := s.ExpireOverdue()
			if err != nil {
				t.Fatalf("ExpireOverdue: %v", err)
			}
			if n != nearOffers {
				t.Fatalf("expired %d offers, want %d", n, nearOffers)
			}
			examined := s.sweepExaminedTotal() - before
			// No offer transitioned before the sweep, so there are no stale
			// entries: the sweep must examine exactly the expired offers.
			if examined != nearOffers {
				t.Fatalf("sweep examined %d heap entries to expire %d offers (resident %d)",
					examined, nearOffers, farOffers+nearOffers)
			}

			// An idle follow-up sweep examines nothing at all.
			before = s.sweepExaminedTotal()
			if n, err := s.ExpireOverdue(); err != nil || n != 0 {
				t.Fatalf("idle sweep = (%d, %v)", n, err)
			}
			if examined := s.sweepExaminedTotal() - before; examined != 0 {
				t.Fatalf("idle sweep examined %d entries", examined)
			}

			if got := s.Stats(); got.Expired != nearOffers || got.Offered != farOffers {
				t.Fatalf("Stats = %+v", got)
			}
		})
	}
}

// TestSweepSkipsStaleEntriesOnce checks lazy deletion: an offer that moves
// on before its deadline leaves a stale heap entry behind, which the next
// due sweep discards exactly once and never again.
func TestSweepSkipsStaleEntriesOnce(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewShardedStore(3, clock.Now)
	for i := 0; i < 10; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("o-%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Accept half: their Offered-state acceptance entries go stale, and
	// each accept pushes a fresh Accepted-state assignment entry.
	for i := 0; i < 5; i++ {
		if err := s.Accept(fmt.Sprintf("o-%d", i)); err != nil {
			t.Fatalf("Accept: %v", err)
		}
	}

	clock.Advance(3 * time.Hour) // past acceptance (t0+2h), before assignment (t0+4h)
	before := s.sweepExaminedTotal()
	n, err := s.ExpireOverdue()
	if err != nil {
		t.Fatalf("ExpireOverdue: %v", err)
	}
	if n != 5 {
		t.Fatalf("expired %d, want the 5 still-offered records", n)
	}
	// 5 due entries + 5 stale acceptance entries of the accepted offers.
	if examined := s.sweepExaminedTotal() - before; examined != 10 {
		t.Fatalf("sweep examined %d entries, want 10 (5 due + 5 stale)", examined)
	}

	clock.Advance(2 * time.Hour) // past the assignment deadline
	before = s.sweepExaminedTotal()
	n, err = s.ExpireOverdue()
	if err != nil {
		t.Fatalf("second ExpireOverdue: %v", err)
	}
	if n != 5 {
		t.Fatalf("second sweep expired %d, want the 5 accepted records", n)
	}
	// Only the 5 assignment entries remain; the stale ones are gone.
	if examined := s.sweepExaminedTotal() - before; examined != 5 {
		t.Fatalf("second sweep examined %d entries, want 5", examined)
	}
	if got := s.Stats(); got.Expired != 10 {
		t.Fatalf("Stats = %+v, want everything expired", got)
	}
}
