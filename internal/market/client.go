package market

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/flexoffer"
)

// ShedError reports a request refused by the server's overload
// protection: an admission-control shed (429 when the wait queue is
// full, 503 when draining or the wait deadline passed) or a request
// timeout. It carries the server's Retry-After hint so retrying callers
// can pace themselves to the server's recovery window instead of their
// own backoff guess.
type ShedError struct {
	// StatusCode is the HTTP status the server answered with
	// (429 or 503).
	StatusCode int
	// RetryAfter is the server's Retry-After hint; zero when the header
	// was absent or unparseable.
	RetryAfter time.Duration
	// Message is the server's error envelope text, when present.
	Message string
}

// Error implements error.
func (e *ShedError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = http.StatusText(e.StatusCode)
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("market client: server shed request (%d): %s (retry after %s)", e.StatusCode, msg, e.RetryAfter)
	}
	return fmt.Sprintf("market client: server shed request (%d): %s", e.StatusCode, msg)
}

// RetryAfterHint reports the server's suggested wait before retrying;
// zero means the server gave none. Retry loops discover the hint
// through this method (via errors.As on any interface carrying it)
// without importing this package.
func (e *ShedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// shedStatus reports whether code is one of the overload-shedding
// statuses admission control answers with.
func shedStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// parseRetryAfter decodes a Retry-After header value in delta-seconds
// form. The HTTP-date form is not produced by this server and decodes
// to zero (no hint).
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Client talks to a market Server over HTTP.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7654".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs a request and decodes the JSON response into out (when out is
// non-nil). Non-2xx responses are turned into errors carrying the server's
// message.
func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("market client: encode: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, reader)
	if err != nil {
		return fmt.Errorf("market client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("market client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		if shedStatus(resp.StatusCode) {
			return &ShedError{
				StatusCode: resp.StatusCode,
				RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
				Message:    eb.Error,
			}
		}
		if eb.Error != "" {
			return fmt.Errorf("market client: %s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("market client: %s", resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("market client: decode: %w", err)
		}
	}
	return nil
}

// Submit collects an offer.
func (c *Client) Submit(f *flexoffer.FlexOffer) error {
	return c.do(http.MethodPost, "/offers", f, nil)
}

// Accept accepts an offer.
func (c *Client) Accept(id string) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/accept", nil, nil)
}

// Reject rejects an offer.
func (c *Client) Reject(id string) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/reject", nil, nil)
}

// Assign fixes an accepted offer's schedule.
func (c *Client) Assign(id string, start time.Time, energies []float64) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/assign",
		assignRequest{Start: start, Energies: energies}, nil)
}

// Get fetches one record.
func (c *Client) Get(id string) (Record, error) {
	var rec Record
	err := c.do(http.MethodGet, "/offers/"+url.PathEscape(id), nil, &rec)
	return rec, err
}

// List fetches records, optionally filtered by state.
func (c *Client) List(state string) ([]Record, error) {
	path := "/offers"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	var recs []Record
	err := c.do(http.MethodGet, path, nil, &recs)
	return recs, err
}

// pageQuery renders q as the /offers query string, always naming a limit
// so the server answers with the paginated envelope.
func pageQuery(q ListQuery) string {
	values := url.Values{}
	for _, st := range q.States {
		values.Set("state", st.String())
	}
	if q.Owner != "" {
		values.Set("owner", q.Owner)
	}
	if q.Limit > 0 {
		values.Set("limit", strconv.Itoa(q.Limit))
	} else {
		// Force the paginated envelope even for a default-limit first page.
		values.Set("limit", strconv.Itoa(DefaultPageLimit))
	}
	if q.Cursor != "" {
		values.Set("cursor", q.Cursor)
	}
	return values.Encode()
}

// ListPage fetches one page of records matching q. An empty q.Cursor
// starts the walk; pass the returned page's NextCursor to continue it.
func (c *Client) ListPage(q ListQuery) (Page, error) {
	var page Page
	err := c.do(http.MethodGet, "/offers?"+pageQuery(q), nil, &page)
	return page, err
}

// PageRaw is one page of records left as raw JSON frames: the page is
// received and framed but no record is materialised. Load generators and
// pagination walkers that do not inspect record contents use this to keep
// client-side decode off their latency measurements.
type PageRaw struct {
	// Records holds each record's undecoded JSON.
	Records []json.RawMessage `json:"records"`
	// NextCursor continues the walk; empty when it is complete.
	NextCursor string `json:"next_cursor"`
}

// ListPageRaw fetches one page of records matching q without decoding
// them; see PageRaw.
func (c *Client) ListPageRaw(q ListQuery) (PageRaw, error) {
	var page PageRaw
	err := c.do(http.MethodGet, "/offers?"+pageQuery(q), nil, &page)
	return page, err
}

// Stats fetches the store summary.
func (c *Client) Stats() (Counts, error) {
	var counts Counts
	err := c.do(http.MethodGet, "/stats", nil, &counts)
	return counts, err
}

// Expire triggers the overdue sweep.
func (c *Client) Expire() (int, error) {
	var out map[string]int
	if err := c.do(http.MethodPost, "/expire", nil, &out); err != nil {
		return 0, err
	}
	return out["expired"], nil
}
