package market

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/flexoffer"
)

// Client talks to a market Server over HTTP.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7654".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs a request and decodes the JSON response into out (when out is
// non-nil). Non-2xx responses are turned into errors carrying the server's
// message.
func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("market client: encode: %w", err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, reader)
	if err != nil {
		return fmt.Errorf("market client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("market client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("market client: %s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("market client: %s", resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("market client: decode: %w", err)
		}
	}
	return nil
}

// Submit collects an offer.
func (c *Client) Submit(f *flexoffer.FlexOffer) error {
	return c.do(http.MethodPost, "/offers", f, nil)
}

// Accept accepts an offer.
func (c *Client) Accept(id string) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/accept", nil, nil)
}

// Reject rejects an offer.
func (c *Client) Reject(id string) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/reject", nil, nil)
}

// Assign fixes an accepted offer's schedule.
func (c *Client) Assign(id string, start time.Time, energies []float64) error {
	return c.do(http.MethodPost, "/offers/"+url.PathEscape(id)+"/assign",
		assignRequest{Start: start, Energies: energies}, nil)
}

// Get fetches one record.
func (c *Client) Get(id string) (Record, error) {
	var rec Record
	err := c.do(http.MethodGet, "/offers/"+url.PathEscape(id), nil, &rec)
	return rec, err
}

// List fetches records, optionally filtered by state.
func (c *Client) List(state string) ([]Record, error) {
	path := "/offers"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	var recs []Record
	err := c.do(http.MethodGet, path, nil, &recs)
	return recs, err
}

// pageQuery renders q as the /offers query string, always naming a limit
// so the server answers with the paginated envelope.
func pageQuery(q ListQuery) string {
	values := url.Values{}
	for _, st := range q.States {
		values.Set("state", st.String())
	}
	if q.Owner != "" {
		values.Set("owner", q.Owner)
	}
	if q.Limit > 0 {
		values.Set("limit", strconv.Itoa(q.Limit))
	} else {
		// Force the paginated envelope even for a default-limit first page.
		values.Set("limit", strconv.Itoa(DefaultPageLimit))
	}
	if q.Cursor != "" {
		values.Set("cursor", q.Cursor)
	}
	return values.Encode()
}

// ListPage fetches one page of records matching q. An empty q.Cursor
// starts the walk; pass the returned page's NextCursor to continue it.
func (c *Client) ListPage(q ListQuery) (Page, error) {
	var page Page
	err := c.do(http.MethodGet, "/offers?"+pageQuery(q), nil, &page)
	return page, err
}

// PageRaw is one page of records left as raw JSON frames: the page is
// received and framed but no record is materialised. Load generators and
// pagination walkers that do not inspect record contents use this to keep
// client-side decode off their latency measurements.
type PageRaw struct {
	// Records holds each record's undecoded JSON.
	Records []json.RawMessage `json:"records"`
	// NextCursor continues the walk; empty when it is complete.
	NextCursor string `json:"next_cursor"`
}

// ListPageRaw fetches one page of records matching q without decoding
// them; see PageRaw.
func (c *Client) ListPageRaw(q ListQuery) (PageRaw, error) {
	var page PageRaw
	err := c.do(http.MethodGet, "/offers?"+pageQuery(q), nil, &page)
	return page, err
}

// Stats fetches the store summary.
func (c *Client) Stats() (Counts, error) {
	var counts Counts
	err := c.do(http.MethodGet, "/stats", nil, &counts)
	return counts, err
}

// Expire triggers the overdue sweep.
func (c *Client) Expire() (int, error) {
	var out map[string]int
	if err := c.do(http.MethodPost, "/expire", nil, &out); err != nil {
		return 0, err
	}
	return out["expired"], nil
}
