package market

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
)

// Pagination limits for Page and the HTTP /offers endpoint.
const (
	// DefaultPageLimit applies when a paginated query names no limit.
	DefaultPageLimit = 100
	// MaxPageLimit is the largest page a single query may request.
	MaxPageLimit = 1000
)

// ListQuery selects and pages records for Store.Page. The zero value
// returns the first DefaultPageLimit records in shard-major submission
// order.
type ListQuery struct {
	// States filters to records currently in any of the given states;
	// empty means all states.
	States []State
	// Owner filters to offers whose ConsumerID equals Owner; empty means
	// all owners.
	Owner string
	// Limit caps the page size (1..MaxPageLimit); 0 means
	// DefaultPageLimit.
	Limit int
	// Cursor resumes a previous page walk; empty starts from the
	// beginning. A cursor is bound to the filter it was issued under.
	Cursor string
}

// Page is one page of records plus the cursor that continues the walk.
type Page struct {
	// Records is the page's records, in shard-major submission order.
	Records []Record `json:"records"`
	// NextCursor resumes the walk after the last record; empty when the
	// walk is complete.
	NextCursor string `json:"next_cursor,omitempty"`
}

// MarshalJSON assembles the page by stitching each record's hand-built
// bytes (Record.MarshalJSON) directly, so a page response is encoded in
// one pass — the standard encoder would re-parse every record's output
// to compact it, which at the default page size costs more than the
// listing itself.
func (p Page) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 64+len(p.Records)*2048)
	buf = append(buf, `{"records":[`...)
	for i := range p.Records {
		if i > 0 {
			buf = append(buf, ',')
		}
		var err error
		buf, err = p.Records[i].appendJSON(buf)
		if err != nil {
			return nil, err
		}
	}
	buf = append(buf, ']')
	if p.NextCursor != "" {
		// Cursors are base64url text: no JSON escaping needed.
		buf = append(buf, `,"next_cursor":"`...)
		buf = append(buf, p.NextCursor...)
		buf = append(buf, '"')
	}
	return append(buf, '}'), nil
}

// cursor is the wire form of a page position: the next shard to read and
// the next position in that shard's submission order, plus the filter the
// cursor was issued under so a resumed walk cannot silently switch
// filters. Positions index each shard's append-only order slice, so a
// cursor stays valid no matter how records transition (or how per-state
// index lists compact) between pages.
type cursor struct {
	Shard  int      `json:"s"`
	Pos    int      `json:"p"`
	States []string `json:"st,omitempty"`
	Owner  string   `json:"o,omitempty"`
}

// statesKey renders a state filter in canonical (sorted, deduplicated)
// textual form for cursor binding.
func statesKey(states []State) []string {
	if len(states) == 0 {
		return nil
	}
	var seen [numStates]bool
	for _, st := range states {
		if st >= 0 && int(st) < numStates {
			seen[st] = true
		}
	}
	var out []string
	for st := Offered; int(st) < numStates; st++ {
		if seen[st] {
			out = append(out, st.String())
		}
	}
	return out
}

func sameKey(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// encodeCursor renders a cursor as opaque URL-safe text.
func encodeCursor(c cursor) string {
	b, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor parses cursor text issued by encodeCursor. Errors wrap
// ErrBadRequest: a cursor the store did not issue is a client mistake,
// not a server failure.
func decodeCursor(s string) (cursor, error) {
	var c cursor
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("%w: malformed cursor", ErrBadRequest)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("%w: malformed cursor", ErrBadRequest)
	}
	if c.Shard < 0 || c.Pos < 0 {
		return c, fmt.Errorf("%w: malformed cursor", ErrBadRequest)
	}
	for _, name := range c.States {
		if _, err := ParseState(name); err != nil {
			return c, fmt.Errorf("%w: malformed cursor", ErrBadRequest)
		}
	}
	return c, nil
}

// Page returns one page of records matching q, walking the shards in
// shard-major submission order. Each call holds at most one shard's read
// lock at a time and touches at most Limit matching records plus the
// non-matching records it skips, never the whole store. The returned
// cursor resumes exactly where the walk stopped; records submitted behind
// the cursor position are not revisited, records ahead of it appear in
// later pages (the usual paginated-walk semantics over live data).
//
// A cursor is bound to the query's filter: resuming with a different
// state or owner filter returns ErrBadRequest.
func (s *Store) Page(q ListQuery) (Page, error) {
	limit := q.Limit
	switch {
	case limit == 0:
		limit = DefaultPageLimit
	case limit < 0 || limit > MaxPageLimit:
		return Page{}, fmt.Errorf("%w: limit must be 1..%d", ErrBadRequest, MaxPageLimit)
	}
	key := statesKey(q.States)
	start := cursor{States: key, Owner: q.Owner}
	if q.Cursor != "" {
		c, err := decodeCursor(q.Cursor)
		if err != nil {
			return Page{}, err
		}
		if !sameKey(c.States, key) || c.Owner != q.Owner {
			return Page{}, fmt.Errorf("%w: cursor was issued for a different filter", ErrBadRequest)
		}
		start = c
	}
	var want map[State]bool
	if len(q.States) > 0 {
		want = make(map[State]bool, len(q.States))
		for _, st := range q.States {
			want[st] = true
		}
	}
	match := func(r *Record) bool {
		if want != nil && !want[r.State] {
			return false
		}
		if q.Owner != "" && r.Offer.ConsumerID != q.Owner {
			return false
		}
		return true
	}

	page := Page{Records: []Record{}}
	// A cursor pointing past the last shard (the store has not grown a
	// shard since — counts are fixed at construction) yields the empty
	// final page.
	for si := start.Shard; si < len(s.shards); si++ {
		sh := s.shards[si]
		pos := 0
		if si == start.Shard {
			pos = start.Pos
		}
		sh.mu.RLock()
		for ; pos < len(sh.order); pos++ {
			if len(page.Records) == limit {
				sh.mu.RUnlock()
				page.NextCursor = encodeCursor(cursor{Shard: si, Pos: pos, States: key, Owner: q.Owner})
				return page, nil
			}
			r := sh.records[sh.order[pos]]
			if match(r) {
				page.Records = append(page.Records, *r)
			}
		}
		sh.mu.RUnlock()
	}
	return page, nil
}
