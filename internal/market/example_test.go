package market_test

import (
	"fmt"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
)

// ExampleStore walks the collection lifecycle: submit before the acceptance
// deadline, accept, assign a concrete start, and read the summary.
func ExampleStore() {
	now := time.Date(2012, 6, 4, 8, 0, 0, 0, time.UTC)
	store := market.NewStore(func() time.Time { return now })

	offer := &flexoffer.FlexOffer{
		ID:             "washer-tonight",
		CreationTime:   now,
		AcceptanceTime: now.Add(4 * time.Hour),
		AssignmentTime: now.Add(8 * time.Hour),
		EarliestStart:  now.Add(10 * time.Hour), // 18:00
		LatestStart:    now.Add(14 * time.Hour), // 22:00
		Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.4, 0.6),
	}
	if err := store.Submit(offer); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := store.Accept("washer-tonight"); err != nil {
		fmt.Println("accept:", err)
		return
	}
	asg, err := store.Assign("washer-tonight", offer.EarliestStart.Add(2*time.Hour),
		[]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		fmt.Println("assign:", err)
		return
	}
	fmt.Printf("assigned %s for %.1f kWh\n", asg.Start.Format("15:04"), asg.TotalEnergy())
	counts := store.Stats()
	fmt.Printf("assigned offers in store: %d\n", counts.Assigned)
	// Output:
	// assigned 20:00 for 2.0 kWh
	// assigned offers in store: 1
}
