package market

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flexoffer"
)

// Concurrency stress tests: N goroutines hammer every lifecycle operation
// at once while sweepers and readers run, then the final store state is
// checked against invariants. Run with -race to catch synchronisation bugs.

var stressStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// stressOffer builds a valid offer whose acceptance/assignment deadlines
// sit `lead` after the given clock origin.
func stressOffer(id string, origin time.Time, lead time.Duration) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		CreationTime:   origin,
		AcceptanceTime: origin.Add(lead),
		AssignmentTime: origin.Add(lead),
		EarliestStart:  origin.Add(lead + time.Hour),
		LatestStart:    origin.Add(lead + 5*time.Hour),
		Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
	}
}

// TestStoreConcurrentLifecycle drives submit/accept/reject/assign/sweep
// from many goroutines and asserts the final state is coherent.
func TestStoreConcurrentLifecycle(t *testing.T) {
	// A mutable logical clock shared by every goroutine, advanced by the
	// expirer to push deadlines past.
	var nowNanos atomic.Int64
	nowNanos.Store(stressStart.UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNanos.Load()).UTC() }
	store := NewStore(clock)

	const (
		workers    = 8
		perWorker  = 50
		nearLead   = 30 * time.Minute // expirable by the sweeper's clock jump
		farLead    = 1000 * time.Hour // never expires during the test
		clockJumpN = 10
	)
	var submitted, accepted, rejected, assigned atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				lead := farLead
				if i%5 == 0 {
					lead = nearLead
				}
				if err := store.Submit(stressOffer(id, clock(), lead)); err != nil {
					// Near-lead offers may race the sweeper's clock jumps.
					if !errors.Is(err, ErrDeadline) {
						t.Errorf("submit %s: %v", id, err)
					}
					continue
				}
				submitted.Add(1)
				// The sweeper races every transition below: near-lead
				// offers may expire first, surfacing as ErrDeadline or
				// ErrTransition — both legal outcomes, never corruption.
				raced := func(err error) bool {
					return errors.Is(err, ErrDeadline) || errors.Is(err, ErrTransition)
				}
				switch i % 3 {
				case 0:
					// Leave offered; the sweeper may expire it.
				case 1:
					if err := store.Accept(id); err == nil {
						accepted.Add(1)
						if i%6 == 1 {
							f, _ := store.Get(id)
							es := make([]float64, len(f.Offer.Profile))
							for k := range es {
								es[k] = 0.75
							}
							if _, err := store.Assign(id, f.Offer.EarliestStart, es); err == nil {
								assigned.Add(1)
							} else if !raced(err) {
								t.Errorf("assign %s: %v", id, err)
							}
						}
					} else if !raced(err) {
						t.Errorf("accept %s: %v", id, err)
					}
				case 2:
					if err := store.Reject(id); err == nil {
						rejected.Add(1)
					} else if !raced(err) {
						t.Errorf("reject %s: %v", id, err)
					}
				}
			}
		}(w)
	}
	// Sweeper: advance the clock well past the near deadlines and expire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < clockJumpN; i++ {
			nowNanos.Add(int64(nearLead))
			store.ExpireOverdue()
		}
	}()
	// Readers: exercise every read path concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				store.Stats()
				store.List(Offered, Accepted)
				store.AcceptedOffers()
				store.Get(fmt.Sprintf("w0-%03d", i%perWorker))
			}
		}()
	}
	wg.Wait()

	// Invariants on the final state.
	counts := store.Stats()
	total := counts.Offered + counts.Accepted + counts.Rejected + counts.Assigned + counts.Expired
	if int64(total) != submitted.Load() {
		t.Fatalf("state counts sum to %d, submitted %d", total, submitted.Load())
	}
	records := store.List()
	if len(records) != total {
		t.Fatalf("List returned %d records, Stats counted %d", len(records), total)
	}
	if int64(counts.Rejected) != rejected.Load() {
		t.Fatalf("rejected %d, want %d", counts.Rejected, rejected.Load())
	}
	if int64(counts.Assigned) != assigned.Load() {
		t.Fatalf("assigned %d, want %d", counts.Assigned, assigned.Load())
	}
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		if seen[r.Offer.ID] {
			t.Fatalf("duplicate record %s in listing", r.Offer.ID)
		}
		seen[r.Offer.ID] = true
		switch r.State {
		case Assigned:
			if r.Assignment == nil {
				t.Fatalf("%s assigned without assignment", r.Offer.ID)
			}
		case Offered:
			if r.Assignment != nil {
				t.Fatalf("%s offered with assignment", r.Offer.ID)
			}
		}
		if r.State != Offered && r.DecidedAt.IsZero() {
			t.Fatalf("%s in state %s without decision time", r.Offer.ID, r.State)
		}
	}
}

// TestStoreConcurrentDuplicateSubmit races many goroutines submitting the
// same offer ID: exactly one must win.
func TestStoreConcurrentDuplicateSubmit(t *testing.T) {
	store := NewStore(func() time.Time { return stressStart })
	const contenders = 16
	var wins, dups atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < contenders; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := store.Submit(stressOffer("contested", stressStart, time.Hour))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrDuplicate):
				dups.Add(1)
			default:
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || dups.Load() != contenders-1 {
		t.Fatalf("wins=%d dups=%d, want 1/%d", wins.Load(), dups.Load(), contenders-1)
	}
	if got := len(store.List()); got != 1 {
		t.Fatalf("store holds %d records, want 1", got)
	}
}

// TestStoreConcurrentSubmitBatch fans batches out from several goroutines,
// with every batch sharing some colliding IDs.
func TestStoreConcurrentSubmitBatch(t *testing.T) {
	store := NewStore(func() time.Time { return stressStart })
	const (
		batches   = 8
		batchSize = 25
		sharedIDs = 5
	)
	var acceptedTotal atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			set := make(flexoffer.Set, 0, batchSize)
			for i := 0; i < batchSize; i++ {
				id := fmt.Sprintf("batch%d-%02d", b, i)
				if i < sharedIDs {
					id = fmt.Sprintf("shared-%02d", i) // collides across batches
				}
				set = append(set, stressOffer(id, stressStart, time.Hour))
			}
			accepted, errs := store.SubmitBatch(set)
			acceptedTotal.Add(int64(accepted))
			var failed int
			for _, err := range errs {
				if err != nil {
					failed++
					if !errors.Is(err, ErrDuplicate) {
						t.Errorf("batch %d: %v", b, err)
					}
				}
			}
			if accepted+failed != batchSize {
				t.Errorf("batch %d: accepted %d + failed %d != %d", b, accepted, failed, batchSize)
			}
		}(b)
	}
	wg.Wait()
	want := batches*(batchSize-sharedIDs) + sharedIDs
	if got := len(store.List()); got != want || int64(got) != acceptedTotal.Load() {
		t.Fatalf("store holds %d records (accepted %d), want %d", got, acceptedTotal.Load(), want)
	}
}

func TestSubmitBatchValidation(t *testing.T) {
	store := NewStore(func() time.Time { return stressStart })
	good := stressOffer("good", stressStart, time.Hour)
	lapsed := stressOffer("lapsed", stressStart.Add(-10*time.Hour), time.Hour)
	invalid := stressOffer("invalid", stressStart, time.Hour)
	invalid.Profile = nil
	batch := flexoffer.Set{good, nil, invalid, lapsed, good.Clone()}
	accepted, errs := store.SubmitBatch(batch)
	if accepted != 1 {
		t.Fatalf("accepted %d, want 1", accepted)
	}
	if errs[0] != nil {
		t.Fatalf("good offer rejected: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrBadRequest) || !errors.Is(errs[2], ErrBadRequest) {
		t.Fatalf("nil/invalid offers: %v, %v", errs[1], errs[2])
	}
	if !errors.Is(errs[3], ErrDeadline) {
		t.Fatalf("lapsed offer: %v", errs[3])
	}
	if !errors.Is(errs[4], ErrDuplicate) {
		t.Fatalf("duplicate within batch: %v", errs[4])
	}
}
