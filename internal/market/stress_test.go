package market

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flexoffer"
)

// Concurrency stress tests: N goroutines hammer every lifecycle operation
// at once while sweepers and readers run, then the final store state is
// checked against invariants. Run with -race to catch synchronisation bugs.

var stressStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// stressOffer builds a valid offer whose acceptance/assignment deadlines
// sit `lead` after the given clock origin.
func stressOffer(id string, origin time.Time, lead time.Duration) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		CreationTime:   origin,
		AcceptanceTime: origin.Add(lead),
		AssignmentTime: origin.Add(lead),
		EarliestStart:  origin.Add(lead + time.Hour),
		LatestStart:    origin.Add(lead + 5*time.Hour),
		Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
	}
}

// stressShardCounts are the store shapes every concurrency stress test
// runs against: the single-shard baseline and a sharded layout, so the
// same races cover both the per-shard locking and the cross-shard paths.
var stressShardCounts = []int{1, 4}

// TestStoreConcurrentLifecycle drives submit/accept/reject/assign/sweep
// from many goroutines and asserts the final state is coherent.
func TestStoreConcurrentLifecycle(t *testing.T) {
	for _, shards := range stressShardCounts {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testStoreConcurrentLifecycle(t, shards)
		})
	}
}

func testStoreConcurrentLifecycle(t *testing.T, shards int) {
	// A mutable logical clock shared by every goroutine, advanced by the
	// expirer to push deadlines past.
	var nowNanos atomic.Int64
	nowNanos.Store(stressStart.UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNanos.Load()).UTC() }
	store := NewShardedStore(shards, clock)

	const (
		workers    = 8
		perWorker  = 50
		nearLead   = 30 * time.Minute // expirable by the sweeper's clock jump
		farLead    = 1000 * time.Hour // never expires during the test
		clockJumpN = 10
	)
	var submitted, accepted, rejected, assigned atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				lead := farLead
				if i%5 == 0 {
					lead = nearLead
				}
				if err := store.Submit(stressOffer(id, clock(), lead)); err != nil {
					// Near-lead offers may race the sweeper's clock jumps.
					if !errors.Is(err, ErrDeadline) {
						t.Errorf("submit %s: %v", id, err)
					}
					continue
				}
				submitted.Add(1)
				// The sweeper races every transition below: near-lead
				// offers may expire first, surfacing as ErrDeadline or
				// ErrTransition — both legal outcomes, never corruption.
				raced := func(err error) bool {
					return errors.Is(err, ErrDeadline) || errors.Is(err, ErrTransition)
				}
				switch i % 3 {
				case 0:
					// Leave offered; the sweeper may expire it.
				case 1:
					if err := store.Accept(id); err == nil {
						accepted.Add(1)
						if i%6 == 1 {
							f, _ := store.Get(id)
							es := make([]float64, len(f.Offer.Profile))
							for k := range es {
								es[k] = 0.75
							}
							if _, err := store.Assign(id, f.Offer.EarliestStart, es); err == nil {
								assigned.Add(1)
							} else if !raced(err) {
								t.Errorf("assign %s: %v", id, err)
							}
						}
					} else if !raced(err) {
						t.Errorf("accept %s: %v", id, err)
					}
				case 2:
					if err := store.Reject(id); err == nil {
						rejected.Add(1)
					} else if !raced(err) {
						t.Errorf("reject %s: %v", id, err)
					}
				}
			}
		}(w)
	}
	// Sweeper: advance the clock well past the near deadlines and expire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < clockJumpN; i++ {
			nowNanos.Add(int64(nearLead))
			store.ExpireOverdue()
		}
	}()
	// Readers: exercise every read path concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				store.Stats()
				store.List(Offered, Accepted)
				store.AcceptedOffers()
				store.Get(fmt.Sprintf("w0-%03d", i%perWorker))
			}
		}()
	}
	wg.Wait()

	// Invariants on the final state.
	counts := store.Stats()
	total := counts.Offered + counts.Accepted + counts.Rejected + counts.Assigned + counts.Expired
	if int64(total) != submitted.Load() {
		t.Fatalf("state counts sum to %d, submitted %d", total, submitted.Load())
	}
	records := store.List()
	if len(records) != total {
		t.Fatalf("List returned %d records, Stats counted %d", len(records), total)
	}
	if int64(counts.Rejected) != rejected.Load() {
		t.Fatalf("rejected %d, want %d", counts.Rejected, rejected.Load())
	}
	if int64(counts.Assigned) != assigned.Load() {
		t.Fatalf("assigned %d, want %d", counts.Assigned, assigned.Load())
	}
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		if seen[r.Offer.ID] {
			t.Fatalf("duplicate record %s in listing", r.Offer.ID)
		}
		seen[r.Offer.ID] = true
		switch r.State {
		case Assigned:
			if r.Assignment == nil {
				t.Fatalf("%s assigned without assignment", r.Offer.ID)
			}
		case Offered:
			if r.Assignment != nil {
				t.Fatalf("%s offered with assignment", r.Offer.ID)
			}
		}
		if r.State != Offered && r.DecidedAt.IsZero() {
			t.Fatalf("%s in state %s without decision time", r.Offer.ID, r.State)
		}
	}
}

// TestStoreConcurrentDuplicateSubmit races many goroutines submitting the
// same offer ID: exactly one must win.
func TestStoreConcurrentDuplicateSubmit(t *testing.T) {
	for _, shards := range stressShardCounts {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testStoreConcurrentDuplicateSubmit(t, shards)
		})
	}
}

func testStoreConcurrentDuplicateSubmit(t *testing.T, shards int) {
	store := NewShardedStore(shards, func() time.Time { return stressStart })
	const contenders = 16
	var wins, dups atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < contenders; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := store.Submit(stressOffer("contested", stressStart, time.Hour))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrDuplicate):
				dups.Add(1)
			default:
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || dups.Load() != contenders-1 {
		t.Fatalf("wins=%d dups=%d, want 1/%d", wins.Load(), dups.Load(), contenders-1)
	}
	if got := len(store.List()); got != 1 {
		t.Fatalf("store holds %d records, want 1", got)
	}
}

// TestStoreConcurrentSubmitBatch fans batches out from several goroutines,
// with every batch sharing some colliding IDs.
func TestStoreConcurrentSubmitBatch(t *testing.T) {
	for _, shards := range stressShardCounts {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testStoreConcurrentSubmitBatch(t, shards)
		})
	}
}

func testStoreConcurrentSubmitBatch(t *testing.T, shards int) {
	store := NewShardedStore(shards, func() time.Time { return stressStart })
	const (
		batches   = 8
		batchSize = 25
		sharedIDs = 5
	)
	var acceptedTotal atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			set := make(flexoffer.Set, 0, batchSize)
			for i := 0; i < batchSize; i++ {
				id := fmt.Sprintf("batch%d-%02d", b, i)
				if i < sharedIDs {
					id = fmt.Sprintf("shared-%02d", i) // collides across batches
				}
				set = append(set, stressOffer(id, stressStart, time.Hour))
			}
			res := store.SubmitBatch(set)
			acceptedTotal.Add(int64(res.Accepted))
			for _, f := range res.Failures {
				if !errors.Is(f.Err, ErrDuplicate) {
					t.Errorf("batch %d offer %d: %v", b, f.Index, f.Err)
				}
				if f.ID != set[f.Index].ID {
					t.Errorf("batch %d failure %d attributed to %q, offer is %q", b, f.Index, f.ID, set[f.Index].ID)
				}
			}
			if res.Accepted+res.Rejected() != batchSize {
				t.Errorf("batch %d: accepted %d + failed %d != %d", b, res.Accepted, res.Rejected(), batchSize)
			}
		}(b)
	}
	wg.Wait()
	want := batches*(batchSize-sharedIDs) + sharedIDs
	if got := len(store.List()); got != want || int64(got) != acceptedTotal.Load() {
		t.Fatalf("store holds %d records (accepted %d), want %d", got, acceptedTotal.Load(), want)
	}
}

func TestSubmitBatchValidation(t *testing.T) {
	store := NewStore(func() time.Time { return stressStart })
	good := stressOffer("good", stressStart, time.Hour)
	lapsed := stressOffer("lapsed", stressStart.Add(-10*time.Hour), time.Hour)
	invalid := stressOffer("invalid", stressStart, time.Hour)
	invalid.Profile = nil
	batch := flexoffer.Set{good, nil, invalid, lapsed, good.Clone()}
	res := store.SubmitBatch(batch)
	if res.Accepted != 1 || res.Submitted != len(batch) {
		t.Fatalf("accepted %d of %d, want 1 of %d", res.Accepted, res.Submitted, len(batch))
	}
	// Failures are indexed: each rejection names the offending slot.
	byIndex := make(map[int]BatchFailure, len(res.Failures))
	for i, f := range res.Failures {
		byIndex[f.Index] = f
		if i > 0 && res.Failures[i-1].Index >= f.Index {
			t.Fatalf("failures out of submission order: %+v", res.Failures)
		}
	}
	if _, ok := byIndex[0]; ok {
		t.Fatalf("good offer rejected: %v", byIndex[0].Err)
	}
	if !errors.Is(byIndex[1].Err, ErrBadRequest) || !errors.Is(byIndex[2].Err, ErrBadRequest) {
		t.Fatalf("nil/invalid offers: %+v, %+v", byIndex[1], byIndex[2])
	}
	if !errors.Is(byIndex[3].Err, ErrDeadline) || byIndex[3].ID != "lapsed" {
		t.Fatalf("lapsed offer: %+v", byIndex[3])
	}
	if !errors.Is(byIndex[4].Err, ErrDuplicate) || byIndex[4].ID != "good" {
		t.Fatalf("duplicate within batch: %+v", byIndex[4])
	}
	// FailedOffers maps the failures back onto the submitted set.
	failed := res.FailedOffers(batch)
	if len(failed) != 4 || failed[1] != invalid || failed[2] != lapsed {
		t.Fatalf("FailedOffers = %v", failed)
	}
	if err := res.FirstErr(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("FirstErr = %v, want the nil-offer rejection", err)
	}
}

// TestStoreConcurrentBatchLifecycle is the mixed-operation stress test:
// N goroutines run SubmitBatch while others Accept, Assign and
// ExpireOverdue the same ID space, and Stats must account every accepted
// offer exactly once — none counted twice, none dropped.
func TestStoreConcurrentBatchLifecycle(t *testing.T) {
	for _, shards := range stressShardCounts {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			testStoreConcurrentBatchLifecycle(t, shards)
		})
	}
}

func testStoreConcurrentBatchLifecycle(t *testing.T, shards int) {
	var nowNanos atomic.Int64
	nowNanos.Store(stressStart.UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNanos.Load()).UTC() }
	store := NewShardedStore(shards, clock)

	const (
		submitters = 6
		batches    = 8
		batchSize  = 20
		nearLead   = 30 * time.Minute
		farLead    = 1000 * time.Hour
	)
	var acceptedIntoStore atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				set := make(flexoffer.Set, 0, batchSize)
				for i := 0; i < batchSize; i++ {
					lead := farLead
					if i%4 == 0 {
						lead = nearLead // expirable by the sweeper's clock jumps
					}
					set = append(set, stressOffer(fmt.Sprintf("s%d-b%d-%02d", w, b, i), clock(), lead))
				}
				res := store.SubmitBatch(set)
				acceptedIntoStore.Add(int64(res.Accepted))
				if res.Accepted+res.Rejected() != len(set) {
					t.Errorf("submitter %d: accepted %d + rejected %d != %d", w, res.Accepted, res.Rejected(), len(set))
				}
				for _, f := range res.Failures {
					// The only legal rejection here is a deadline racing a
					// sweeper clock jump; IDs are unique by construction.
					if !errors.Is(f.Err, ErrDeadline) {
						t.Errorf("submitter %d: %v", w, f.Err)
					}
				}
			}
		}(w)
	}
	// Deciders: accept offered records and assign accepted ones, racing
	// the submitters and the sweeper.
	for d := 0; d < 3; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range store.List(Offered) {
					_ = store.Accept(rec.Offer.ID)
				}
				for _, rec := range store.List(Accepted) {
					es := make([]float64, len(rec.Offer.Profile))
					for k := range es {
						es[k] = 0.75
					}
					_, _ = store.Assign(rec.Offer.ID, rec.Offer.EarliestStart, es)
				}
			}
		}()
	}
	// Sweeper: jump the clock past the near deadlines and expire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			nowNanos.Add(int64(nearLead))
			store.ExpireOverdue()
		}
	}()

	// Wait for the submitters and sweeper; then stop the deciders.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		// Deciders loop until told to stop; give the submitters a moment.
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	<-done

	counts := store.Stats()
	total := counts.Offered + counts.Accepted + counts.Rejected + counts.Assigned + counts.Expired
	if int64(total) != acceptedIntoStore.Load() {
		t.Fatalf("Stats sums to %d states, SubmitBatch accepted %d — an offer was dropped or double-counted",
			total, acceptedIntoStore.Load())
	}
	records := store.List()
	if len(records) != total {
		t.Fatalf("List holds %d records, Stats counted %d", len(records), total)
	}
	seen := make(map[string]bool, len(records))
	for _, r := range records {
		if seen[r.Offer.ID] {
			t.Fatalf("offer %s counted twice", r.Offer.ID)
		}
		seen[r.Offer.ID] = true
	}
}
