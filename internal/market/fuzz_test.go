package market

import (
	"testing"
	"time"

	"repro/internal/flexoffer"
)

// FuzzSubmitBatch fuzzes the bulk ingest path with hostile batches —
// duplicate IDs (within the batch and against the store), nil offers,
// zero-slice profiles, lapsed acceptance deadlines — and checks the
// accounting invariants the retry path depends on: every offer is either
// accepted or named in Failures exactly once, failure indices stay
// in-range and sorted, and resubmitting the same batch accepts nothing
// new.
func FuzzSubmitBatch(f *testing.F) {
	f.Add(8, 3, int64(time.Hour), 4, uint8(0))
	f.Add(0, 0, int64(0), 0, uint8(0))          // empty batch
	f.Add(5, 1, int64(time.Hour), 4, uint8(1))  // every ID collides
	f.Add(6, 2, int64(-time.Hour), 4, uint8(2)) // lapsed deadlines
	f.Add(7, 3, int64(time.Hour), 0, uint8(4))  // zero-slice profiles
	f.Add(16, 4, int64(time.Minute), 2, uint8(7))
	f.Add(3, 2, int64(time.Hour), 1, uint8(8)) // nil offers sprinkled in

	f.Fuzz(func(t *testing.T, n, dupEvery int, leadNs int64, slices int, mutate uint8) {
		if n < 0 || n > 64 || slices < 0 || slices > 32 {
			return // batch shape is under caller control; bound the allocation
		}
		origin := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
		store := NewStore(func() time.Time { return origin })

		batch := make(flexoffer.Set, 0, n)
		for i := 0; i < n; i++ {
			if mutate&8 != 0 && i%5 == 4 {
				batch = append(batch, nil)
				continue
			}
			id := "fuzz"
			if dupEvery <= 0 || i%max(dupEvery, 1) != 0 {
				id = "fuzz-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			}
			if mutate&2 != 0 && i%3 == 0 {
				// Lapsed acceptance deadline relative to the fixed clock.
				batch = append(batch, fuzzOffer(id, origin.Add(-24*time.Hour), time.Duration(leadNs), slices))
				continue
			}
			fo := fuzzOffer(id, origin, time.Duration(leadNs), slices)
			if mutate&4 != 0 && i%4 == 2 {
				fo.Profile = nil // zero slices: must be rejected, never panic
			}
			batch = append(batch, fo)
		}

		res := store.SubmitBatch(batch)

		if res.Submitted != len(batch) {
			t.Fatalf("Submitted = %d, batch has %d", res.Submitted, len(batch))
		}
		if res.Accepted+len(res.Failures) != len(batch) {
			t.Fatalf("accepted %d + failures %d != %d", res.Accepted, len(res.Failures), len(batch))
		}
		seen := make(map[int]bool, len(res.Failures))
		for i, fl := range res.Failures {
			if fl.Index < 0 || fl.Index >= len(batch) {
				t.Fatalf("failure index %d out of range [0,%d)", fl.Index, len(batch))
			}
			if seen[fl.Index] {
				t.Fatalf("index %d failed twice", fl.Index)
			}
			seen[fl.Index] = true
			if i > 0 && res.Failures[i-1].Index >= fl.Index {
				t.Fatalf("failures out of submission order: %+v", res.Failures)
			}
			if fl.Err == nil {
				t.Fatalf("failure %d carries nil error", fl.Index)
			}
			if batch[fl.Index] != nil && fl.ID != batch[fl.Index].ID {
				t.Fatalf("failure %d attributed to %q, offer is %q", fl.Index, fl.ID, batch[fl.Index].ID)
			}
		}
		if got := len(res.FailedOffers(batch)); got != len(res.Failures) {
			t.Fatalf("FailedOffers returned %d offers for %d failures", got, len(res.Failures))
		}
		if got := len(store.List()); got != res.Accepted {
			t.Fatalf("store holds %d records, result says %d accepted", got, res.Accepted)
		}
		stats := store.Stats()
		if stats.Offered != res.Accepted {
			t.Fatalf("Stats.Offered = %d, want %d", stats.Offered, res.Accepted)
		}

		// Resubmitting the identical batch must accept nothing new: every
		// previously accepted ID is now a duplicate.
		again := store.SubmitBatch(batch)
		if again.Accepted != 0 {
			t.Fatalf("resubmission accepted %d offers", again.Accepted)
		}
		if got := len(store.List()); got != res.Accepted {
			t.Fatalf("resubmission changed store size: %d, want %d", got, res.Accepted)
		}
	})
}

// fuzzOffer builds an offer whose deadlines sit lead after origin; the
// result may be invalid (negative lead, zero slices) by design.
func fuzzOffer(id string, origin time.Time, lead time.Duration, slices int) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		CreationTime:   origin,
		AcceptanceTime: origin.Add(lead),
		AssignmentTime: origin.Add(lead),
		EarliestStart:  origin.Add(lead + time.Hour),
		LatestStart:    origin.Add(lead + 5*time.Hour),
		Profile:        flexoffer.UniformProfile(slices, 15*time.Minute, 0.5, 1.0),
	}
}
