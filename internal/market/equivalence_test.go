package market

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/num"
)

// eqOp is one step of a seeded lifecycle script. The script is generated
// once and applied verbatim to every store under comparison, so the
// observable outcomes must match regardless of shard count.
type eqOp struct {
	kind    string // submit | batch | accept | reject | assign | sweep
	offer   *flexoffer.FlexOffer
	batch   flexoffer.Set
	id      string
	start   time.Time
	advance time.Duration
}

// eqScript builds a deterministic mixed-lifecycle stress scenario from
// seed: submissions (single and batched, some duplicated, some with near
// deadlines), decisions and assignments against randomly chosen known
// offers, and clock-advancing sweeps.
func eqScript(seed int64, steps int) []eqOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []eqOp
	var ids []string
	next := 0
	mkOffer := func() *flexoffer.FlexOffer {
		f := testOffer(fmt.Sprintf("eq-%d-%04d", seed, next))
		next++
		// A third of the offers carry a short acceptance deadline so
		// sweeps have something to expire.
		if rng.Intn(3) == 0 {
			f.AcceptanceTime = t0.Add(time.Duration(30+rng.Intn(60)) * time.Minute)
		}
		f.Profile = flexoffer.UniformProfile(1+rng.Intn(4), 15*time.Minute, 0.2+rng.Float64(), 1.5+rng.Float64())
		ids = append(ids, f.ID)
		return f
	}
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops = append(ops, eqOp{kind: "submit", offer: mkOffer()})
		case 4:
			batch := make(flexoffer.Set, 0, 4)
			for j := 0; j < 2+rng.Intn(3); j++ {
				batch = append(batch, mkOffer())
			}
			if len(ids) > 0 && rng.Intn(2) == 0 {
				// Sprinkle in a duplicate of an existing offer.
				batch = append(batch, testOffer(ids[rng.Intn(len(ids))]))
			}
			ops = append(ops, eqOp{kind: "batch", batch: batch})
		case 5, 6:
			if len(ids) > 0 {
				ops = append(ops, eqOp{kind: "accept", id: ids[rng.Intn(len(ids))]})
			}
		case 7:
			if len(ids) > 0 {
				ops = append(ops, eqOp{kind: "reject", id: ids[rng.Intn(len(ids))]})
			}
		case 8:
			if len(ids) > 0 {
				ops = append(ops, eqOp{kind: "assign", id: ids[rng.Intn(len(ids))], start: t0.Add(6 * time.Hour)})
			}
		case 9:
			ops = append(ops, eqOp{kind: "sweep", advance: time.Duration(10+rng.Intn(30)) * time.Minute})
		}
	}
	// Finish with a sweep past every deadline so expiry paths are fully
	// exercised on both stores.
	ops = append(ops, eqOp{kind: "sweep", advance: 8 * time.Hour})
	return ops
}

// eqOutcome compresses an op result into a comparable token.
func eqOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrDuplicate):
		return "duplicate"
	case errors.Is(err, ErrTransition):
		return "transition"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrNotFound):
		return "notfound"
	case errors.Is(err, ErrBadRequest):
		return "badrequest"
	default:
		return "error:" + err.Error()
	}
}

// applyScript runs ops against a fresh store with n shards and returns
// the per-op outcome tokens alongside the store.
func applyScript(t *testing.T, n int, ops []eqOp) (*Store, []string) {
	t.Helper()
	clock := &fakeClock{now: t0}
	s := NewShardedStore(n, clock.Now)
	outcomes := make([]string, 0, len(ops))
	for _, op := range ops {
		switch op.kind {
		case "submit":
			outcomes = append(outcomes, eqOutcome(s.Submit(op.offer)))
		case "batch":
			res := s.SubmitBatch(op.batch)
			token := fmt.Sprintf("accepted=%d", res.Accepted)
			for _, fl := range res.Failures {
				token += fmt.Sprintf(" %d:%s:%s", fl.Index, fl.ID, eqOutcome(fl.Err))
			}
			outcomes = append(outcomes, token)
		case "accept":
			outcomes = append(outcomes, eqOutcome(s.Accept(op.id)))
		case "reject":
			outcomes = append(outcomes, eqOutcome(s.Reject(op.id)))
		case "assign":
			_, err := s.Assign(op.id, op.start, nil)
			if err != nil && errors.Is(err, ErrBadRequest) {
				// nil energies are invalid; retry with the midpoint vector
				// so assignments actually land.
				if rec, ok := s.Get(op.id); ok {
					energies := make([]float64, len(rec.Offer.Profile))
					for k, sl := range rec.Offer.Profile {
						energies[k] = (sl.MinEnergy + sl.MaxEnergy) / 2
					}
					_, err = s.Assign(op.id, op.start, energies)
				}
			}
			outcomes = append(outcomes, eqOutcome(err))
		case "sweep":
			clock.Advance(op.advance)
			nExp, err := s.ExpireOverdue()
			outcomes = append(outcomes, fmt.Sprintf("expired=%d:%s", nExp, eqOutcome(err)))
		}
	}
	return s, outcomes
}

// recordKey renders a record's observable fields for set comparison.
func recordKey(r Record) string {
	return fmt.Sprintf("%s state=%s submitted=%s decided=%s assigned=%v",
		r.Offer.ID, r.State, r.SubmittedAt.Format(time.RFC3339),
		r.DecidedAt.Format(time.RFC3339), r.Assignment != nil)
}

// TestShardEquivalence is the cross-shard invariant property: the same
// seeded mixed-lifecycle scenario run against a 1-shard and an N-shard
// store must produce identical per-op outcomes (including sweep counts)
// and identical observable state — offer sets, per-state counts, summed
// energy — with listing order differing only by the documented
// shard-major rule.
func TestShardEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, n := range []int{3, 7} {
			t.Run(fmt.Sprintf("seed-%d-shards-%d", seed, n), func(t *testing.T) {
				ops := eqScript(seed, 200)
				s1, out1 := applyScript(t, 1, ops)
				sn, outN := applyScript(t, n, ops)

				if len(out1) != len(outN) {
					t.Fatalf("outcome counts differ: %d vs %d", len(out1), len(outN))
				}
				for i := range out1 {
					if out1[i] != outN[i] {
						t.Fatalf("op %d (%s): 1-shard %q, %d-shard %q", i, ops[i].kind, out1[i], n, outN[i])
					}
				}

				c1, cN := s1.Stats(), sn.Stats()
				if c1.Offered != cN.Offered || c1.Accepted != cN.Accepted ||
					c1.Rejected != cN.Rejected || c1.Assigned != cN.Assigned ||
					c1.Expired != cN.Expired {
					t.Fatalf("per-state counts differ:\n1-shard %+v\n%d-shard %+v", c1, n, cN)
				}
				if !num.EqTol(c1.TotalFlexibleEnergy, cN.TotalFlexibleEnergy, 1e-6) {
					t.Fatalf("energy differs: %v vs %v", c1.TotalFlexibleEnergy, cN.TotalFlexibleEnergy)
				}

				set1 := make(map[string]string)
				for _, r := range s1.List() {
					set1[r.Offer.ID] = recordKey(r)
				}
				listN := sn.List()
				if len(listN) != len(set1) {
					t.Fatalf("record counts differ: %d vs %d", len(set1), len(listN))
				}
				for _, r := range listN {
					if want, ok := set1[r.Offer.ID]; !ok || want != recordKey(r) {
						t.Fatalf("record %s differs:\n1-shard %q\n%d-shard %q", r.Offer.ID, want, n, recordKey(r))
					}
				}
				for _, st := range []State{Offered, Accepted, Rejected, Assigned, Expired} {
					if a, b := len(s1.List(st)), len(sn.List(st)); a != b {
						t.Fatalf("List(%s) sizes differ: %d vs %d", st, a, b)
					}
				}

				// A full paginated walk over the sharded store must visit
				// exactly the listing, in the same shard-major order.
				var walked []Record
				cursor := ""
				for {
					page, err := sn.Page(ListQuery{Limit: 7, Cursor: cursor})
					if err != nil {
						t.Fatalf("Page: %v", err)
					}
					walked = append(walked, page.Records...)
					if page.NextCursor == "" {
						break
					}
					cursor = page.NextCursor
				}
				if len(walked) != len(listN) {
					t.Fatalf("page walk visited %d records, List has %d", len(walked), len(listN))
				}
				for i := range walked {
					if walked[i].Offer.ID != listN[i].Offer.ID {
						t.Fatalf("page walk order diverges at %d: %s vs %s", i, walked[i].Offer.ID, listN[i].Offer.ID)
					}
				}
			})
		}
	}
}
