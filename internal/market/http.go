package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/obs"
)

// Server exposes a Store over HTTP with a small JSON API; Routes lists
// every route and docs/API.md documents the full contract:
//
//	POST /offers                 submit a flex-offer (JSON body)
//	GET  /offers                 list records; ?state=/?owner= filter,
//	                             ?limit=/?cursor= paginate
//	GET  /offers/{id}            one record
//	POST /offers/{id}/accept     accept
//	POST /offers/{id}/reject     reject
//	POST /offers/{id}/assign     assign {"start": ..., "energies": [...]}
//	POST /expire                 sweep overdue records
//	GET  /stats                  store summary
type Server struct {
	store   *Store
	mux     *http.ServeMux
	handler http.Handler
	metrics *obs.HTTPMetrics
	logger  *obs.Logger
	wrap    func(http.Handler) http.Handler
}

// ServerOption configures a Server at construction time.
type ServerOption func(*Server)

// WithObservability instruments the server: every request is counted and
// timed under its RouteLabel through m's middleware (panic recovery
// included), and requests are logged to logger at debug level. Either
// argument may be nil.
func WithObservability(m *obs.HTTPMetrics, logger *obs.Logger) ServerOption {
	return func(s *Server) {
		s.metrics = m
		s.logger = logger
	}
}

// WithMiddleware wraps the route mux with wrap. The wrapper sits inside
// the observability middleware (when both are configured), so anything it
// does to a request — fault injection's errors, delays and panics
// included — is counted and timed like organic traffic.
func WithMiddleware(wrap func(http.Handler) http.Handler) ServerOption {
	return func(s *Server) { s.wrap = wrap }
}

// NewServer wraps a store.
func NewServer(store *Store, opts ...ServerOption) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/offers", s.handleOffers)
	s.mux.HandleFunc("/offers/", s.handleOffer)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/expire", s.handleExpire)
	for _, opt := range opts {
		opt(s)
	}
	s.handler = s.mux
	if s.wrap != nil {
		s.handler = s.wrap(s.handler)
	}
	if s.metrics != nil || s.logger != nil {
		s.handler = obs.Middleware(s.handler, s.metrics, RouteLabel, s.logger)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Route describes one HTTP route a daemon exposes: the inventory behind
// docs/API.md, which a test diffs against the documentation.
type Route struct {
	// Method is the HTTP method the route answers.
	Method string
	// Pattern is the route's path with {placeholders} for variable
	// segments, matching the RouteLabel metric labels.
	Pattern string
	// Summary is a one-line description.
	Summary string
}

// Routes returns the flex-offer API's route inventory, in documentation
// order. Every entry is registered by NewServer (the mux patterns collapse
// the per-ID routes into "/offers/"); TestRoutesRegistered asserts the
// correspondence.
func Routes() []Route {
	return []Route{
		{Method: http.MethodPost, Pattern: "/offers", Summary: "submit a flex-offer"},
		{Method: http.MethodGet, Pattern: "/offers", Summary: "list collected offers (?state=/?owner= filter, ?limit=/?cursor= paginate)"},
		{Method: http.MethodGet, Pattern: "/offers/{id}", Summary: "fetch one offer record"},
		{Method: http.MethodPost, Pattern: "/offers/{id}/accept", Summary: "accept an offered flex-offer"},
		{Method: http.MethodPost, Pattern: "/offers/{id}/reject", Summary: "reject an offered flex-offer"},
		{Method: http.MethodPost, Pattern: "/offers/{id}/assign", Summary: "fix start time and energies of an accepted offer"},
		{Method: http.MethodGet, Pattern: "/stats", Summary: "store summary by lifecycle state"},
		{Method: http.MethodPost, Pattern: "/expire", Summary: "sweep overdue offers"},
	}
}

// RouteLabel maps a request onto the bounded set of route patterns used as
// metric labels — offer IDs (which may contain slashes) collapse into
// {id}, so label cardinality stays fixed no matter how many offers exist.
// Requests that match nothing label as "other".
func RouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/offers", "/stats", "/expire", "/metrics", "/healthz", "/readyz",
		"/aggregates", "/schedule", "/schedule/run", "/kpi":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/offers/"):
		rest := strings.TrimPrefix(p, "/offers/")
		if i := strings.LastIndex(rest, "/"); i >= 0 {
			switch rest[i+1:] {
			case "accept", "reject", "assign":
				return "/offers/{id}/" + rest[i+1:]
			}
		}
		return "/offers/{id}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// parseListQuery interprets the GET /offers query parameters. paged
// reports whether the request opted into the paginated envelope: any of
// limit, cursor or owner does; a bare or state-only listing keeps the
// pre-pagination bare-array contract.
func parseListQuery(values url.Values) (q ListQuery, paged bool, err error) {
	if raw := values.Get("state"); raw != "" {
		st, err := ParseState(raw)
		if err != nil {
			return q, false, err
		}
		q.States = append(q.States, st)
	}
	if raw := values.Get("owner"); raw != "" {
		q.Owner = raw
		paged = true
	}
	if raw := values.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > MaxPageLimit {
			return q, false, fmt.Errorf("%w: limit must be 1..%d", ErrBadRequest, MaxPageLimit)
		}
		q.Limit = n
		paged = true
	}
	if raw := values.Get("cursor"); raw != "" {
		q.Cursor = raw
		paged = true
	}
	return q, paged, nil
}

// assignRequest is the /assign body.
type assignRequest struct {
	Start    time.Time `json:"start"`
	Energies []float64 `json:"energies"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes pre-encoded JSON without routing it through an
// Encoder, which would re-parse the whole body to compact it. The paged
// listing — the largest and hottest response — uses this with the bytes
// Page.MarshalJSON already assembled.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrTransition):
		status = http.StatusConflict
	case errors.Is(err, ErrDeadline):
		status = http.StatusGone
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrJournal):
		// The transition was refused because it could not be made durable;
		// the client may retry once the disk recovers.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleOffers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var f flexoffer.FlexOffer
		if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		if err := s.store.Submit(&f); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": f.ID})
	case http.MethodGet:
		q, paged, err := parseListQuery(r.URL.Query())
		if err != nil {
			writeError(w, err)
			return
		}
		if !paged {
			// The pre-pagination contract: a bare or state-only listing
			// returns the full record array.
			writeJSON(w, http.StatusOK, s.store.List(q.States...))
			return
		}
		page, err := s.store.Page(q)
		if err != nil {
			writeError(w, err)
			return
		}
		body, err := page.MarshalJSON()
		if err != nil {
			writeError(w, err)
			return
		}
		writeRawJSON(w, http.StatusOK, body)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleOffer(w http.ResponseWriter, r *http.Request) {
	// Offer IDs may themselves contain slashes (batch extraction qualifies
	// them as <series>/<offer>), so the action is the *last* path segment
	// when it names a known verb; everything before it is the ID.
	id := strings.TrimPrefix(r.URL.Path, "/offers/")
	action := ""
	if i := strings.LastIndex(id, "/"); i >= 0 {
		switch verb := id[i+1:]; verb {
		case "accept", "reject", "assign":
			id, action = id[:i], verb
		}
	}
	if id == "" {
		writeError(w, fmt.Errorf("%w: missing offer id", ErrBadRequest))
		return
	}

	switch {
	case action == "" && r.Method == http.MethodGet:
		rec, ok := s.store.Get(id)
		if !ok {
			writeError(w, fmt.Errorf("%w: %s", ErrNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case action == "accept" && r.Method == http.MethodPost:
		if err := s.store.Accept(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": Accepted.String()})
	case action == "reject" && r.Method == http.MethodPost:
		if err := s.store.Reject(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": Rejected.String()})
	case action == "assign" && r.Method == http.MethodPost:
		var req assignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		asg, err := s.store.Assign(id, req.Start, req.Energies)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, asg)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleExpire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	n, err := s.store.ExpireOverdue()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"expired": n})
}
