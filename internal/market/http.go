package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/flexoffer"
)

// Server exposes a Store over HTTP with a small JSON API:
//
//	POST /offers                 submit a flex-offer (JSON body)
//	GET  /offers                 list records; ?state=offered filters
//	GET  /offers/{id}            one record
//	POST /offers/{id}/accept     accept
//	POST /offers/{id}/reject     reject
//	POST /offers/{id}/assign     assign {"start": ..., "energies": [...]}
//	POST /expire                 sweep overdue records
//	GET  /stats                  store summary
type Server struct {
	store *Store
	mux   *http.ServeMux
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/offers", s.handleOffers)
	s.mux.HandleFunc("/offers/", s.handleOffer)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/expire", s.handleExpire)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// assignRequest is the /assign body.
type assignRequest struct {
	Start    time.Time `json:"start"`
	Energies []float64 `json:"energies"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrTransition):
		status = http.StatusConflict
	case errors.Is(err, ErrDeadline):
		status = http.StatusGone
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleOffers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var f flexoffer.FlexOffer
		if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		if err := s.store.Submit(&f); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": f.ID})
	case http.MethodGet:
		var states []State
		if raw := r.URL.Query().Get("state"); raw != "" {
			st, err := ParseState(raw)
			if err != nil {
				writeError(w, err)
				return
			}
			states = append(states, st)
		}
		writeJSON(w, http.StatusOK, s.store.List(states...))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleOffer(w http.ResponseWriter, r *http.Request) {
	// Offer IDs may themselves contain slashes (batch extraction qualifies
	// them as <series>/<offer>), so the action is the *last* path segment
	// when it names a known verb; everything before it is the ID.
	id := strings.TrimPrefix(r.URL.Path, "/offers/")
	action := ""
	if i := strings.LastIndex(id, "/"); i >= 0 {
		switch verb := id[i+1:]; verb {
		case "accept", "reject", "assign":
			id, action = id[:i], verb
		}
	}
	if id == "" {
		writeError(w, fmt.Errorf("%w: missing offer id", ErrBadRequest))
		return
	}

	switch {
	case action == "" && r.Method == http.MethodGet:
		rec, ok := s.store.Get(id)
		if !ok {
			writeError(w, fmt.Errorf("%w: %s", ErrNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case action == "accept" && r.Method == http.MethodPost:
		if err := s.store.Accept(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": Accepted.String()})
	case action == "reject" && r.Method == http.MethodPost:
		if err := s.store.Reject(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": Rejected.String()})
	case action == "assign" && r.Method == http.MethodPost:
		var req assignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		asg, err := s.store.Assign(id, req.Start, req.Energies)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, asg)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleExpire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"expired": s.store.ExpireOverdue()})
}
