package market

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// newQueryServer builds a 4-shard store with a deterministic population —
// 25 offers from two owners, a few accepted — behind an httptest server.
func newQueryServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	clock := &fakeClock{now: t0}
	s := NewShardedStore(4, clock.Now)
	for i := 0; i < 25; i++ {
		f := testOffer(fmt.Sprintf("q-%03d", i))
		if i%3 == 0 {
			f.ConsumerID = "owner-b"
		}
		if err := s.Submit(f); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for i := 0; i < 25; i += 5 {
		if err := s.Accept(fmt.Sprintf("q-%03d", i)); err != nil {
			t.Fatalf("Accept: %v", err)
		}
	}
	srv := httptest.NewServer(NewServer(s))
	t.Cleanup(srv.Close)
	return s, srv
}

// getJSON fetches path and decodes the body into out, returning the
// status code.
func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestListQueryConformance(t *testing.T) {
	s, srv := newQueryServer(t)
	all := s.List()

	t.Run("bare listing keeps the legacy array shape", func(t *testing.T) {
		var recs []Record
		if code := getJSON(t, srv, "/offers", &recs); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(recs) != len(all) {
			t.Fatalf("%d records, want %d", len(recs), len(all))
		}
	})

	t.Run("state-only listing keeps the legacy array shape", func(t *testing.T) {
		var recs []Record
		if code := getJSON(t, srv, "/offers?state=accepted", &recs); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(recs) != 5 {
			t.Fatalf("%d accepted records, want 5", len(recs))
		}
	})

	t.Run("limit pages the walk in stable shard-major order", func(t *testing.T) {
		var walked []Record
		path := "/offers?limit=4"
		pages := 0
		for {
			var page Page
			if code := getJSON(t, srv, path, &page); code != http.StatusOK {
				t.Fatalf("status %d at page %d", code, pages)
			}
			if len(page.Records) > 4 {
				t.Fatalf("page %d holds %d records, limit was 4", pages, len(page.Records))
			}
			walked = append(walked, page.Records...)
			pages++
			if page.NextCursor == "" {
				break
			}
			path = "/offers?limit=4&cursor=" + page.NextCursor
		}
		if len(walked) != len(all) {
			t.Fatalf("walk visited %d records, store holds %d", len(walked), len(all))
		}
		for i := range walked {
			if walked[i].Offer.ID != all[i].Offer.ID {
				t.Fatalf("walk order diverges from List at %d: %s vs %s", i, walked[i].Offer.ID, all[i].Offer.ID)
			}
		}
		if pages < 7 {
			t.Fatalf("only %d pages for %d records at limit 4", pages, len(all))
		}
	})

	t.Run("state filter with pagination", func(t *testing.T) {
		var page Page
		if code := getJSON(t, srv, "/offers?state=accepted&limit=100", &page); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(page.Records) != 5 || page.NextCursor != "" {
			t.Fatalf("page = %d records, cursor %q", len(page.Records), page.NextCursor)
		}
		for _, r := range page.Records {
			if r.State != Accepted {
				t.Fatalf("record %s is %s", r.Offer.ID, r.State)
			}
		}
	})

	t.Run("owner filter", func(t *testing.T) {
		var page Page
		if code := getJSON(t, srv, "/offers?owner=owner-b&limit=100", &page); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(page.Records) != 9 {
			t.Fatalf("%d owner-b records, want 9", len(page.Records))
		}
		for _, r := range page.Records {
			if r.Offer.ConsumerID != "owner-b" {
				t.Fatalf("record %s belongs to %s", r.Offer.ID, r.Offer.ConsumerID)
			}
		}
	})

	t.Run("empty page when the filter matches nothing", func(t *testing.T) {
		var page Page
		if code := getJSON(t, srv, "/offers?state=assigned&limit=10", &page); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(page.Records) != 0 {
			t.Fatalf("%d records, want none assigned", len(page.Records))
		}
	})

	t.Run("cursor past the end yields an empty final page", func(t *testing.T) {
		past := encodeCursor(cursor{Shard: s.ShardCount() - 1, Pos: 1 << 20})
		var page Page
		if code := getJSON(t, srv, "/offers?limit=10&cursor="+past, &page); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(page.Records) != 0 || page.NextCursor != "" {
			t.Fatalf("page past end = %d records, cursor %q", len(page.Records), page.NextCursor)
		}
	})

	badRequests := map[string]string{
		"invalid cursor text":     "/offers?cursor=%21%21not-base64%21%21",
		"cursor junk json":        "/offers?cursor=bm90LWpzb24",
		"negative cursor":         "/offers?cursor=" + encodeCursor(cursor{Shard: -1}),
		"cursor unknown state":    "/offers?cursor=" + encodeCursor(cursor{States: []string{"melted"}}),
		"limit zero":              "/offers?limit=0",
		"limit negative":          "/offers?limit=-3",
		"limit over max":          "/offers?limit=1001",
		"limit not a number":      "/offers?limit=ten",
		"unknown state filter":    "/offers?state=melted",
		"cursor filter mismatch":  "/offers?state=accepted&cursor=" + encodeCursor(cursor{}),
		"cursor owner mismatch":   "/offers?owner=owner-b&cursor=" + encodeCursor(cursor{Owner: "someone-else"}),
		"cursor dropped a filter": "/offers?limit=5&cursor=" + encodeCursor(cursor{States: []string{"accepted"}}),
	}
	for name, path := range badRequests {
		t.Run("400 on "+name, func(t *testing.T) {
			if code := getJSON(t, srv, path, nil); code != http.StatusBadRequest {
				t.Fatalf("GET %s = %d, want 400", path, code)
			}
		})
	}
}

// TestPageCursorSurvivesTransitions pins cursor stability: positions index
// the append-only submission order, so records transitioning (and
// per-state index lists compacting) between pages never skew the walk.
func TestPageCursorSurvivesTransitions(t *testing.T) {
	clock := &fakeClock{now: t0}
	s := NewShardedStore(3, clock.Now)
	for i := 0; i < 30; i++ {
		if err := s.Submit(testOffer(fmt.Sprintf("c-%03d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	first, err := s.Page(ListQuery{Limit: 10})
	if err != nil {
		t.Fatalf("Page: %v", err)
	}
	// Transition records everywhere in the store between the two pages.
	for i := 0; i < 30; i += 2 {
		if err := s.Accept(fmt.Sprintf("c-%03d", i)); err != nil {
			t.Fatalf("Accept: %v", err)
		}
	}
	rest, err := s.Page(ListQuery{Limit: 100, Cursor: first.NextCursor})
	if err != nil {
		t.Fatalf("Page(cursor): %v", err)
	}
	seen := make(map[string]bool)
	for _, r := range append(first.Records, rest.Records...) {
		if seen[r.Offer.ID] {
			t.Fatalf("record %s visited twice", r.Offer.ID)
		}
		seen[r.Offer.ID] = true
	}
	if len(seen) != 30 {
		t.Fatalf("walk visited %d of 30 records", len(seen))
	}
}

// FuzzListQuery fuzzes the GET /offers query surface: parameter parsing,
// cursor decoding and the page walk itself. Whatever the inputs, the
// store must answer 200 or 400 — never panic, never 500.
func FuzzListQuery(f *testing.F) {
	f.Add("offered", "", "10", "")
	f.Add("", "owner-b", "1", "")
	f.Add("accepted", "", "1000", "eyJzIjowLCJwIjowfQ")
	f.Add("melted", "x", "-5", "!!!")
	f.Add("", "", "", "bm90LWpzb24")
	f.Add("expired", "c1", "0", "eyJzIjotMSwicCI6LTF9")

	clock := &fakeClock{now: t0}
	s := NewShardedStore(3, clock.Now)
	for i := 0; i < 12; i++ {
		fo := testOffer(fmt.Sprintf("fz-%02d", i))
		if i%2 == 0 {
			fo.ConsumerID = "owner-b"
		}
		if err := s.Submit(fo); err != nil {
			f.Fatalf("Submit: %v", err)
		}
	}
	srv := NewServer(s)

	f.Fuzz(func(t *testing.T, state, owner, limit, cursor string) {
		values := url.Values{}
		for _, kv := range [][2]string{{"state", state}, {"owner", owner}, {"limit", limit}, {"cursor", cursor}} {
			if kv[1] != "" {
				values.Set(kv[0], kv[1])
			}
		}
		target := "/offers"
		if enc := values.Encode(); enc != "" {
			target += "?" + enc
		}
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK && rr.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 200 or 400\n%s", target, rr.Code, rr.Body.String())
		}
		if rr.Code != http.StatusOK {
			return
		}
		// A 200 with a cursor must continue cleanly for at least one page.
		var page Page
		if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
			return // legacy bare-array shape
		}
		if page.NextCursor != "" {
			next := httptest.NewRequest(http.MethodGet, "/offers?cursor="+page.NextCursor, nil)
			if owner != "" || state != "" {
				return // the filter must be repeated; mismatch 400s by design
			}
			rr2 := httptest.NewRecorder()
			srv.ServeHTTP(rr2, next)
			if rr2.Code != http.StatusOK {
				t.Fatalf("follow-up cursor page = %d\n%s", rr2.Code, rr2.Body.String())
			}
		}
	})
}
