package agg_test

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/flexoffer"
)

// ExampleAggregateSet aggregates two similar offers and disaggregates a
// schedule of the aggregate back onto them, conserving energy exactly.
func ExampleAggregateSet() {
	t0 := time.Date(2012, 6, 4, 18, 0, 0, 0, time.UTC)
	offers := flexoffer.Set{
		&flexoffer.FlexOffer{
			ID: "house-1", EarliestStart: t0, LatestStart: t0.Add(2 * time.Hour),
			Profile: flexoffer.UniformProfile(4, 15*time.Minute, 0.2, 0.4),
		},
		&flexoffer.FlexOffer{
			ID: "house-2", EarliestStart: t0.Add(15 * time.Minute), LatestStart: t0.Add(2*time.Hour + 15*time.Minute),
			Profile: flexoffer.UniformProfile(4, 15*time.Minute, 0.3, 0.6),
		},
	}
	aggs, err := agg.AggregateSet(offers, agg.DefaultParams())
	if err != nil {
		fmt.Println("aggregate:", err)
		return
	}
	a := aggs[0]
	fmt.Printf("%d aggregate from %d members, energy %.1f..%.1f kWh\n",
		len(aggs), len(a.Members), a.Offer.TotalMinEnergy(), a.Offer.TotalMaxEnergy())

	// Schedule the aggregate one hour into its window and split it back.
	asg, _ := a.Offer.AssignDefault(a.Offer.EarliestStart.Add(time.Hour))
	members, _ := a.Disaggregate(asg)
	var sum float64
	for _, m := range members {
		sum += m.TotalEnergy()
	}
	fmt.Printf("aggregate schedules %.1f kWh; members sum to %.1f kWh\n",
		asg.TotalEnergy(), sum)
	// Output:
	// 1 aggregate from 2 members, energy 2.0..4.0 kWh
	// aggregate schedules 3.0 kWh; members sum to 3.0 kWh
}
