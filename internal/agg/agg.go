// Package agg aggregates and disaggregates flex-offers, reimplementing the
// MIRABEL subsystem the paper builds on (reference [4], SSDBM 2012, and the
// §6 remark that "individual flex-offers have to be aggregated from
// thousands consumers before the actual scheduling"). Offers with similar
// earliest start times and time flexibilities are grouped on a grid and
// summed into one aggregated offer per group; scheduling decisions taken on
// the aggregate disaggregate losslessly into per-member assignments.
//
// The aggregation is conservative: any feasible assignment of the
// aggregated offer disaggregates into feasible assignments of every member,
// and the per-slice energies of the members sum exactly to the aggregate's.
package agg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/flexoffer"
)

// Common errors.
var (
	ErrParams = errors.New("agg: invalid parameters")
	ErrOffer  = errors.New("agg: unaggregatable offer")
)

// Params controls grouping.
type Params struct {
	// ESTWindow buckets offers by earliest start: offers whose earliest
	// starts fall in the same window of this length may aggregate
	// (default 2 h).
	ESTWindow time.Duration
	// MaxTimeFlexGap bounds the spread of time flexibilities within a
	// group (default 1 h). The aggregate inherits the group's minimum
	// flexibility, so a tight gap limits flexibility lost to aggregation.
	MaxTimeFlexGap time.Duration
	// MaxGroupSize caps members per aggregate; 0 means unlimited.
	MaxGroupSize int
}

// DefaultParams returns the grouping defaults.
func DefaultParams() Params {
	return Params{ESTWindow: 2 * time.Hour, MaxTimeFlexGap: time.Hour}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.ESTWindow <= 0 {
		return fmt.Errorf("%w: EST window %v", ErrParams, p.ESTWindow)
	}
	if p.MaxTimeFlexGap < 0 {
		return fmt.Errorf("%w: time flex gap %v", ErrParams, p.MaxTimeFlexGap)
	}
	if p.MaxGroupSize < 0 {
		return fmt.Errorf("%w: group size %d", ErrParams, p.MaxGroupSize)
	}
	return nil
}

// Aggregate is one aggregated offer with its members.
type Aggregate struct {
	// Offer is the aggregated flex-offer presented to the scheduler.
	Offer *flexoffer.FlexOffer
	// Members are the underlying offers.
	Members flexoffer.Set
	// offsets[i] is member i's profile offset from the aggregate start.
	offsets []time.Duration
}

// AggregateSet groups and aggregates a set of offers. All offers must share
// a single slice duration and have earliest starts aligned to it (offers
// extracted from one series always do); offers violating this are returned
// as singleton aggregates rather than dropped.
func AggregateSet(set flexoffer.Set, p Params) ([]*Aggregate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return nil, nil
	}
	slice := commonSliceDuration(set)

	// Group key: EST bucket + time-flexibility bucket + slice-alignment
	// phase. Offers in one group align on the slice grid.
	type key struct {
		est   int64
		tf    int64
		phase int64
	}
	groups := make(map[key]flexoffer.Set)
	var order []key // deterministic iteration
	for _, f := range set {
		k := key{
			est:   f.EarliestStart.UnixNano() / int64(p.ESTWindow),
			phase: f.EarliestStart.UnixNano() % int64(slice),
		}
		if p.MaxTimeFlexGap > 0 {
			k.tf = int64(f.TimeFlexibility() / p.MaxTimeFlexGap)
		} else {
			k.tf = int64(f.TimeFlexibility())
		}
		if uniformSlices(f, slice) != nil || f.TotalConstraint != nil {
			// Non-conforming profiles are isolated; so are offers with a
			// total-energy constraint, because the per-slice disaggregation
			// rule cannot guarantee member total constraints.
			k.phase = -1 - int64(len(order))
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], f)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.est != b.est {
			return a.est < b.est
		}
		if a.tf != b.tf {
			return a.tf < b.tf
		}
		return a.phase < b.phase
	})

	var out []*Aggregate
	seq := 0
	for _, k := range order {
		members := groups[k]
		members.SortByEarliestStart()
		for from := 0; from < len(members); {
			to := len(members)
			if p.MaxGroupSize > 0 && to-from > p.MaxGroupSize {
				to = from + p.MaxGroupSize
			}
			seq++
			a, err := aggregate(members[from:to], slice, fmt.Sprintf("agg-%04d", seq))
			if err != nil {
				return nil, err
			}
			out = append(out, a)
			from = to
		}
	}
	return out, nil
}

// commonSliceDuration picks the slice duration shared by the set (the first
// offer's; others are validated against it during aggregation).
func commonSliceDuration(set flexoffer.Set) time.Duration {
	return set[0].Profile[0].Duration
}

// uniformSlices reports whether every slice of f has the given duration.
func uniformSlices(f *flexoffer.FlexOffer, d time.Duration) error {
	for i, s := range f.Profile {
		if s.Duration != d {
			return fmt.Errorf("%w: offer %s slice %d duration %v != %v", ErrOffer, f.ID, i, s.Duration, d)
		}
	}
	return nil
}

// aggregate builds the aggregated offer for one group.
func aggregate(members flexoffer.Set, slice time.Duration, id string) (*Aggregate, error) {
	if len(members) == 1 {
		// Singleton: the aggregate is the member itself (cloned, renamed).
		c := members[0].Clone()
		c.ID = id
		return &Aggregate{Offer: c, Members: members, offsets: []time.Duration{0}}, nil
	}
	// Anchor at the earliest member start; every other member is offset by
	// a whole number of slices (guaranteed by the grouping phase key).
	anchor := members[0].EarliestStart
	minTF := members[0].TimeFlexibility()
	offsets := make([]time.Duration, len(members))
	maxSlices := 0
	for i, f := range members {
		if err := uniformSlices(f, slice); err != nil {
			return nil, err
		}
		off := f.EarliestStart.Sub(anchor)
		if off%slice != 0 {
			return nil, fmt.Errorf("%w: offer %s start not slice-aligned within group", ErrOffer, f.ID)
		}
		offsets[i] = off
		if end := int(off/slice) + len(f.Profile); end > maxSlices {
			maxSlices = end
		}
		if tf := f.TimeFlexibility(); tf < minTF {
			minTF = tf
		}
	}

	profile := make([]flexoffer.Slice, maxSlices)
	for k := range profile {
		profile[k].Duration = slice
	}
	for i, f := range members {
		base := int(offsets[i] / slice)
		for j, s := range f.Profile {
			profile[base+j].MinEnergy += s.MinEnergy
			profile[base+j].MaxEnergy += s.MaxEnergy
		}
	}

	offer := &flexoffer.FlexOffer{
		ID:            id,
		EarliestStart: anchor,
		LatestStart:   anchor.Add(minTF),
		Profile:       profile,
	}
	if err := offer.Validate(); err != nil {
		return nil, err
	}
	return &Aggregate{Offer: offer, Members: members, offsets: offsets}, nil
}

// Disaggregate distributes an assignment of the aggregated offer onto the
// members: member i starts at the aggregate start plus its offset, and each
// aggregate slice's energy is split so that every member stays within its
// bounds (members get their minimum plus a share of the slack proportional
// to their energy flexibility). The members' energies sum exactly to the
// aggregate's per slice.
func (a *Aggregate) Disaggregate(asg *flexoffer.Assignment) ([]*flexoffer.Assignment, error) {
	if asg == nil || asg.Offer != a.Offer {
		return nil, fmt.Errorf("%w: assignment does not belong to this aggregate", ErrOffer)
	}
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	slice := a.Offer.Profile[0].Duration
	shift := asg.Start.Sub(a.Offer.EarliestStart)

	// Per aggregate slice: the summed min and flexibility of the members
	// covering it.
	nAgg := len(a.Offer.Profile)
	minSum := make([]float64, nAgg)
	flexSum := make([]float64, nAgg)
	for i, f := range a.Members {
		base := int(a.offsets[i] / slice)
		for j, s := range f.Profile {
			minSum[base+j] += s.MinEnergy
			flexSum[base+j] += s.EnergyFlexibility()
		}
	}

	out := make([]*flexoffer.Assignment, len(a.Members))
	for i, f := range a.Members {
		base := int(a.offsets[i] / slice)
		energies := make([]float64, len(f.Profile))
		for j, s := range f.Profile {
			k := base + j
			slack := asg.Energies[k] - minSum[k]
			if slack < 0 {
				slack = 0
			}
			e := s.MinEnergy
			if flexSum[k] > 0 {
				e += slack * s.EnergyFlexibility() / flexSum[k]
			}
			energies[j] = e
		}
		// The aggregate starts at anchor+shift, so member i's profile
		// begins at anchor+shift+offset_i = its own earliest start + shift,
		// which is inside its window because shift <= the group's minimum
		// time flexibility.
		memberAsg, err := f.Assign(f.EarliestStart.Add(shift), energies)
		if err != nil {
			return nil, fmt.Errorf("disaggregate %s: %w", f.ID, err)
		}
		out[i] = memberAsg
	}
	return out, nil
}

// TotalMembers counts members across aggregates.
func TotalMembers(aggs []*Aggregate) int {
	var n int
	for _, a := range aggs {
		n += len(a.Members)
	}
	return n
}
