package agg

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/flexoffer"
)

// groupKey identifies one grouping bucket of the incremental aggregator.
// Conforming offers use the same (EST bucket, time-flexibility bucket,
// slice-alignment phase) key as the batch AggregateSet; non-conforming
// offers — non-uniform slices or a total-energy constraint — are isolated
// in a solo bucket keyed by their own ID, mirroring the batch path that
// gives every such offer a singleton aggregate.
type groupKey struct {
	est   int64
	tf    int64
	phase int64
	solo  string
}

// group is one bucket's live membership plus its cached aggregation.
// Mutations mark the group dirty; the aggregates are rebuilt lazily on the
// next Aggregates call, so one lifecycle event costs O(1) bookkeeping now
// and O(group) rebuilding later — never a full recompute of every bucket.
type group struct {
	members map[string]*flexoffer.FlexOffer
	aggs    []*Aggregate
	dirty   bool
}

// Incremental maintains the aggregation of a changing offer population.
// Offers join with Add and leave with Remove; Aggregates returns the same
// partition and the same aggregated profiles that a batch AggregateSet over
// the current membership would (proven by the equivalence property test),
// provided every conforming offer's slice duration equals the configured
// one — which holds by construction when offers come from a store whose
// extraction resolution matches the scheduling resolution.
//
// All methods are safe for concurrent use.
type Incremental struct {
	p     Params
	slice time.Duration

	mu      sync.Mutex
	members map[string]*flexoffer.FlexOffer // guarded by mu: every live offer by ID
	keyOf   map[string]groupKey             // guarded by mu: offer ID -> its bucket
	groups  map[groupKey]*group             // guarded by mu

	joined   uint64 // guarded by mu: lifetime Add count
	left     uint64 // guarded by mu: lifetime successful Remove count
	rebuilds uint64 // guarded by mu: lifetime group rebuilds
}

// NewIncremental builds an incremental aggregator. slice is the slice
// duration conforming offers must share (normally the scheduler's
// resolution); offers with other or mixed slice durations still aggregate,
// as singletons.
func NewIncremental(p Params, slice time.Duration) (*Incremental, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if slice <= 0 {
		return nil, fmt.Errorf("%w: slice duration %v", ErrParams, slice)
	}
	return &Incremental{
		p:       p,
		slice:   slice,
		members: make(map[string]*flexoffer.FlexOffer),
		keyOf:   make(map[string]groupKey),
		groups:  make(map[groupKey]*group),
	}, nil
}

// keyFor buckets one offer, matching the batch AggregateSet key exactly.
func (inc *Incremental) keyFor(f *flexoffer.FlexOffer) groupKey {
	if uniformSlices(f, inc.slice) != nil || f.TotalConstraint != nil {
		return groupKey{solo: f.ID}
	}
	k := groupKey{
		est:   f.EarliestStart.UnixNano() / int64(inc.p.ESTWindow),
		phase: f.EarliestStart.UnixNano() % int64(inc.slice),
	}
	if inc.p.MaxTimeFlexGap > 0 {
		k.tf = int64(f.TimeFlexibility() / inc.p.MaxTimeFlexGap)
	} else {
		k.tf = int64(f.TimeFlexibility())
	}
	return k
}

// Add joins an offer to its aggregate bucket in O(1); the bucket is
// re-aggregated on the next Aggregates call. The offer is stored by
// reference and must not be mutated afterwards.
func (inc *Incremental) Add(f *flexoffer.FlexOffer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if _, dup := inc.members[f.ID]; dup {
		return fmt.Errorf("%w: duplicate offer %s", ErrOffer, f.ID)
	}
	k := inc.keyFor(f)
	g := inc.groups[k]
	if g == nil {
		g = &group{members: make(map[string]*flexoffer.FlexOffer)}
		inc.groups[k] = g
	}
	g.members[f.ID] = f
	g.dirty = true
	inc.members[f.ID] = f
	inc.keyOf[f.ID] = k
	inc.joined++
	return nil
}

// Remove takes an offer out of its bucket in O(1) and reports whether it
// was present.
func (inc *Incremental) Remove(id string) bool {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	k, ok := inc.keyOf[id]
	if !ok {
		return false
	}
	delete(inc.members, id)
	delete(inc.keyOf, id)
	g := inc.groups[k]
	delete(g.members, id)
	if len(g.members) == 0 {
		delete(inc.groups, k)
	} else {
		g.dirty = true
	}
	inc.left++
	return true
}

// Contains reports whether the offer is currently aggregated.
func (inc *Incremental) Contains(id string) bool {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	_, ok := inc.members[id]
	return ok
}

// Aggregates rebuilds every dirty bucket and returns the full current
// aggregation in deterministic order (conforming buckets by EST /
// time-flexibility / phase, then solo buckets by offer ID). Clean buckets
// are returned from cache, so the cost is proportional to the membership
// churn since the previous call, not to the population.
func (inc *Incremental) Aggregates() ([]*Aggregate, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	keys := make([]groupKey, 0, len(inc.groups))
	for k := range inc.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if (a.solo == "") != (b.solo == "") {
			return a.solo == ""
		}
		if a.solo != "" {
			return a.solo < b.solo
		}
		if a.est != b.est {
			return a.est < b.est
		}
		if a.tf != b.tf {
			return a.tf < b.tf
		}
		return a.phase < b.phase
	})
	var out []*Aggregate
	for _, k := range keys {
		g := inc.groups[k]
		if g.dirty {
			if err := inc.rebuildLocked(k, g); err != nil {
				return nil, err
			}
		}
		out = append(out, g.aggs...)
	}
	return out, nil
}

// rebuildLocked re-aggregates one bucket through the same canonical path
// the batch aggregator uses — members sorted by (earliest start, ID) and
// chunked by MaxGroupSize — so a rebuilt bucket is bitwise-identical to
// its batch counterpart. Called with inc.mu held.
func (inc *Incremental) rebuildLocked(k groupKey, g *group) error {
	members := make(flexoffer.Set, 0, len(g.members))
	for _, f := range g.members {
		members = append(members, f)
	}
	members.SortByEarliestStart()
	aggs := make([]*Aggregate, 0, 1)
	chunk := 0
	for from := 0; from < len(members); {
		to := len(members)
		if inc.p.MaxGroupSize > 0 && to-from > inc.p.MaxGroupSize {
			to = from + inc.p.MaxGroupSize
		}
		a, err := aggregate(members[from:to], inc.slice, incrementalID(k, chunk))
		if err != nil {
			return err
		}
		aggs = append(aggs, a)
		chunk++
		from = to
	}
	g.aggs = aggs
	g.dirty = false
	inc.rebuilds++
	return nil
}

// incrementalID names one aggregate deterministically from its bucket key
// and chunk index, so the same membership always yields the same ID across
// calls and restarts.
func incrementalID(k groupKey, chunk int) string {
	if k.solo != "" {
		return "agg-solo-" + k.solo
	}
	return fmt.Sprintf("agg-%d.%d.%d-%d", k.est, k.tf, k.phase, chunk)
}

// IncrementalStats is a point-in-time snapshot of the aggregator.
type IncrementalStats struct {
	// Members is the number of offers currently aggregated.
	Members int `json:"members"`
	// Groups is the number of live grouping buckets.
	Groups int `json:"groups"`
	// Aggregates counts aggregates across buckets, as of each bucket's
	// last rebuild (a dirty bucket reports its previous size until the
	// next Aggregates call).
	Aggregates int `json:"aggregates"`
	// Joined and Left are lifetime membership churn counters.
	Joined uint64 `json:"joined"`
	Left   uint64 `json:"left"`
	// Rebuilds is the lifetime number of bucket re-aggregations — the
	// work actually done, versus the full recomputes a batch aggregator
	// would have run.
	Rebuilds uint64 `json:"rebuilds"`
}

// Stats returns current counters without forcing a rebuild.
func (inc *Incremental) Stats() IncrementalStats {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	st := IncrementalStats{
		Members:  len(inc.members),
		Groups:   len(inc.groups),
		Joined:   inc.joined,
		Left:     inc.left,
		Rebuilds: inc.rebuilds,
	}
	for _, g := range inc.groups {
		st.Aggregates += len(g.aggs)
	}
	return st
}
