package agg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/flexoffer"
)

var incBase = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

const incSlice = 15 * time.Minute

// genOffer builds a random valid offer. Every offer's first slice has the
// common duration, so the batch aggregator's inferred slice always matches
// the incremental aggregator's configured one; variety comes from start
// phase, time flexibility, profile length, and the occasional
// non-conforming offer (non-uniform slices or a total constraint) that
// both sides must isolate as a singleton.
func genOffer(rng *rand.Rand, id string) *flexoffer.FlexOffer {
	est := incBase.Add(time.Duration(3+rng.Intn(24)) * time.Hour).
		Add(time.Duration(rng.Intn(16)) * incSlice)
	if rng.Intn(5) == 0 {
		est = est.Add(time.Duration(rng.Intn(15)) * time.Minute) // off-grid phase
	}
	tf := time.Duration(rng.Intn(9)) * 30 * time.Minute
	minE := float64(rng.Intn(100)) / 50
	maxE := minE + float64(rng.Intn(100))/50
	f := &flexoffer.FlexOffer{
		ID:             id,
		ConsumerID:     "gen",
		CreationTime:   incBase,
		AcceptanceTime: est.Add(-2 * time.Hour),
		AssignmentTime: est.Add(-time.Hour),
		EarliestStart:  est,
		LatestStart:    est.Add(tf),
		Profile:        flexoffer.UniformProfile(1+rng.Intn(6), incSlice, minE, maxE),
	}
	switch rng.Intn(10) {
	case 0:
		f.TotalConstraint = &flexoffer.EnergyConstraint{Min: f.TotalMinEnergy(), Max: f.TotalMaxEnergy()}
	case 1:
		f.Profile = append(f.Profile, flexoffer.Slice{Duration: 30 * time.Minute, MinEnergy: minE, MaxEnergy: maxE})
	}
	return f
}

// memberKey canonically names an aggregate by its member ID set.
func memberKey(a *Aggregate) string {
	ids := make([]string, len(a.Members))
	for i, f := range a.Members {
		ids[i] = f.ID
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x00")
}

// normalized returns the aggregate's offer with the ID cleared, so batch
// and incremental aggregates compare on content alone.
func normalized(a *Aggregate) *flexoffer.FlexOffer {
	c := a.Offer.Clone()
	c.ID = ""
	return c
}

// assertEquivalent checks that the incremental aggregation equals a batch
// recompute over the same membership: same partition into member sets, and
// per matching aggregate an identical offer (modulo the generated ID).
func assertEquivalent(t *testing.T, inc *Incremental, live map[string]*flexoffer.FlexOffer) {
	t.Helper()
	got, err := inc.Aggregates()
	if err != nil {
		t.Fatalf("incremental Aggregates: %v", err)
	}
	set := make(flexoffer.Set, 0, len(live))
	for _, id := range sortedIDs(live) {
		set = append(set, live[id])
	}
	want, err := AggregateSet(set, inc.p)
	if err != nil {
		t.Fatalf("batch AggregateSet: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("incremental has %d aggregates, batch %d", len(got), len(want))
	}
	batch := make(map[string]*Aggregate, len(want))
	for _, a := range want {
		batch[memberKey(a)] = a
	}
	total := 0
	for _, a := range got {
		b, ok := batch[memberKey(a)]
		if !ok {
			t.Fatalf("incremental aggregate %s groups members %q absent from batch partition", a.Offer.ID, memberKey(a))
		}
		if !reflect.DeepEqual(normalized(a), normalized(b)) {
			t.Fatalf("aggregate over %q differs:\nincremental %+v\nbatch       %+v", memberKey(a), a.Offer, b.Offer)
		}
		total += len(a.Members)
	}
	if total != len(live) {
		t.Fatalf("aggregates cover %d members, %d live", total, len(live))
	}
}

func sortedIDs(live map[string]*flexoffer.FlexOffer) []string {
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TestIncrementalBatchEquivalence drives seeded lifecycle scripts of
// random joins and leaves and checks, at every checkpoint, that the
// incremental aggregation equals a full batch recompute.
func TestIncrementalBatchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := DefaultParams()
			if seed%2 == 0 {
				p.MaxGroupSize = 1 + rng.Intn(4)
			}
			inc, err := NewIncremental(p, incSlice)
			if err != nil {
				t.Fatal(err)
			}
			live := make(map[string]*flexoffer.FlexOffer)
			next := 0
			for step := 0; step < 300; step++ {
				if len(live) == 0 || rng.Intn(10) < 6 {
					id := fmt.Sprintf("o%04d", next)
					next++
					f := genOffer(rng, id)
					if err := inc.Add(f); err != nil {
						t.Fatalf("Add %s: %v", id, err)
					}
					live[id] = f
				} else {
					ids := sortedIDs(live)
					id := ids[rng.Intn(len(ids))]
					if !inc.Remove(id) {
						t.Fatalf("Remove %s: not present", id)
					}
					delete(live, id)
				}
				if step%25 == 24 {
					assertEquivalent(t, inc, live)
				}
			}
			assertEquivalent(t, inc, live)
			st := inc.Stats()
			if st.Members != len(live) {
				t.Errorf("Stats.Members = %d, want %d", st.Members, len(live))
			}
			if st.Joined != uint64(next) {
				t.Errorf("Stats.Joined = %d, want %d", st.Joined, next)
			}
			if st.Left != uint64(next-len(live)) {
				t.Errorf("Stats.Left = %d, want %d", st.Left, next-len(live))
			}
		})
	}
}

func TestIncrementalRejectsDuplicatesAndInvalid(t *testing.T) {
	inc, err := NewIncremental(DefaultParams(), incSlice)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	f := genOffer(rng, "dup")
	if err := inc.Add(f); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := inc.Add(f); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	bad := genOffer(rng, "bad")
	bad.Profile = nil
	if err := inc.Add(bad); err == nil {
		t.Fatal("invalid offer accepted")
	}
	if inc.Remove("never-seen") {
		t.Fatal("Remove of unknown offer reported true")
	}
	if !inc.Contains("dup") || inc.Contains("bad") {
		t.Fatal("Contains disagrees with membership")
	}
}

// TestIncrementalRebuildScoping checks the O(affected-bucket) claim: a
// second Aggregates call after touching one bucket rebuilds only that
// bucket.
func TestIncrementalRebuildScoping(t *testing.T) {
	inc, err := NewIncremental(DefaultParams(), incSlice)
	if err != nil {
		t.Fatal(err)
	}
	// Two buckets far apart in earliest start.
	mk := func(id string, hours int) *flexoffer.FlexOffer {
		est := incBase.Add(time.Duration(hours) * time.Hour)
		return &flexoffer.FlexOffer{
			ID:            id,
			EarliestStart: est,
			LatestStart:   est.Add(time.Hour),
			Profile:       flexoffer.UniformProfile(2, incSlice, 1, 2),
		}
	}
	for _, f := range []*flexoffer.FlexOffer{mk("a1", 4), mk("a2", 4), mk("b1", 40)} {
		if err := inc.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.Aggregates(); err != nil {
		t.Fatal(err)
	}
	before := inc.Stats().Rebuilds
	if before != 2 {
		t.Fatalf("initial rebuilds = %d, want 2", before)
	}
	if err := inc.Add(mk("a3", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Aggregates(); err != nil {
		t.Fatal(err)
	}
	if got := inc.Stats().Rebuilds; got != before+1 {
		t.Fatalf("rebuilds after touching one bucket = %d, want %d", got, before+1)
	}
}
