package agg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/flexoffer"
)

var t0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// offer builds a test offer with n 15-minute slices of [minE, maxE] each.
func offer(id string, est time.Time, tf time.Duration, n int, minE, maxE float64) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:            id,
		EarliestStart: est,
		LatestStart:   est.Add(tf),
		Profile:       flexoffer.UniformProfile(n, 15*time.Minute, minE, maxE),
	}
}

func TestAggregateSimilarOffers(t *testing.T) {
	set := flexoffer.Set{
		offer("a", t0, 2*time.Hour, 4, 1, 2),
		offer("b", t0.Add(15*time.Minute), 2*time.Hour+45*time.Minute, 4, 2, 3),
		offer("c", t0.Add(30*time.Minute), 2*time.Hour+30*time.Minute, 2, 1, 1),
	}
	aggs, err := AggregateSet(set, DefaultParams())
	if err != nil {
		t.Fatalf("AggregateSet: %v", err)
	}
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	a := aggs[0]
	if len(a.Members) != 3 {
		t.Fatalf("members = %d", len(a.Members))
	}
	// Aggregate energy bounds are the sums of the members'.
	var wantMin, wantMax float64
	for _, f := range set {
		wantMin += f.TotalMinEnergy()
		wantMax += f.TotalMaxEnergy()
	}
	if !almostEqual(a.Offer.TotalMinEnergy(), wantMin, 1e-9) {
		t.Errorf("aggregate min = %v, want %v", a.Offer.TotalMinEnergy(), wantMin)
	}
	if !almostEqual(a.Offer.TotalMaxEnergy(), wantMax, 1e-9) {
		t.Errorf("aggregate max = %v, want %v", a.Offer.TotalMaxEnergy(), wantMax)
	}
	// Conservative window: anchor at the earliest member, flexibility is
	// the group's minimum (2h).
	if !a.Offer.EarliestStart.Equal(t0) {
		t.Errorf("aggregate EST = %v", a.Offer.EarliestStart)
	}
	if a.Offer.TimeFlexibility() != 2*time.Hour {
		t.Errorf("aggregate TF = %v, want 2h", a.Offer.TimeFlexibility())
	}
	if err := a.Offer.Validate(); err != nil {
		t.Errorf("aggregate invalid: %v", err)
	}
}

func TestAggregateSeparatesDistantOffers(t *testing.T) {
	set := flexoffer.Set{
		offer("a", t0, 2*time.Hour, 4, 1, 2),
		offer("b", t0.Add(6*time.Hour), 2*time.Hour, 4, 1, 2), // different EST bucket
	}
	aggs, err := AggregateSet(set, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Errorf("aggregates = %d, want 2", len(aggs))
	}
}

func TestAggregateSeparatesDifferentFlexibilities(t *testing.T) {
	set := flexoffer.Set{
		offer("a", t0, 30*time.Minute, 4, 1, 2),
		offer("b", t0, 8*time.Hour, 4, 1, 2), // very different TF bucket
	}
	aggs, err := AggregateSet(set, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Errorf("aggregates = %d, want 2", len(aggs))
	}
}

func TestAggregateGroupSizeCap(t *testing.T) {
	var set flexoffer.Set
	for i := 0; i < 10; i++ {
		set = append(set, offer(string(rune('a'+i)), t0, 2*time.Hour, 4, 1, 2))
	}
	p := DefaultParams()
	p.MaxGroupSize = 3
	aggs, err := AggregateSet(set, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 4 { // 3+3+3+1
		t.Errorf("aggregates = %d, want 4", len(aggs))
	}
	for _, a := range aggs {
		if len(a.Members) > 3 {
			t.Errorf("group of %d exceeds cap", len(a.Members))
		}
	}
	if TotalMembers(aggs) != 10 {
		t.Errorf("TotalMembers = %d", TotalMembers(aggs))
	}
}

func TestAggregateSingletonClonesOffer(t *testing.T) {
	orig := offer("solo", t0, time.Hour, 4, 1, 2)
	aggs, err := AggregateSet(flexoffer.Set{orig}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || len(aggs[0].Members) != 1 {
		t.Fatalf("aggs = %+v", aggs)
	}
	aggs[0].Offer.Profile[0].MinEnergy = 999
	if orig.Profile[0].MinEnergy == 999 {
		t.Error("singleton aggregate shares profile with member")
	}
}

func TestAggregateMisalignedOfferIsolated(t *testing.T) {
	set := flexoffer.Set{
		offer("a", t0, 2*time.Hour, 4, 1, 2),
		offer("b", t0.Add(7*time.Minute), 2*time.Hour, 4, 1, 2), // off-grid EST
	}
	aggs, err := AggregateSet(set, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Errorf("aggregates = %d, want 2 (misaligned offer isolated)", len(aggs))
	}
}

func TestAggregateEmptyAndInvalid(t *testing.T) {
	aggs, err := AggregateSet(nil, DefaultParams())
	if err != nil || aggs != nil {
		t.Errorf("empty set: %v, %v", aggs, err)
	}
	bad := flexoffer.Set{{ID: "bad"}}
	if _, err := AggregateSet(bad, DefaultParams()); err == nil {
		t.Error("invalid offer accepted")
	}
	if _, err := AggregateSet(nil, Params{ESTWindow: -time.Hour}); !errors.Is(err, ErrParams) {
		t.Errorf("bad params: %v", err)
	}
}

func TestDisaggregateConservesEnergy(t *testing.T) {
	set := flexoffer.Set{
		offer("a", t0, 2*time.Hour, 4, 1, 2),
		offer("b", t0.Add(15*time.Minute), 2*time.Hour+30*time.Minute, 4, 2, 3),
	}
	aggs, err := AggregateSet(set, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := aggs[0]
	asg, err := a.Offer.AssignDefault(a.Offer.EarliestStart.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	members, err := a.Disaggregate(asg)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	if len(members) != 2 {
		t.Fatalf("member assignments = %d", len(members))
	}
	// Every member assignment is feasible.
	for _, m := range members {
		if err := m.Validate(); err != nil {
			t.Errorf("member assignment invalid: %v", err)
		}
	}
	// Energy conservation: total member energy = aggregate energy.
	var total float64
	for _, m := range members {
		total += m.TotalEnergy()
	}
	if !almostEqual(total, asg.TotalEnergy(), 1e-9) {
		t.Errorf("member energy %v != aggregate %v", total, asg.TotalEnergy())
	}
	// Time consistency: each member starts at its own EST + shift.
	for i, m := range members {
		want := a.Members[i].EarliestStart.Add(30 * time.Minute)
		if !m.Start.Equal(want) {
			t.Errorf("member %d start = %v, want %v", i, m.Start, want)
		}
	}
}

func TestDisaggregateRejectsForeignAssignment(t *testing.T) {
	aggs, err := AggregateSet(flexoffer.Set{offer("a", t0, time.Hour, 4, 1, 2)}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	other := offer("x", t0, time.Hour, 4, 1, 2)
	asg, _ := other.AssignDefault(t0)
	if _, err := aggs[0].Disaggregate(asg); !errors.Is(err, ErrOffer) {
		t.Errorf("foreign assignment: %v", err)
	}
	if _, err := aggs[0].Disaggregate(nil); !errors.Is(err, ErrOffer) {
		t.Errorf("nil assignment: %v", err)
	}
}

// Property: for random groups and random feasible aggregate assignments,
// disaggregation always yields feasible member assignments whose per-slice
// energies sum to the aggregate's.
func TestDisaggregateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nMembers := rng.Intn(5) + 2
		var set flexoffer.Set
		for i := 0; i < nMembers; i++ {
			est := t0.Add(time.Duration(rng.Intn(8)) * 15 * time.Minute)
			tf := time.Duration(rng.Intn(4)+4) * time.Hour // 4-7h, same TF bucket sizes
			n := rng.Intn(6) + 1
			minE := rng.Float64() * 2
			maxE := minE + rng.Float64()*2
			set = append(set, offer(string(rune('a'+i)), est, tf, n, minE, maxE))
		}
		p := Params{ESTWindow: 4 * time.Hour, MaxTimeFlexGap: 8 * time.Hour}
		aggs, err := AggregateSet(set, p)
		if err != nil {
			return false
		}
		for _, a := range aggs {
			// Random feasible assignment of the aggregate.
			shift := time.Duration(rng.Int63n(int64(a.Offer.TimeFlexibility()) + 1))
			energies := make([]float64, len(a.Offer.Profile))
			for i, s := range a.Offer.Profile {
				energies[i] = s.MinEnergy + rng.Float64()*(s.MaxEnergy-s.MinEnergy)
			}
			asg, err := a.Offer.Assign(a.Offer.EarliestStart.Add(shift), energies)
			if err != nil {
				return false
			}
			members, err := a.Disaggregate(asg)
			if err != nil {
				return false
			}
			var total float64
			for _, m := range members {
				if m.Validate() != nil {
					return false
				}
				total += m.TotalEnergy()
			}
			if !almostEqual(total, asg.TotalEnergy(), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params: %v", err)
	}
	bad := []Params{
		{ESTWindow: 0},
		{ESTWindow: time.Hour, MaxTimeFlexGap: -1},
		{ESTWindow: time.Hour, MaxGroupSize: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("bad params %d: %v", i, err)
		}
	}
}

func TestAggregateIsolatesTotalConstraintOffers(t *testing.T) {
	a := offer("a", t0, 2*time.Hour, 4, 1, 2)
	b := offer("b", t0, 2*time.Hour, 4, 1, 2)
	b.TotalConstraint = &flexoffer.EnergyConstraint{Min: 5, Max: 7}
	aggs, err := AggregateSet(flexoffer.Set{a, b}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want 2 (constrained offer isolated)", len(aggs))
	}
	// The constrained offer's singleton aggregate keeps the constraint.
	var found bool
	for _, ag := range aggs {
		if len(ag.Members) == 1 && ag.Members[0].ID == "b" {
			found = true
			if ag.Offer.TotalConstraint == nil {
				t.Error("singleton aggregate dropped the constraint")
			}
		}
	}
	if !found {
		t.Error("constrained offer not isolated")
	}
}
