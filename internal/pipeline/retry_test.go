package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/obs"
)

var errTransient = errors.New("transient sink failure")

// retryOutput builds an output carrying n offers.
func retryOutput(job string, n int) Output {
	offers := make(flexoffer.Set, n)
	for i := range offers {
		offers[i] = &flexoffer.FlexOffer{ID: fmt.Sprintf("%s/%d", job, i)}
	}
	return Output{JobID: job, Result: &core.Result{Offers: offers}}
}

// flakySink fails the first `failures` Puts, then delegates to a collect
// sink.
type flakySink struct {
	failures int32
	mode     string // "error" | "panic" | "partial"
	collect  CollectSink
	calls    atomic.Int32
}

func (f *flakySink) Put(ctx context.Context, out Output) error {
	if f.calls.Add(1) <= atomic.LoadInt32(&f.failures) {
		switch f.mode {
		case "panic":
			panic("flaky sink")
		case "partial":
			half := out.Result.Offers[:len(out.Result.Offers)/2]
			rest := out.Result.Offers[len(out.Result.Offers)/2:]
			_ = f.collect.Put(ctx, out.withOffers(half))
			return &PartialError{Remaining: rest, Cause: errTransient}
		default:
			return errTransient
		}
	}
	return f.collect.Put(ctx, out)
}

// fastPolicy keeps retry tests quick: tiny backoff, no jitter surprises.
func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: 0.1, JitterSeed: 1}
}

func TestResilientSinkRetriesTransientErrors(t *testing.T) {
	inner := &flakySink{failures: 2}
	rs := NewResilientSink(inner, fastPolicy(4), nil)
	if err := rs.Put(context.Background(), retryOutput("a", 3)); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.collect.Outputs()); got != 1 {
		t.Fatalf("inner sink holds %d outputs, want 1", got)
	}
	if rs.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", rs.Retries())
	}
	if dl := rs.DeadLetters(); len(dl) != 0 {
		t.Fatalf("dead letters %v, want none", dl)
	}
}

func TestResilientSinkContainsPanics(t *testing.T) {
	inner := &flakySink{failures: 1, mode: "panic"}
	rs := NewResilientSink(inner, fastPolicy(3), nil)
	if err := rs.Put(context.Background(), retryOutput("a", 2)); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.collect.Outputs()); got != 1 {
		t.Fatalf("inner sink holds %d outputs, want 1", got)
	}
}

func TestResilientSinkDeadLettersAfterBudget(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	inner := &flakySink{failures: 1 << 30}
	rs := NewResilientSink(inner, fastPolicy(3), tel)
	if err := rs.Put(context.Background(), retryOutput("doomed", 4)); err != nil {
		t.Fatalf("exhausted Put must not abort the batch: %v", err)
	}
	dl := rs.DeadLetters()
	if len(dl) != 1 {
		t.Fatalf("dead letters = %v, want one record", dl)
	}
	if dl[0].JobID != "doomed" || len(dl[0].Offers) != 4 || dl[0].Attempts != 3 {
		t.Fatalf("dead letter %+v, want job doomed, 4 offers, 3 attempts", dl[0])
	}
	if !errors.Is(dl[0].Err, errTransient) {
		t.Fatalf("dead-letter err %v, want errTransient", dl[0].Err)
	}
	if rs.DeadLetteredOffers() != 4 {
		t.Fatalf("DeadLetteredOffers = %d, want 4", rs.DeadLetteredOffers())
	}
	if tel.DeadLettered.Value() != 4 || tel.SinkRetries.Value() != 2 {
		t.Fatalf("telemetry dead=%d retries=%d, want 4/2", tel.DeadLettered.Value(), tel.SinkRetries.Value())
	}
}

func TestResilientSinkPartialResubmitsOnlyRemainder(t *testing.T) {
	inner := &flakySink{failures: 1, mode: "partial"}
	rs := NewResilientSink(inner, fastPolicy(4), nil)
	if err := rs.Put(context.Background(), retryOutput("a", 6)); err != nil {
		t.Fatal(err)
	}
	outs := inner.collect.Outputs()
	if len(outs) != 2 {
		t.Fatalf("inner sink saw %d Puts, want 2 (prefix, then remainder)", len(outs))
	}
	seen := map[string]int{}
	total := 0
	for _, out := range outs {
		for _, f := range out.Result.Offers {
			seen[f.ID]++
			total++
		}
	}
	if total != 6 {
		t.Fatalf("delivered %d offers, want 6", total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("offer %s delivered %d times", id, n)
		}
	}
}

func TestResilientSinkAttemptTimeout(t *testing.T) {
	var sawDeadline atomic.Bool
	inner := SinkFunc(func(ctx context.Context, out Output) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline.Store(true)
		}
		<-ctx.Done()
		return ctx.Err()
	})
	policy := fastPolicy(2)
	policy.AttemptTimeout = 10 * time.Millisecond
	rs := NewResilientSink(inner, policy, nil)
	start := time.Now()
	if err := rs.Put(context.Background(), retryOutput("slow", 2)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Put took %v; the attempt timeout never fired", elapsed)
	}
	if !sawDeadline.Load() {
		t.Fatal("inner sink saw no per-attempt deadline")
	}
	if len(rs.DeadLetters()) != 1 {
		t.Fatalf("timed-out output not dead-lettered: %v", rs.DeadLetters())
	}
}

// TestResilientSinkCancellation is the satellite contract: a context
// cancelled while the retry path is sleeping (or attempting) must return
// promptly — never sleep out the full backoff — and must record the
// undelivered offers as dead-lettered.
func TestResilientSinkCancellation(t *testing.T) {
	const farBackoff = time.Hour
	cases := []struct {
		name    string
		policy  RetryPolicy
		inner   Sink
		cancel  func(cancel context.CancelFunc) // when to cancel relative to Put
		wantErr error
	}{
		{
			name:   "cancelled mid-backoff",
			policy: RetryPolicy{MaxAttempts: 5, BaseBackoff: farBackoff, MaxBackoff: farBackoff, AttemptTimeout: -1},
			inner:  SinkFunc(func(context.Context, Output) error { return errTransient }),
			cancel: func(cancel context.CancelFunc) {
				time.AfterFunc(20*time.Millisecond, cancel)
			},
			wantErr: context.Canceled,
		},
		{
			name:   "cancelled before the attempt",
			policy: RetryPolicy{MaxAttempts: 5, BaseBackoff: farBackoff, MaxBackoff: farBackoff, AttemptTimeout: -1},
			inner: SinkFunc(func(ctx context.Context, _ Output) error {
				return ctx.Err()
			}),
			cancel:  func(cancel context.CancelFunc) { cancel() },
			wantErr: context.Canceled,
		},
		{
			name:   "cancelled while the attempt blocks",
			policy: RetryPolicy{MaxAttempts: 5, BaseBackoff: farBackoff, MaxBackoff: farBackoff, AttemptTimeout: -1},
			inner: SinkFunc(func(ctx context.Context, _ Output) error {
				<-ctx.Done()
				return ctx.Err()
			}),
			cancel: func(cancel context.CancelFunc) {
				time.AfterFunc(20*time.Millisecond, cancel)
			},
			wantErr: context.Canceled,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rs := NewResilientSink(tc.inner, tc.policy, nil)
			tc.cancel(cancel)
			done := make(chan error, 1)
			start := time.Now()
			go func() { done <- rs.Put(ctx, retryOutput("c", 3)) }()
			select {
			case err := <-done:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Put = %v, want %v", err, tc.wantErr)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Put hung instead of honouring cancellation (backoff is 1h)")
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("Put returned after %v, want prompt return", elapsed)
			}
			dl := rs.DeadLetters()
			if len(dl) != 1 || len(dl[0].Offers) != 3 {
				t.Fatalf("dead letters %v, want the 3 undelivered offers recorded", dl)
			}
		})
	}
}

// TestRunWithResilientSinkCancellation drives the whole pipeline: cancel
// mid-batch while every sink attempt fails into a long backoff, and
// require Run to return promptly with the loss accounted in Stats.
func TestRunWithResilientSinkCancellation(t *testing.T) {
	jobs := batchJobs(6)
	inner := SinkFunc(func(context.Context, Output) error { return errTransient })
	rs := NewResilientSink(inner, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour, AttemptTimeout: -1}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(100*time.Millisecond, cancel)

	type result struct {
		stats Stats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := RunJobs(ctx, Config{Workers: 3, NewExtractor: peakFactory}, jobs, rs)
		done <- result{stats, err}
	}()
	select {
	case res := <-done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("RunJobs = %v, want context.Canceled", res.err)
		}
		if res.stats.DeadLettered == 0 {
			t.Fatal("cancelled batch recorded no dead-lettered offers")
		}
		if res.stats.DeadLettered != rs.DeadLetteredOffers() {
			t.Fatalf("Stats.DeadLettered = %d, sink reports %d", res.stats.DeadLettered, rs.DeadLetteredOffers())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJobs hung after cancellation (backoff is 1h)")
	}
}

// TestRunStatsSurfaceRetries: a flaky-but-recoverable sink leaves zero
// dead letters but a visible retry count in the batch stats.
func TestRunStatsSurfaceRetries(t *testing.T) {
	jobs := batchJobs(4)
	var mu sync.Mutex
	failedOnce := map[string]bool{}
	inner := SinkFunc(func(ctx context.Context, out Output) error {
		mu.Lock()
		defer mu.Unlock()
		if !failedOnce[out.JobID] {
			failedOnce[out.JobID] = true
			return errTransient
		}
		return nil
	})
	rs := NewResilientSink(inner, fastPolicy(4), nil)
	stats, err := RunJobs(context.Background(), Config{Workers: 2, NewExtractor: peakFactory}, jobs, rs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SinkRetries != 4 {
		t.Fatalf("Stats.SinkRetries = %d, want 4 (one per job)", stats.SinkRetries)
	}
	if stats.DeadLettered != 0 {
		t.Fatalf("Stats.DeadLettered = %d, want 0", stats.DeadLettered)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	def := DefaultRetryPolicy()
	if p.MaxAttempts != def.MaxAttempts || p.BaseBackoff != def.BaseBackoff ||
		p.MaxBackoff != def.MaxBackoff || p.AttemptTimeout != def.AttemptTimeout {
		t.Fatalf("zero policy resolved to %+v, want defaults", p)
	}
	if p.Jitter != 0 {
		t.Fatalf("zero jitter is an explicit no-jitter choice, got %v", p.Jitter)
	}
	custom := RetryPolicy{MaxAttempts: 7}.withDefaults()
	if custom.MaxAttempts != 7 || custom.BaseBackoff != DefaultRetryPolicy().BaseBackoff {
		t.Fatalf("partial policy resolved to %+v", custom)
	}
}

// hintedErr is a transport error carrying a server Retry-After pacing
// hint, mirroring the market client's shed error without importing it.
type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string                 { return "server shed request" }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.after }

// hintedSink fails the first Put with a wrapped hinted error.
type hintedSink struct {
	hint    time.Duration
	collect CollectSink
	calls   atomic.Int32
}

func (s *hintedSink) Put(ctx context.Context, out Output) error {
	if s.calls.Add(1) == 1 {
		return fmt.Errorf("submit: %w", &hintedErr{after: s.hint})
	}
	return s.collect.Put(ctx, out)
}

// TestResilientSinkHonorsRetryAfterHint: when the failure carries a
// Retry-After hint longer than the computed backoff, the retry waits
// the hinted duration instead of hammering the shedding server.
func TestResilientSinkHonorsRetryAfterHint(t *testing.T) {
	const hint = 60 * time.Millisecond
	inner := &hintedSink{hint: hint}
	// Backoff on its own would be ~1ms; only the hint explains a 60ms wait.
	rs := NewResilientSink(inner, fastPolicy(3), nil)

	start := time.Now()
	if err := rs.Put(context.Background(), retryOutput("hint", 2)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < hint {
		t.Fatalf("retry waited %v, want at least the Retry-After hint %v", elapsed, hint)
	}
	if got := len(inner.collect.Outputs()); got != 1 {
		t.Fatalf("inner sink holds %d outputs, want 1", got)
	}
	if rs.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", rs.Retries())
	}
}

// TestResilientSinkHintShorterThanBackoff: a hint below the computed
// backoff must not shorten the wait — the hint is a floor, not a cap.
func TestResilientSinkHintShorterThanBackoff(t *testing.T) {
	policy := RetryPolicy{MaxAttempts: 2, BaseBackoff: 30 * time.Millisecond, MaxBackoff: 30 * time.Millisecond, JitterSeed: 1}
	inner := &hintedSink{hint: time.Millisecond}
	rs := NewResilientSink(inner, policy, nil)

	start := time.Now()
	if err := rs.Put(context.Background(), retryOutput("floor", 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("retry waited %v, want the full 30ms backoff despite the shorter hint", elapsed)
	}
}

// TestRetryAfterHintExtraction: the hint survives error wrapping and is
// absent for plain errors.
func TestRetryAfterHintExtraction(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", &hintedErr{after: 2 * time.Second}))
	if got := retryAfterHint(wrapped); got != 2*time.Second {
		t.Errorf("retryAfterHint(wrapped) = %v, want 2s", got)
	}
	if got := retryAfterHint(errTransient); got != 0 {
		t.Errorf("retryAfterHint(plain) = %v, want 0", got)
	}
	if got := retryAfterHint(nil); got != 0 {
		t.Errorf("retryAfterHint(nil) = %v, want 0", got)
	}
}
