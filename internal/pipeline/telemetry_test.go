package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

// TestTelemetryMatchesStats runs a batch with one deliberately failing job
// and checks the cumulative telemetry agrees with the batch Stats.
func TestTelemetryMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)

	jobs := []Job{
		{ID: "a", Series: telemetrySeries(t)},
		{ID: "b", Series: telemetrySeries(t)},
		{ID: "bad", Series: nil}, // nil series panics inside the extractor
		{ID: "c", Series: telemetrySeries(t)},
	}
	cfg := Config{
		Workers:   2,
		Telemetry: tel,
		NewExtractor: func(Job) core.Extractor {
			return &core.BasicExtractor{Params: core.DefaultParams()}
		},
	}
	sink := &CollectSink{}
	stats, err := RunJobs(context.Background(), cfg, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}

	if got := tel.JobsStarted.Value(); got != 4 {
		t.Errorf("jobs started = %d, want 4", got)
	}
	if got := tel.JobsSucceeded.Value(); got != uint64(stats.SeriesProcessed) {
		t.Errorf("jobs succeeded = %d, stats say %d", got, stats.SeriesProcessed)
	}
	if got := tel.JobsFailed.Value(); got != uint64(stats.Errors) {
		t.Errorf("jobs failed = %d, stats say %d", got, stats.Errors)
	}
	if got := tel.Panics.Value(); got != uint64(stats.Panics) {
		t.Errorf("panics = %d, stats say %d", got, stats.Panics)
	}
	if got := tel.OffersEmitted.Value(); got != uint64(stats.OffersEmitted) {
		t.Errorf("offers emitted = %d, stats say %d", got, stats.OffersEmitted)
	}
	if got := tel.ExtractSeconds.Snapshot().Count; got != 4 {
		t.Errorf("extract observations = %d, want 4", got)
	}
	// The sink only sees successful jobs.
	if got := tel.SinkSeconds.Snapshot().Count; got != uint64(stats.SeriesProcessed) {
		t.Errorf("sink observations = %d, want %d", got, stats.SeriesProcessed)
	}
	if got := tel.WorkersBusy.Value(); got != 0 {
		t.Errorf("workers busy after batch = %d, want 0", got)
	}
	if got := tel.Workers.Value(); got != 2 {
		t.Errorf("workers gauge = %d, want 2", got)
	}
}

// TestTelemetryAccumulatesAcrossBatches checks telemetry is cumulative
// (unlike per-batch Stats).
func TestTelemetryAccumulatesAcrossBatches(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	cfg := Config{
		Workers:   1,
		Telemetry: tel,
		NewExtractor: func(Job) core.Extractor {
			return &core.BasicExtractor{Params: core.DefaultParams()}
		},
	}
	for i := 0; i < 3; i++ {
		if _, err := RunJobs(context.Background(), cfg, []Job{{ID: "x", Series: telemetrySeries(t)}}, Discard); err != nil {
			t.Fatal(err)
		}
	}
	if got := tel.JobsSucceeded.Value(); got != 3 {
		t.Errorf("cumulative jobs succeeded = %d, want 3", got)
	}
}

func TestNilTelemetryIsSafe(t *testing.T) {
	var tel *Telemetry
	tel.jobStarted()
	tel.jobDone(1, time.Millisecond, nil, false)
	tel.sinkPut(time.Millisecond)
	tel.setWorkers(4)
}

func telemetrySeries(t *testing.T) *timeseries.Series {
	t.Helper()
	vals := make([]float64, 96*2)
	for i := range vals {
		vals[i] = 0.5
	}
	return timeseries.MustNew(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), 15*time.Minute, vals)
}
