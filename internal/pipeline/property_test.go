package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/tariff"
)

// The pipeline's central property: a batch extracted through N workers
// yields exactly the offers sequential extraction yields, up to the order
// in which the sink observes them. Extraction randomness is seeded per job,
// so worker scheduling must not leak into results.

// sequentialOutputs runs the jobs one by one through the same factory and
// ID qualification the pipeline applies.
func sequentialOutputs(t *testing.T, cfg Config, jobs []Job) map[string]flexoffer.Set {
	t.Helper()
	out := make(map[string]flexoffer.Set, len(jobs))
	for _, j := range jobs {
		res, err := extractOne(cfg, j)
		if err != nil {
			t.Fatalf("sequential %s: %v", j.ID, err)
		}
		if !cfg.KeepOfferIDs && j.ID != "" {
			for _, f := range res.Offers {
				f.ID = j.ID + "/" + f.ID
			}
		}
		out[j.ID] = res.Offers
	}
	return out
}

// assertBatchMatchesSequential runs the batch at several worker counts and
// compares against the sequential reference offer by offer.
func assertBatchMatchesSequential(t *testing.T, cfg Config, jobs []Job) {
	t.Helper()
	// Sequential extraction reads the same inputs; extractors never mutate
	// them, so reuse is safe (the ownership model's read-only guarantee).
	want := sequentialOutputs(t, cfg, jobs)
	var wantTotal int
	for _, set := range want {
		wantTotal += len(set)
	}
	if wantTotal == 0 {
		t.Fatal("sequential reference extracted no offers; property vacuous")
	}
	for _, workers := range []int{1, 3, 8} {
		cfg := cfg
		cfg.Workers = workers
		sink := &CollectSink{}
		stats, err := RunJobs(context.Background(), cfg, jobs, sink)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Errors != 0 {
			t.Fatalf("workers=%d: job errors %v", workers, stats.JobErrors)
		}
		got := make(map[string]flexoffer.Set)
		for _, out := range sink.Outputs() {
			got[out.JobID] = out.Result.Offers
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d jobs in sink, want %d", workers, len(got), len(want))
		}
		for id, wantSet := range want {
			gotSet, ok := got[id]
			if !ok {
				t.Fatalf("workers=%d: job %s missing from sink", workers, id)
			}
			if len(gotSet) != len(wantSet) {
				t.Fatalf("workers=%d job %s: %d offers, want %d", workers, id, len(gotSet), len(wantSet))
			}
			for i := range wantSet {
				if !reflect.DeepEqual(gotSet[i], wantSet[i]) {
					t.Fatalf("workers=%d job %s offer %d differs:\n got  %+v\n want %+v",
						workers, id, i, gotSet[i], wantSet[i])
				}
			}
		}
	}
}

// consumptionJobs simulates a small population at 15-minute resolution.
func consumptionJobs(t *testing.T, n int) []Job {
	t.Helper()
	reg := appliance.Default()
	cfgs := household.Population(n, 3)
	results, _, err := household.SimulatePopulation(reg, cfgs, testStart, 2, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, n)
	for i, r := range results {
		jobs[i] = Job{ID: fmt.Sprintf("pop-%02d", i), Series: r.Total}
	}
	return jobs
}

func seededParams(j Job) core.Params {
	p := core.DefaultParams()
	p.ConsumerID = j.ID
	p.Seed = int64(j.ID[len(j.ID)-1])*31 + int64(len(j.ID))
	return p
}

func TestBatchMatchesSequentialBasic(t *testing.T) {
	jobs := consumptionJobs(t, 6)
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.BasicExtractor{Params: seededParams(j)}
	}}, jobs)
}

func TestBatchMatchesSequentialPeak(t *testing.T) {
	jobs := consumptionJobs(t, 6)
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.PeakExtractor{Params: seededParams(j)}
	}}, jobs)
}

func TestBatchMatchesSequentialRandom(t *testing.T) {
	jobs := consumptionJobs(t, 6)
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.RandomExtractor{Params: seededParams(j)}
	}}, jobs)
}

// applianceJobs simulates households at 1-minute resolution, as the
// appliance-level approaches require.
func applianceJobs(t *testing.T, n int) []Job {
	t.Helper()
	reg := appliance.Default()
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		cfg := household.Config{
			ID: fmt.Sprintf("fine-%02d", i), Residents: 2 + i%2,
			Appliances: []string{"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator"},
			BaseLoadKW: 0.2, MorningPeak: 0.6, EveningPeak: 1.0, NoiseStd: 0.05,
			Seed: int64(40 + i),
		}
		r, err := household.Simulate(reg, cfg, testStart, 3, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{ID: cfg.ID, Series: r.Total}
	}
	return jobs
}

func TestBatchMatchesSequentialFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("1-minute disaggregation batch")
	}
	reg := appliance.Default()
	jobs := applianceJobs(t, 3)
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.FrequencyExtractor{Params: seededParams(j), Registry: reg, MinRuns: 1}
	}}, jobs)
}

func TestBatchMatchesSequentialSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("1-minute disaggregation batch")
	}
	reg := appliance.Default()
	jobs := applianceJobs(t, 3)
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.ScheduleExtractor{Params: seededParams(j), Registry: reg, MinRuns: 1, MinSupport: 0.1}
	}}, jobs)
}

func TestBatchMatchesSequentialMultiTariff(t *testing.T) {
	if testing.Short() {
		t.Skip("paired 14-day simulation")
	}
	reg := appliance.Default()
	tou := tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}
	resp := tariff.Response{ShiftProbability: 0.9}
	jobs := make([]Job, 3)
	for i := range jobs {
		cfg := household.Config{
			ID: fmt.Sprintf("pair-%02d", i), Residents: 3,
			Appliances: []string{"washing machine Y", "dishwasher Z", "tumble dryer", "refrigerator"},
			BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.08,
			Seed: int64(60 + i),
		}
		flat, multi, err := household.SimulatePair(reg, cfg, tou, resp, testStart, 14, 15*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{ID: cfg.ID, Series: multi.Total, Reference: flat.Total}
	}
	assertBatchMatchesSequential(t, Config{NewExtractor: func(j Job) core.Extractor {
		return &core.MultiTariffExtractor{Params: seededParams(j), Tariff: tou}
	}}, jobs)
}

// TestSharedSeriesAcrossJobs exercises ownership rule 1's corollary: one
// immutable series may back several jobs, because workers only read it.
func TestSharedSeriesAcrossJobs(t *testing.T) {
	shared := syntheticSeries(2, 15*time.Minute, 0)
	before := shared.Values()
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("shared-%d", i), Series: shared}
	}
	stats, err := RunJobs(context.Background(), Config{Workers: 4, NewExtractor: peakFactory}, jobs, Discard)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.SeriesProcessed != 8 {
		t.Fatalf("stats = %v", stats)
	}
	if !reflect.DeepEqual(before, shared.Values()) {
		t.Fatal("extraction mutated the shared input series")
	}
}
