package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/flexoffer"
)

// ErrSinkPanic wraps a panic recovered from a wrapped sink's Put by a
// ResilientSink; the panicking attempt fails and is retried like any other
// transient error.
var ErrSinkPanic = errors.New("pipeline: sink panic")

// PartialError reports a partially delivered batch: the sink accepted a
// prefix of the output's offers and failed the rest. A ResilientSink
// resubmits only Remaining, so already-delivered offers are never
// duplicated by the retry path. Sinks that can fail mid-batch (a store
// behind a flaky transport, an injected partial fault) return it from Put.
type PartialError struct {
	// Remaining are the offers the sink did not deliver.
	Remaining flexoffer.Set
	// Cause is why delivery stopped; never nil.
	Cause error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("pipeline: partial delivery, %d offers undelivered: %v", len(e.Remaining), e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Cause }

// RetryPolicy bounds the resilient submit path: how often to retry a
// failed sink Put, how long to back off between attempts, and how long one
// attempt may run. Zero-valued fields take the DefaultRetryPolicy values,
// so callers only override what they care about — except Jitter and
// JitterSeed, where zero is a valid explicit choice (no jitter).
type RetryPolicy struct {
	// MaxAttempts is the total number of Put attempts per output
	// (first try included).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles each
	// further retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Jitter spreads each backoff by a uniform factor in [1-Jitter,
	// 1+Jitter], decorrelating retry storms across workers. Must be in
	// [0,1).
	Jitter float64
	// JitterSeed seeds the jitter source, keeping backoff sequences
	// reproducible for a given seed.
	JitterSeed int64
	// AttemptTimeout bounds one Put attempt; the inner sink sees a
	// context that expires after it. Negative disables the bound
	// (zero means the default).
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy is the submit-path default: four attempts, 10ms
// initial backoff doubling to at most one second, 20% jitter, and a
// five-second per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    10 * time.Millisecond,
		MaxBackoff:     time.Second,
		Jitter:         0.2,
		JitterSeed:     1,
		AttemptTimeout: 5 * time.Second,
	}
}

// withDefaults fills zero-valued fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = def.Jitter
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = def.AttemptTimeout
	}
	return p
}

// DeadLetter records offers that exhausted the retry budget (or were cut
// off by cancellation) and therefore never reached the inner sink. The
// dead-letter set closes the accounting loop: every extracted offer either
// lands in the sink or appears here — none are silently lost.
type DeadLetter struct {
	// JobID is the job whose offers are recorded.
	JobID string
	// Offers are the undelivered offers.
	Offers flexoffer.Set
	// Attempts is how many Put attempts were made before giving up.
	Attempts int
	// Err is the last delivery error observed.
	Err error
}

// String implements fmt.Stringer with a log-friendly summary.
func (d DeadLetter) String() string {
	return fmt.Sprintf("dead-letter[job %s: %d offers after %d attempts: %v]", d.JobID, len(d.Offers), d.Attempts, d.Err)
}

// ResilientSink makes a fallible sink survivable: every Put is retried
// with exponential backoff and jitter under a per-attempt timeout, panics
// in the inner sink are contained into retryable errors, partial
// deliveries (PartialError) resubmit only the undelivered offers, and
// outputs that exhaust the budget are dead-lettered instead of aborting
// the batch. Run surfaces the resulting counts in Stats (SinkRetries,
// DeadLettered) when the batch's sink is a *ResilientSink; Telemetry, when
// set, additionally exports them on /metrics.
//
// The accumulated counters are cumulative over the sink's lifetime, so use
// one ResilientSink per batch when per-batch accounting matters.
type ResilientSink struct {
	inner     Sink
	policy    RetryPolicy
	telemetry *Telemetry

	mu      sync.Mutex
	rng     *rand.Rand   // guarded by mu: jitter source
	retries int          // guarded by mu
	dead    []DeadLetter // guarded by mu
}

// NewResilientSink wraps inner with the retry/dead-letter discipline.
// telemetry may be nil.
func NewResilientSink(inner Sink, policy RetryPolicy, telemetry *Telemetry) *ResilientSink {
	policy = policy.withDefaults()
	return &ResilientSink{
		inner:     inner,
		policy:    policy,
		telemetry: telemetry,
		rng:       rand.New(rand.NewSource(policy.JitterSeed)),
	}
}

// Put implements Sink. It returns nil when the output was delivered or
// dead-lettered (the batch keeps flowing either way) and the context's
// error when cancellation cut the attempt loop short — after recording the
// undelivered offers as dead-lettered, so the accounting stays closed.
func (r *ResilientSink) Put(ctx context.Context, out Output) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := r.attempt(ctx, out)
		if err == nil {
			return nil
		}
		var pe *PartialError
		if errors.As(err, &pe) {
			// The delivered prefix landed; only the remainder retries.
			out = out.withOffers(pe.Remaining)
			if err = pe.Cause; err == nil {
				err = pe
			}
			if len(pe.Remaining) == 0 {
				return nil
			}
		}
		lastErr = err
		if ctxErr := ctx.Err(); ctxErr != nil {
			r.deadLetter(out, attempt, lastErr)
			return ctxErr
		}
		if attempt >= r.policy.MaxAttempts {
			r.deadLetter(out, attempt, lastErr)
			return nil
		}
		r.noteRetry()
		delay := r.backoff(attempt)
		if hint := retryAfterHint(lastErr); hint > delay {
			// An overloaded server named its recovery window; honouring
			// it beats hammering the server on our own schedule.
			delay = hint
		}
		if sleepErr := sleepCtx(ctx, delay); sleepErr != nil {
			// Cancelled mid-backoff: return promptly, never sleep out
			// the full delay, and account the undelivered offers.
			r.deadLetter(out, attempt, lastErr)
			return sleepErr
		}
	}
}

// attempt runs one inner Put under the per-attempt timeout, containing
// panics into errors.
func (r *ResilientSink) attempt(ctx context.Context, out Output) (err error) {
	if r.policy.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.policy.AttemptTimeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrSinkPanic, p)
		}
	}()
	return r.inner.Put(ctx, out)
}

// backoff computes the jittered delay before retry number `attempt`.
func (r *ResilientSink) backoff(attempt int) time.Duration {
	d := r.policy.BaseBackoff << (attempt - 1)
	if d > r.policy.MaxBackoff || d <= 0 { // <=0: shift overflow
		d = r.policy.MaxBackoff
	}
	if r.policy.Jitter > 0 {
		r.mu.Lock()
		factor := 1 + r.policy.Jitter*(2*r.rng.Float64()-1)
		r.mu.Unlock()
		d = time.Duration(float64(d) * factor)
	}
	return d
}

// retryAfterHinter is satisfied by errors carrying a server-provided
// retry pacing hint — notably the market client's shed error for 429
// and 503 responses. Declared locally so the pipeline honours the hint
// without depending on the transport package that produces it.
type retryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// retryAfterHint extracts the server's Retry-After pacing hint from
// err's chain; zero when no error in the chain carries one.
func retryAfterHint(err error) time.Duration {
	var h retryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// sleepCtx sleeps for d unless the context ends first, in which case it
// returns the context's error immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadLetter records out's offers as undeliverable.
func (r *ResilientSink) deadLetter(out Output, attempts int, err error) {
	var offers flexoffer.Set
	if out.Result != nil {
		offers = out.Result.Offers
	}
	r.telemetry.deadLettered(len(offers))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dead = append(r.dead, DeadLetter{JobID: out.JobID, Offers: offers, Attempts: attempts, Err: err})
}

// noteRetry accounts one retry.
func (r *ResilientSink) noteRetry() {
	r.telemetry.sinkRetry()
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// DeadLetters returns a copy of the dead-letter records accumulated so
// far, in the order the losses were recorded.
func (r *ResilientSink) DeadLetters() []DeadLetter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]DeadLetter(nil), r.dead...)
}

// Retries reports how many retry attempts the sink has made.
func (r *ResilientSink) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// DeadLetteredOffers reports the total number of offers across all
// dead-letter records.
func (r *ResilientSink) DeadLetteredOffers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, d := range r.dead {
		n += len(d.Offers)
	}
	return n
}

// retryStats feeds Run's Stats integration.
func (r *ResilientSink) retryStats() (retries, deadOffers int) {
	return r.Retries(), r.DeadLetteredOffers()
}

// withOffers derives an Output whose result carries only the given offers,
// leaving the original result untouched for the parts already delivered.
func (o Output) withOffers(offers flexoffer.Set) Output {
	if o.Result == nil {
		return o
	}
	res := *o.Result
	res.Offers = offers
	o.Result = &res
	return o
}
