package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// Stats summarises one batch run, per stage: how many series went through
// the pool, how many offers came out, what failed, and where the time went.
type Stats struct {
	// Workers is the resolved pool size.
	Workers int
	// SeriesProcessed counts jobs whose extraction finished successfully.
	SeriesProcessed int
	// OffersEmitted counts flex-offers streamed into the sink.
	OffersEmitted int
	// Errors counts failed jobs (including recovered panics).
	Errors int
	// Panics counts the subset of Errors that were recovered worker panics.
	Panics int
	// Wall is the end-to-end duration of the batch.
	Wall time.Duration
	// Busy is the summed extraction time across all workers — the batch's
	// sequential cost. Busy/Wall is the achieved parallel speedup.
	Busy time.Duration
	// JobErrors lists the individual job failures, in completion order.
	JobErrors []JobError
	// SinkRetries counts sink Put retries made by a resilient submit
	// path. Populated only when the batch's sink is a *ResilientSink.
	SinkRetries int
	// DeadLettered counts offers that exhausted the retry budget and were
	// recorded in the dead-letter set instead of reaching the inner sink.
	// Populated only when the batch's sink is a *ResilientSink.
	DeadLettered int
}

// Speedup reports the achieved parallelism, Busy/Wall (1.0 means no
// overlap; Workers is the upper bound). Zero when nothing ran.
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Wall)
}

// String implements fmt.Stringer with a one-line, log-friendly summary.
func (s Stats) String() string {
	return fmt.Sprintf("pipeline[%d workers: %d series, %d offers, %d errors (%d panics), %d retries, %d dead-lettered, wall %v, busy %v, speedup %.2fx]",
		s.Workers, s.SeriesProcessed, s.OffersEmitted, s.Errors, s.Panics, s.SinkRetries, s.DeadLettered, s.Wall, s.Busy, s.Speedup())
}

// accumulator gathers counters from concurrent workers.
type accumulator struct {
	mu        sync.Mutex
	processed int           // guarded by mu
	offers    int           // guarded by mu
	errors    int           // guarded by mu
	panics    int           // guarded by mu
	busy      time.Duration // guarded by mu
	jobErrs   []JobError    // guarded by mu
}

func (a *accumulator) done(offers int, elapsed time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.processed++
	a.offers += offers
	a.busy += elapsed
}

func (a *accumulator) fail(je JobError, elapsed time.Duration, panicked bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.errors++
	if panicked {
		a.panics++
	}
	a.busy += elapsed
	a.jobErrs = append(a.jobErrs, je)
}

func (a *accumulator) snapshot() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		SeriesProcessed: a.processed,
		OffersEmitted:   a.offers,
		Errors:          a.errors,
		Panics:          a.panics,
		Busy:            a.busy,
		JobErrors:       append([]JobError(nil), a.jobErrs...),
	}
}
