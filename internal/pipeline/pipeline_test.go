package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/timeseries"
)

var testStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// syntheticSeries builds a peaky household series: base load plus an
// evening peak, deterministic per seed-ish phase shift.
func syntheticSeries(days int, res time.Duration, phase float64) *timeseries.Series {
	perDay := int((24 * time.Hour) / res)
	vals := make([]float64, days*perDay)
	for i := range vals {
		frac := float64(i%perDay) / float64(perDay) * 24
		vals[i] = 0.2 + 0.6*math.Exp(-(frac-19-phase)*(frac-19-phase)/6)
	}
	return timeseries.MustNew(testStart, res, vals)
}

// batchJobs builds n jobs over distinct synthetic series.
func batchJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:     fmt.Sprintf("house-%02d", i),
			Series: syntheticSeries(2, 15*time.Minute, float64(i%5)/2),
		}
	}
	return jobs
}

// peakFactory builds a fresh peak extractor per job with a per-job seed.
func peakFactory(j Job) core.Extractor {
	p := core.DefaultParams()
	p.ConsumerID = j.ID
	p.Seed = int64(len(j.ID)) + int64(j.ID[len(j.ID)-1])
	return &core.PeakExtractor{Params: p}
}

// stubExtractor lets tests control extraction behaviour.
type stubExtractor struct {
	fn func(*timeseries.Series) (*core.Result, error)
}

func (s *stubExtractor) Name() string { return "stub" }
func (s *stubExtractor) Extract(in *timeseries.Series) (*core.Result, error) {
	return s.fn(in)
}

func TestRunJobsCollects(t *testing.T) {
	jobs := batchJobs(10)
	sink := &CollectSink{}
	stats, err := RunJobs(context.Background(), Config{Workers: 4, NewExtractor: peakFactory}, jobs, sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SeriesProcessed != 10 || stats.Errors != 0 {
		t.Fatalf("stats = %v", stats)
	}
	outs := sink.Outputs()
	if len(outs) != 10 {
		t.Fatalf("collected %d outputs", len(outs))
	}
	offers := sink.Offers()
	if len(offers) == 0 || stats.OffersEmitted != len(offers) {
		t.Fatalf("offers emitted %d, collected %d", stats.OffersEmitted, len(offers))
	}
	// Offer IDs are qualified with the job ID and unique across the batch.
	seen := make(map[string]bool)
	for _, f := range offers {
		if !strings.Contains(f.ID, "/") || !strings.HasPrefix(f.ID, "house-") {
			t.Fatalf("offer ID %q not qualified", f.ID)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate offer ID %q across batch", f.ID)
		}
		seen[f.ID] = true
	}
	if stats.Busy <= 0 || stats.Wall <= 0 {
		t.Fatalf("timings not recorded: %v", stats)
	}
}

func TestKeepOfferIDs(t *testing.T) {
	jobs := batchJobs(2)
	sink := &CollectSink{}
	cfg := Config{Workers: 2, NewExtractor: peakFactory, KeepOfferIDs: true}
	if _, err := RunJobs(context.Background(), cfg, jobs, sink); err != nil {
		t.Fatal(err)
	}
	for _, f := range sink.Offers() {
		if strings.HasPrefix(f.ID, "house-") {
			t.Fatalf("offer ID %q qualified despite KeepOfferIDs", f.ID)
		}
	}
}

// TestWorkersRunConcurrently proves the pool genuinely overlaps jobs: four
// blocking jobs only finish if all four run at once.
func TestWorkersRunConcurrently(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	cfg := Config{
		Workers: n,
		NewExtractor: func(Job) core.Extractor {
			return &stubExtractor{fn: func(in *timeseries.Series) (*core.Result, error) {
				barrier.Done()
				barrier.Wait() // deadlocks unless n jobs are in flight together
				return &core.Result{Modified: in.Clone()}, nil
			}}
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunJobs(context.Background(), cfg, batchJobs(n), Discard)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("workers did not run concurrently: barrier never released")
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var extracted atomic.Int32
	cfg := Config{
		Workers: 1,
		NewExtractor: func(Job) core.Extractor {
			return &stubExtractor{fn: func(in *timeseries.Series) (*core.Result, error) {
				extracted.Add(1)
				select {
				case started <- struct{}{}:
				default:
				}
				<-release
				return &core.Result{Modified: in.Clone()}, nil
			}}
		},
	}
	done := make(chan struct {
		stats Stats
		err   error
	}, 1)
	go func() {
		stats, err := RunJobs(ctx, cfg, batchJobs(10), Discard)
		done <- struct {
			stats Stats
			err   error
		}{stats, err}
	}()
	<-started
	cancel()
	close(release) // let the in-flight job finish
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.err)
	}
	// The in-flight job completed; nothing further was dispatched.
	if got := extracted.Load(); got >= 10 {
		t.Fatalf("dispatched %d jobs after cancellation", got)
	}
	if res.stats.SeriesProcessed >= 10 {
		t.Fatalf("processed %d series despite cancellation", res.stats.SeriesProcessed)
	}
}

func TestPanicRecovery(t *testing.T) {
	jobs := batchJobs(6)
	cfg := Config{
		Workers: 2,
		NewExtractor: func(j Job) core.Extractor {
			if j.ID == "house-03" {
				return &stubExtractor{fn: func(*timeseries.Series) (*core.Result, error) {
					panic("malformed series blew up the extractor")
				}}
			}
			return peakFactory(j)
		},
	}
	sink := &CollectSink{}
	stats, err := RunJobs(context.Background(), cfg, jobs, sink)
	if err != nil {
		t.Fatalf("batch aborted: %v", err)
	}
	if stats.Panics != 1 || stats.Errors != 1 {
		t.Fatalf("panics=%d errors=%d, want 1/1", stats.Panics, stats.Errors)
	}
	if stats.SeriesProcessed != 5 {
		t.Fatalf("processed %d, want 5", stats.SeriesProcessed)
	}
	if len(stats.JobErrors) != 1 || stats.JobErrors[0].JobID != "house-03" ||
		!errors.Is(stats.JobErrors[0], ErrWorkerPanic) {
		t.Fatalf("job errors = %v", stats.JobErrors)
	}
	if len(sink.Outputs()) != 5 {
		t.Fatalf("sink saw %d outputs, want 5", len(sink.Outputs()))
	}
}

func TestSinkErrorAbortsBatch(t *testing.T) {
	sinkErr := errors.New("downstream full")
	var puts atomic.Int32
	sink := SinkFunc(func(context.Context, Output) error {
		if puts.Add(1) == 1 {
			return sinkErr
		}
		return nil
	})
	stats, err := RunJobs(context.Background(), Config{Workers: 2, NewExtractor: peakFactory}, batchJobs(50), sink)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want wrapped %v", err, sinkErr)
	}
	if stats.SeriesProcessed >= 50 {
		t.Fatalf("batch ran to completion (%d) despite sink error", stats.SeriesProcessed)
	}
}

func TestJobErrorsDoNotAbort(t *testing.T) {
	jobs := batchJobs(4)
	jobs[2].Series = nil // extractor rejects nil input with an error
	stats, err := RunJobs(context.Background(), Config{Workers: 2, NewExtractor: peakFactory}, jobs, Discard)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || stats.Panics != 0 || stats.SeriesProcessed != 3 {
		t.Fatalf("stats = %v", stats)
	}
	if len(stats.JobErrors) != 1 || stats.JobErrors[0].JobID != "house-02" {
		t.Fatalf("job errors = %v", stats.JobErrors)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunJobs(context.Background(), Config{}, batchJobs(1), Discard); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil NewExtractor: err = %v", err)
	}
	if _, err := RunJobs(context.Background(), Config{NewExtractor: peakFactory}, batchJobs(1), nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil sink: err = %v", err)
	}
	if _, err := Run(context.Background(), Config{NewExtractor: peakFactory}, nil, Discard); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil jobs: err = %v", err)
	}
}

func TestMultiTariffJobNeedsReference(t *testing.T) {
	factory := func(Job) core.Extractor {
		return &core.MultiTariffExtractor{Params: core.DefaultParams()}
	}
	stats, err := RunJobs(context.Background(), Config{Workers: 2, NewExtractor: factory}, batchJobs(1), Discard)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || len(stats.JobErrors) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	if !strings.Contains(stats.JobErrors[0].Error(), "Reference") {
		t.Fatalf("error %v does not mention the missing reference", stats.JobErrors[0])
	}
}

func TestChannelSinkStreams(t *testing.T) {
	ch := make(chan Output)
	var got atomic.Int32
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for range ch {
			got.Add(1)
		}
	}()
	stats, err := RunJobs(context.Background(), Config{Workers: 3, NewExtractor: peakFactory}, batchJobs(8), ChannelSink{C: ch})
	close(ch)
	<-consumed
	if err != nil {
		t.Fatal(err)
	}
	if int(got.Load()) != stats.SeriesProcessed || stats.SeriesProcessed != 8 {
		t.Fatalf("streamed %d outputs, processed %d", got.Load(), stats.SeriesProcessed)
	}
}

func TestStoreSinkBulkSubmits(t *testing.T) {
	// A fixed logical clock before the offers' acceptance deadlines, as a
	// replay deployment would configure.
	clock := testStart.Add(-48 * time.Hour)
	store := market.NewStore(func() time.Time { return clock })
	sink := &StoreSink{Store: store}
	stats, err := RunJobs(context.Background(), Config{Workers: 4, NewExtractor: peakFactory}, batchJobs(12), sink)
	if err != nil {
		t.Fatal(err)
	}
	submitted, rejected := sink.Counts()
	if rejected != 0 {
		t.Fatalf("%d offers rejected: %v", rejected, sink.FirstErr())
	}
	if submitted != stats.OffersEmitted || submitted == 0 {
		t.Fatalf("submitted %d, emitted %d", submitted, stats.OffersEmitted)
	}
	if counts := store.Stats(); counts.Offered != submitted {
		t.Fatalf("store holds %d offered, want %d", counts.Offered, submitted)
	}
}

func TestStoreSinkCountsRejections(t *testing.T) {
	clock := testStart.Add(-48 * time.Hour)
	store := market.NewStore(func() time.Time { return clock })
	sink := &StoreSink{Store: store}
	cfg := Config{Workers: 2, NewExtractor: peakFactory, KeepOfferIDs: true}
	// Two identical jobs with KeepOfferIDs: the second job's offers all
	// collide with the first's.
	jobs := batchJobs(2)
	jobs[1].ID = jobs[0].ID
	jobs[1].Series = jobs[0].Series.Clone()
	if _, err := RunJobs(context.Background(), cfg, jobs, sink); err != nil {
		t.Fatal(err)
	}
	submitted, rejected := sink.Counts()
	if rejected == 0 || submitted == 0 {
		t.Fatalf("submitted %d rejected %d, want both > 0", submitted, rejected)
	}
	if !errors.Is(sink.FirstErr(), market.ErrDuplicate) {
		t.Fatalf("first error = %v, want duplicate", sink.FirstErr())
	}
}
