package pipeline

import (
	"context"
	"sort"
	"sync"

	"repro/internal/flexoffer"
	"repro/internal/market"
)

// Sink consumes finished extractions. Put is called directly from worker
// goroutines, so implementations must be safe for concurrent use; a non-nil
// error aborts the whole batch (Run returns it).
type Sink interface {
	Put(ctx context.Context, out Output) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ctx context.Context, out Output) error

// Put implements Sink.
func (f SinkFunc) Put(ctx context.Context, out Output) error { return f(ctx, out) }

// Discard drops every output, keeping only the pipeline's own counters —
// useful for benchmarks and dry runs.
var Discard Sink = SinkFunc(func(context.Context, Output) error { return nil })

// CollectSink accumulates every output in memory. The zero value is ready
// to use.
type CollectSink struct {
	mu      sync.Mutex
	outputs []Output
}

// Put implements Sink.
func (c *CollectSink) Put(_ context.Context, out Output) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outputs = append(c.outputs, out)
	return nil
}

// Outputs returns the collected outputs in completion order.
func (c *CollectSink) Outputs() []Output {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Output(nil), c.outputs...)
}

// Offers returns every collected offer as one set, sorted by ID so the
// result is deterministic regardless of worker interleaving.
func (c *CollectSink) Offers() flexoffer.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	var set flexoffer.Set
	for _, out := range c.outputs {
		set = append(set, out.Result.Offers...)
	}
	sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
	return set
}

// ChannelSink forwards outputs on C, honouring context cancellation while
// blocked on a slow receiver. The caller owns the channel's lifecycle; the
// pipeline never closes it.
type ChannelSink struct {
	C chan<- Output
}

// Put implements Sink.
func (c ChannelSink) Put(ctx context.Context, out Output) error {
	select {
	case c.C <- out:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StoreSink bulk-submits every extracted offer straight into a
// market.Store — the mirabeld ingest path. Individual offer rejections
// (duplicates, lapsed deadlines) are counted, not fatal; the batch keeps
// flowing. The zero value with a Store set is ready to use.
type StoreSink struct {
	Store *market.Store

	mu        sync.Mutex
	submitted int
	rejected  int
	firstErr  error
}

// Put implements Sink. Store rejections are semantic verdicts (duplicate
// IDs, lapsed deadlines) — retrying them cannot succeed — so they are
// counted here rather than surfaced as errors for a ResilientSink to
// retry.
func (s *StoreSink) Put(_ context.Context, out Output) error {
	res := s.Store.SubmitBatch(out.Result.Offers)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted += res.Accepted
	s.rejected += res.Rejected()
	if s.firstErr == nil {
		s.firstErr = res.FirstErr()
	}
	return nil
}

// Counts reports how many offers the store accepted and rejected.
func (s *StoreSink) Counts() (submitted, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted, s.rejected
}

// FirstErr reports the first rejection observed, nil when every offer was
// accepted.
func (s *StoreSink) FirstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}
