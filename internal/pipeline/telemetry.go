package pipeline

import (
	"time"

	"repro/internal/obs"
)

// Telemetry holds the pipeline's long-lived instruments. Unlike Stats —
// which summarises one batch after the fact — Telemetry is cumulative
// across every batch run with the same Config.Telemetry, and is readable
// mid-run from a /metrics scrape: jobs in flight show up in WorkersBusy
// and the per-stage histograms fill as workers finish.
//
// All methods on *Telemetry are nil-safe, so an uninstrumented pipeline
// (Config.Telemetry == nil) pays only a nil check per job.
type Telemetry struct {
	// JobsStarted counts jobs a worker picked up.
	JobsStarted *obs.Counter
	// JobsSucceeded counts jobs whose extraction finished.
	JobsSucceeded *obs.Counter
	// JobsFailed counts failed jobs, recovered panics included.
	JobsFailed *obs.Counter
	// Panics counts the subset of failures that were worker panics.
	Panics *obs.Counter
	// OffersEmitted counts flex-offers streamed into sinks.
	OffersEmitted *obs.Counter
	// ExtractSeconds observes the extraction stage's per-job duration.
	ExtractSeconds *obs.Histogram
	// SinkSeconds observes the sink stage's per-output Put duration.
	SinkSeconds *obs.Histogram
	// WorkersBusy gauges workers currently executing a job — sampled
	// against Workers it reads as pool saturation.
	WorkersBusy *obs.Gauge
	// Workers gauges the resolved pool size of the most recent Run.
	Workers *obs.Gauge
	// SinkRetries counts sink Put retries made by resilient sinks.
	SinkRetries *obs.Counter
	// DeadLettered counts offers recorded in dead-letter sets after the
	// retry budget was exhausted — offers that never reached their sink.
	DeadLettered *obs.Counter
}

// NewTelemetry registers the pipeline instruments on reg under pipeline_*.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	return &Telemetry{
		JobsStarted:    reg.NewCounter("pipeline_jobs_started_total", "Extraction jobs picked up by a worker."),
		JobsSucceeded:  reg.NewCounter("pipeline_jobs_succeeded_total", "Extraction jobs that finished successfully."),
		JobsFailed:     reg.NewCounter("pipeline_jobs_failed_total", "Extraction jobs that failed (recovered panics included)."),
		Panics:         reg.NewCounter("pipeline_worker_panics_total", "Worker panics recovered into job failures."),
		OffersEmitted:  reg.NewCounter("pipeline_offers_emitted_total", "Flex-offers streamed into sinks."),
		ExtractSeconds: reg.NewHistogram("pipeline_extract_seconds", "Per-job extraction duration in seconds.", nil),
		SinkSeconds:    reg.NewHistogram("pipeline_sink_seconds", "Per-output sink Put duration in seconds.", nil),
		WorkersBusy:    reg.NewGauge("pipeline_workers_busy", "Workers currently executing a job."),
		Workers:        reg.NewGauge("pipeline_workers", "Resolved worker-pool size of the most recent batch."),
		SinkRetries:    reg.NewCounter("pipeline_sink_retries_total", "Sink Put retries made by resilient sinks."),
		DeadLettered:   reg.NewCounter("pipeline_dead_letter_offers_total", "Offers dead-lettered after the sink retry budget was exhausted."),
	}
}

func (t *Telemetry) jobStarted() {
	if t == nil {
		return
	}
	t.JobsStarted.Inc()
	t.WorkersBusy.Inc()
}

func (t *Telemetry) jobDone(offers int, elapsed time.Duration, err error, panicked bool) {
	if t == nil {
		return
	}
	t.WorkersBusy.Dec()
	t.ExtractSeconds.Observe(elapsed.Seconds())
	if err != nil {
		t.JobsFailed.Inc()
		if panicked {
			t.Panics.Inc()
		}
		return
	}
	t.JobsSucceeded.Inc()
	t.OffersEmitted.Add(uint64(offers))
}

func (t *Telemetry) sinkPut(elapsed time.Duration) {
	if t == nil {
		return
	}
	t.SinkSeconds.Observe(elapsed.Seconds())
}

func (t *Telemetry) sinkRetry() {
	if t == nil {
		return
	}
	t.SinkRetries.Inc()
}

func (t *Telemetry) deadLettered(offers int) {
	if t == nil {
		return
	}
	t.DeadLettered.Add(uint64(offers))
}

func (t *Telemetry) setWorkers(n int) {
	if t == nil {
		return
	}
	t.Workers.Set(int64(n))
}
