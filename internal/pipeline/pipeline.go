// Package pipeline runs flexibility extraction over whole batches of
// household series concurrently — the fan-out layer between the per-series
// extractors of internal/core and portfolio-scale workloads (MIRABEL-style
// deployments ingest fleets of households, not single meters).
//
// A batch is a stream of Jobs, one per household series. Run fans the jobs
// out over a bounded pool of workers; each worker builds the configured
// extractor for its job, runs it, and streams the resulting flex-offers
// into a shared Sink (collect into memory, forward on a channel, or
// bulk-submit into a market.Store). The pool honours context cancellation,
// recovers per-worker panics into per-job errors, and keeps per-stage
// counters (series processed, offers emitted, errors, panics, wall and
// busy time).
//
// # Ownership model
//
// timeseries.Series is safe for concurrent reads but not for unsynchronised
// mutation, and the extractors subtract extracted energy in place
// (subtractProportional in internal/core) — always on a private Clone of
// the input, never on the input itself. The pipeline builds on two rules:
//
//  1. A Job's Series (and Reference) are owned by the pipeline from the
//     moment the Job is sent until Run returns: callers must not mutate
//     them in the meantime. Exactly one worker touches a given job, and it
//     only ever reads the input, so sharing one immutable Series across
//     several jobs is allowed.
//  2. Everything a worker emits is freshly allocated by the extractor
//     (offers, the modified series), so the Sink receives exclusive
//     ownership of each Output and needs no further synchronisation to
//     mutate it — only the Sink itself must be safe for concurrent Put
//     calls, since every worker streams into it directly.
//
// Extraction is deterministic per job (the extractors draw all randomness
// from Params.Seed), so a batch produces identical offers — up to the order
// in which the sink observes them — at any worker count.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/timeseries"
)

// Common errors.
var (
	// ErrConfig reports an unusable pipeline configuration.
	ErrConfig = errors.New("pipeline: invalid config")
	// ErrWorkerPanic wraps a panic recovered inside a worker; the panicking
	// job fails, the worker and the rest of the batch keep running.
	ErrWorkerPanic = errors.New("pipeline: worker panic")
)

// Job is one unit of batch work: a single household's consumption series.
type Job struct {
	// ID identifies the series within the batch (e.g. the CSV base name or
	// metering-point ID). Unless Config.KeepOfferIDs is set, it prefixes
	// every extracted offer ID ("<job>/<offer>") so offers from different
	// households never collide in a shared store. IDs should be unique per
	// batch.
	ID string
	// Series is the consumption series to extract from. The pipeline owns
	// it until Run returns (see the package ownership model).
	Series *timeseries.Series
	// Reference optionally carries the one-tariff reference series required
	// by the multi-tariff approach; jobs whose extractor is a
	// *core.MultiTariffExtractor fail without it.
	Reference *timeseries.Series
}

// Output is one finished extraction, streamed to the Sink by the worker
// that produced it. The receiver owns Result exclusively.
type Output struct {
	// JobID echoes the job's ID.
	JobID string
	// Result is the extractor's output (offers + modified series).
	Result *core.Result
	// Elapsed is how long the extraction took on its worker.
	Elapsed time.Duration
}

// JobError records the failure of a single job. Job failures do not abort
// the batch; they are counted and reported in Stats.
type JobError struct {
	JobID string
	Err   error
}

// Error implements error.
func (e JobError) Error() string { return fmt.Sprintf("job %s: %v", e.JobID, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e JobError) Unwrap() error { return e.Err }

// Config parameterises a batch run.
type Config struct {
	// Workers bounds the worker pool; 0 or negative means GOMAXPROCS.
	Workers int
	// NewExtractor builds the extractor for one job. It is called once per
	// job from the worker goroutine that owns the job, so it may return a
	// fresh extractor (per-series consumer IDs and seeds) or a shared one —
	// the core extractors keep all per-run state local to Extract, so
	// sharing is safe.
	NewExtractor func(Job) core.Extractor
	// KeepOfferIDs disables the default qualification of extracted offer
	// IDs with the job ID. Leave false whenever outputs from several
	// households flow into one store.
	KeepOfferIDs bool
	// Telemetry, when set, feeds the long-lived pipeline metrics (jobs
	// started/succeeded/failed, per-stage durations, worker saturation)
	// registered with NewTelemetry. Nil disables instrumentation.
	Telemetry *Telemetry
	// Clock supplies the pipeline's notion of time for the wall/busy/stage
	// timings in Stats and Telemetry; nil means the live clock. Replays
	// (mirabeld -clock) inject their pinned clock here so a replayed batch
	// reports deterministic timings instead of mixing logical offer time
	// with live wall time.
	Clock func() time.Time
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// now reads the configured clock.
func (c Config) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	//lint:ignore clockcheck the documented live default when no Clock is injected; every other wall-clock read in the pipeline goes through this accessor
	return time.Now()
}

// Run drains the jobs channel through a pool of workers, streaming each
// finished extraction into sink, until the channel is closed or the context
// is cancelled. In-flight extractions are not interrupted by cancellation;
// no new jobs are started after it.
//
// Per-job extraction failures (including recovered worker panics) do not
// abort the batch: they are counted in Stats and listed in Stats.JobErrors.
// A Sink error does abort the batch and is returned, as is ctx's error when
// the context is cancelled first.
func Run(ctx context.Context, cfg Config, jobs <-chan Job, sink Sink) (Stats, error) {
	if cfg.NewExtractor == nil {
		return Stats{}, fmt.Errorf("%w: NewExtractor is nil", ErrConfig)
	}
	if sink == nil {
		return Stats{}, fmt.Errorf("%w: nil sink", ErrConfig)
	}
	if jobs == nil {
		return Stats{}, fmt.Errorf("%w: nil jobs channel", ErrConfig)
	}
	workers := cfg.workers()
	cfg.Telemetry.setWorkers(workers)
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	acc := &accumulator{}
	start := cfg.now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check cancellation with priority: a closed Done channel
				// and a ready job race inside a single select, so without
				// this a cancelled pool could keep dispatching.
				select {
				case <-ctx.Done():
					return
				default:
				}
				select {
				case <-ctx.Done():
					return
				case job, ok := <-jobs:
					if !ok {
						return
					}
					runJob(ctx, cfg, job, sink, acc, cancel)
				}
			}
		}()
	}
	wg.Wait()

	stats := acc.snapshot()
	stats.Workers = workers
	stats.Wall = cfg.now().Sub(start)
	// A resilient submit path carries its own loss accounting; fold it
	// into the batch summary so callers see retries and dead-lettered
	// offers next to the extraction counters.
	if rs, ok := sink.(interface{ retryStats() (int, int) }); ok {
		stats.SinkRetries, stats.DeadLettered = rs.retryStats()
	}
	if ctx.Err() != nil {
		return stats, context.Cause(ctx)
	}
	return stats, nil
}

// RunJobs is Run over an in-memory batch: it feeds the slice through an
// internal channel and blocks until the whole batch is finished or aborted.
func RunJobs(ctx context.Context, cfg Config, jobs []Job, sink Sink) (Stats, error) {
	// The feeder must observe the abort of the worker pool (sink error),
	// not only of the parent context, or it would block forever on an
	// undrained channel; cancelling this derived context when Run returns
	// releases it either way.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan Job)
	go func() {
		defer close(ch)
		for _, j := range jobs {
			select {
			case <-ctx.Done():
				return
			default:
			}
			select {
			case ch <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	return Run(ctx, cfg, ch, sink)
}

// runJob executes one job on the calling worker: extract, qualify offer
// IDs, account, and stream the output into the sink.
func runJob(ctx context.Context, cfg Config, job Job, sink Sink, acc *accumulator, cancel context.CancelCauseFunc) {
	cfg.Telemetry.jobStarted()
	begin := cfg.now()
	res, err := extractOne(cfg, job)
	elapsed := cfg.now().Sub(begin)
	if err != nil {
		panicked := errors.Is(err, ErrWorkerPanic)
		cfg.Telemetry.jobDone(0, elapsed, err, panicked)
		acc.fail(JobError{JobID: job.ID, Err: err}, elapsed, panicked)
		return
	}
	if !cfg.KeepOfferIDs && job.ID != "" {
		for _, f := range res.Offers {
			f.ID = job.ID + "/" + f.ID
		}
	}
	cfg.Telemetry.jobDone(len(res.Offers), elapsed, nil, false)
	acc.done(len(res.Offers), elapsed)
	sinkBegin := cfg.now()
	err = sink.Put(ctx, Output{JobID: job.ID, Result: res, Elapsed: elapsed})
	cfg.Telemetry.sinkPut(cfg.now().Sub(sinkBegin))
	if err != nil {
		cancel(fmt.Errorf("pipeline: sink: %w", err))
	}
}

// extractOne builds the job's extractor and runs it, converting panics into
// errors so a malformed series can never take down a worker.
func extractOne(cfg Config, job Job) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrWorkerPanic, r)
		}
	}()
	ex := cfg.NewExtractor(job)
	if ex == nil {
		return nil, fmt.Errorf("%w: NewExtractor returned nil for job %s", ErrConfig, job.ID)
	}
	if mt, ok := ex.(*core.MultiTariffExtractor); ok {
		if job.Reference == nil {
			return nil, fmt.Errorf("multi-tariff extraction needs Job.Reference (one-tariff series)")
		}
		return mt.ExtractPair(job.Reference, job.Series)
	}
	return ex.Extract(job.Series)
}
