package kpi

import (
	"math"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
	"repro/internal/num"
)

// goldenDay anchors the hand-computed fixture.
var goldenDay = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// at is goldenDay plus h hours.
func at(h float64) time.Time { return goldenDay.Add(time.Duration(h * float64(time.Hour))) }

// goldenOffer builds a test offer with hourly slices of [min,max] kWh.
func goldenOffer(id, owner string, earliest, latest time.Time, bounds ...[2]float64) *flexoffer.FlexOffer {
	f := &flexoffer.FlexOffer{
		ID:            id,
		ConsumerID:    owner,
		EarliestStart: earliest,
		LatestStart:   latest,
	}
	for _, b := range bounds {
		f.Profile = append(f.Profile, flexoffer.Slice{Duration: time.Hour, MinEnergy: b[0], MaxEnergy: b[1]})
	}
	return f
}

// eq asserts a float KPI against its hand-computed value.
func eq(t *testing.T, name string, got, want float64) {
	t.Helper()
	if !num.Eq(got, want) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestKPIGolden pins every KPI definition to a hand-computed three-offer
// fixture so the definitions cannot silently drift: offer A shifts within
// the peak window, offer B escapes it entirely, offer C expires unused,
// and one dead letter is booked against A's owner.
//
// Hand computation (1 h buckets, peak window 18:00–22:00 UTC):
//
//	A (house-a): 2×1h slices [1,3] (avg 2 each), window 18:00→20:00,
//	  assigned at 20:00 with [2,2]. Baseline buckets 18→2, 19→2 (all
//	  peak); realised 20→2, 21→2 (all peak); shift 2 h of 2 h offered.
//	B (house-b): 1×1h slice [2,4] (avg 3), window 19:00→23:00, assigned
//	  at 23:00 with [3]. Baseline 19→3 (peak); realised 23→3 (off-peak);
//	  shift 4 h of 4 h offered.
//	C (house-a): 1×1h slice [1,1], window 20:00→20:00, expires offered.
//
//	Global: submitted 3, accepted 2, assigned 2, expired-offered 1;
//	offered 8 kWh, assigned 7 kWh; off-peak assigned 3 kWh, off-peak
//	baseline 0; baseline peak 5 kWh (bucket 19:00 = 2+3), realised peak
//	3 kWh (bucket 23:00) → peak reduction 0.4; shift factor 3/7;
//	acceptance TP=2 FP=0 FN=1 → precision 1, recall 2/3, F1 0.8;
//	expiry loss 1/3; with 1 dead letter, dead-letter loss 1/4.
func TestKPIGolden(t *testing.T) {
	cfg := Config{Resolution: time.Hour, PeakStartHour: 18, PeakEndHour: 22}
	a := goldenOffer("a", "house-a", at(18), at(20), [2]float64{1, 3}, [2]float64{1, 3})
	b := goldenOffer("b", "house-b", at(19), at(23), [2]float64{2, 4})
	c := goldenOffer("c", "house-a", at(20), at(20), [2]float64{1, 1})

	events := []market.StoreEvent{
		{Kind: market.EventSubmitted, Offer: a},
		{Kind: market.EventSubmitted, Offer: b},
		{Kind: market.EventSubmitted, Offer: c},
		{Kind: market.EventAccepted, Offer: a},
		{Kind: market.EventAccepted, Offer: b},
		{Kind: market.EventAssigned, Offer: a, Start: at(20), Energies: []float64{2, 2}},
		{Kind: market.EventAssigned, Offer: b, Start: at(23), Energies: []float64{3}},
		{Kind: market.EventExpired, Offer: c},
	}

	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		tr.Apply(ev)
	}
	tr.ObserveDeadLetters("house-a", 1)
	rep := tr.Report()

	if rep.Events != uint64(len(events)) {
		t.Fatalf("Events = %d, want %d", rep.Events, len(events))
	}
	g := rep.Global
	if g.Submitted != 3 || g.Accepted != 2 || g.Assigned != 2 ||
		g.ExpiredOffered != 1 || g.ExpiredAccepted != 0 || g.Rejected != 0 || g.DeadLettered != 1 {
		t.Fatalf("global counts off: %+v", g.Totals)
	}
	eq(t, "OfferedKWh", g.OfferedKWh, 8)
	eq(t, "AssignedKWh", g.AssignedKWh, 7)
	eq(t, "AssignedOfferedKWh", g.AssignedOfferedKWh, 7)
	eq(t, "OffPeakAssignedKWh", g.OffPeakAssignedKWh, 3)
	eq(t, "OffPeakBaselineKWh", g.OffPeakBaselineKWh, 0)
	eq(t, "ShiftSeconds", g.ShiftSeconds, 6*3600)
	eq(t, "TimeFlexSeconds", g.TimeFlexSeconds, 6*3600)
	eq(t, "BaselinePeakKWh", g.BaselinePeakKWh, 5)
	eq(t, "RealisedPeakKWh", g.RealisedPeakKWh, 3)
	eq(t, "ShiftFactor", g.ShiftFactor, 3.0/7.0)
	eq(t, "BaselineOffPeakShare", g.BaselineOffPeakShare, 0)
	eq(t, "PeakReduction", g.PeakReduction, 0.4)
	eq(t, "EnergyRealisation", g.EnergyRealisation, 1)
	eq(t, "TimeFlexUse", g.TimeFlexUse, 1)
	eq(t, "Acceptance.Precision", g.Acceptance.Precision, 1)
	eq(t, "Acceptance.Recall", g.Acceptance.Recall, 2.0/3.0)
	eq(t, "Acceptance.F1", g.Acceptance.F1, 0.8)
	eq(t, "ExpiryLossRatio", g.ExpiryLossRatio, 1.0/3.0)
	eq(t, "DeadLetterLossRatio", g.DeadLetterLossRatio, 0.25)

	ha, ok := rep.Owners["house-a"]
	if !ok {
		t.Fatal("missing owner house-a")
	}
	if ha.Submitted != 2 || ha.Assigned != 1 || ha.ExpiredOffered != 1 || ha.DeadLettered != 1 {
		t.Fatalf("house-a counts off: %+v", ha.Totals)
	}
	eq(t, "house-a ShiftFactor", ha.ShiftFactor, 0)
	eq(t, "house-a PeakReduction", ha.PeakReduction, 0)
	eq(t, "house-a Acceptance.Recall", ha.Acceptance.Recall, 0.5)
	eq(t, "house-a ExpiryLossRatio", ha.ExpiryLossRatio, 0.5)
	eq(t, "house-a DeadLetterLossRatio", ha.DeadLetterLossRatio, 1.0/3.0)

	hb, ok := rep.Owners["house-b"]
	if !ok {
		t.Fatal("missing owner house-b")
	}
	eq(t, "house-b ShiftFactor", hb.ShiftFactor, 1)
	eq(t, "house-b PeakReduction", hb.PeakReduction, 0)
	eq(t, "house-b TimeFlexUse", hb.TimeFlexUse, 1)
}

// TestOffPeakKWh pins the peak-window overlap arithmetic, including a run
// that straddles the window edge and one that crosses midnight.
func TestOffPeakKWh(t *testing.T) {
	cfg := Config{Resolution: time.Hour, PeakStartHour: 18, PeakEndHour: 22}.withDefaults()

	// 21:30–22:30: half inside the window → half of 2 kWh is off-peak.
	eq(t, "straddle", cfg.offPeakKWh(at(21.5), time.Hour, 2), 1)
	// Fully inside.
	eq(t, "inside", cfg.offPeakKWh(at(19), 2*time.Hour, 3), 0)
	// Fully outside.
	eq(t, "outside", cfg.offPeakKWh(at(8), time.Hour, 3), 3)
	// 23:00–19:00 next day: 20 h spanning midnight, 1 h of day-two peak
	// (18:00–19:00) inside → 19/20 of the energy is off-peak.
	eq(t, "midnight", cfg.offPeakKWh(at(23), 20*time.Hour, 20), 19)
	// Zero duration books by the start's hour of day.
	eq(t, "instant peak", cfg.offPeakKWh(at(19), 0, 5), 0)
	eq(t, "instant off-peak", cfg.offPeakKWh(at(23), 0, 5), 5)
}

// TestSpreadEnergy pins the pro-rata bucket split.
func TestSpreadEnergy(t *testing.T) {
	got := map[int64]float64{}
	// 10:30–12:30 @ 4 kWh on a 1 h grid: ½ + 1 + ½ hours.
	spreadEnergy(time.Hour, at(10.5), 2*time.Hour, 4, func(slot int64, kwh float64) { got[slot] += kwh })
	want := map[int64]float64{
		at(10).UnixNano(): 1,
		at(11).UnixNano(): 2,
		at(12).UnixNano(): 1,
	}
	if len(got) != len(want) {
		t.Fatalf("touched %d buckets, want %d (%v)", len(got), len(want), got)
	}
	for slot, kwh := range want {
		if !num.Eq(got[slot], kwh) {
			t.Errorf("bucket %s = %v, want %v", time.Unix(0, slot).UTC(), got[slot], kwh)
		}
	}
}

// TestConfusionRates pins the shared precision/recall/F1 arithmetic,
// including the all-zero cases that must yield 0, never NaN.
func TestConfusionRates(t *testing.T) {
	c := Confusion{TruePositives: 3, FalsePositives: 1, FalseNegatives: 2}
	eq(t, "precision", c.Precision(), 0.75)
	eq(t, "recall", c.Recall(), 0.6)
	eq(t, "f1", c.F1(), 2*0.75*0.6/(0.75+0.6))

	var zero Confusion
	prf := zero.PRF()
	if prf.Precision != 0 || prf.Recall != 0 || prf.F1 != 0 {
		t.Fatalf("zero tally must derive zero rates, got %+v", prf)
	}
	onlyFN := Confusion{FalseNegatives: 4}
	if p, r, f1 := onlyFN.Precision(), onlyFN.Recall(), onlyFN.F1(); p != 0 || r != 0 || f1 != 0 {
		t.Fatalf("FN-only tally: precision %v recall %v f1 %v, want zeros", p, r, f1)
	}
	if math.IsNaN(onlyFN.F1()) {
		t.Fatal("F1 must never be NaN")
	}
}

// TestConfigValidate covers the window invariants.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults apply): %v", err)
	}
	bad := []Config{
		{PeakStartHour: 21, PeakEndHour: 17},
		{PeakStartHour: -1, PeakEndHour: 5},
		{PeakStartHour: 3, PeakEndHour: 25},
		{PeakStartHour: 7, PeakEndHour: 7},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v must not validate", cfg)
		}
	}
}
