package kpi

import (
	"repro/internal/obs"
)

// RegisterServiceMetrics registers the kpi_* metric families on reg,
// sourced from the service's global scope. Unlike the scheduler's
// families these callbacks do drain the event stream: the fold work is
// exactly the work a /kpi request would do, each event folds once
// (amortised O(1)), and an idle drain is a mutex round-trip — so scrapes
// stay cheap while the exported values track the store instead of the
// last explicit read. Per-owner values are deliberately not exported:
// owners are an unbounded label set, which the registry's bounded-label
// discipline forbids; the /kpi endpoint carries the breakdown instead.
func RegisterServiceMetrics(reg *obs.Registry, s *Service) {
	reg.NewCounterFunc("kpi_events_folded_total", "Store lifecycle events folded into the KPI tracker (replay and live; restarts after a lag resync).", func() uint64 {
		return s.EventsFolded()
	})
	reg.NewCounterFunc("kpi_resyncs_total", "Lagged-subscription replay resyncs: bounded event-queue overflows recovered by rebuilding the tracker.", func() uint64 {
		return s.Resyncs()
	})
	reg.NewCounterFunc("kpi_offers_submitted_total", "Offers submitted, as seen by the KPI fold.", func() uint64 {
		return s.GlobalValues().Submitted
	})
	reg.NewCounterFunc("kpi_offers_assigned_total", "Offers assigned a concrete schedule.", func() uint64 {
		return s.GlobalValues().Assigned
	})
	reg.NewCounterFunc("kpi_offers_expired_total", "Offers lost to lifecycle deadlines (offered and accepted expiries).", func() uint64 {
		v := s.GlobalValues()
		return v.ExpiredOffered + v.ExpiredAccepted
	})
	reg.NewCounterFunc("kpi_offers_dead_lettered_total", "Offers dead-lettered before reaching the store (fed out of band).", func() uint64 {
		return s.GlobalValues().DeadLettered
	})
	reg.NewGaugeFunc("kpi_assigned_kwh_total", "Energy scheduled across all assignments, in kWh.", func() float64 {
		return s.GlobalValues().AssignedKWh
	})
	reg.NewGaugeFunc("kpi_shift_factor", "Energy-shift flexibility factor: share of realised energy outside the daily peak window.", func() float64 {
		return s.GlobalValues().ShiftFactor
	})
	reg.NewGaugeFunc("kpi_peak_reduction", "Relative peak-load drop of the realised schedule vs the unshifted baseline.", func() float64 {
		return s.GlobalValues().PeakReduction
	})
	reg.NewGaugeFunc("kpi_energy_realisation", "Assigned energy over the offered average energy of assigned offers.", func() float64 {
		return s.GlobalValues().EnergyRealisation
	})
	reg.NewGaugeFunc("kpi_time_flex_use", "Used start shift over the offered start-window width of assigned offers.", func() float64 {
		return s.GlobalValues().TimeFlexUse
	})
	reg.NewGaugeFunc("kpi_acceptance_precision", "Acceptance precision: assigned / (assigned + expired-after-accept).", func() float64 {
		return s.GlobalValues().Acceptance.Precision
	})
	reg.NewGaugeFunc("kpi_acceptance_recall", "Acceptance recall: assigned / (assigned + expired-undecided).", func() float64 {
		return s.GlobalValues().Acceptance.Recall
	})
	reg.NewGaugeFunc("kpi_expiry_loss_ratio", "Expired offers over submissions.", func() float64 {
		return s.GlobalValues().ExpiryLossRatio
	})
	reg.NewGaugeFunc("kpi_dead_letter_loss_ratio", "Dead-lettered offers over emissions (submissions + dead letters).", func() float64 {
		return s.GlobalValues().DeadLetterLossRatio
	})
}
