package kpi

import (
	"repro/internal/market"
)

// batchScope is one accumulation target of the batch pass: plain totals
// and plain load-curve maps, no cached peaks, no incremental state — the
// peaks come from a full scan at the end.
type batchScope struct {
	totals   Totals
	baseline map[int64]float64
	realised map[int64]float64
}

func newBatchScope() *batchScope {
	return &batchScope{baseline: make(map[int64]float64), realised: make(map[int64]float64)}
}

// values derives the scope's snapshot, scanning the curves for peaks.
func (b *batchScope) values() Values {
	t := b.totals
	t.BaselinePeakKWh = peakOf(b.baseline)
	t.RealisedPeakKWh = peakOf(b.realised)
	return deriveValues(t)
}

// book folds one accumulation step — deliberately a from-scratch twin of
// the Tracker's fold, kept in the exact same floating-point operation
// order so the equivalence property can demand bitwise equality.
func (b *batchScope) book(cfg Config, k foldKind, ev market.StoreEvent) {
	f := ev.Offer
	switch k {
	case foldSubmitted:
		b.totals.Submitted++
		b.totals.OfferedKWh += f.TotalAvgEnergy()
	case foldAccepted:
		b.totals.Accepted++
	case foldRejected:
		b.totals.Rejected++
	case foldExpiredOffered:
		b.totals.ExpiredOffered++
	case foldExpiredAccepted:
		b.totals.ExpiredAccepted++
	case foldAssigned:
		b.totals.Assigned++
		var assigned float64
		for _, e := range ev.Energies {
			assigned += e
		}
		b.totals.AssignedKWh += assigned
		b.totals.AssignedOfferedKWh += f.TotalAvgEnergy()
		shift := ev.Start.Sub(f.EarliestStart)
		if shift < 0 {
			shift = -shift
		}
		b.totals.ShiftSeconds += shift.Seconds()
		b.totals.TimeFlexSeconds += f.TimeFlexibility().Seconds()
		realisedAt, baselineAt := ev.Start, f.EarliestStart
		for i, s := range f.Profile {
			if i < len(ev.Energies) {
				b.totals.OffPeakAssignedKWh += cfg.offPeakKWh(realisedAt, s.Duration, ev.Energies[i])
				spreadEnergy(cfg.Resolution, realisedAt, s.Duration, ev.Energies[i], func(slot int64, kwh float64) {
					b.realised[slot] += kwh
				})
			}
			avg := s.AvgEnergy()
			b.totals.OffPeakBaselineKWh += cfg.offPeakKWh(baselineAt, s.Duration, avg)
			spreadEnergy(cfg.Resolution, baselineAt, s.Duration, avg, func(slot int64, kwh float64) {
				b.baseline[slot] += kwh
			})
			realisedAt = realisedAt.Add(s.Duration)
			baselineAt = baselineAt.Add(s.Duration)
		}
	}
}

// batchSteps is the journey expansion of the batch pass: given the
// offer's known phase (tracked=false when unseen), it returns the fold
// steps one event implies and the new phase (done=true on a terminal
// event). Semantically a twin of Tracker.expand, implemented against the
// contract in docs/KPI.md rather than shared.
func batchSteps(kind market.EventKind, ph phase, tracked bool) (steps []foldKind, next phase, done bool) {
	switch kind {
	case market.EventSubmitted:
		if tracked {
			return nil, ph, false
		}
		return []foldKind{foldSubmitted}, phaseOffered, false
	case market.EventAccepted:
		if tracked && ph == phaseAccepted {
			return nil, ph, false
		}
		steps = []foldKind{foldAccepted}
		if !tracked {
			steps = []foldKind{foldSubmitted, foldAccepted}
		}
		return steps, phaseAccepted, false
	case market.EventRejected:
		steps = []foldKind{foldRejected}
		if !tracked {
			steps = []foldKind{foldSubmitted, foldRejected}
		}
		return steps, ph, true
	case market.EventAssigned:
		switch {
		case !tracked:
			steps = []foldKind{foldSubmitted, foldAccepted, foldAssigned}
		case ph == phaseOffered:
			steps = []foldKind{foldAccepted, foldAssigned}
		default:
			steps = []foldKind{foldAssigned}
		}
		return steps, ph, true
	case market.EventExpired:
		switch {
		case !tracked:
			steps = []foldKind{foldSubmitted, foldExpiredOffered}
		case ph == phaseAccepted:
			steps = []foldKind{foldExpiredAccepted}
		default:
			steps = []foldKind{foldExpiredOffered}
		}
		return steps, ph, true
	default:
		return nil, ph, false
	}
}

// Compute recomputes the Report from a full event history in one batch
// pass. Fed the event sequence a Tracker consumed (in the same order),
// the result is bitwise-identical to the Tracker's Report — the
// equivalence TestKPIIncrementalBatchEquivalence proves over seeded
// lifecycle scripts. deadLetters books out-of-band dead-letter counts per
// owner (nil for none), mirroring Tracker.ObserveDeadLetters.
func Compute(cfg Config, events []market.StoreEvent, deadLetters map[string]uint64) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg = cfg.withDefaults()

	global := newBatchScope()
	owners := make(map[string]*batchScope)
	phases := make(map[string]phase)
	tracked := make(map[string]bool)
	var folded uint64

	for _, ev := range events {
		if ev.Offer == nil {
			continue
		}
		folded++
		id := ev.Offer.ID
		steps, next, done := batchSteps(ev.Kind, phases[id], tracked[id])
		if done {
			delete(phases, id)
			delete(tracked, id)
		} else if len(steps) > 0 {
			phases[id] = next
			tracked[id] = true
		}
		if len(steps) == 0 {
			continue
		}
		owner := owners[ev.Offer.ConsumerID]
		if owner == nil {
			owner = newBatchScope()
			owners[ev.Offer.ConsumerID] = owner
		}
		for _, k := range steps {
			global.book(cfg, k, ev)
			owner.book(cfg, k, ev)
		}
	}
	for owner, n := range deadLetters {
		if n == 0 {
			continue
		}
		global.totals.DeadLettered += n
		sc := owners[owner]
		if sc == nil {
			sc = newBatchScope()
			owners[owner] = sc
		}
		sc.totals.DeadLettered += n
	}

	rep := Report{Config: cfg.view(), Events: folded, Global: global.values(), Owners: make(map[string]Values, len(owners))}
	for owner, sc := range owners {
		rep.Owners[owner] = sc.values()
	}
	return rep, nil
}

// stateEventKind maps a record's lifecycle state to the replay event kind
// SubscribeReplay would synthesize for it.
func stateEventKind(st market.State) market.EventKind {
	switch st {
	case market.Accepted:
		return market.EventAccepted
	case market.Rejected:
		return market.EventRejected
	case market.Assigned:
		return market.EventAssigned
	case market.Expired:
		return market.EventExpired
	default:
		return market.EventSubmitted
	}
}

// FromRecords recomputes a Report from offer records — for example, the
// pages of GET /offers — by folding each record exactly as the synthetic
// replay event a fresh SubscribeReplay would deliver for it. A live /kpi
// endpoint and FromRecords over a complete listing of the same store
// therefore agree (the soak test's reconciliation); only history that
// final states erase — an expired offer's pre-expiry acceptance, the
// exact acceptance count behind an assignment — is attributed by the
// replay conventions of docs/KPI.md.
func FromRecords(cfg Config, records []market.Record, deadLetters map[string]uint64) (Report, error) {
	tr, err := NewTracker(cfg)
	if err != nil {
		return Report{}, err
	}
	for _, rec := range records {
		if rec.Offer == nil {
			continue
		}
		ev := market.StoreEvent{
			Kind:   stateEventKind(rec.State),
			Replay: true,
			At:     rec.SubmittedAt,
			Offer:  rec.Offer,
		}
		if rec.State != market.Offered {
			ev.At = rec.DecidedAt
		}
		if rec.Assignment != nil {
			ev.Start, ev.Energies = rec.Assignment.Start, rec.Assignment.Energies
		}
		tr.Apply(ev)
	}
	for owner, n := range deadLetters {
		tr.ObserveDeadLetters(owner, n)
	}
	return tr.Report(), nil
}
