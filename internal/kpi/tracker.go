package kpi

import (
	"sync"
	"time"

	"repro/internal/market"
)

// phase is the tracker's per-offer lifecycle memory: just enough to
// attribute a later terminal event (which state did it expire from?) and
// to backfill the implied prefix of a replay event. Terminal offers are
// forgotten, so the map is bounded by the live population, not history.
type phase int

const (
	phaseOffered phase = iota
	phaseAccepted
)

// foldKind is one atomic accumulation step. A single store event can fold
// as several steps: a replay event describing an already-assigned offer
// folds as submitted+accepted+assigned, because the snapshot collapsed the
// offer's whole journey into its final state.
type foldKind int

const (
	foldSubmitted foldKind = iota
	foldAccepted
	foldRejected
	foldAssigned
	foldExpiredOffered
	foldExpiredAccepted
)

// curve is one scope's load curve with an incrementally maintained peak:
// positive adds update the running maximum in O(1); a negative add (a
// production-offer slice) can lower a bucket, so it just marks the cached
// peak dirty and the next read rescans.
type curve struct {
	buckets map[int64]float64
	peak    float64
	dirty   bool
}

// add books one bucket delta and maintains the cached peak.
func (c *curve) add(slot int64, kwh float64) {
	if c.buckets == nil {
		c.buckets = make(map[int64]float64)
	}
	c.buckets[slot] += kwh
	if kwh < 0 {
		c.dirty = true
		return
	}
	if !c.dirty && c.buckets[slot] > c.peak {
		c.peak = c.buckets[slot]
	}
}

// peakKWh returns the curve's peak, rescanning if a negative add
// invalidated the running maximum.
func (c *curve) peakKWh() float64 {
	if c.dirty {
		c.peak = peakOf(c.buckets)
		c.dirty = false
	}
	return c.peak
}

// scope is one accumulation target (the global tally or one owner).
type scope struct {
	totals   Totals
	baseline curve
	realised curve
}

// values snapshots the scope into a derived Values.
func (sc *scope) values() Values {
	t := sc.totals
	t.BaselinePeakKWh = sc.baseline.peakKWh()
	t.RealisedPeakKWh = sc.realised.peakKWh()
	return deriveValues(t)
}

// Tracker is the incremental KPI engine: Apply folds one store event in
// O(1) (amortised over the event's profile slices), and Report snapshots
// the derived indicators at any point. A Tracker fed a store's
// SubscribeReplay stream converges on the same Report that Compute
// derives from the full event history — the equivalence the property
// test pins. All methods are safe for concurrent use.
type Tracker struct {
	cfg Config

	mu     sync.Mutex
	events uint64            // guarded by mu: events folded (replay and live)
	global scope             // guarded by mu
	owners map[string]*scope // guarded by mu, keyed by ConsumerID
	state  map[string]phase  // guarded by mu: live (non-terminal) offers
}

// NewTracker builds an empty tracker with the given configuration (zero
// fields take package defaults). The configuration must validate.
func NewTracker(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:    cfg.withDefaults(),
		owners: make(map[string]*scope),
		state:  make(map[string]phase),
	}, nil
}

// ownerScopeLocked returns (creating if needed) the owner's accumulation
// scope. The caller must hold t.mu.
func (t *Tracker) ownerScopeLocked(owner string) *scope {
	sc := t.owners[owner]
	if sc == nil {
		sc = &scope{}
		t.owners[owner] = sc
	}
	return sc
}

// Apply folds one store event into the tracker. Replay events fold like
// live ones, with the journey the snapshot collapsed backfilled: an
// untracked offer arriving as "assigned" also counts as submitted and
// accepted. Events without an offer are ignored.
func (t *Tracker) Apply(ev market.StoreEvent) {
	if ev.Offer == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	folds := t.expandLocked(ev)
	if len(folds) == 0 {
		return
	}
	owner := t.ownerScopeLocked(ev.Offer.ConsumerID)
	for _, k := range folds {
		t.fold(&t.global, k, ev)
		t.fold(owner, k, ev)
	}
}

// expandLocked translates one event into its fold steps given the
// offer's tracked phase, updating the phase map. Duplicate transitions
// (an event that does not advance the tracked phase) expand to nothing.
// The caller must hold t.mu.
func (t *Tracker) expandLocked(ev market.StoreEvent) []foldKind {
	id := ev.Offer.ID
	ph, tracked := t.state[id]
	switch ev.Kind {
	case market.EventSubmitted:
		if tracked {
			return nil
		}
		t.state[id] = phaseOffered
		return []foldKind{foldSubmitted}
	case market.EventAccepted:
		if tracked && ph == phaseAccepted {
			return nil
		}
		t.state[id] = phaseAccepted
		if !tracked {
			return []foldKind{foldSubmitted, foldAccepted}
		}
		return []foldKind{foldAccepted}
	case market.EventRejected:
		delete(t.state, id)
		if !tracked {
			return []foldKind{foldSubmitted, foldRejected}
		}
		return []foldKind{foldRejected}
	case market.EventAssigned:
		delete(t.state, id)
		switch {
		case !tracked:
			return []foldKind{foldSubmitted, foldAccepted, foldAssigned}
		case ph == phaseOffered:
			return []foldKind{foldAccepted, foldAssigned}
		default:
			return []foldKind{foldAssigned}
		}
	case market.EventExpired:
		delete(t.state, id)
		switch {
		case !tracked:
			// A replay-bootstrap expiry: the pre-expiry state is not in
			// the snapshot, so it attributes as expired-while-offered
			// (docs/KPI.md documents the convention).
			return []foldKind{foldSubmitted, foldExpiredOffered}
		case ph == phaseAccepted:
			return []foldKind{foldExpiredAccepted}
		default:
			return []foldKind{foldExpiredOffered}
		}
	default:
		return nil
	}
}

// fold books one accumulation step into one scope.
func (t *Tracker) fold(sc *scope, k foldKind, ev market.StoreEvent) {
	f := ev.Offer
	switch k {
	case foldSubmitted:
		sc.totals.Submitted++
		sc.totals.OfferedKWh += f.TotalAvgEnergy()
	case foldAccepted:
		sc.totals.Accepted++
	case foldRejected:
		sc.totals.Rejected++
	case foldExpiredOffered:
		sc.totals.ExpiredOffered++
	case foldExpiredAccepted:
		sc.totals.ExpiredAccepted++
	case foldAssigned:
		sc.totals.Assigned++
		var assigned float64
		for _, e := range ev.Energies {
			assigned += e
		}
		sc.totals.AssignedKWh += assigned
		sc.totals.AssignedOfferedKWh += f.TotalAvgEnergy()
		shift := ev.Start.Sub(f.EarliestStart)
		if shift < 0 {
			shift = -shift
		}
		sc.totals.ShiftSeconds += shift.Seconds()
		sc.totals.TimeFlexSeconds += f.TimeFlexibility().Seconds()
		realisedAt, baselineAt := ev.Start, f.EarliestStart
		for i, s := range f.Profile {
			if i < len(ev.Energies) {
				sc.totals.OffPeakAssignedKWh += t.cfg.offPeakKWh(realisedAt, s.Duration, ev.Energies[i])
				spreadEnergy(t.cfg.Resolution, realisedAt, s.Duration, ev.Energies[i], sc.realised.add)
			}
			avg := s.AvgEnergy()
			sc.totals.OffPeakBaselineKWh += t.cfg.offPeakKWh(baselineAt, s.Duration, avg)
			spreadEnergy(t.cfg.Resolution, baselineAt, s.Duration, avg, sc.baseline.add)
			realisedAt = realisedAt.Add(s.Duration)
			baselineAt = baselineAt.Add(s.Duration)
		}
	}
}

// ObserveDeadLetters books n dead-lettered offers against owner (and the
// global scope). Dead letters never reach the store — the resilient sink
// swallows them after exhausting its retry budget — so this side channel
// is how the loss ratio learns about them.
func (t *Tracker) ObserveDeadLetters(owner string, n uint64) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.global.totals.DeadLettered += n
	t.ownerScopeLocked(owner).totals.DeadLettered += n
}

// Report snapshots every scope's derived KPI values.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := Report{
		Config: t.cfg.view(),
		Events: t.events,
		Global: t.global.values(),
		Owners: make(map[string]Values, len(t.owners)),
	}
	for owner, sc := range t.owners {
		rep.Owners[owner] = sc.values()
	}
	return rep
}

// GlobalValues snapshots just the global scope — the cheap read metric
// callbacks use, avoiding the per-owner map of a full Report.
func (t *Tracker) GlobalValues() Values {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.global.values()
}

// Resolution reports the effective bucket resolution.
func (t *Tracker) Resolution() time.Duration { return t.cfg.Resolution }

// Events reports the number of store events folded so far.
func (t *Tracker) Events() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}
