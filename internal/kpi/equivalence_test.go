package kpi

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
)

// scriptState is the generator's view of one live (non-terminal) offer.
type scriptState struct {
	offer    *flexoffer.FlexOffer
	accepted bool
}

var scriptOwners = []string{"own-a", "own-b", "own-c", "own-d"}

// genScriptOffer builds a random offer: 1–4 slices of 15 or 30 minutes,
// energy bounds that are sometimes negative (production offers, which
// exercise the dirty-peak rescan), and a start window of 0–6 h somewhere
// in a two-day horizon.
func genScriptOffer(rng *rand.Rand, n int) *flexoffer.FlexOffer {
	base := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	earliest := base.Add(time.Duration(rng.Intn(2*24*4)) * 15 * time.Minute)
	f := &flexoffer.FlexOffer{
		ID:            fmt.Sprintf("offer-%06d", n),
		ConsumerID:    scriptOwners[rng.Intn(len(scriptOwners))],
		EarliestStart: earliest,
		LatestStart:   earliest.Add(time.Duration(rng.Intn(25)) * 15 * time.Minute),
	}
	slices := 1 + rng.Intn(4)
	for i := 0; i < slices; i++ {
		dur := 15 * time.Minute
		if rng.Intn(2) == 0 {
			dur = 30 * time.Minute
		}
		min := rng.Float64()*4 - 1 // sometimes negative: production offers
		f.Profile = append(f.Profile, flexoffer.Slice{
			Duration:  dur,
			MinEnergy: min,
			MaxEnergy: min + rng.Float64()*2,
		})
	}
	return f
}

// genAssignment schedules a live offer somewhere in its window with
// per-slice energies inside the slice bounds.
func genAssignment(rng *rand.Rand, f *flexoffer.FlexOffer) (time.Time, []float64) {
	window := f.TimeFlexibility()
	start := f.EarliestStart
	if window > 0 {
		start = start.Add(time.Duration(rng.Int63n(int64(window))))
	}
	energies := make([]float64, len(f.Profile))
	for i, s := range f.Profile {
		energies[i] = s.MinEnergy + rng.Float64()*(s.MaxEnergy-s.MinEnergy)
	}
	return start, energies
}

// TestKPIIncrementalBatchEquivalence drives seeded 300-step lifecycle
// scripts — submissions, decisions, assignments, expiries, replay-style
// bootstrap events, duplicate transitions and dead letters — through the
// incremental Tracker, checkpointing every 25 steps that its Report is
// bitwise-equal (reflect.DeepEqual, no tolerance) to the independent
// batch Compute over the full history. Mirrors the aggregator's
// TestIncrementalBatchEquivalence: 8 seeds, any divergence names the
// first differing checkpoint.
func TestKPIIncrementalBatchEquivalence(t *testing.T) {
	const steps, checkpointEvery, seeds = 300, 25, 8
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := Config{Resolution: 15 * time.Minute}
			tr, err := NewTracker(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var history []market.StoreEvent
			dead := make(map[string]uint64)
			var live []*scriptState
			nextID := 0

			emit := func(ev market.StoreEvent) {
				tr.Apply(ev)
				history = append(history, ev)
			}

			for step := 1; step <= steps; step++ {
				switch roll := rng.Float64(); {
				case roll < 0.05:
					// A dead letter: never a store event, booked out of band.
					owner := scriptOwners[rng.Intn(len(scriptOwners))]
					n := uint64(1 + rng.Intn(3))
					tr.ObserveDeadLetters(owner, n)
					dead[owner] += n
				case roll < 0.15:
					// A replay-style bootstrap event: an offer first seen in
					// a non-initial state, exercising the backfill path.
					nextID++
					f := genScriptOffer(rng, nextID)
					ev := market.StoreEvent{Replay: true, Offer: f}
					switch rng.Intn(4) {
					case 0:
						ev.Kind = market.EventAccepted
						emit(ev)
						live = append(live, &scriptState{offer: f, accepted: true})
					case 1:
						ev.Kind = market.EventRejected
						emit(ev)
					case 2:
						ev.Kind = market.EventAssigned
						ev.Start, ev.Energies = genAssignment(rng, f)
						emit(ev)
					default:
						ev.Kind = market.EventExpired
						emit(ev)
					}
				case roll < 0.5 || len(live) == 0:
					// A fresh submission.
					nextID++
					f := genScriptOffer(rng, nextID)
					emit(market.StoreEvent{Kind: market.EventSubmitted, Offer: f})
					live = append(live, &scriptState{offer: f})
					if rng.Float64() < 0.1 {
						// A duplicate submission folds as a no-op.
						emit(market.StoreEvent{Kind: market.EventSubmitted, Offer: f})
					}
				default:
					// Transition a random live offer.
					i := rng.Intn(len(live))
					st := live[i]
					terminal := true
					if !st.accepted {
						switch rng.Intn(4) {
						case 0:
							emit(market.StoreEvent{Kind: market.EventAccepted, Offer: st.offer})
							st.accepted = true
							terminal = false
						case 1:
							emit(market.StoreEvent{Kind: market.EventRejected, Offer: st.offer})
						default:
							emit(market.StoreEvent{Kind: market.EventExpired, Offer: st.offer})
						}
					} else {
						switch rng.Intn(3) {
						case 0:
							// A duplicate accept folds as a no-op.
							emit(market.StoreEvent{Kind: market.EventAccepted, Offer: st.offer})
							terminal = false
						case 1:
							start, energies := genAssignment(rng, st.offer)
							emit(market.StoreEvent{Kind: market.EventAssigned, Offer: st.offer, Start: start, Energies: energies})
						default:
							emit(market.StoreEvent{Kind: market.EventExpired, Offer: st.offer})
						}
					}
					if terminal {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}

				if step%checkpointEvery == 0 || step == steps {
					assertEquivalent(t, step, tr, cfg, history, dead)
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}

// assertEquivalent requires the incremental and batch reports to be
// bitwise-identical, and both to serialise (no NaN/Inf snuck in).
func assertEquivalent(t *testing.T, step int, tr *Tracker, cfg Config, history []market.StoreEvent, dead map[string]uint64) {
	t.Helper()
	inc := tr.Report()
	batch, err := Compute(cfg, history, dead)
	if err != nil {
		t.Fatalf("step %d: Compute: %v", step, err)
	}
	if !reflect.DeepEqual(inc, batch) {
		t.Fatalf("step %d: incremental and batch reports diverged\nincremental: %+v\nbatch:       %+v", step, inc, batch)
	}
	if _, err := json.Marshal(inc); err != nil {
		t.Fatalf("step %d: report not serialisable (NaN/Inf?): %v", step, err)
	}
}

// TestFromRecordsMatchesReplayBootstrap checks the REST-facing recompute:
// folding a store's final records equals attaching a fresh
// SubscribeReplay-bootstrapped tracker to the same store.
func TestFromRecordsMatchesReplayBootstrap(t *testing.T) {
	now := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	store := market.NewStore(func() time.Time { return now })
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		f := genScriptOffer(rng, i)
		if err := store.Submit(f); err != nil {
			t.Fatalf("submit %s: %v", f.ID, err)
		}
		switch i % 4 {
		case 0: // stays offered
		case 1:
			if err := store.Reject(f.ID); err != nil {
				t.Fatal(err)
			}
		default:
			if err := store.Accept(f.ID); err != nil {
				t.Fatal(err)
			}
			if i%4 == 3 {
				start, energies := genAssignment(rng, f)
				if _, err := store.Assign(f.ID, start, energies); err != nil {
					t.Fatalf("assign %s: %v", f.ID, err)
				}
			}
		}
	}

	cfg := Config{Resolution: 15 * time.Minute}
	svc, err := NewService(ServiceConfig{Store: store, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	fromStream := svc.Report()

	fromRecords, err := FromRecords(cfg, store.List(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Counts and derived values must agree exactly: both paths fold one
	// synthetic state event per record. (Float sums may differ in order
	// across shards, but a single-shard store lists in submission order,
	// which is also replay order.)
	if !reflect.DeepEqual(fromStream, fromRecords) {
		t.Fatalf("stream and record recompute diverged\nstream:  %+v\nrecords: %+v", fromStream, fromRecords)
	}
}
