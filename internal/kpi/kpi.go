// Package kpi measures the quality of the flexibility the market actually
// delivered — not how fast offers were collected, but what the collected
// offers were worth once accepted, scheduled and (sometimes) lost. It
// consumes the market store's lifecycle event stream (SubscribeReplay for
// a gap-free snapshot+live fold, exactly like the scheduler) and folds it
// into per-owner and global indicators:
//
//   - energy-shift flexibility factor: the share of realised (assigned)
//     energy placed outside the configured daily peak window — the
//     load-shifting KPI of the energy-flexibility-KPI literature, computed
//     on actual assignments instead of building simulations;
//   - peak reduction vs the unshifted baseline: the relative drop of the
//     maximum per-bucket load between "every assigned offer runs at its
//     earliest start with average energies" and the schedule as assigned;
//   - realised-vs-offered flexibility: how much of the offered time and
//     energy flexibility the scheduler actually used;
//   - offer-acceptance precision/recall: accepted offers as predictions of
//     "will be realised", scored once lifecycles settle;
//   - expiry and dead-letter loss ratios: flexibility that was extracted
//     but never monetised.
//
// Every indicator is computable two ways with identical results: the
// incremental Tracker folds one event in O(1), and the batch Compute
// re-derives the same Report from the full history (the property test
// proves them bitwise equal). FromRecords bridges to the REST surface: it
// recomputes the Report from /offers listings, which is what the soak
// test reconciles against a live /kpi response.
//
// docs/KPI.md holds the definitions and the event-stream contract.
package kpi

import (
	"fmt"
	"time"

	"repro/internal/num"
)

// Default configuration: a 15-minute bucket grid (the MIRABEL slice
// resolution) and a 17:00–21:00 UTC peak window (the evening peak the
// soak/household series concentrate consumption in).
const (
	// DefaultResolution is the default peak-tracking bucket width.
	DefaultResolution = 15 * time.Minute
	// DefaultPeakStartHour is the default peak-window start (inclusive, UTC).
	DefaultPeakStartHour = 17
	// DefaultPeakEndHour is the default peak-window end (exclusive, UTC).
	DefaultPeakEndHour = 21
)

// Config fixes the two free parameters every KPI definition depends on.
// The zero value is usable: withDefaults fills in the package defaults.
type Config struct {
	// Resolution is the bucket width used for the baseline/realised load
	// curves behind the peak-reduction KPI. DefaultResolution when zero.
	Resolution time.Duration
	// PeakStartHour and PeakEndHour bound the daily peak window
	// [start,end) in whole UTC hours, for the energy-shift factor.
	// Defaults when both are zero.
	PeakStartHour int
	PeakEndHour   int
}

// withDefaults returns cfg with zero fields replaced by package defaults.
func (c Config) withDefaults() Config {
	if c.Resolution <= 0 {
		c.Resolution = DefaultResolution
	}
	if c.PeakStartHour == 0 && c.PeakEndHour == 0 {
		c.PeakStartHour = DefaultPeakStartHour
		c.PeakEndHour = DefaultPeakEndHour
	}
	return c
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.PeakStartHour < 0 || c.PeakEndHour > 24 || c.PeakStartHour >= c.PeakEndHour {
		return fmt.Errorf("kpi: peak window [%d,%d) must satisfy 0 <= start < end <= 24", c.PeakStartHour, c.PeakEndHour)
	}
	return nil
}

// ConfigView is the JSON shape of the effective configuration in a Report.
type ConfigView struct {
	// ResolutionSeconds is the peak-bucket width in seconds.
	ResolutionSeconds float64 `json:"resolution_seconds"`
	// PeakStartHour and PeakEndHour bound the daily peak window (UTC).
	PeakStartHour int `json:"peak_start_hour"`
	PeakEndHour   int `json:"peak_end_hour"`
}

// view renders the effective configuration.
func (c Config) view() ConfigView {
	c = c.withDefaults()
	return ConfigView{
		ResolutionSeconds: c.Resolution.Seconds(),
		PeakStartHour:     c.PeakStartHour,
		PeakEndHour:       c.PeakEndHour,
	}
}

// Confusion is a binary-classification tally. It is the single source of
// truth for precision/recall arithmetic: the market-side acceptance KPI
// and the offline extraction scorer (internal/eval) both derive their
// rates from here, so the definitions cannot drift apart.
type Confusion struct {
	// TruePositives counts positives that were confirmed.
	TruePositives int `json:"true_positives"`
	// FalsePositives counts positives that were disconfirmed.
	FalsePositives int `json:"false_positives"`
	// FalseNegatives counts confirmed cases that were never predicted.
	FalseNegatives int `json:"false_negatives"`
}

// Precision is TP/(TP+FP), 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TruePositives+c.FalsePositives == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(c.TruePositives+c.FalsePositives)
}

// Recall is TP/(TP+FN), 0 when there were no actual positives.
func (c Confusion) Recall() float64 {
	if c.TruePositives+c.FalseNegatives == 0 {
		return 0
	}
	return float64(c.TruePositives) / float64(c.TruePositives+c.FalseNegatives)
}

// F1 is the harmonic mean of precision and recall, 0 when both are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if num.Zero(p + r) {
		return 0
	}
	return 2 * p * r / (p + r)
}

// PRF bundles a confusion tally with its derived rates — the shape both
// the KPI report and internal/eval's MatchStats embed.
type PRF struct {
	Confusion
	// Precision, Recall and F1 are the rates derived from the tally.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// PRF derives the precision/recall/F1 snapshot of the tally.
func (c Confusion) PRF() PRF {
	return PRF{Confusion: c, Precision: c.Precision(), Recall: c.Recall(), F1: c.F1()}
}

// Totals are the raw per-scope accumulations every derived KPI is a pure
// function of. All float fields are sums folded in event order, so an
// incremental tracker and a batch recompute over the same history produce
// bitwise-identical values.
type Totals struct {
	// Submitted..DeadLettered count lifecycle outcomes. Expired offers
	// split by the state they expired from: ExpiredOffered never got a
	// decision, ExpiredAccepted was accepted but never assigned.
	Submitted       uint64 `json:"submitted"`
	Accepted        uint64 `json:"accepted"`
	Rejected        uint64 `json:"rejected"`
	Assigned        uint64 `json:"assigned"`
	ExpiredOffered  uint64 `json:"expired_offered"`
	ExpiredAccepted uint64 `json:"expired_accepted"`
	DeadLettered    uint64 `json:"dead_lettered"`

	// OfferedKWh is the total average energy of every submitted offer.
	OfferedKWh float64 `json:"offered_kwh"`
	// AssignedKWh is the energy actually scheduled across assignments.
	AssignedKWh float64 `json:"assigned_kwh"`
	// AssignedOfferedKWh is the offered average energy of just the
	// assigned offers — the denominator of the energy-realisation ratio.
	AssignedOfferedKWh float64 `json:"assigned_offered_kwh"`
	// OffPeakAssignedKWh is the assigned energy realised outside the
	// daily peak window; OffPeakBaselineKWh is the same measure for the
	// unshifted baseline placement of the assigned offers.
	OffPeakAssignedKWh float64 `json:"off_peak_assigned_kwh"`
	OffPeakBaselineKWh float64 `json:"off_peak_baseline_kwh"`
	// ShiftSeconds sums |assigned start − earliest start| over
	// assignments; TimeFlexSeconds sums the offered start-window widths
	// of the assigned offers.
	ShiftSeconds    float64 `json:"shift_seconds"`
	TimeFlexSeconds float64 `json:"time_flex_seconds"`
	// BaselinePeakKWh and RealisedPeakKWh are the maximum per-bucket
	// energies of the baseline and realised load curves (0 when no
	// bucket is positive).
	BaselinePeakKWh float64 `json:"baseline_peak_kwh"`
	RealisedPeakKWh float64 `json:"realised_peak_kwh"`
}

// Values is one scope's full KPI snapshot: the raw totals plus every
// derived indicator. Ratios with an empty denominator are 0, never NaN.
type Values struct {
	Totals

	// ShiftFactor is the energy-shift flexibility factor: the share of
	// realised energy placed outside the daily peak window.
	ShiftFactor float64 `json:"shift_factor"`
	// BaselineOffPeakShare is the same share for the unshifted baseline;
	// ShiftFactor above it means scheduling moved energy out of the peak.
	BaselineOffPeakShare float64 `json:"baseline_off_peak_share"`
	// PeakReduction is (baseline peak − realised peak) / baseline peak.
	PeakReduction float64 `json:"peak_reduction"`
	// EnergyRealisation is assigned energy over the offered average
	// energy of the assigned offers.
	EnergyRealisation float64 `json:"energy_realisation"`
	// TimeFlexUse is the used start shift over the offered start-window
	// width, summed across assignments.
	TimeFlexUse float64 `json:"time_flex_use"`
	// Acceptance scores accepted offers as predictions of realisation:
	// assigned = TP, expired-after-accept = FP, expired-undecided = FN
	// (rejections are deliberate negatives and score nowhere).
	Acceptance PRF `json:"acceptance"`
	// ExpiryLossRatio is expired offers (either kind) over submissions.
	ExpiryLossRatio float64 `json:"expiry_loss_ratio"`
	// DeadLetterLossRatio is dead-lettered offers over emissions
	// (submissions + dead letters).
	DeadLetterLossRatio float64 `json:"dead_letter_loss_ratio"`
}

// Report is the full KPI snapshot served on GET /kpi.
type Report struct {
	// Config is the effective KPI configuration.
	Config ConfigView `json:"config"`
	// Events counts the store events folded in (replay and live alike).
	Events uint64 `json:"events"`
	// Global aggregates across every owner.
	Global Values `json:"global"`
	// Owners breaks the KPIs down per offer owner (ConsumerID).
	Owners map[string]Values `json:"owners,omitempty"`
}

// ratio is n/d with the 0/0 → 0 convention every derived KPI uses.
func ratio(n, d float64) float64 {
	if num.Zero(d) {
		return 0
	}
	return n / d
}

// deriveValues computes every indicator from one scope's totals. It is a
// pure function, shared by the incremental and batch paths: equal totals
// imply an equal Values, so equivalence reduces to the accumulations.
func deriveValues(t Totals) Values {
	v := Values{Totals: t}
	v.ShiftFactor = ratio(t.OffPeakAssignedKWh, t.AssignedKWh)
	v.BaselineOffPeakShare = ratio(t.OffPeakBaselineKWh, t.AssignedOfferedKWh)
	if t.BaselinePeakKWh > 0 {
		v.PeakReduction = (t.BaselinePeakKWh - t.RealisedPeakKWh) / t.BaselinePeakKWh
	}
	v.EnergyRealisation = ratio(t.AssignedKWh, t.AssignedOfferedKWh)
	v.TimeFlexUse = ratio(t.ShiftSeconds, t.TimeFlexSeconds)
	v.Acceptance = Confusion{
		TruePositives:  int(t.Assigned),
		FalsePositives: int(t.ExpiredAccepted),
		FalseNegatives: int(t.ExpiredOffered),
	}.PRF()
	if t.Submitted > 0 {
		v.ExpiryLossRatio = float64(t.ExpiredOffered+t.ExpiredAccepted) / float64(t.Submitted)
	}
	if t.Submitted+t.DeadLettered > 0 {
		v.DeadLetterLossRatio = float64(t.DeadLettered) / float64(t.Submitted+t.DeadLettered)
	}
	return v
}

// spreadEnergy distributes kwh consumed over [start, start+dur) into
// res-wide grid buckets pro rata by overlap, calling add once per touched
// bucket with the bucket's grid time (UnixNano) and energy share. A
// non-positive duration books the whole amount on start's bucket. This is
// the definition of the load curves behind the peak-reduction KPI, shared
// verbatim by the incremental and batch paths.
func spreadEnergy(res time.Duration, start time.Time, dur time.Duration, kwh float64, add func(slot int64, kwh float64)) {
	if dur <= 0 {
		add(start.Truncate(res).UnixNano(), kwh)
		return
	}
	end := start.Add(dur)
	for t := start.Truncate(res); t.Before(end); t = t.Add(res) {
		ov := overlapSeconds(start, end, t, t.Add(res))
		add(t.UnixNano(), kwh*ov/dur.Seconds())
	}
}

// overlapSeconds is the length of [as,ae) ∩ [bs,be) in seconds.
func overlapSeconds(as, ae, bs, be time.Time) float64 {
	lo := as
	if bs.After(lo) {
		lo = bs
	}
	hi := ae
	if be.Before(hi) {
		hi = be
	}
	if !lo.Before(hi) {
		return 0
	}
	return hi.Sub(lo).Seconds()
}

// offPeakKWh is the share of kwh consumed over [start, start+dur) that
// falls outside the daily [PeakStartHour, PeakEndHour) UTC window — the
// numerator of the energy-shift flexibility factor. A non-positive
// duration attributes the whole amount by start's hour of day.
func (c Config) offPeakKWh(start time.Time, dur time.Duration, kwh float64) float64 {
	start = start.UTC()
	if dur <= 0 {
		h := start.Hour()
		if h >= c.PeakStartHour && h < c.PeakEndHour {
			return 0
		}
		return kwh
	}
	end := start.Add(dur)
	var peak float64
	for day := start.Truncate(24 * time.Hour); day.Before(end); day = day.Add(24 * time.Hour) {
		ws := day.Add(time.Duration(c.PeakStartHour) * time.Hour)
		we := day.Add(time.Duration(c.PeakEndHour) * time.Hour)
		peak += overlapSeconds(start, end, ws, we)
	}
	return kwh * (1 - peak/dur.Seconds())
}

// peakOf is the maximum positive bucket value of a load curve (0 for an
// empty or all-non-positive curve). max is order-independent, so the
// incremental running peak and this full scan agree bitwise.
func peakOf(buckets map[int64]float64) float64 {
	var peak float64
	for _, v := range buckets {
		if v > peak {
			peak = v
		}
	}
	return peak
}
