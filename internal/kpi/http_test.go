package kpi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/market"
)

// newTestService builds a service over a small live store: two owners,
// one offer assigned, one rejected, one left offered.
func newTestService(t *testing.T) (*Service, *market.Store) {
	t.Helper()
	now := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	store := market.NewStore(func() time.Time { return now })

	a := goldenOffer("a", "house-a", at(18), at(20), [2]float64{1, 3}, [2]float64{1, 3})
	b := goldenOffer("b", "house-b", at(19), at(23), [2]float64{2, 4})
	c := goldenOffer("c", "house-a", at(20), at(21), [2]float64{1, 1})
	if err := store.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := store.Submit(b); err != nil {
		t.Fatal(err)
	}
	if err := store.Submit(c); err != nil {
		t.Fatal(err)
	}
	if err := store.Accept("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Assign("a", at(20), []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := store.Reject("b"); err != nil {
		t.Fatal(err)
	}

	svc, err := NewService(ServiceConfig{Store: store, Config: Config{Resolution: time.Hour, PeakStartHour: 18, PeakEndHour: 22}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, store
}

// getKPI performs one request against the service handler.
func getKPI(t *testing.T, h http.Handler, method, target string) (int, []byte) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(method, target, nil))
	return rr.Code, rr.Body.Bytes()
}

// TestKPIHandler covers the /kpi contract: the happy path, both filters,
// and every error path with the JSON error envelope.
func TestKPIHandler(t *testing.T) {
	svc, _ := newTestService(t)
	h := svc.Handler()

	code, body := getKPI(t, h, "GET", "/kpi")
	if code != http.StatusOK {
		t.Fatalf("GET /kpi = %d: %s", code, body)
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("GET /kpi: invalid JSON: %v", err)
	}
	if rep.Global.Submitted != 3 || rep.Global.Assigned != 1 || rep.Global.Rejected != 1 {
		t.Fatalf("unexpected global counts: %+v", rep.Global.Totals)
	}
	if len(rep.Owners) != 2 {
		t.Fatalf("owners = %v, want house-a and house-b", rep.Owners)
	}
	if rep.Config.PeakStartHour != 18 || rep.Config.PeakEndHour != 22 {
		t.Fatalf("config view off: %+v", rep.Config)
	}

	code, body = getKPI(t, h, "GET", "/kpi?owner=house-a")
	if code != http.StatusOK {
		t.Fatalf("owner filter = %d: %s", code, body)
	}
	rep = Report{}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Owners) != 1 || rep.Owners["house-a"].Submitted != 2 {
		t.Fatalf("owner filter returned %v", rep.Owners)
	}

	code, body = getKPI(t, h, "GET", "/kpi?owners=false")
	if code != http.StatusOK {
		t.Fatalf("owners=false = %d: %s", code, body)
	}
	if strings.Contains(string(body), `"owners"`) {
		t.Fatalf("owners=false must omit the breakdown: %s", body)
	}

	for _, tc := range []struct {
		target string
		method string
		want   int
	}{
		{"/kpi?owner=nobody", "GET", http.StatusNotFound},
		{"/kpi?owners=maybe", "GET", http.StatusBadRequest},
		{"/kpi?owner=house-a&owners=false", "GET", http.StatusBadRequest},
		{"/kpi", "POST", http.StatusMethodNotAllowed},
		{"/kpi", "DELETE", http.StatusMethodNotAllowed},
	} {
		code, body := getKPI(t, h, tc.method, tc.target)
		if code != tc.want {
			t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.target, code, tc.want, body)
		}
		var envelope struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == "" {
			t.Errorf("%s %s: missing error envelope: %s", tc.method, tc.target, body)
		}
	}
}

// TestKPIHandlerDrainsLiveEvents checks that a request observes store
// transitions that happened after the previous request.
func TestKPIHandlerDrainsLiveEvents(t *testing.T) {
	svc, store := newTestService(t)
	h := svc.Handler()

	_, body := getKPI(t, h, "GET", "/kpi")
	var before Report
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if err := store.Accept("c"); err != nil {
		t.Fatal(err)
	}
	_, body = getKPI(t, h, "GET", "/kpi")
	var after Report
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Global.Accepted != before.Global.Accepted+1 {
		t.Fatalf("accept not folded: before %d, after %d", before.Global.Accepted, after.Global.Accepted)
	}
	if after.Events != before.Events+1 {
		t.Fatalf("events: before %d, after %d, want +1", before.Events, after.Events)
	}
}

// FuzzKPIQuery throws arbitrary query strings at the handler: it must
// never panic, always answer 200/400/404, and always produce valid JSON.
func FuzzKPIQuery(f *testing.F) {
	now := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	store := market.NewStore(func() time.Time { return now })
	a := goldenOffer("a", "house-a", at(18), at(20), [2]float64{1, 3})
	if err := store.Submit(a); err != nil {
		f.Fatal(err)
	}
	svc, err := NewService(ServiceConfig{Store: store})
	if err != nil {
		f.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()

	for _, seed := range []string{
		"", "owner=house-a", "owner=nobody", "owners=false", "owners=true",
		"owners=2", "owners=x", "owner=house-a&owners=false", "owner=%zz",
		"owner=a&owner=b", "owners=false&owners=true", "a=b&&&=", "owner=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, rawQuery string) {
		req := &http.Request{
			Method: http.MethodGet,
			URL:    &url.URL{Path: "/kpi", RawQuery: rawQuery},
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("query %q: unexpected status %d", rawQuery, rr.Code)
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("query %q: invalid JSON body: %s", rawQuery, rr.Body.Bytes())
		}
	})
}
