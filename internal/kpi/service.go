package kpi

import (
	"fmt"
	"sync"

	"repro/internal/market"
	"repro/internal/obs"
)

// ServiceConfig configures a KPI Service.
type ServiceConfig struct {
	// Store is the market store whose event stream the service folds.
	// Required.
	Store *market.Store
	// Config fixes the KPI definitions' parameters; zero fields take the
	// package defaults.
	Config Config
	// EventHighWater bounds the event-stream subscription queue; on
	// overflow the service discards its tracker and resyncs from a fresh
	// replay instead of growing memory without limit. 0 leaves the queue
	// unbounded.
	EventHighWater int
	// Logger receives service lifecycle logs; may be nil.
	Logger *obs.Logger
}

// Service runs the incremental KPI engine against a live market store. It
// attaches with SubscribeReplay, so the tracker bootstraps from the
// store's current contents and then folds every later transition with no
// gap or duplicate in between. Like the scheduler service it owns no
// background goroutine: pending events are drained synchronously at the
// start of every read (Report, GlobalValues, metric scrapes, HTTP
// requests), which keeps the fold work proportional to the traffic that
// happened — an idle drain is a single mutex round-trip. With a bounded
// subscription (EventHighWater), a drain that finds the queue lagged
// rebuilds the tracker from a fresh replay and re-books the retained
// dead-letter counts, converging on exactly the state a never-lagged fold
// would hold. All methods are safe for concurrent use.
type Service struct {
	cfg ServiceConfig

	// drainMu serialises drains so concurrently popped events cannot fold
	// out of per-shard order, and guards the tracker/subscription swap a
	// lag resync performs.
	drainMu     sync.Mutex
	tracker     *Tracker             // guarded by drainMu (swapped on resync)
	sub         *market.Subscription // guarded by drainMu (swapped on resync)
	deadByOwner map[string]uint64    // guarded by drainMu: out-of-band dead letters, replayed on resync
	resyncs     uint64               // guarded by drainMu: lagged-subscription replay resyncs
}

// NewService subscribes to the store and returns a running service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("kpi: nil store")
	}
	tracker, err := NewTracker(cfg.Config)
	if err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, tracker: tracker, deadByOwner: make(map[string]uint64)}
	s.sub = cfg.Store.SubscribeReplay(market.WithHighWater(cfg.EventHighWater))
	cfg.Logger.Info("kpi service attached",
		"resolution", tracker.Resolution(), "bootstrap_events", s.sub.Pending(),
		"event_high_water", cfg.EventHighWater)
	return s, nil
}

// Close detaches the service from the store's event stream.
func (s *Service) Close() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.sub.Close()
}

// drain folds every pending store event into the tracker, serialised so
// two concurrent readers cannot interleave the per-shard event order, and
// returns the tracker the caller should read — which is a fresh one when
// a lagged subscription forced a resync mid-drain.
func (s *Service) drain() *Tracker {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	for {
		for {
			ev, ok := s.sub.TryNext()
			if !ok {
				break
			}
			s.tracker.Apply(ev)
		}
		if !s.sub.Lagged() || s.sub.Closed() {
			return s.tracker
		}
		s.resyncLocked()
	}
}

// resyncLocked rebuilds the tracker from a fresh replay bootstrap after
// the event subscription lagged, re-booking the retained out-of-band
// dead-letter counts (integer adds, so re-feeding order is immaterial).
// Caller holds drainMu; the enclosing drain loop folds the new bootstrap.
func (s *Service) resyncLocked() {
	dropped := s.sub.Dropped()
	s.sub.Close()
	tracker, err := NewTracker(s.cfg.Config)
	if err != nil {
		// Unreachable: NewService validated the same config. Keep the
		// stale tracker rather than crash a running daemon.
		s.cfg.Logger.Error("kpi resync tracker rebuild failed", "err", err)
		return
	}
	s.tracker = tracker
	for owner, n := range s.deadByOwner {
		s.tracker.ObserveDeadLetters(owner, n)
	}
	s.sub = s.cfg.Store.SubscribeReplay(market.WithHighWater(s.cfg.EventHighWater))
	s.resyncs++
	s.cfg.Logger.Warn("kpi event stream lagged; resynced via replay",
		"resyncs", s.resyncs, "dropped_deliveries", dropped,
		"bootstrap_events", s.sub.Pending(), "high_water", s.cfg.EventHighWater)
}

// Resyncs reports how often a lagged subscription forced a replay resync.
func (s *Service) Resyncs() uint64 {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.resyncs
}

// Report drains pending events and snapshots the full KPI report.
func (s *Service) Report() Report {
	return s.drain().Report()
}

// GlobalValues drains pending events and snapshots the global scope only
// — the cheap read behind metric callbacks.
func (s *Service) GlobalValues() Values {
	return s.drain().GlobalValues()
}

// EventsFolded drains pending events and reports how many lifecycle
// events the current tracker has folded (replay and live). A resync
// restarts the count from the fresh bootstrap, exactly as a newly
// attached service would.
func (s *Service) EventsFolded() uint64 {
	return s.drain().Events()
}

// ObserveDeadLetters books n dead-lettered offers against owner. Dead
// letters never reach the store, so the pipeline-side accounting feeds
// them here out of band; the counts are retained so a lag resync can
// re-book them into the rebuilt tracker.
func (s *Service) ObserveDeadLetters(owner string, n uint64) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.deadByOwner[owner] += n
	s.tracker.ObserveDeadLetters(owner, n)
}
