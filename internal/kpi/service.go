package kpi

import (
	"fmt"
	"sync"

	"repro/internal/market"
	"repro/internal/obs"
)

// ServiceConfig configures a KPI Service.
type ServiceConfig struct {
	// Store is the market store whose event stream the service folds.
	// Required.
	Store *market.Store
	// Config fixes the KPI definitions' parameters; zero fields take the
	// package defaults.
	Config Config
	// Logger receives service lifecycle logs; may be nil.
	Logger *obs.Logger
}

// Service runs the incremental KPI engine against a live market store. It
// attaches with SubscribeReplay, so the tracker bootstraps from the
// store's current contents and then folds every later transition with no
// gap or duplicate in between. Like the scheduler service it owns no
// background goroutine: pending events are drained synchronously at the
// start of every read (Report, GlobalValues, metric scrapes, HTTP
// requests), which keeps the fold work proportional to the traffic that
// happened — an idle drain is a single mutex round-trip. All methods are
// safe for concurrent use.
type Service struct {
	tracker *Tracker
	sub     *market.Subscription

	// drainMu serialises drains so concurrently popped events cannot fold
	// out of per-shard order.
	drainMu sync.Mutex
}

// NewService subscribes to the store and returns a running service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("kpi: nil store")
	}
	tracker, err := NewTracker(cfg.Config)
	if err != nil {
		return nil, err
	}
	s := &Service{tracker: tracker}
	s.sub = cfg.Store.SubscribeReplay()
	cfg.Logger.Info("kpi service attached",
		"resolution", tracker.Resolution(), "bootstrap_events", s.sub.Pending())
	return s, nil
}

// Close detaches the service from the store's event stream.
func (s *Service) Close() { s.sub.Close() }

// drain folds every pending store event into the tracker, serialised so
// two concurrent readers cannot interleave the per-shard event order.
func (s *Service) drain() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	for {
		ev, ok := s.sub.TryNext()
		if !ok {
			return
		}
		s.tracker.Apply(ev)
	}
}

// Report drains pending events and snapshots the full KPI report.
func (s *Service) Report() Report {
	s.drain()
	return s.tracker.Report()
}

// GlobalValues drains pending events and snapshots the global scope only
// — the cheap read behind metric callbacks.
func (s *Service) GlobalValues() Values {
	s.drain()
	return s.tracker.GlobalValues()
}

// ObserveDeadLetters books n dead-lettered offers against owner. Dead
// letters never reach the store, so the pipeline-side accounting feeds
// them here out of band.
func (s *Service) ObserveDeadLetters(owner string, n uint64) {
	s.tracker.ObserveDeadLetters(owner, n)
}
