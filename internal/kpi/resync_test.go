package kpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
)

// genStoreOffer builds a random store-admissible offer: genScriptOffer's
// shape plus lifecycle deadlines far enough out that a clock pinned at
// the script base never expires it mid-script.
func genStoreOffer(rng *rand.Rand, n int) *flexoffer.FlexOffer {
	base := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	f := genScriptOffer(rng, n)
	f.CreationTime = base
	f.AcceptanceTime = base.Add(72 * time.Hour)
	f.AssignmentTime = base.Add(96 * time.Hour)
	// Keep the lifecycle order valid: the start window must not open
	// before the assignment deadline. Preserve the generated window
	// shape, shifted past it.
	window := f.LatestStart.Sub(f.EarliestStart)
	f.EarliestStart = f.AssignmentTime.Add(f.EarliestStart.Sub(base))
	f.LatestStart = f.EarliestStart.Add(window)
	return f
}

// step0 spaces each seed's offer-ID namespace.
func step0(seed int64) int { return int(seed) * 1000 }

// TestServiceResyncEquivalence is the lag-recovery property test: a
// service whose bounded subscription overflows mid-script must, after its
// replay resyncs, report bitwise-identically (reflect.DeepEqual, no
// tolerance) to a fresh never-lagged service attached to the same store —
// including the out-of-band dead-letter counts, which the resync re-books
// into the rebuilt tracker. 6 seeds, random lifecycle scripts, drains
// interleaved at random so lag latches at different script positions.
func TestServiceResyncEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
			store := market.NewShardedStore(4, func() time.Time { return base })

			svc, err := NewService(ServiceConfig{Store: store, EventHighWater: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			dead := make(map[string]uint64)
			var live []string // offered, undecided
			var accepted []string
			byID := make(map[string]*flexoffer.FlexOffer)
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // submit
					f := genStoreOffer(rng, step+int(seed)*1000)
					if err := store.Submit(f); err != nil {
						t.Fatalf("step %d submit: %v", step, err)
					}
					byID[f.ID] = f
					live = append(live, f.ID)
				case op < 7 && len(live) > 0: // accept
					i := rng.Intn(len(live))
					id := live[i]
					if err := store.Accept(id); err != nil {
						t.Fatalf("step %d accept %s: %v", step, id, err)
					}
					live = append(live[:i], live[i+1:]...)
					accepted = append(accepted, id)
				case op < 8 && len(live) > 0: // reject
					i := rng.Intn(len(live))
					if err := store.Reject(live[i]); err != nil {
						t.Fatalf("step %d reject: %v", step, err)
					}
					live = append(live[:i], live[i+1:]...)
				case op < 9 && len(accepted) > 0: // assign
					i := rng.Intn(len(accepted))
					id := accepted[i]
					start, energies := genAssignment(rng, byID[id])
					if _, err := store.Assign(id, start, energies); err != nil {
						t.Fatalf("step %d assign %s: %v", step, id, err)
					}
					accepted = append(accepted[:i], accepted[i+1:]...)
				default: // dead letters, out of band
					owner := scriptOwners[rng.Intn(len(scriptOwners))]
					n := uint64(1 + rng.Intn(3))
					dead[owner] += n
					svc.ObserveDeadLetters(owner, n)
				}
				// Occasional drains so the lag latch fires at varied
				// positions; most steps leave the queue to overflow.
				if rng.Intn(25) == 0 {
					svc.Report()
				}
			}

			// Force one final overflow so the last drain ends exactly on
			// a fresh replay fold: the resynced tracker then folded the
			// same bootstrap sequence a newly attached service sees, and
			// the comparison below can demand bitwise equality (identical
			// float summation order), not just tolerance.
			for i := 0; i < 10; i++ {
				f := genStoreOffer(rng, 900000+step0(seed)+i)
				if err := store.Submit(f); err != nil {
					t.Fatalf("tail submit: %v", err)
				}
			}
			got := svc.Report()
			if svc.Resyncs() == 0 {
				t.Fatal("script never overflowed the high-water mark; property untested")
			}

			// The reference: a never-lagged fold — a fresh unbounded
			// service attached now, fed the same dead letters.
			ref, err := NewService(ServiceConfig{Store: store})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			for owner, n := range dead {
				ref.ObserveDeadLetters(owner, n)
			}
			want := ref.Report()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resynced report diverges from never-lagged fold after %d resyncs:\ngot  %+v\nwant %+v",
					svc.Resyncs(), got, want)
			}
		})
	}
}
