package kpi

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the KPI API:
//
//	GET /kpi    full KPI report (?owner= selects one owner,
//	            ?owners=false drops the per-owner breakdown)
//
// Mount it beside the market server; the daemon's observability
// middleware wraps it like every other route.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/kpi", s.handleKPI)
	return mux
}

func (s *Service) handleKPI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		kpiError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	q := r.URL.Query()
	owner, hasOwner := "", false
	if raw := q.Get("owner"); raw != "" {
		owner, hasOwner = raw, true
	}
	withOwners := true
	if raw := q.Get("owners"); raw != "" {
		b, err := strconv.ParseBool(raw)
		if err != nil {
			kpiError(w, http.StatusBadRequest, "owners must be a boolean")
			return
		}
		withOwners = b
	}
	if hasOwner && !withOwners {
		kpiError(w, http.StatusBadRequest, "owner and owners=false are mutually exclusive")
		return
	}

	rep := s.Report()
	if hasOwner {
		vals, ok := rep.Owners[owner]
		if !ok {
			kpiError(w, http.StatusNotFound, "unknown owner "+strconv.Quote(owner))
			return
		}
		rep.Owners = map[string]Values{owner: vals}
	} else if !withOwners {
		rep.Owners = nil
	}
	kpiJSON(w, http.StatusOK, rep)
}

// kpiJSON writes a JSON response.
func kpiJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// kpiError writes the API's JSON error envelope.
func kpiError(w http.ResponseWriter, status int, msg string) {
	kpiJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: msg})
}
