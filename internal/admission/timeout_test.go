package admission

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWithTimeoutAnswers503: a handler that outlives the budget gets cut
// off with 503 + Retry-After + JSON envelope, and its late write is
// discarded rather than corrupting the response.
func TestWithTimeoutAnswers503(t *testing.T) {
	release := make(chan struct{})
	wrote := make(chan error, 1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		_, err := w.Write([]byte("late body"))
		wrote <- err
	})
	h := WithTimeout(slow, 20*time.Millisecond, nil)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/offers", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("timeout response missing Retry-After")
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	if !strings.Contains(rr.Body.String(), "timeout") {
		t.Fatalf("body %q, want timeout envelope", rr.Body.String())
	}

	close(release)
	if err := <-wrote; err != http.ErrHandlerTimeout {
		t.Fatalf("late write error = %v, want ErrHandlerTimeout", err)
	}
	if strings.Contains(rr.Body.String(), "late body") {
		t.Fatal("late handler write leaked into the response")
	}
}

// TestWithTimeoutPropagatesDeadline: the wrapped handler's request context
// carries a deadline, so store operations can observe cancellation.
func TestWithTimeoutPropagatesDeadline(t *testing.T) {
	sawDeadline := make(chan bool, 1)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		sawDeadline <- ok
		w.WriteHeader(http.StatusOK)
	})
	h := WithTimeout(inner, time.Second, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/offers", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("fast request = %d, want 200", rr.Code)
	}
	if !<-sawDeadline {
		t.Fatal("handler context carried no deadline")
	}
}

// TestWithTimeoutExempt: exempt requests bypass the deadline entirely.
func TestWithTimeoutExempt(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("exempt request got a deadline")
		}
		time.Sleep(30 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	h := WithTimeout(inner, 10*time.Millisecond, func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/debug/pprof")
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/profile", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("exempt slow request = %d, want 200", rr.Code)
	}
}

// TestWithTimeoutFastPathUntouched: a handler that finishes in time
// writes its own response through unchanged.
func TestWithTimeoutFastPathUntouched(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("body"))
	})
	h := WithTimeout(inner, time.Second, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/offers", nil))
	if rr.Code != http.StatusCreated || rr.Body.String() != "body" || rr.Header().Get("X-Custom") != "yes" {
		t.Fatalf("fast path altered: %d %q", rr.Code, rr.Body.String())
	}
}

// TestWithTimeoutRepanics: a panicking handler re-panics on the serving
// goroutine, preserving the server's recovery semantics.
func TestWithTimeoutRepanics(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { panic("boom") })
	h := WithTimeout(inner, time.Second, nil)
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("panic did not propagate to the serving goroutine")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/offers", nil))
}

// TestWithTimeoutZeroDisables: a non-positive budget returns next
// unchanged.
func TestWithTimeoutZeroDisables(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	if got := WithTimeout(inner, 0, nil); !isSameHandler(got, inner) {
		t.Fatal("zero budget should return next unchanged")
	}
}

// isSameHandler reports whether two handlers are the identical function
// value (good enough for the pass-through check).
func isSameHandler(a, b http.Handler) bool {
	af, aok := a.(http.HandlerFunc)
	bf, bok := b.(http.HandlerFunc)
	if !aok || !bok {
		return false
	}
	// Compare by behaviour: both must write 200 to a fresh recorder.
	ra, rb := httptest.NewRecorder(), httptest.NewRecorder()
	af.ServeHTTP(ra, httptest.NewRequest("GET", "/", nil))
	bf.ServeHTTP(rb, httptest.NewRequest("GET", "/", nil))
	return ra.Code == rb.Code
}
