package admission

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// blockingHandler parks every request on a gate channel so tests control
// exactly how many requests are in flight.
type blockingHandler struct {
	gate    chan struct{}
	entered atomic.Int64
}

func (h *blockingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.entered.Add(1)
	<-h.gate
	w.WriteHeader(http.StatusOK)
}

// get runs one request through the handler and returns the recorder.
func doReq(h http.Handler, method, path string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(method, path, nil))
	return rr
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		method, path string
		want         Class
	}{
		{"GET", "/healthz", ClassOps},
		{"GET", "/readyz", ClassOps},
		{"GET", "/metrics", ClassOps},
		{"GET", "/debug/pprof/profile", ClassOps},
		{"GET", "/offers", ClassRead},
		{"HEAD", "/stats", ClassRead},
		{"GET", "/kpi", ClassRead},
		{"POST", "/offers", ClassWrite},
		{"POST", "/schedule/run", ClassWrite},
		{"DELETE", "/offers/x", ClassWrite},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(tc.method, tc.path, nil)
		if got := DefaultClassify(r); got != tc.want {
			t.Errorf("DefaultClassify(%s %s) = %v, want %v", tc.method, tc.path, got, tc.want)
		}
	}
}

// TestAdmitUnderLimit: requests under the concurrency limit pass without
// queueing, and releasing a slot readmits.
func TestAdmitUnderLimit(t *testing.T) {
	c := NewController(Config{Writes: Limits{MaxConcurrent: 2, MaxQueue: 0, MaxWait: 10 * time.Millisecond}})
	inner := &blockingHandler{gate: make(chan struct{})}
	h := c.Middleware(inner)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doReq(h, "POST", "/offers")
		}()
	}
	waitFor(t, func() bool { return inner.entered.Load() == 2 })
	if got := c.Stats(ClassWrite).InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third arrival with no queue sheds immediately.
	rr := doReq(h, "POST", "/offers")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit request = %d, want 429", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || !strings.Contains(eb.Error, "queue_full") {
		t.Fatalf("shed body %q not a queue_full envelope (err %v)", rr.Body.String(), err)
	}

	close(inner.gate)
	wg.Wait()
	waitFor(t, func() bool { return c.Stats(ClassWrite).InFlight == 0 })

	rr = doReq(h, "POST", "/offers")
	if rr.Code != http.StatusOK {
		t.Fatalf("post-release request = %d, want 200", rr.Code)
	}
	st := c.Stats(ClassWrite)
	if st.Admitted != 3 || st.Shed[ShedQueueFull] != 1 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 queue_full", st)
	}
}

// TestQueueAdmitsWhenSlotFrees: a queued request gets the slot a finishing
// request releases, and the wait histogram observes it once registered.
func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := NewController(Config{Writes: Limits{MaxConcurrent: 1, MaxQueue: 1, MaxWait: 2 * time.Second}})
	reg := obs.NewRegistry()
	RegisterMetrics(reg, c)
	inner := &blockingHandler{gate: make(chan struct{}, 1)}
	h := c.Middleware(inner)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); doReq(h, "POST", "/offers") }()
	waitFor(t, func() bool { return inner.entered.Load() == 1 })

	codes := make(chan int, 1)
	wg.Add(1)
	go func() { defer wg.Done(); codes <- doReq(h, "POST", "/offers").Code }()
	waitFor(t, func() bool { return c.Stats(ClassWrite).Queued == 1 })

	// Free both the first and (transitively) the queued request.
	inner.gate <- struct{}{}
	inner.gate <- struct{}{}
	wg.Wait()
	if code := <-codes; code != http.StatusOK {
		t.Fatalf("queued request = %d, want 200", code)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `admission_wait_seconds_count{class="write"} 1`) {
		t.Errorf("wait histogram did not observe the queued admit:\n%s", grepLines(sb.String(), "admission_wait_seconds_count"))
	}
}

// TestWaitTimeoutSheds503: a queued request that never gets a slot sheds
// with 503 wait_timeout after MaxWait.
func TestWaitTimeoutSheds503(t *testing.T) {
	c := NewController(Config{Writes: Limits{MaxConcurrent: 1, MaxQueue: 4, MaxWait: 15 * time.Millisecond}})
	inner := &blockingHandler{gate: make(chan struct{})}
	defer close(inner.gate)
	h := c.Middleware(inner)

	go doReq(h, "POST", "/offers")
	waitFor(t, func() bool { return inner.entered.Load() == 1 })

	rr := doReq(h, "POST", "/offers")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "wait_timeout") {
		t.Fatalf("body %q, want wait_timeout envelope", rr.Body.String())
	}
	if secs, err := strconv.Atoi(rr.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want >= 1 whole second", rr.Header().Get("Retry-After"))
	}
	if got := c.Stats(ClassWrite).Shed[ShedWaitTimeout]; got != 1 {
		t.Fatalf("wait_timeout sheds = %d, want 1", got)
	}
}

// TestDrainShedsNonOps: after BeginDrain, reads and writes shed with 503
// draining while ops requests still pass.
func TestDrainShedsNonOps(t *testing.T) {
	c := NewController(Config{
		Reads:  Limits{MaxConcurrent: 8, MaxQueue: 8},
		Writes: Limits{MaxConcurrent: 8, MaxQueue: 8},
	})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := c.Middleware(ok)

	c.BeginDrain()
	for _, req := range []struct{ method, path string }{{"POST", "/offers"}, {"GET", "/offers"}} {
		rr := doReq(h, req.method, req.path)
		if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
			t.Fatalf("%s %s during drain = %d %q, want 503 draining", req.method, req.path, rr.Code, rr.Body.String())
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Fatal("drain shed missing Retry-After")
		}
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rr := doReq(h, "GET", path); rr.Code != http.StatusOK {
			t.Fatalf("GET %s during drain = %d, want 200 (ops bypass)", path, rr.Code)
		}
	}
	if got := c.Stats(ClassWrite).Shed[ShedDraining]; got != 1 {
		t.Fatalf("draining sheds (write) = %d, want 1", got)
	}
}

// TestOpsNeverQueued: with every write slot taken, ops probes still
// answer immediately.
func TestOpsNeverQueued(t *testing.T) {
	c := NewController(Config{Writes: Limits{MaxConcurrent: 1, MaxQueue: 0, MaxWait: 50 * time.Millisecond}})
	inner := &blockingHandler{gate: make(chan struct{})}
	defer close(inner.gate)
	mux := http.NewServeMux()
	mux.Handle("/offers", inner)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := c.Middleware(mux)

	go doReq(h, "POST", "/offers")
	waitFor(t, func() bool { return inner.entered.Load() == 1 })

	done := make(chan int, 1)
	go func() { done <- doReq(h, "GET", "/healthz").Code }()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("/healthz under write saturation = %d, want 200", code)
		}
	case <-time.After(time.Second):
		t.Fatal("/healthz blocked behind saturated write class")
	}
	if got := c.Stats(ClassOps).Admitted; got != 1 {
		t.Fatalf("ops admitted = %d, want 1", got)
	}
}

// TestConcurrencyCapHolds is the stress case: many concurrent requests
// against a small limit; the handler-observed concurrency never exceeds
// MaxConcurrent and every request either succeeds or sheds explicitly.
func TestConcurrencyCapHolds(t *testing.T) {
	const limit = 4
	c := NewController(Config{Writes: Limits{MaxConcurrent: limit, MaxQueue: 8, MaxWait: 200 * time.Millisecond}})
	var inFlight, peak atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		w.WriteHeader(http.StatusOK)
	})
	h := c.Middleware(inner)

	const n = 64
	var wg sync.WaitGroup
	var ok200, shed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch code := doReq(h, "POST", "/offers").Code; code {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d", code)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > limit {
		t.Fatalf("observed concurrency %d exceeds limit %d", got, limit)
	}
	if ok200.Load()+shed.Load() != n {
		t.Fatalf("accounting leak: %d ok + %d shed != %d", ok200.Load(), shed.Load(), n)
	}
	st := c.Stats(ClassWrite)
	if st.Admitted != uint64(ok200.Load()) || st.ShedTotal() != uint64(shed.Load()) {
		t.Fatalf("controller stats %+v disagree with client view (%d ok, %d shed)", st, ok200.Load(), shed.Load())
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("occupancy not drained: %+v", st)
	}
}

// TestMetricsFamilies: the admission_* families render with the expected
// bounded label sets.
func TestMetricsFamilies(t *testing.T) {
	c := NewController(Config{Writes: Limits{MaxConcurrent: 1, MaxQueue: 0, MaxWait: 10 * time.Millisecond}})
	reg := obs.NewRegistry()
	RegisterMetrics(reg, c)
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }))
	doReq(h, "POST", "/offers")
	doReq(h, "GET", "/healthz")
	c.BeginDrain()
	doReq(h, "POST", "/offers")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`admission_admitted_total{class="write"} 1`,
		`admission_admitted_total{class="ops"} 1`,
		`admission_shed_total{class="write",reason="draining"} 1`,
		`admission_queue_depth{class="write"} 0`,
		`admission_in_flight{class="read"} 0`,
		`admission_draining 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// grepLines filters text to lines containing needle, for focused failure
// output.
func grepLines(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
