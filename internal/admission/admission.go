// Package admission implements overload protection for the daemon's HTTP
// surface: per-route-class concurrency limits with a bounded wait queue,
// explicit load shedding (429/503 + Retry-After) when the queue overflows
// or a queued request waits too long, and a drain mode for graceful
// shutdown. Operational probes (/healthz, /readyz, /metrics, pprof) are
// classified out of the limited classes entirely, so a daemon drowning in
// submits still answers its health checks — degradation stays observable.
//
// The middleware shape matches market.WithMiddleware, but mirabeld mounts
// it around the whole daemon handler so the scheduling and KPI routes are
// protected too.
package admission

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Class is a request's admission priority class. Each class has its own
// concurrency limit and wait queue, so cheap reads are never stuck behind
// a burst of submits and operational probes are never queued at all.
type Class int

const (
	// ClassOps: operational probes and telemetry (/healthz, /readyz,
	// /metrics, /debug/pprof). Never limited, queued or shed — an
	// overloaded daemon must stay observable.
	ClassOps Class = iota
	// ClassRead: read-only requests (GET/HEAD outside the ops set).
	ClassRead
	// ClassWrite: state-changing requests (submits, accepts, assigns).
	ClassWrite
	numClasses
)

// String renders the class as a bounded metric label value.
func (c Class) String() string {
	switch c {
	case ClassOps:
		return "ops"
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	default:
		return "other"
	}
}

// ShedReason names why a request was refused admission.
type ShedReason int

const (
	// ShedQueueFull: the class's wait queue was already at capacity; the
	// client should back off for roughly the Retry-After hint (429).
	ShedQueueFull ShedReason = iota
	// ShedWaitTimeout: the request was queued but no slot freed within
	// the class's wait budget (503).
	ShedWaitTimeout
	// ShedDraining: the controller is draining for shutdown and admits
	// nothing new (503).
	ShedDraining
	// ShedCancelled: the client gave up (context cancelled) while queued.
	ShedCancelled
	numReasons
)

// String renders the reason as a bounded metric label value.
func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue_full"
	case ShedWaitTimeout:
		return "wait_timeout"
	case ShedDraining:
		return "draining"
	case ShedCancelled:
		return "cancelled"
	default:
		return "other"
	}
}

// Shed describes one refused admission: the HTTP status to answer with,
// the reason, and the Retry-After hint the response carries.
type Shed struct {
	// Status is the response status: 429 for queue overflow (the client
	// is sending faster than its share), 503 for wait timeout and drain
	// (the server is the bottleneck or going away).
	Status int
	// Reason names the shed cause.
	Reason ShedReason
	// RetryAfter is the backoff hint, rendered as whole seconds
	// (rounded up, minimum 1) in the Retry-After response header.
	RetryAfter time.Duration
}

// Limits bounds one admission class.
type Limits struct {
	// MaxConcurrent caps in-flight requests of the class; 0 disables
	// limiting for the class entirely (no queue, nothing shed).
	MaxConcurrent int
	// MaxQueue caps how many requests may wait for a slot beyond the
	// concurrency limit; an arrival past it is shed with 429. 0 means
	// no queue: everything past MaxConcurrent sheds immediately.
	MaxQueue int
	// MaxWait bounds how long a queued request waits for a slot before
	// shedding with 503 (default 1s).
	MaxWait time.Duration
	// RetryAfter overrides the Retry-After hint on shed responses
	// (default: MaxWait).
	RetryAfter time.Duration
}

// withDefaults fills the zero-valued wait budget and retry hint.
func (l Limits) withDefaults() Limits {
	if l.MaxWait <= 0 {
		l.MaxWait = time.Second
	}
	if l.RetryAfter <= 0 {
		l.RetryAfter = l.MaxWait
	}
	return l
}

// Config configures a Controller.
type Config struct {
	// Reads limits ClassRead; the zero value leaves reads unlimited.
	Reads Limits
	// Writes limits ClassWrite; the zero value leaves writes unlimited.
	Writes Limits
	// Classify maps a request onto its class (DefaultClassify when nil).
	Classify func(*http.Request) Class
}

// DefaultClassify is the default request classifier: the operational
// endpoints (/healthz, /readyz, /metrics, /debug/pprof/...) are ClassOps,
// other GET/HEAD requests are ClassRead, and everything else ClassWrite.
func DefaultClassify(r *http.Request) Class {
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		return ClassOps
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof") {
		return ClassOps
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return ClassRead
	}
	return ClassWrite
}

// ClassStats is a point-in-time snapshot of one class's limiter.
type ClassStats struct {
	// Admitted counts requests that got a slot (lifetime).
	Admitted uint64
	// Shed counts refused requests by reason (lifetime).
	Shed [numReasons]uint64
	// InFlight and Queued are the current occupancy and wait-queue depth.
	InFlight int64
	Queued   int64
}

// ShedTotal sums the per-reason shed counters.
func (s ClassStats) ShedTotal() uint64 {
	var n uint64
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// limiter is one class's concurrency gate: a channel semaphore for slots
// plus atomic occupancy counters. A nil limiter means the class is
// unlimited.
type limiter struct {
	limits Limits
	slots  chan struct{}

	inFlight atomic.Int64
	queued   atomic.Int64
	admitted atomic.Uint64
	shed     [numReasons]atomic.Uint64
}

func newLimiter(l Limits) *limiter {
	l = l.withDefaults()
	if l.MaxConcurrent <= 0 {
		return nil
	}
	return &limiter{limits: l, slots: make(chan struct{}, l.MaxConcurrent)}
}

// admit tries to take a slot, waiting in the bounded queue when the class
// is saturated. It returns a release function on success, or the Shed
// describing the refusal. waitObserve, when non-nil, receives the queue
// wait in seconds for admitted-after-waiting requests.
func (l *limiter) admit(ctx context.Context, waitObserve func(float64)) (release func(), shed *Shed) {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		l.inFlight.Add(1)
		return l.release, nil
	default:
	}
	if l.queued.Add(1) > int64(l.limits.MaxQueue) {
		l.queued.Add(-1)
		l.shed[ShedQueueFull].Add(1)
		return nil, &Shed{Status: http.StatusTooManyRequests, Reason: ShedQueueFull, RetryAfter: l.limits.RetryAfter}
	}
	start := time.Now()
	timer := time.NewTimer(l.limits.MaxWait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		l.queued.Add(-1)
		l.admitted.Add(1)
		l.inFlight.Add(1)
		if waitObserve != nil {
			waitObserve(time.Since(start).Seconds())
		}
		return l.release, nil
	case <-timer.C:
		l.queued.Add(-1)
		l.shed[ShedWaitTimeout].Add(1)
		return nil, &Shed{Status: http.StatusServiceUnavailable, Reason: ShedWaitTimeout, RetryAfter: l.limits.RetryAfter}
	case <-ctx.Done():
		l.queued.Add(-1)
		l.shed[ShedCancelled].Add(1)
		return nil, &Shed{Status: http.StatusServiceUnavailable, Reason: ShedCancelled, RetryAfter: l.limits.RetryAfter}
	}
}

// release frees the slot taken by a successful admit.
func (l *limiter) release() {
	l.inFlight.Add(-1)
	<-l.slots
}

// stats snapshots the limiter's counters.
func (l *limiter) stats() ClassStats {
	s := ClassStats{
		Admitted: l.admitted.Load(),
		InFlight: l.inFlight.Load(),
		Queued:   l.queued.Load(),
	}
	for i := range l.shed {
		s.Shed[i] = l.shed[i].Load()
	}
	return s
}

// Controller is the admission gate: it classifies requests, enforces each
// class's limits, and — once BeginDrain is called — sheds every non-ops
// request so a shutting-down daemon stops accepting new work while its
// in-flight requests finish.
type Controller struct {
	classify func(*http.Request) Class
	limiters [numClasses]*limiter
	draining atomic.Bool
	drainRA  time.Duration

	// opsAdmitted counts ops-class requests, which bypass limiting but
	// still show up in the admitted metric so traffic mix is visible.
	opsAdmitted atomic.Uint64

	// waitSeconds observes queue waits per class; nil until
	// RegisterMetrics installs the histogram vec.
	waitSeconds atomic.Pointer[obs.HistogramVec]
}

// NewController builds a Controller from cfg. Classes whose Limits have
// MaxConcurrent <= 0 are unlimited.
func NewController(cfg Config) *Controller {
	c := &Controller{classify: cfg.Classify}
	if c.classify == nil {
		c.classify = DefaultClassify
	}
	c.limiters[ClassRead] = newLimiter(cfg.Reads)
	c.limiters[ClassWrite] = newLimiter(cfg.Writes)
	c.drainRA = time.Second
	return c
}

// ClassOf reports the class the controller's classifier assigns to r.
func (c *Controller) ClassOf(r *http.Request) Class { return c.classify(r) }

// BeginDrain flips the controller into drain mode: every subsequent
// non-ops request is shed with 503 + Retry-After, while requests already
// admitted keep their slots until they finish. Safe to call repeatedly.
func (c *Controller) BeginDrain() { c.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (c *Controller) Draining() bool { return c.draining.Load() }

// InFlight reports the total currently admitted requests across the
// limited classes.
func (c *Controller) InFlight() int64 {
	var n int64
	for _, l := range c.limiters {
		if l != nil {
			n += l.inFlight.Load()
		}
	}
	return n
}

// Stats snapshots one class's limiter counters (zero for unlimited
// classes, which never count or shed).
func (c *Controller) Stats(class Class) ClassStats {
	if class < 0 || class >= numClasses || c.limiters[class] == nil {
		if class == ClassOps {
			return ClassStats{Admitted: c.opsAdmitted.Load()}
		}
		return ClassStats{}
	}
	return c.limiters[class].stats()
}

// retryAfterSeconds renders d as the Retry-After header value: whole
// seconds, rounded up, minimum 1 (a zero hint would mean "retry now").
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// writeShed answers a refused request with the shed's status, a JSON
// error envelope matching the market API's, and the Retry-After hint.
func writeShed(w http.ResponseWriter, shed *Shed) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
	w.WriteHeader(shed.Status)
	fmt.Fprintf(w, "{\"error\":%q}\n", "admission: "+shed.Reason.String())
}

// Middleware wraps next with the admission gate. Its signature matches
// market.WithMiddleware, so it can sit on the market server directly; the
// daemon mounts it around the full handler instead so every non-ops route
// is protected.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := c.classify(r)
		if class == ClassOps {
			c.opsAdmitted.Add(1)
			next.ServeHTTP(w, r)
			return
		}
		if c.draining.Load() {
			l := c.limiters[class]
			if l != nil {
				l.shed[ShedDraining].Add(1)
			}
			writeShed(w, &Shed{Status: http.StatusServiceUnavailable, Reason: ShedDraining, RetryAfter: c.drainRA})
			return
		}
		l := c.limiters[class]
		if l == nil {
			next.ServeHTTP(w, r)
			return
		}
		release, shed := l.admit(r.Context(), c.waitObserver(class))
		if shed != nil {
			writeShed(w, shed)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// waitObserver returns the queue-wait callback for class, or nil before
// metrics registration.
func (c *Controller) waitObserver(class Class) func(float64) {
	vec := c.waitSeconds.Load()
	if vec == nil {
		return nil
	}
	return vec.With(class.String()).Observe
}
