package admission

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// WithTimeout wraps next so every non-exempt request runs under a
// deadline: the request context expires after d (store operations and
// downstream handlers observe the cancellation), and if the handler has
// not produced a response by then the client gets 503 with the market
// API's JSON error envelope and a Retry-After hint — instead of holding a
// connection open behind a stuck shard forever.
//
// It differs from http.TimeoutHandler in exactly the ways the overload
// contract needs: the timeout response carries Retry-After and the JSON
// envelope, and exempt (e.g. pprof, which streams for longer than any
// request budget) bypasses the deadline entirely. Like TimeoutHandler it
// buffers nothing: the handler writes straight through until the deadline
// fires, after which its writes are discarded — so the guarantee is
// "headers not yet sent become a 503", not response atomicity.
//
// Mounted outside the admission gate, so time spent waiting in the
// admission queue counts against the same budget.
func WithTimeout(next http.Handler, d time.Duration, exempt func(*http.Request) bool) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt != nil && exempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		tw := &timeoutWriter{w: w}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
				close(done)
			}()
			next.ServeHTTP(tw, r.WithContext(ctx))
		}()
		select {
		case <-done:
			select {
			case p := <-panicked:
				// Re-panic on the serving goroutine so the server's
				// (or the obs middleware's) recovery semantics apply
				// unchanged.
				panic(p)
			default:
			}
		case <-ctx.Done():
			tw.timeout(d)
			// The handler goroutine keeps running against the cancelled
			// context; its late writes are discarded by tw.
		}
	})
}

// timeoutWriter guards the underlying ResponseWriter: once the deadline
// fired, the handler's late writes are discarded instead of corrupting
// the 503 the client already received.
type timeoutWriter struct {
	mu          sync.Mutex
	w           http.ResponseWriter
	wroteHeader bool // guarded by mu
	timedOut    bool // guarded by mu
}

// Header implements http.ResponseWriter.
func (tw *timeoutWriter) Header() http.Header {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		// Detached copy: late mutations must not touch the real response.
		return make(http.Header)
	}
	return tw.w.Header()
}

// WriteHeader implements http.ResponseWriter.
func (tw *timeoutWriter) WriteHeader(status int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut || tw.wroteHeader {
		return
	}
	tw.wroteHeader = true
	tw.w.WriteHeader(status)
}

// Write implements http.ResponseWriter.
func (tw *timeoutWriter) Write(b []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	tw.wroteHeader = true
	return tw.w.Write(b)
}

// timeout answers 503 if the handler had not started a response, and in
// any case detaches the handler from the connection.
func (tw *timeoutWriter) timeout(budget time.Duration) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if !tw.wroteHeader {
		tw.w.Header().Set("Content-Type", "application/json")
		tw.w.Header().Set("Retry-After", retryAfterSeconds(budget))
		tw.w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(tw.w, "{\"error\":%q}\n", "admission: request timeout exceeded")
	}
	tw.timedOut = true
}
