package admission

import (
	"repro/internal/obs"
)

// classes lists the limited-or-observable classes the metric collectors
// iterate, keeping label values in lockstep with Class.String.
var classes = [...]Class{ClassOps, ClassRead, ClassWrite}

// reasons lists every shed reason for the per-reason counter samples.
var reasons = [...]ShedReason{ShedQueueFull, ShedWaitTimeout, ShedDraining, ShedCancelled}

// RegisterMetrics registers the admission_* metric families on reg,
// sourced from the controller's counters:
//
//	admission_admitted_total{class}      requests that got a slot (ops bypasses count too)
//	admission_shed_total{class,reason}   refused requests by cause
//	admission_in_flight{class}           currently admitted requests
//	admission_queue_depth{class}         requests waiting for a slot
//	admission_wait_seconds{class}        queue wait of admitted-after-waiting requests
//	admission_draining                   1 once BeginDrain was called
//
// Scrapes read atomics only, so /metrics stays cheap under overload — the
// exact regime these families exist to explain.
func RegisterMetrics(reg *obs.Registry, c *Controller) {
	reg.NewSampledGauge("admission_admitted_total", "Requests admitted past the admission gate, by class (lifetime).", func() []obs.Sample {
		samples := make([]obs.Sample, 0, len(classes))
		for _, class := range classes {
			samples = append(samples, obs.Sample{
				Labels: []obs.Label{{Name: "class", Value: class.String()}},
				Value:  float64(c.Stats(class).Admitted),
			})
		}
		return samples
	})
	reg.NewSampledGauge("admission_shed_total", "Requests refused by the admission gate, by class and reason (lifetime).", func() []obs.Sample {
		samples := make([]obs.Sample, 0, 2*len(reasons))
		for _, class := range []Class{ClassRead, ClassWrite} {
			st := c.Stats(class)
			for _, reason := range reasons {
				samples = append(samples, obs.Sample{
					Labels: []obs.Label{{Name: "class", Value: class.String()}, {Name: "reason", Value: reason.String()}},
					Value:  float64(st.Shed[reason]),
				})
			}
		}
		return samples
	})
	reg.NewSampledGauge("admission_in_flight", "Currently admitted in-flight requests, by class.", func() []obs.Sample {
		return occupancy(c, func(s ClassStats) int64 { return s.InFlight })
	})
	reg.NewSampledGauge("admission_queue_depth", "Requests waiting in the bounded admission queue, by class.", func() []obs.Sample {
		return occupancy(c, func(s ClassStats) int64 { return s.Queued })
	})
	reg.NewGaugeFunc("admission_draining", "1 once the controller began draining for shutdown, else 0.", func() float64 {
		if c.Draining() {
			return 1
		}
		return 0
	})
	c.waitSeconds.Store(reg.NewHistogramVec("admission_wait_seconds", "Queue wait of requests admitted after waiting for a slot.", obs.DefBuckets, "class"))
}

// occupancy renders one point-in-time counter for the limited classes.
func occupancy(c *Controller, pick func(ClassStats) int64) []obs.Sample {
	limited := []Class{ClassRead, ClassWrite}
	samples := make([]obs.Sample, 0, len(limited))
	for _, class := range limited {
		samples = append(samples, obs.Sample{
			Labels: []obs.Label{{Name: "class", Value: class.String()}},
			Value:  float64(pick(c.Stats(class))),
		})
	}
	return samples
}
