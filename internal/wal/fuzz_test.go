package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log as a segment file and
// asserts the recovery contract: Open either repairs a torn tail or fails
// with a diagnostic — it never panics — and whatever replays afterwards is
// exactly the valid record prefix of the input, never invented data.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameRecord([]byte("single")))
	two := append(frameRecord([]byte("first")), frameRecord([]byte("second"))...)
	f.Add(two)
	f.Add(two[:len(two)-3])                           // torn tail
	f.Add(append([]byte{0xff, 0xff}, two...))         // garbage prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // implausible length
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), data, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		l, info, err := Open(Options{Dir: dir})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed with a non-corruption error: %v", err)
			}
			return
		}
		defer l.Close()
		// Independently compute the valid prefix; replay must match it
		// byte for byte and record for record.
		var want [][]byte
		wantCount, _, _ := scanRecords(data, func(p []byte) error {
			want = append(want, append([]byte(nil), p...))
			return nil
		})
		if info.Records != wantCount {
			t.Fatalf("recovered %d records, valid prefix has %d", info.Records, wantCount)
		}
		var got [][]byte
		if err := l.ReplayFrom(0, func(_ uint64, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("replay after successful Open: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d: replayed %x, want %x", i, got[i], want[i])
			}
		}
		// The repaired log must keep working: the next append lands at
		// the recovered LSN and survives a reopen.
		if lsn, err := l.Append([]byte("appended-after-fuzz")); err != nil || lsn != wantCount {
			t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		l2, info2, err := Open(Options{Dir: dir})
		if err != nil || info2.Records != wantCount+1 {
			t.Fatalf("reopen after recovery: info=%+v err=%v", info2, err)
		}
		l2.Close()
	})
}
