package wal

import (
	"errors"
	iofs "io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// scriptFS wraps another FS and lets a test inject one-shot write or sync
// faults into every file opened through it — the minimal disk-fault stub
// for white-box tests (the seeded production injector lives in
// internal/faultinject and is exercised there and in internal/market).
type scriptFS struct {
	FS
	// writeFault, when set, intercepts the next segment write: it returns
	// the byte count to actually persist and the error to report, then
	// clears itself.
	writeFault func(p []byte) (int, error)
	// syncFault, when set, fails the next Sync with this error, then
	// clears itself.
	syncFault error
}

func (s *scriptFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := s.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &scriptFile{File: f, fs: s}, nil
}

type scriptFile struct {
	File
	fs *scriptFS
}

func (f *scriptFile) Write(p []byte) (int, error) {
	if fault := f.fs.writeFault; fault != nil {
		f.fs.writeFault = nil
		n, err := fault(p)
		if n > 0 {
			f.File.Write(p[:n])
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *scriptFile) Sync() error {
	if err := f.fs.syncFault; err != nil {
		f.fs.syncFault = nil
		return err
	}
	return f.File.Sync()
}

func openTestLog(t *testing.T, opts Options) (*Log, RecoveryInfo) {
	t.Helper()
	l, info, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, info
}

func replayAll(t *testing.T, l *Log) (lsns []uint64, payloads []string) {
	t.Helper()
	err := l.ReplayFrom(0, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFrom: %v", err)
	}
	return lsns, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info := openTestLog(t, Options{Dir: dir})
	if info.Records != 0 || info.NextLSN != 0 {
		t.Fatalf("fresh log recovery info = %+v", info)
	}
	want := []string{"alpha", "", "gamma", "delta"}
	for i, p := range want {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append %d: lsn = %d", i, lsn)
		}
	}
	lsns, got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] || lsns[i] != uint64(i) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, lsns[i], got[i], i, want[i])
		}
	}
	st := l.Stats()
	if st.Appends != 4 || st.NextLSN != 4 || st.Segments != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fsyncs == 0 {
		t.Fatalf("SyncAlways log reports zero fsyncs: %+v", st)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	for _, p := range []string{"one", "two"} {
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, info := openTestLog(t, Options{Dir: dir})
	if info.Records != 2 || info.NextLSN != 2 || info.TornTail {
		t.Fatalf("recovery info = %+v", info)
	}
	lsn, err := l2.Append([]byte("three"))
	if err != nil || lsn != 2 {
		t.Fatalf("Append after reopen: lsn=%d err=%v", lsn, err)
	}
	_, got := replayAll(t, l2)
	if len(got) != 3 || got[2] != "three" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every record.
	l, _ := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte("payload-payload-payload")); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	lsns, _ := replayAll(t, l)
	if len(lsns) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(lsns), n)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, info := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
	if info.Records != n || info.NextLSN != n {
		t.Fatalf("multi-segment recovery info = %+v", info)
	}
	if _, got := replayAll(t, l2); len(got) != n {
		t.Fatalf("replay after multi-segment reopen: %d records", len(got))
	}
}

// lastSegmentPath finds the newest segment file in dir.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(DiskFS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d found)", err, len(segs))
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func TestTornTailIsTruncated(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"partial header":  func(b []byte) []byte { return append(b, 0x17, 0x00) },
		"header no body":  func(b []byte) []byte { return append(b, frameRecord([]byte("lost"))[:headerSize]...) },
		"half record":     func(b []byte) []byte { f := frameRecord([]byte("lost-payload")); return append(b, f[:len(f)-4]...) },
		"bad crc tail":    func(b []byte) []byte { f := frameRecord([]byte("lost")); f[4] ^= 0xff; return append(b, f...) },
		"truncated close": func(b []byte) []byte { return b[:len(b)-3] },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openTestLog(t, Options{Dir: dir})
			for _, p := range []string{"kept-a", "kept-b", "kept-c"} {
				if _, err := l.Append([]byte(p)); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			path := lastSegmentPath(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read segment: %v", err)
			}
			if err := os.WriteFile(path, tear(data), 0o644); err != nil {
				t.Fatalf("tear segment: %v", err)
			}
			l2, info := openTestLog(t, Options{Dir: dir})
			if !info.TornTail || info.TornBytes == 0 {
				t.Fatalf("recovery info = %+v, want torn tail", info)
			}
			wantKept := uint64(3)
			if name == "truncated close" {
				wantKept = 2 // the tear cut into record c itself
			}
			if info.Records != wantKept || info.NextLSN != wantKept {
				t.Fatalf("recovery info = %+v, want %d records", info, wantKept)
			}
			// The log must accept appends cleanly after the repair.
			if lsn, err := l2.Append([]byte("after")); err != nil || lsn != wantKept {
				t.Fatalf("Append after repair: lsn=%d err=%v", lsn, err)
			}
			if _, got := replayAll(t, l2); got[len(got)-1] != "after" {
				t.Fatalf("replay after repair = %q", got)
			}
		})
	}
}

func TestInteriorCorruptionIsRefused(t *testing.T) {
	t.Run("within final segment", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := openTestLog(t, Options{Dir: dir})
		for _, p := range []string{"record-one", "record-two", "record-three"} {
			if _, err := l.Append([]byte(p)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		path := lastSegmentPath(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		data[headerSize+2] ^= 0xff // flip a byte inside the first payload
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("corrupt segment: %v", err)
		}
		if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open on interior corruption = %v, want ErrCorrupt", err)
		}
	})
	t.Run("in non-final segment", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
		for i := 0; i < 10; i++ {
			if _, err := l.Append([]byte("spread-across-segments")); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		segs, err := listSegments(DiskFS, dir)
		if err != nil || len(segs) < 2 {
			t.Fatalf("want >=2 segments, got %d (%v)", len(segs), err)
		}
		first := filepath.Join(dir, segs[0].name)
		data, err := os.ReadFile(first)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(first, data, 0o644); err != nil {
			t.Fatalf("corrupt segment: %v", err)
		}
		if _, _, err := Open(Options{Dir: dir, SegmentBytes: 32}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open on corrupt early segment = %v, want ErrCorrupt", err)
		}
	})
}

func TestShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := &scriptFS{FS: DiskFS}
	l, _ := openTestLog(t, Options{Dir: dir, FS: fs})
	if _, err := l.Append([]byte("good-one")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fs.writeFault = func(p []byte) (int, error) { return len(p) / 2, errors.New("disk full") }
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("Append with short write succeeded")
	}
	// The rollback must leave the log usable and the sequence gapless.
	lsn, err := l.Append([]byte("good-two"))
	if err != nil || lsn != 1 {
		t.Fatalf("Append after rollback: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, info := openTestLog(t, Options{Dir: dir})
	if info.TornTail || info.Records != 2 {
		t.Fatalf("recovery info after rollback = %+v", info)
	}
	if _, got := replayAll(t, l2); got[0] != "good-one" || got[1] != "good-two" {
		t.Fatalf("replay after rollback = %q", got)
	}
}

func TestFsyncFailureBreaksLog(t *testing.T) {
	dir := t.TempDir()
	fs := &scriptFS{FS: DiskFS}
	l, _ := openTestLog(t, Options{Dir: dir, FS: fs})
	if _, err := l.Append([]byte("acked")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fs.syncFault = errors.New("fsync: input/output error")
	if _, err := l.Append([]byte("unacked")); err == nil {
		t.Fatal("Append with failing fsync succeeded")
	}
	if _, err := l.Append([]byte("refused")); !errors.Is(err, ErrBroken) {
		t.Fatalf("Append on broken log = %v, want ErrBroken", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("Sync on broken log = %v, want ErrBroken", err)
	}
}

func TestSyncEveryFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir, Policy: SyncEvery, Interval: time.Millisecond})
	if _, err := l.Append([]byte("buffered")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendLimitsAndClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v, want ErrTooLarge", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log = %v, want ErrClosed", err)
	}
	if err := l.ReplayFrom(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay on closed log = %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{
		{"always", SyncAlways},
		{"interval", SyncEvery},
		{"never", SyncNever},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("SyncPolicy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
	if got := SyncPolicy(42).String(); got != "unknown" {
		t.Fatalf("out-of-range policy String() = %q", got)
	}
}

func TestReplayFromSkipsEarlierRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte{byte('a' + i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	var lsns []uint64
	if err := l.ReplayFrom(7, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		if want := byte('a' + lsn); payload[0] != want {
			t.Fatalf("lsn %d payload = %q, want %q", lsn, payload, []byte{want})
		}
		return nil
	}); err != nil {
		t.Fatalf("ReplayFrom(7): %v", err)
	}
	if len(lsns) != n-7 || lsns[0] != 7 {
		t.Fatalf("ReplayFrom(7) visited %v", lsns)
	}
}
