// Package wal implements a durable, segmented write-ahead log with
// periodic snapshots — the persistence layer under the market store's
// flex-offer lifecycle (internal/market) and under the scheduler's
// decision ledger (internal/sched), kept free of any dependency beyond
// the standard library so it can be reasoned about (and fuzzed) in
// isolation. Payloads are opaque bytes: each consumer brings its own
// record encoding and replays with its own fold.
//
// # On-disk format
//
// A log directory holds segment files and snapshot files:
//
//	wal-<firstLSN:016x>.log    append-only record segments
//	snap-<lsn:016x>.snap       one framed snapshot payload each
//
// Every record — in segments and snapshots alike — is length-prefixed and
// checksummed:
//
//	+----------------+----------------+=================+
//	| length  uint32 | CRC32C  uint32 | payload (length)|
//	| little-endian  | of the payload | opaque bytes    |
//	+----------------+----------------+=================+
//
// Records are numbered by a monotonically increasing log sequence number
// (LSN); a segment is named after the LSN of its first record, so the
// record at any LSN can be located without an index. A snapshot named
// snap-<lsn> captures all state produced by records with LSN < lsn;
// recovery loads the newest valid snapshot and replays only the tail.
//
// # Failure model
//
// Open tolerates exactly the damage a crash can cause — a torn or
// truncated record at the very end of the newest segment, which is cut
// off — and refuses everything else: a corrupt record that is followed by
// a valid one cannot be the product of a torn tail-append, so recovery
// stops with ErrCorrupt rather than silently dropping acknowledged
// records. Failed appends are rolled back in place (the partial bytes are
// truncated away) so one disk hiccup does not poison the log; when even
// the rollback fails, the log marks itself broken and refuses further
// appends instead of writing after garbage.
//
// # Durability policy
//
// The fsync policy is configurable: SyncAlways fsyncs every append before
// acknowledging it (crash loses nothing acknowledged), SyncEvery fsyncs on
// a background interval (bounded loss window, much higher throughput), and
// SyncNever leaves flushing to the operating system. Closing the log
// always flushes. docs/ARCHITECTURE.md discusses the trade-offs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Framing and sizing constants of the on-disk format.
const (
	// headerSize is the per-record frame overhead: length + CRC32C.
	headerSize = 8
	// MaxRecordBytes bounds one record's payload; larger appends are
	// refused and larger on-disk length fields are treated as corruption.
	MaxRecordBytes = 16 << 20
	// DefaultSegmentBytes is the segment-rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncInterval is the background fsync cadence for SyncEvery
	// when Options.Interval is zero.
	DefaultSyncInterval = 100 * time.Millisecond
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum every record carries.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors.
var (
	// ErrCorrupt reports a record that fails its checksum or framing in a
	// position a torn tail-append cannot explain.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBroken reports a log that refused further appends after an
	// unrecoverable write failure.
	ErrBroken = errors.New("wal: log broken by earlier write failure")
	// ErrTooLarge reports an append exceeding MaxRecordBytes.
	ErrTooLarge = errors.New("wal: record too large")
	// ErrNoSnapshot reports that a directory holds no valid snapshot.
	ErrNoSnapshot = errors.New("wal: no snapshot")
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before it returns: nothing
	// acknowledged is ever lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs on a background interval: a crash loses at most
	// the appends of the last interval.
	SyncEvery
	// SyncNever leaves flushing to the operating system's page cache.
	SyncNever
)

// ParseSyncPolicy parses the -fsync flag values: "always", "interval",
// "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncEvery, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// String implements fmt.Stringer with the ParseSyncPolicy spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "unknown"
	}
}

// Options configures Open.
type Options struct {
	// Dir is the log directory, created when missing.
	Dir string
	// SegmentBytes is the rotation threshold; DefaultSegmentBytes when
	// zero or negative.
	SegmentBytes int64
	// Policy selects the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync cadence for SyncEvery;
	// DefaultSyncInterval when zero or negative.
	Interval time.Duration
	// FS is the filesystem the log lives on; DiskFS when nil.
	FS FS
}

// normalized fills the option defaults.
func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	if o.FS == nil {
		o.FS = DiskFS
	}
	return o
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// Segments is the number of segment files on disk.
	Segments int
	// Records is the number of valid records across all segments.
	Records uint64
	// TornTail reports whether a torn or truncated final record was cut
	// off the newest segment.
	TornTail bool
	// TornBytes is the number of trailing bytes discarded with it.
	TornBytes int64
	// NextLSN is the sequence number the next append will receive.
	NextLSN uint64
}

// Stats is a point-in-time snapshot of the log's counters, the source of
// the wal_* metric families.
type Stats struct {
	// Appends is the number of records appended since Open.
	Appends uint64
	// Fsyncs is the number of fsync calls issued since Open.
	Fsyncs uint64
	// Bytes is the number of record bytes (frames included) written
	// since Open.
	Bytes uint64
	// Segments is the current number of segment files.
	Segments int
	// NextLSN is the sequence number the next append will receive.
	NextLSN uint64
	// Snapshots is the number of snapshots written since Open.
	Snapshots uint64
	// SnapshotLSN is the LSN of the newest snapshot seen or written.
	SnapshotLSN uint64
}

// segment locates one on-disk segment file.
type segment struct {
	base uint64 // LSN of the segment's first record
	name string // file name within the directory
}

// Log is an append-only record log. All methods are safe for concurrent
// use; appends are serialised and numbered by LSN.
type Log struct {
	opts Options

	// mu protects every mutable field below.
	mu       sync.Mutex
	segments []segment
	cur      File  // newest segment, open in append mode
	curSize  int64 // bytes in cur
	nextLSN  uint64
	dirty    bool  // appended since the last fsync
	broken   error // non-nil once the log refuses appends
	closed   bool
	appends  uint64
	fsyncs   uint64
	bytes    uint64
	snaps    uint64
	snapLSN  uint64

	stopOnce sync.Once
	stopc    chan struct{} // closes to stop the SyncEvery flusher
	donec    chan struct{} // closed when the flusher exits
}

// Open scans (and, for a torn tail, repairs) the log directory, then
// opens the newest segment for appending. The returned RecoveryInfo
// describes what was found. Any corruption a torn tail-append cannot
// explain fails Open with ErrCorrupt.
func Open(opts Options) (*Log, RecoveryInfo, error) {
	opts = opts.normalized()
	if opts.Dir == "" {
		return nil, RecoveryInfo{}, errors.New("wal: empty directory")
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := listSegments(opts.FS, opts.Dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}

	var info RecoveryInfo
	l := &Log{opts: opts}
	if len(segs) == 0 {
		l.nextLSN = 0
	} else {
		l.nextLSN = segs[0].base
		for i, seg := range segs {
			path := filepath.Join(opts.Dir, seg.name)
			if seg.base != l.nextLSN {
				return nil, info, fmt.Errorf("%w: segment %s starts at lsn %d, want %d",
					ErrCorrupt, seg.name, seg.base, l.nextLSN)
			}
			data, err := readFile(opts.FS, path)
			if err != nil {
				return nil, info, fmt.Errorf("wal: read %s: %w", seg.name, err)
			}
			n, valid, scanErr := scanRecords(data, nil)
			l.nextLSN += n
			info.Records += n
			if scanErr == nil {
				continue
			}
			if i != len(segs)-1 {
				return nil, info, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, seg.name, scanErr)
			}
			// Damage in the newest segment: a torn tail-append explains a
			// bad final record, but never a bad record with a valid one
			// after it.
			if recordAfter(data[valid:]) {
				return nil, info, fmt.Errorf("%w: segment %s: %v is followed by a valid record; refusing to drop interior data",
					ErrCorrupt, seg.name, scanErr)
			}
			if err := truncateFile(opts.FS, path, int64(valid)); err != nil {
				return nil, info, fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, err)
			}
			info.TornTail = true
			info.TornBytes = int64(len(data) - valid)
		}
		l.segments = segs
	}
	if len(l.segments) == 0 {
		if err := l.rotateLocked(); err != nil {
			return nil, info, err
		}
	} else {
		last := l.segments[len(l.segments)-1]
		f, err := opts.FS.OpenFile(filepath.Join(opts.Dir, last.name), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: open %s: %w", last.name, err)
		}
		l.cur = f
		l.curSize, err = segmentSize(opts.FS, filepath.Join(opts.Dir, last.name))
		if err != nil {
			f.Close()
			return nil, info, err
		}
	}
	info.Segments = len(l.segments)
	info.NextLSN = l.nextLSN

	if opts.Policy == SyncEvery {
		l.stopc = make(chan struct{})
		l.donec = make(chan struct{})
		go l.flushLoop()
	}
	return l, info, nil
}

// listSegments collects the directory's segment files sorted by base LSN.
func listSegments(fs FS, dir string) ([]segment, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		base, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		segs = append(segs, segment{base: base, name: name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// segmentName renders the file name of the segment starting at base.
func segmentName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
}

// parseSegmentName extracts the base LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	base, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// segmentSize reads a segment's current size by reading it; FS carries no
// Stat, and segments are bounded by SegmentBytes so a read stays cheap.
func segmentSize(fs FS, path string) (int64, error) {
	data, err := readFile(fs, path)
	if err != nil {
		return 0, fmt.Errorf("wal: size %s: %w", path, err)
	}
	return int64(len(data)), nil
}

// truncateFile cuts a file down to size through fs.
func truncateFile(fs FS, path string, size int64) error {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// frameRecord wraps payload in the on-disk record frame.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// unframeRecord parses data as exactly one framed record and reports
// whether it was intact.
func unframeRecord(data []byte) ([]byte, bool) {
	if len(data) < headerSize {
		return nil, false
	}
	length := binary.LittleEndian.Uint32(data)
	if length > MaxRecordBytes || headerSize+int(length) != len(data) {
		return nil, false
	}
	payload := data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, false
	}
	return payload, true
}

// scanRecords walks data record by record, calling fn (when non-nil) with
// each payload. It returns the number of valid records, the byte offset
// up to which the data parsed cleanly, and the error describing the first
// bad record (nil when the whole buffer parsed).
func scanRecords(data []byte, fn func(payload []byte) error) (n uint64, valid int, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < headerSize {
			return n, off, fmt.Errorf("truncated header at offset %d (%d bytes)", off, rest)
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecordBytes {
			return n, off, fmt.Errorf("implausible record length %d at offset %d", length, off)
		}
		end := off + headerSize + int(length)
		if end > len(data) {
			return n, off, fmt.Errorf("truncated payload at offset %d (want %d bytes, have %d)", off, length, rest-headerSize)
		}
		payload := data[off+headerSize : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			return n, off, fmt.Errorf("checksum mismatch at offset %d", off)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return n, off, err
			}
		}
		n++
		off = end
	}
	return n, off, nil
}

// recordAfter reports whether any byte offset in data starts a valid
// framed record — the discriminator between a torn tail (nothing valid
// follows the damage) and interior corruption (an intact record does).
// The checksum makes accidental matches vanishingly unlikely.
func recordAfter(data []byte) bool {
	for off := 1; off+headerSize <= len(data); off++ {
		length := binary.LittleEndian.Uint32(data[off:])
		if length > MaxRecordBytes {
			continue
		}
		end := off + headerSize + int(length)
		if end > len(data) {
			continue
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if crc32.Checksum(data[off+headerSize:end], castagnoli) == sum {
			return true
		}
	}
	return false
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is fsynced before Append returns. A failed write is rolled back
// so the log stays usable; if the rollback itself fails the log turns
// broken and every later append returns ErrBroken.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(payload), MaxRecordBytes)
	}
	if l.curSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	buf := frameRecord(payload)
	n, err := l.cur.Write(buf)
	if err != nil || n < len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		if n > 0 {
			// Roll the partial record back; the file is in append mode, so
			// after a successful truncate the next write lands cleanly.
			if terr := l.cur.Truncate(l.curSize); terr != nil {
				l.broken = fmt.Errorf("append failed (%v) and rollback failed (%v)", err, terr)
			}
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.curSize += int64(len(buf))
	lsn := l.nextLSN
	l.nextLSN++
	l.appends++
	l.bytes += uint64(len(buf))
	l.dirty = true
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The record is written but not durably; whether it survives a
			// crash is unknown, so the op must not be acknowledged and the
			// log must not accept writes after an unreliable fsync.
			l.broken = err
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked syncs and closes the current segment (when present) and
// starts a new one based at the next LSN. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if l.cur != nil {
		if l.dirty {
			if err := l.syncLocked(); err != nil {
				l.broken = err
				return err
			}
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.cur = nil
	}
	name := segmentName(l.nextLSN)
	f, err := l.opts.FS.OpenFile(filepath.Join(l.opts.Dir, name), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	l.segments = append(l.segments, segment{base: l.nextLSN, name: name})
	l.cur = f
	l.curSize = 0
	return nil
}

// syncLocked fsyncs the current segment. Callers hold l.mu.
func (l *Log) syncLocked() error {
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs++
	l.dirty = false
	return nil
}

// Sync flushes any unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	if !l.dirty {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		l.broken = err
		return err
	}
	return nil
}

// flushLoop is the SyncEvery background flusher.
func (l *Log) flushLoop() {
	defer close(l.donec)
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed && l.broken == nil && l.dirty {
				if err := l.syncLocked(); err != nil {
					l.broken = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// NextLSN reports the sequence number the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:     l.appends,
		Fsyncs:      l.fsyncs,
		Bytes:       l.bytes,
		Segments:    len(l.segments),
		NextLSN:     l.nextLSN,
		Snapshots:   l.snaps,
		SnapshotLSN: l.snapLSN,
	}
}

// ReplayFrom reads every record with LSN >= from, in order, calling fn
// with each. An error from fn aborts the replay and is returned. ReplayFrom
// must not run concurrently with Append (recovery runs before serving).
func (l *Log) ReplayFrom(from uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for i, seg := range l.segments {
		segEnd := l.nextLSN
		if i+1 < len(l.segments) {
			segEnd = l.segments[i+1].base
		}
		if segEnd <= from {
			continue
		}
		data, err := readFile(l.opts.FS, filepath.Join(l.opts.Dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", seg.name, err)
		}
		lsn := seg.base
		_, _, scanErr := scanRecords(data, func(payload []byte) error {
			defer func() { lsn++ }()
			if lsn < from {
				return nil
			}
			return fn(lsn, payload)
		})
		if scanErr != nil {
			return fmt.Errorf("%w: segment %s: %v", ErrCorrupt, seg.name, scanErr)
		}
	}
	return nil
}

// Close stops the background flusher, flushes outstanding appends, and
// closes the current segment. Close is idempotent.
func (l *Log) Close() error {
	l.stopOnce.Do(func() {
		if l.stopc != nil {
			close(l.stopc)
			<-l.donec
		}
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil {
		if l.dirty && l.broken == nil {
			err = l.syncLocked()
		}
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	return err
}
