package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// snapshotsKept is how many snapshot generations WriteSnapshot retains;
// older ones are pruned. Two generations means a crash while writing (or
// immediately after pruning around) the newest snapshot still leaves a
// previous valid one behind.
const snapshotsKept = 2

// WriteSnapshot durably stores one snapshot payload covering every record
// with LSN < lsn. The payload is framed and checksummed like a log record,
// written to a temporary file, fsynced, and renamed into place, so a crash
// mid-write can never produce a valid-looking half snapshot. Older
// snapshot generations beyond snapshotsKept are pruned best-effort.
func (l *Log) WriteSnapshot(lsn uint64, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("%w: snapshot %d bytes (max %d)", ErrTooLarge, len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	fs, dir := l.opts.FS, l.opts.Dir
	name := snapshotName(lsn)
	tmp := name + ".tmp"
	if err := writeSnapshotFile(fs, filepath.Join(dir, tmp), payload); err != nil {
		fs.Remove(filepath.Join(dir, tmp))
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := fs.Rename(filepath.Join(dir, tmp), filepath.Join(dir, name)); err != nil {
		fs.Remove(filepath.Join(dir, tmp))
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	l.snaps++
	if lsn > l.snapLSN {
		l.snapLSN = lsn
	}
	l.pruneSnapshotsLocked()
	return nil
}

// writeSnapshotFile frames payload and writes it to path with an fsync.
func writeSnapshotFile(fs FS, path string, payload []byte) error {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	frame := frameRecord(payload)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pruneSnapshotsLocked removes all but the snapshotsKept newest snapshot
// files. Failures are ignored: stale snapshots waste space but never
// correctness, since recovery always prefers the newest valid one.
func (l *Log) pruneSnapshotsLocked() {
	lsns, err := listSnapshots(l.opts.FS, l.opts.Dir)
	if err != nil || len(lsns) <= snapshotsKept {
		return
	}
	for _, lsn := range lsns[:len(lsns)-snapshotsKept] {
		l.opts.FS.Remove(filepath.Join(l.opts.Dir, snapshotName(lsn)))
	}
}

// LatestSnapshot returns the newest readable snapshot's payload and its
// LSN (replay must resume at that LSN). Unreadable or corrupt snapshot
// files are skipped in favour of older ones; ErrNoSnapshot means none was
// usable.
func (l *Log) LatestSnapshot() (payload []byte, lsn uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, ErrClosed
	}
	return latestSnapshot(l.opts.FS, l.opts.Dir)
}

// latestSnapshot is LatestSnapshot without the log handle — recovery uses
// it before the Log exists as well.
func latestSnapshot(fs FS, dir string) ([]byte, uint64, error) {
	lsns, err := listSnapshots(fs, dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		data, err := readFile(fs, filepath.Join(dir, snapshotName(lsns[i])))
		if err != nil {
			continue
		}
		payload, ok := unframeRecord(data)
		if !ok {
			continue
		}
		return payload, lsns[i], nil
	}
	return nil, 0, ErrNoSnapshot
}

// listSnapshots collects the directory's snapshot LSNs in ascending order.
func listSnapshots(fs FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		lsn, ok := parseSnapshotName(e.Name())
		if !ok {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// snapshotName renders the file name of the snapshot covering LSNs < lsn.
func snapshotName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

// parseSnapshotName extracts the LSN from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// Compact removes segment files made redundant by the snapshot at
// snapLSN: a segment can go once every record in it has LSN < snapLSN
// and a newer segment exists. The newest segment is always kept so the
// LSN sequence stays anchored across restarts.
func (l *Log) Compact(snapLSN uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for len(l.segments) > 1 && l.segments[1].base <= snapLSN {
		seg := l.segments[0]
		if err := l.opts.FS.Remove(filepath.Join(l.opts.Dir, seg.name)); err != nil {
			return removed, fmt.Errorf("wal: compact %s: %w", seg.name, err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	return removed, nil
}
