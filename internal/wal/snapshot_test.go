package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("rec")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, _, err := l.LatestSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("LatestSnapshot on empty dir = %v, want ErrNoSnapshot", err)
	}
	if err := l.WriteSnapshot(5, []byte(`{"state":"five"}`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	payload, lsn, err := l.LatestSnapshot()
	if err != nil || lsn != 5 || string(payload) != `{"state":"five"}` {
		t.Fatalf("LatestSnapshot = (%q, %d, %v)", payload, lsn, err)
	}
	st := l.Stats()
	if st.Snapshots != 1 || st.SnapshotLSN != 5 {
		t.Fatalf("stats after snapshot = %+v", st)
	}
	// A newer snapshot wins; the reopened log sees it too.
	if err := l.WriteSnapshot(7, []byte("newer")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, _ := openTestLog(t, Options{Dir: dir})
	payload, lsn, err = l2.LatestSnapshot()
	if err != nil || lsn != 7 || string(payload) != "newer" {
		t.Fatalf("LatestSnapshot after reopen = (%q, %d, %v)", payload, lsn, err)
	}
}

func TestSnapshotPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	for _, lsn := range []uint64{1, 2, 3, 4} {
		if err := l.WriteSnapshot(lsn, []byte{byte(lsn)}); err != nil {
			t.Fatalf("WriteSnapshot(%d): %v", lsn, err)
		}
	}
	lsns, err := listSnapshots(DiskFS, dir)
	if err != nil {
		t.Fatalf("listSnapshots: %v", err)
	}
	if len(lsns) != snapshotsKept || lsns[0] != 3 || lsns[1] != 4 {
		t.Fatalf("kept snapshots = %v, want [3 4]", lsns)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	if err := l.WriteSnapshot(3, []byte("older-good")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.WriteSnapshot(9, []byte("newer-doomed")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	path := filepath.Join(dir, snapshotName(9))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	payload, lsn, err := l.LatestSnapshot()
	if err != nil || lsn != 3 || string(payload) != "older-good" {
		t.Fatalf("LatestSnapshot with corrupt newest = (%q, %d, %v), want fallback to 3", payload, lsn, err)
	}
}

func TestCompactDropsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
	const n = 15
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte("compactable-payload")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := l.Stats().Segments
	if before < 3 {
		t.Fatalf("want >=3 segments before compaction, got %d", before)
	}
	snapLSN := l.NextLSN()
	if err := l.WriteSnapshot(snapLSN, []byte("full-state")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	removed, err := l.Compact(snapLSN)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats().Segments
	if removed != before-after || after != 1 {
		t.Fatalf("Compact removed %d, segments %d -> %d; want all but the last gone", removed, before, after)
	}
	// The surviving tail still replays, and the LSN sequence stays
	// anchored across a reopen.
	var lsns []uint64
	if err := l.ReplayFrom(snapLSN, func(lsn uint64, _ []byte) error {
		lsns = append(lsns, lsn)
		return nil
	}); err != nil {
		t.Fatalf("ReplayFrom after compact: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, info := openTestLog(t, Options{Dir: dir, SegmentBytes: 32})
	if info.NextLSN != n {
		t.Fatalf("NextLSN after compact+reopen = %d, want %d", info.NextLSN, n)
	}
	if lsn, err := l2.Append([]byte("continues")); err != nil || lsn != n {
		t.Fatalf("Append after compact+reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestSnapshotTooLarge(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, Options{Dir: dir})
	if err := l.WriteSnapshot(1, make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized snapshot = %v, want ErrTooLarge", err)
	}
}
