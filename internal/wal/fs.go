package wal

import (
	"io"
	iofs "io/fs"
	"os"
)

// FS abstracts the handful of filesystem operations the log needs, so
// tests and the fault injector (internal/faultinject) can interpose on the
// write path without touching a real disk differently than production
// does. DiskFS is the os-backed implementation the daemon uses.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm iofs.FileMode) error
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]iofs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
}

// File is the per-file surface the log reads and writes through. Segment
// files are opened in append mode, so a Write always lands at the end of
// the file and a Truncate moves the end back — the pair the log uses to
// roll back torn appends.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate resizes the file; the log uses it to discard the partial
	// bytes of a failed append.
	Truncate(size int64) error
}

// DiskFS is the operating-system filesystem, the FS every non-test caller
// should use.
var DiskFS FS = osFS{}

// osFS implements FS on the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

// readFile reads a whole file through fs.
func readFile(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
