package faultinject

import (
	"fmt"
	iofs "io/fs"
	"os"
	"sync"
	"time"

	"repro/internal/wal"
)

// WrapFS wraps a wal.FS so that writes and fsyncs on files opened for
// writing draw fault decisions from the schedule — the disk-level sibling
// of WrapSink. Read paths (recovery, replay, directory scans) pass through
// untouched, so injected damage is always inflicted by the write path and
// observed by a clean reopen, the same asymmetry a real crash has.
//
// Decision kinds map onto disk failure modes:
//
//   - Error: a write fails cleanly with nothing persisted, or an fsync
//     reports failure — the classic EIO.
//   - Latency: the write or fsync completes after the drawn delay.
//   - Partial: a short write — only half the buffer reaches the file
//     before the error. The caller's rollback (truncate) still works.
//   - Panic: a crash mid-append — the write tears like Partial, and the
//     subsequent rollback truncate fails too, so the torn bytes stay on
//     disk for recovery to repair at the next open.
func WrapFS(fs wal.FS, s *Schedule) wal.FS {
	return &faultFS{inner: fs, sched: s}
}

// faultFS injects scheduled faults into the write-side file operations of
// an inner wal.FS.
type faultFS struct {
	inner wal.FS
	sched *Schedule
}

func (f *faultFS) MkdirAll(path string, perm iofs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *faultFS) OpenFile(name string, flag int, perm iofs.FileMode) (wal.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil || flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return file, err
	}
	return &faultFile{inner: file, sched: f.sched}, nil
}

func (f *faultFS) ReadDir(name string) ([]iofs.DirEntry, error) { return f.inner.ReadDir(name) }

func (f *faultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }

func (f *faultFS) Remove(name string) error { return f.inner.Remove(name) }

// faultFile perturbs one writable file's Write/Sync/Truncate calls.
type faultFile struct {
	inner wal.File
	sched *Schedule

	mu sync.Mutex
	// tearArmed fails the next Truncate — set by a Panic write so the
	// rollback of the torn record fails and the tear survives on disk.
	tearArmed bool
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.sched.Next()
	switch d.Kind {
	case Error:
		return 0, fmt.Errorf("%w: disk write failed", ErrInjected)
	case Latency:
		time.Sleep(d.Latency)
	case Partial, Panic:
		n := len(p) / 2
		if d.Kind == Panic {
			f.mu.Lock()
			f.tearArmed = true
			f.mu.Unlock()
		}
		if n > 0 {
			if wn, err := f.inner.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, fmt.Errorf("%w: short disk write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	d := f.sched.Next()
	switch d.Kind {
	case Error, Partial, Panic:
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	case Latency:
		time.Sleep(d.Latency)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	f.mu.Lock()
	armed := f.tearArmed
	f.tearArmed = false
	f.mu.Unlock()
	if armed {
		return fmt.Errorf("%w: truncate failed, torn bytes left on disk", ErrInjected)
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }
