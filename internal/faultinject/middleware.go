package faultinject

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// FaultHeader names the response header the middleware sets on every
// request it perturbed, carrying the fault kind — load generators count it
// to separate injected failures from real ones.
const FaultHeader = "X-Fault-Injected"

// Middleware wraps next with scheduled request faults: errors answer 503
// with a JSON error envelope before the handler runs, latency delays the
// handler (honouring request-context cancellation), and panics escape
// mid-request — install this middleware *inside* obs.Middleware (e.g. via
// market.WithMiddleware) so the panic is recovered into a counted 500 and
// every injected fault shows up in the request metrics. Partial decisions
// have no batch to split at the request level and degrade to errors.
func Middleware(next http.Handler, s *Schedule) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.Next()
		switch d.Kind {
		case Error, Partial:
			w.Header().Set(FaultHeader, Error.String())
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": ErrInjected.Error()})
			return
		case Latency:
			w.Header().Set(FaultHeader, Latency.String())
			if err := sleepCtx(r.Context(), d.Latency); err != nil {
				// The client went away while we stalled; nothing left
				// to serve.
				return
			}
		case Panic:
			w.Header().Set(FaultHeader, Panic.String())
			panic(fmt.Sprintf("%v: request panic", ErrInjected))
		}
		next.ServeHTTP(w, r)
	})
}
