package faultinject

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/wal"
)

// appendUntilBroken drives appends through a fault-wrapped log and
// returns the payloads that were acknowledged before the log either
// broke or maxOps was reached.
func appendUntilBroken(t *testing.T, l *wal.Log, maxOps int) (acked []string) {
	t.Helper()
	for i := 0; i < maxOps; i++ {
		p := fmt.Sprintf("op-%04d", i)
		_, err := l.Append([]byte(p))
		switch {
		case err == nil:
			acked = append(acked, p)
		case errors.Is(err, wal.ErrBroken):
			return acked
		case errors.Is(err, ErrInjected):
			// Transient injected failure, rolled back; keep going.
		default:
			t.Fatalf("Append %d: unexpected error %v", i, err)
		}
	}
	return acked
}

// recoverPayloads reopens dir with a clean filesystem and returns every
// payload recovery replays.
func recoverPayloads(t *testing.T, dir string) []string {
	t.Helper()
	l, info, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer l.Close()
	var got []string
	if err := l.ReplayFrom(0, func(_ uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("replay after reopen: %v", err)
	}
	if uint64(len(got)) != info.Records {
		t.Fatalf("replayed %d records, recovery info says %d", len(got), info.Records)
	}
	return got
}

// TestDiskFaultLedger is the core crash-consistency property at the WAL
// layer: under any seeded mix of write errors, short writes, fsync
// failures and torn tails, a clean reopen recovers every acknowledged
// record in order, plus at most one trailing unacknowledged record (a
// write that reached the disk but whose fsync failed before the ack).
func TestDiskFaultLedger(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			sched := NewSchedule(Profile{Seed: seed, ErrorRate: 0.1, PartialRate: 0.1, PanicRate: 0.05})
			l, _, err := wal.Open(wal.Options{Dir: dir, FS: WrapFS(wal.DiskFS, sched)})
			if err != nil {
				t.Fatalf("Open through fault FS: %v", err)
			}
			acked := appendUntilBroken(t, l, 200)
			l.Close()

			recovered := recoverPayloads(t, dir)
			if len(recovered) < len(acked) || len(recovered) > len(acked)+1 {
				t.Fatalf("recovered %d records for %d acknowledged (want acked <= recovered <= acked+1)",
					len(recovered), len(acked))
			}
			for i, want := range acked {
				if recovered[i] != want {
					t.Fatalf("record %d: recovered %q, acknowledged %q", i, recovered[i], want)
				}
			}
		})
	}
}

// TestDiskFaultTornTailSurvives pins the Panic mapping: the write tears,
// the rollback fails, the log breaks — and reopening repairs the tear.
func TestDiskFaultTornTailSurvives(t *testing.T) {
	dir := t.TempDir()
	// PanicRate 1 makes the very first append tear and strand its bytes.
	sched := NewSchedule(Profile{Seed: 7, PanicRate: 1})
	l, _, err := wal.Open(wal.Options{Dir: dir, FS: WrapFS(wal.DiskFS, sched)})
	if err != nil {
		t.Fatalf("Open through fault FS: %v", err)
	}
	if _, err := l.Append([]byte("doomed-record-payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append = %v, want injected fault", err)
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, wal.ErrBroken) {
		t.Fatalf("Append after failed rollback = %v, want ErrBroken", err)
	}
	l.Close()

	l2, info, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer l2.Close()
	if !info.TornTail || info.TornBytes == 0 || info.Records != 0 {
		t.Fatalf("recovery info = %+v, want a repaired torn tail and no records", info)
	}
	if lsn, err := l2.Append([]byte("fresh")); err != nil || lsn != 0 {
		t.Fatalf("Append after repair: lsn=%d err=%v", lsn, err)
	}
}

// TestDiskFaultDeterminism pins the replay guarantee: the same seed
// inflicts the same fault sequence, so two runs acknowledge the same
// records and recover identical logs.
func TestDiskFaultDeterminism(t *testing.T) {
	run := func() (acked, recovered []string) {
		dir := t.TempDir()
		sched := NewSchedule(Profile{Seed: 99, ErrorRate: 0.15, PartialRate: 0.1, PanicRate: 0.02})
		l, _, err := wal.Open(wal.Options{Dir: dir, FS: WrapFS(wal.DiskFS, sched)})
		if err != nil {
			t.Fatalf("Open through fault FS: %v", err)
		}
		acked = appendUntilBroken(t, l, 150)
		l.Close()
		return acked, recoverPayloads(t, dir)
	}
	acked1, rec1 := run()
	acked2, rec2 := run()
	if fmt.Sprint(acked1) != fmt.Sprint(acked2) {
		t.Fatalf("same seed acknowledged different records:\n%v\n%v", acked1, acked2)
	}
	if fmt.Sprint(rec1) != fmt.Sprint(rec2) {
		t.Fatalf("same seed recovered different records:\n%v\n%v", rec1, rec2)
	}
}

// TestDiskFaultReadsUntouched pins that read-only opens bypass injection:
// recovery through a fault FS with a saturating error rate still works.
func TestDiskFaultReadsUntouched(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append([]byte("persisted")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()

	sched := NewSchedule(Profile{Seed: 1, ErrorRate: 1})
	l2, info, err := wal.Open(wal.Options{Dir: dir, FS: WrapFS(wal.DiskFS, sched)})
	if err != nil {
		t.Fatalf("reopen through saturated fault FS: %v", err)
	}
	defer l2.Close()
	if info.Records != 1 {
		t.Fatalf("recovery info = %+v, want the persisted record", info)
	}
	var got []string
	if err := l2.ReplayFrom(0, func(_ uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil || len(got) != 1 || got[0] != "persisted" {
		t.Fatalf("replay through fault FS = (%q, %v)", got, err)
	}
}
