package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/pipeline"
)

// output builds a pipeline output carrying n offers.
func output(n int) pipeline.Output {
	offers := make(flexoffer.Set, n)
	for i := range offers {
		offers[i] = &flexoffer.FlexOffer{ID: string(rune('a' + i))}
	}
	return pipeline.Output{JobID: "job", Result: &core.Result{Offers: offers}}
}

func TestSinkInjectsError(t *testing.T) {
	collect := &pipeline.CollectSink{}
	f := WrapSink(collect, NewSchedule(Profile{Seed: 1, ErrorRate: 1}))
	err := f.Put(context.Background(), output(3))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := len(collect.Outputs()); got != 0 {
		t.Fatalf("inner sink saw %d outputs despite injected error", got)
	}
}

func TestSinkInjectsPanic(t *testing.T) {
	f := WrapSink(pipeline.Discard, NewSchedule(Profile{Seed: 1, PanicRate: 1}))
	defer func() {
		if recover() == nil {
			t.Fatal("Put did not panic")
		}
	}()
	_ = f.Put(context.Background(), output(2))
}

func TestSinkInjectsLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	collect := &pipeline.CollectSink{}
	f := WrapSink(collect, NewSchedule(Profile{Seed: 1, LatencyRate: 1, MaxLatency: lat}))

	// Latency delays but still delivers.
	start := time.Now()
	if err := f.Put(context.Background(), output(2)); err != nil {
		t.Fatal(err)
	}
	if len(collect.Outputs()) != 1 {
		t.Fatal("delayed output never reached the inner sink")
	}
	_ = start // the delay itself is probabilistic in (0, lat]; delivery is the contract

	// A cancelled context cuts the sleep short with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Put(ctx, output(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency Put = %v, want context.Canceled", err)
	}
}

func TestSinkPartialDeliversPrefix(t *testing.T) {
	collect := &pipeline.CollectSink{}
	f := WrapSink(collect, NewSchedule(Profile{Seed: 1, PartialRate: 1}))
	err := f.Put(context.Background(), output(5))
	var pe *pipeline.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PartialError", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial cause %v does not unwrap to ErrInjected", err)
	}
	if len(pe.Remaining) != 3 {
		t.Fatalf("remaining %d offers, want 3", len(pe.Remaining))
	}
	outs := collect.Outputs()
	if len(outs) != 1 || len(outs[0].Result.Offers) != 2 {
		t.Fatalf("inner sink received %+v, want one output with the 2-offer prefix", outs)
	}
	// Delivered prefix + failed remainder must partition the original set.
	got := append(flexoffer.Set{}, outs[0].Result.Offers...)
	got = append(got, pe.Remaining...)
	if len(got) != 5 {
		t.Fatalf("prefix+remainder holds %d offers, want 5", len(got))
	}
}

func TestSinkPartialOnTinyBatchDegradesToError(t *testing.T) {
	collect := &pipeline.CollectSink{}
	f := WrapSink(collect, NewSchedule(Profile{Seed: 1, PartialRate: 1}))
	err := f.Put(context.Background(), output(1))
	var pe *pipeline.PartialError
	if errors.As(err, &pe) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want plain ErrInjected", err)
	}
	if len(collect.Outputs()) != 0 {
		t.Fatal("tiny batch partially delivered")
	}
}
