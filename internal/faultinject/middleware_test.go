package faultinject

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestMiddlewareInjectsError(t *testing.T) {
	h := Middleware(okHandler(), NewSchedule(Profile{Seed: 1, ErrorRate: 1}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/offers", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
	if rr.Header().Get(FaultHeader) != "error" {
		t.Fatalf("%s = %q, want error", FaultHeader, rr.Header().Get(FaultHeader))
	}
	if !strings.Contains(rr.Body.String(), "injected fault") {
		t.Fatalf("body %q missing injected-fault envelope", rr.Body.String())
	}
}

func TestMiddlewareLatencyStillServes(t *testing.T) {
	h := Middleware(okHandler(), NewSchedule(Profile{Seed: 1, LatencyRate: 1, MaxLatency: 10 * time.Millisecond}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/offers", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rr.Code)
	}
	if rr.Header().Get(FaultHeader) != "latency" {
		t.Fatalf("%s = %q, want latency", FaultHeader, rr.Header().Get(FaultHeader))
	}
}

// TestMiddlewareComposesWithObs is the composition contract from the
// mirabeld wiring: faults injected *inside* obs.Middleware surface in the
// request metrics — an injected panic becomes a recovered, counted 500.
func TestMiddlewareComposesWithObs(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewHTTPMetrics(reg, "test")
	faulty := Middleware(okHandler(), NewSchedule(Profile{Seed: 1, PanicRate: 1}))
	h := obs.Middleware(faulty, m, nil, nil)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/offers", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 from recovered injected panic", rr.Code)
	}
	if got := m.Panics.Value(); got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_http_requests_total{route="/offers",method="GET",status="5xx"} 1`) {
		t.Fatalf("injected fault missing from request metrics:\n%s", sb.String())
	}
}
