// Package faultinject provides deterministic, seeded fault injection for
// the extraction-to-market path: a fault Profile describes how often the
// submission path should fail and in which way (transient errors, added
// latency, panics, partially delivered batches), and a Schedule turns the
// profile into a reproducible stream of per-operation fault Decisions.
//
// The same seed always yields the same decision sequence, so a failure
// observed under load ("offer lost at decision 814") can be replayed
// exactly: re-run with the same -fault-profile string and the schedule
// injects the identical fault sequence. Under concurrency the *sequence*
// of decisions is fixed; which caller draws which decision still depends
// on goroutine interleaving, which is exactly the non-determinism a soak
// test wants to explore while keeping the fault pattern pinned.
//
// Two adapters consume a Schedule: WrapSink wraps any pipeline.Sink
// (sink.go), and Middleware wraps an http.Handler (middleware.go) so
// mirabeld can degrade its own API opt-in via -fault-profile. Both
// compose with the observability layer — injected faults surface in the
// obs request metrics and in the faultinject_* families registered by
// RegisterMetrics.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks every synthetic failure produced by this package, so
// retry paths and tests can tell injected faults from real ones with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind classifies one injected fault.
type Kind int

// The fault kinds a Decision can carry, in drawing order.
const (
	// None means the operation proceeds untouched.
	None Kind = iota
	// Error fails the operation immediately with ErrInjected.
	Error
	// Latency delays the operation, then lets it proceed.
	Latency
	// Panic panics mid-operation, exercising recovery paths.
	Panic
	// Partial delivers only part of a batch and fails the rest —
	// the classic half-written bulk insert. Adapters that have no
	// batch to split (the HTTP middleware) degrade it to Error.
	Partial
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	case Partial:
		return "partial"
	default:
		return "unknown"
	}
}

// kinds lists every injectable kind, for metrics and counts.
var kinds = []Kind{None, Error, Latency, Panic, Partial}

// Profile is a parsed fault profile: the per-operation probability of each
// fault kind plus the schedule seed. The zero value injects nothing.
type Profile struct {
	// Seed seeds the decision stream; the same seed replays the same
	// sequence of decisions.
	Seed int64
	// ErrorRate is the probability of an injected error, in [0,1].
	ErrorRate float64
	// LatencyRate is the probability of injected latency, in [0,1].
	LatencyRate float64
	// MaxLatency bounds one injected delay; the actual delay is drawn
	// uniformly from (0, MaxLatency]. Zero disables latency even when
	// LatencyRate is set.
	MaxLatency time.Duration
	// PanicRate is the probability of an injected panic, in [0,1].
	PanicRate float64
	// PartialRate is the probability of a partial-batch fault, in [0,1].
	PartialRate float64
}

// ParseProfile parses the -fault-profile flag syntax: comma-separated
// key=value fields, e.g.
//
//	seed=42,error=0.1,latency=0.05:20ms,panic=0.01,partial=0.1
//
// where latency takes rate:maxDuration. Unknown keys, malformed values and
// rates summing above 1 are errors; omitted keys default to zero.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("faultinject: empty profile")
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "error":
			p.ErrorRate, err = parseRate(val)
		case "panic":
			p.PanicRate, err = parseRate(val)
		case "partial":
			p.PartialRate, err = parseRate(val)
		case "latency":
			rate, durS, ok := strings.Cut(val, ":")
			if !ok {
				return p, fmt.Errorf("faultinject: latency wants rate:maxDuration, got %q", val)
			}
			if p.LatencyRate, err = parseRate(rate); err == nil {
				p.MaxLatency, err = time.ParseDuration(durS)
			}
		default:
			return p, fmt.Errorf("faultinject: unknown profile key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("faultinject: %s: %v", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// parseRate parses a probability in [0,1].
func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// Validate checks that every rate is a probability and that the rates
// leave room for fault-free operations (their sum must not exceed 1).
func (p Profile) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{{"error", p.ErrorRate}, {"latency", p.LatencyRate}, {"panic", p.PanicRate}, {"partial", p.PartialRate}} {
		if r.rate < 0 || r.rate > 1 || r.rate != r.rate { // NaN-safe
			return fmt.Errorf("faultinject: %s rate %v outside [0,1]", r.name, r.rate)
		}
	}
	if sum := p.ErrorRate + p.LatencyRate + p.PanicRate + p.PartialRate; sum > 1 {
		return fmt.Errorf("faultinject: rates sum to %.3f > 1", sum)
	}
	if p.LatencyRate > 0 && p.MaxLatency <= 0 {
		return fmt.Errorf("faultinject: latency rate %.3f with non-positive max duration", p.LatencyRate)
	}
	if p.MaxLatency < 0 {
		return fmt.Errorf("faultinject: negative max latency %v", p.MaxLatency)
	}
	return nil
}

// String renders the profile in the ParseProfile syntax, so a schedule's
// provenance can be logged and replayed verbatim.
func (p Profile) String() string {
	fields := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.ErrorRate > 0 {
		fields = append(fields, fmt.Sprintf("error=%g", p.ErrorRate))
	}
	if p.LatencyRate > 0 {
		fields = append(fields, fmt.Sprintf("latency=%g:%s", p.LatencyRate, p.MaxLatency))
	}
	if p.PanicRate > 0 {
		fields = append(fields, fmt.Sprintf("panic=%g", p.PanicRate))
	}
	if p.PartialRate > 0 {
		fields = append(fields, fmt.Sprintf("partial=%g", p.PartialRate))
	}
	return strings.Join(fields, ",")
}

// Decision is one drawn fault: what to inject into the next operation.
type Decision struct {
	// Kind is the fault to inject; None means proceed untouched.
	Kind Kind
	// Latency is the delay to impose when Kind is Latency.
	Latency time.Duration
}

// Schedule is a deterministic stream of fault decisions drawn from a
// seeded source. All methods are safe for concurrent use; concurrent
// callers consume the one fixed sequence in arrival order.
type Schedule struct {
	profile Profile

	mu     sync.Mutex
	rng    *rand.Rand      // guarded by mu
	drawn  uint64          // guarded by mu: total decisions handed out
	counts map[Kind]uint64 // guarded by mu: decisions by kind
}

// NewSchedule builds the decision stream for a validated profile.
// Profiles that fail Validate panic — they are programming errors, caught
// earlier by ParseProfile on the flag path.
func NewSchedule(p Profile) *Schedule {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Schedule{
		profile: p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		counts:  make(map[Kind]uint64, len(kinds)),
	}
}

// Profile returns the profile the schedule was built from.
func (s *Schedule) Profile() Profile { return s.profile }

// Next draws the next fault decision. The sequence depends only on the
// profile (seed and rates), never on timing.
func (s *Schedule) Next() Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drawn++
	d := Decision{Kind: None}
	u := s.rng.Float64()
	switch {
	case u < s.profile.ErrorRate:
		d.Kind = Error
	case u < s.profile.ErrorRate+s.profile.LatencyRate:
		d.Kind = Latency
		// A second draw, made under the same lock, keeps the stream
		// deterministic: decision i always costs the same number of
		// source values.
		d.Latency = time.Duration(s.rng.Float64() * float64(s.profile.MaxLatency))
		if d.Latency <= 0 {
			d.Latency = time.Nanosecond
		}
	case u < s.profile.ErrorRate+s.profile.LatencyRate+s.profile.PanicRate:
		d.Kind = Panic
	case u < s.profile.ErrorRate+s.profile.LatencyRate+s.profile.PanicRate+s.profile.PartialRate:
		d.Kind = Partial
	}
	s.counts[d.Kind]++
	return d
}

// Counts reports how many decisions of each kind have been drawn so far,
// keyed by Kind.String(), plus the total under "total".
func (s *Schedule) Counts() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(kinds)+1)
	for _, k := range kinds {
		out[k.String()] = s.counts[k]
	}
	out["total"] = s.drawn
	return out
}

// RegisterMetrics exposes the schedule's decision counts on reg as the
// sampled gauge family faultinject_decisions{kind=...}, so injected
// faults are visible on the same /metrics scrape as the request and
// pipeline metrics they perturb.
func RegisterMetrics(reg *obs.Registry, s *Schedule) {
	reg.NewSampledGauge("faultinject_decisions",
		"Fault decisions drawn from the -fault-profile schedule, by kind.",
		func() []obs.Sample {
			counts := s.Counts()
			names := make([]string, 0, len(counts))
			for name := range counts {
				if name != "total" {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			samples := make([]obs.Sample, 0, len(names))
			for _, name := range names {
				samples = append(samples, obs.Sample{
					Labels: []obs.Label{{Name: "kind", Value: name}},
					Value:  float64(counts[name]),
				})
			}
			return samples
		})
}
