package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseProfileRoundTrip(t *testing.T) {
	in := "seed=42,error=0.1,latency=0.05:20ms,panic=0.01,partial=0.2"
	p, err := ParseProfile(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{Seed: 42, ErrorRate: 0.1, LatencyRate: 0.05, MaxLatency: 20 * time.Millisecond, PanicRate: 0.01, PartialRate: 0.2}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// String renders in the same syntax, and parsing it again yields the
	// identical profile — the replay loop a fault-schedule seed relies on.
	back, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %q -> %+v, want %+v", p.String(), back, p)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"empty", ""},
		{"unknown key", "seed=1,flakiness=0.5"},
		{"not key=value", "error"},
		{"rate above one", "error=1.5"},
		{"negative rate", "panic=-0.1"},
		{"rates sum above one", "error=0.6,partial=0.6"},
		{"latency without duration", "latency=0.5"},
		{"latency bad duration", "latency=0.5:fast"},
		{"latency zero duration", "latency=0.5:0s"},
		{"bad seed", "seed=abc"},
	} {
		if _, err := ParseProfile(tc.in); err == nil {
			t.Errorf("%s: ParseProfile(%q) accepted", tc.name, tc.in)
		}
	}
}

// TestScheduleDeterminism is the replay contract: the same profile yields
// the identical decision sequence, draw for draw.
func TestScheduleDeterminism(t *testing.T) {
	p := Profile{Seed: 7, ErrorRate: 0.2, LatencyRate: 0.2, MaxLatency: 5 * time.Millisecond, PanicRate: 0.1, PartialRate: 0.1}
	a, b := NewSchedule(p), NewSchedule(p)
	for i := 0; i < 2000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	// A different seed produces a different sequence.
	p.Seed = 8
	c := NewSchedule(p)
	same := true
	aa := NewSchedule(Profile{Seed: 7, ErrorRate: 0.2, LatencyRate: 0.2, MaxLatency: 5 * time.Millisecond, PanicRate: 0.1, PartialRate: 0.1})
	for i := 0; i < 200; i++ {
		if aa.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced the same 200-decision prefix")
	}
}

func TestScheduleRates(t *testing.T) {
	p := Profile{Seed: 3, ErrorRate: 0.25, PanicRate: 0.25}
	s := NewSchedule(p)
	const n = 10000
	for i := 0; i < n; i++ {
		s.Next()
	}
	counts := s.Counts()
	if counts["total"] != n {
		t.Fatalf("total %d, want %d", counts["total"], n)
	}
	for _, kind := range []string{"error", "panic"} {
		frac := float64(counts[kind]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Errorf("%s fraction %.3f, want ~0.25", kind, frac)
		}
	}
	if counts["latency"] != 0 || counts["partial"] != 0 {
		t.Errorf("injected kinds with zero rate: %v", counts)
	}
	if counts["none"]+counts["error"]+counts["panic"] != n {
		t.Errorf("counts do not sum to total: %v", counts)
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	s := NewSchedule(Profile{Seed: 1})
	for i := 0; i < 1000; i++ {
		if d := s.Next(); d.Kind != None {
			t.Fatalf("zero profile injected %v at draw %d", d.Kind, i)
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSchedule(Profile{Seed: 1, ErrorRate: 1})
	RegisterMetrics(reg, s)
	s.Next()
	s.Next()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `faultinject_decisions{kind="error"} 2`) {
		t.Fatalf("exposition missing error decisions:\n%s", sb.String())
	}
}
