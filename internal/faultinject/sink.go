package faultinject

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pipeline"
)

// Sink injects scheduled faults in front of any pipeline.Sink: errors fail
// the Put, latency delays it (honouring context cancellation), panics
// escape mid-Put — a ResilientSink contains them — and partial faults
// deliver only the first half of the output's offers, failing the rest
// with a pipeline.PartialError so a retry path can resubmit exactly the
// undelivered remainder.
type Sink struct {
	// Inner is the sink faults are injected in front of.
	Inner pipeline.Sink
	// Schedule supplies the fault decisions.
	Schedule *Schedule
}

// WrapSink builds a fault-injecting sink around inner.
func WrapSink(inner pipeline.Sink, s *Schedule) *Sink {
	return &Sink{Inner: inner, Schedule: s}
}

// Put implements pipeline.Sink.
func (f *Sink) Put(ctx context.Context, out pipeline.Output) error {
	d := f.Schedule.Next()
	switch d.Kind {
	case Error:
		return fmt.Errorf("%w: sink error", ErrInjected)
	case Latency:
		if err := sleepCtx(ctx, d.Latency); err != nil {
			return err
		}
	case Panic:
		panic(fmt.Sprintf("%v: sink panic", ErrInjected))
	case Partial:
		return f.putPartial(ctx, out)
	}
	return f.Inner.Put(ctx, out)
}

// putPartial delivers the first half of the output's offers to the inner
// sink and fails the second half. Outputs too small to split degrade to a
// plain injected error.
func (f *Sink) putPartial(ctx context.Context, out pipeline.Output) error {
	var n int
	if out.Result != nil {
		n = len(out.Result.Offers)
	}
	if n < 2 {
		return fmt.Errorf("%w: sink error (batch too small for partial fault)", ErrInjected)
	}
	offers := out.Result.Offers
	delivered := *out.Result
	delivered.Offers = offers[:n/2]
	partial := out
	partial.Result = &delivered
	if err := f.Inner.Put(ctx, partial); err != nil {
		// The inner sink rejected even the prefix: nothing landed, the
		// whole batch remains undelivered.
		return &pipeline.PartialError{Remaining: offers, Cause: err}
	}
	return &pipeline.PartialError{
		Remaining: offers[n/2:],
		Cause:     fmt.Errorf("%w: partial delivery", ErrInjected),
	}
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
