package tariff

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

func TestFlat(t *testing.T) {
	f := Flat{Price: 0.30}
	if f.Rate(t0) != 0.30 || f.Rate(t0.Add(13*time.Hour)) != 0.30 {
		t.Error("flat rate varies")
	}
	if f.IsLow(t0) {
		t.Error("flat tariff reported a low period")
	}
	if f.Name() != "flat" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestTimeOfUseWrapsMidnight(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}
	tests := []struct {
		hour int
		low  bool
	}{
		{21, false}, {22, true}, {23, true}, {0, true}, {5, true}, {6, false}, {12, false},
	}
	for _, tc := range tests {
		tm := t0.Add(time.Duration(tc.hour) * time.Hour)
		if got := tou.IsLow(tm); got != tc.low {
			t.Errorf("IsLow at %02d:00 = %v, want %v", tc.hour, got, tc.low)
		}
		wantRate := 0.40
		if tc.low {
			wantRate = 0.15
		}
		if got := tou.Rate(tm); got != wantRate {
			t.Errorf("Rate at %02d:00 = %v, want %v", tc.hour, got, wantRate)
		}
	}
}

func TestTimeOfUseNonWrapping(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 10, LowEndHour: 14}
	if !tou.IsLow(t0.Add(11 * time.Hour)) {
		t.Error("11:00 should be low")
	}
	if tou.IsLow(t0.Add(15 * time.Hour)) {
		t.Error("15:00 should be high")
	}
}

func TestTimeOfUseDegenerateWindow(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 8, LowEndHour: 8}
	for h := 0; h < 24; h++ {
		if tou.IsLow(t0.Add(time.Duration(h) * time.Hour)) {
			t.Fatalf("degenerate window reported low at %02d:00", h)
		}
	}
	if _, _, ok := tou.LowWindowFrom(t0); ok {
		t.Error("degenerate window returned ok")
	}
}

func TestLowWindowFrom(t *testing.T) {
	tou := TimeOfUse{LowStartHour: 22, LowEndHour: 6}
	// From noon, the next window is 22:00 tonight until 06:00 tomorrow.
	lo, hi, ok := tou.LowWindowFrom(t0.Add(12 * time.Hour))
	if !ok {
		t.Fatal("no window")
	}
	if !lo.Equal(t0.Add(22*time.Hour)) || !hi.Equal(t0.Add(30*time.Hour)) {
		t.Errorf("window = [%v, %v]", lo, hi)
	}
	// From 23:00, the *next beginning* window is tomorrow 22:00.
	lo, _, _ = tou.LowWindowFrom(t0.Add(23 * time.Hour))
	if !lo.Equal(t0.Add(46 * time.Hour)) {
		t.Errorf("next window start = %v", lo)
	}
	// Exactly at the window start.
	lo, _, _ = tou.LowWindowFrom(t0.Add(22 * time.Hour))
	if !lo.Equal(t0.Add(22 * time.Hour)) {
		t.Errorf("window at boundary start = %v", lo)
	}
}

func TestCost(t *testing.T) {
	tou := TimeOfUse{HighPrice: 1.0, LowPrice: 0.5, LowStartHour: 12, LowEndHour: 24}
	// 24 hourly intervals of 1 kWh: 12 high + 12 low = 12*1 + 12*0.5 = 18.
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = 1
	}
	s := timeseries.MustNew(t0, time.Hour, vals)
	if got := Cost(tou, s); got != 18 {
		t.Errorf("Cost = %v, want 18", got)
	}
}

func TestResponseShiftMovesIntoLowWindow(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 22, LowEndHour: 6}
	r := Response{ShiftProbability: 1}
	rng := rand.New(rand.NewSource(1))
	planned := t0.Add(18 * time.Hour) // 18:00, high tariff
	for i := 0; i < 50; i++ {
		got := r.ShiftStart(rng, planned, 12*time.Hour, tou)
		if !tou.IsLow(got) {
			t.Fatalf("shifted start %v not in low window", got)
		}
		if got.Before(planned) || got.Sub(planned) > 12*time.Hour {
			t.Fatalf("shifted start %v outside slack", got)
		}
	}
}

func TestResponseNoShiftCases(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 22, LowEndHour: 6}
	rng := rand.New(rand.NewSource(1))
	planned := t0.Add(18 * time.Hour)

	// Zero probability: never shifts.
	if got := (Response{ShiftProbability: 0}).ShiftStart(rng, planned, 12*time.Hour, tou); !got.Equal(planned) {
		t.Errorf("p=0 shifted to %v", got)
	}
	// Flat tariff: never shifts.
	if got := (Response{ShiftProbability: 1}).ShiftStart(rng, planned, 12*time.Hour, Flat{Price: 0.3}); !got.Equal(planned) {
		t.Errorf("flat tariff shifted to %v", got)
	}
	// Window out of reach: slack of 1 hour cannot reach 22:00 from 18:00.
	if got := (Response{ShiftProbability: 1}).ShiftStart(rng, planned, time.Hour, tou); !got.Equal(planned) {
		t.Errorf("out-of-reach window shifted to %v", got)
	}
	// Already in the low window: stays put.
	inWindow := t0.Add(23 * time.Hour)
	if got := (Response{ShiftProbability: 1}).ShiftStart(rng, inWindow, 4*time.Hour, tou); !got.Equal(inWindow) {
		t.Errorf("in-window start shifted to %v", got)
	}
}

func TestResponseShiftSlackBoundary(t *testing.T) {
	tou := TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 22, LowEndHour: 6}
	rng := rand.New(rand.NewSource(2))
	planned := t0.Add(18 * time.Hour)
	// Slack exactly reaching the window start: shift lands on 22:00 sharp.
	got := (Response{ShiftProbability: 1}).ShiftStart(rng, planned, 4*time.Hour, tou)
	if !got.Equal(t0.Add(22 * time.Hour)) {
		t.Errorf("boundary shift = %v, want 22:00", got)
	}
}

func TestTimeOfUseName(t *testing.T) {
	tou := TimeOfUse{LowStartHour: 22, LowEndHour: 6}
	if tou.Name() == "" {
		t.Error("empty name")
	}
}
