// Package tariff models electricity billing schemes and the consumer
// behaviour change they induce. The multi-tariff extraction approach (§3.3
// of the paper) rests on the observation that under a multi-tariff
// (variable-rate) scheme consumers delay flexible usage (e.g. the washing
// machine) into the low-tariff window (e.g. after 10 PM); this package
// provides both the schemes and that behavioural shift, so paired
// one-tariff/multi-tariff series can be simulated.
package tariff

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/timeseries"
)

// Tariff prices energy over time.
type Tariff interface {
	// Name identifies the scheme.
	Name() string
	// Rate reports the price per kWh at time t (unit: currency/kWh).
	Rate(t time.Time) float64
	// IsLow reports whether t falls in a low-price period. Flat tariffs
	// report false everywhere.
	IsLow(t time.Time) bool
}

// Flat is a single-rate tariff: the "one tariff period" reference series of
// the multi-tariff extraction is billed this way.
type Flat struct {
	// Price is the constant price per kWh.
	Price float64
}

// Name implements Tariff.
func (f Flat) Name() string { return "flat" }

// Rate implements Tariff.
func (f Flat) Rate(time.Time) float64 { return f.Price }

// IsLow implements Tariff; a flat tariff has no low period.
func (f Flat) IsLow(time.Time) bool { return false }

// TimeOfUse is a two-rate multi-tariff scheme with a daily low-price window
// [LowStartHour, LowEndHour) that may wrap over midnight (e.g. 22 → 6).
type TimeOfUse struct {
	// HighPrice applies outside the low window.
	HighPrice float64
	// LowPrice applies inside the low window.
	LowPrice float64
	// LowStartHour is the hour of day (0-23) the low window opens.
	LowStartHour int
	// LowEndHour is the hour of day (0-23) the low window closes
	// (exclusive). Equal start and end means no low window.
	LowEndHour int
}

// Name implements Tariff.
func (t TimeOfUse) Name() string {
	return fmt.Sprintf("time-of-use[low %02d:00-%02d:00]", t.LowStartHour, t.LowEndHour)
}

// IsLow implements Tariff.
func (t TimeOfUse) IsLow(tm time.Time) bool {
	h := tm.UTC().Hour()
	if t.LowStartHour == t.LowEndHour {
		return false
	}
	if t.LowStartHour < t.LowEndHour {
		return h >= t.LowStartHour && h < t.LowEndHour
	}
	// Window wraps midnight.
	return h >= t.LowStartHour || h < t.LowEndHour
}

// Rate implements Tariff.
func (t TimeOfUse) Rate(tm time.Time) float64 {
	if t.IsLow(tm) {
		return t.LowPrice
	}
	return t.HighPrice
}

// LowWindowFrom reports the first low-price window that begins at or after
// ref (its start and exclusive end). ok is false when the scheme has no low
// window.
func (t TimeOfUse) LowWindowFrom(ref time.Time) (start, end time.Time, ok bool) {
	if t.LowStartHour == t.LowEndHour {
		return time.Time{}, time.Time{}, false
	}
	day := timeseries.TruncateDay(ref)
	start = day.Add(time.Duration(t.LowStartHour) * time.Hour)
	for start.Before(ref) {
		start = start.Add(24 * time.Hour)
	}
	length := time.Duration(((t.LowEndHour-t.LowStartHour)+24)%24) * time.Hour
	return start, start.Add(length), true
}

// Cost prices a consumption series under the tariff: the sum over intervals
// of energy times the rate at the interval start.
func Cost(tr Tariff, s *timeseries.Series) float64 {
	var total float64
	for i := 0; i < s.Len(); i++ {
		v := s.Value(i)
		if v != v { // NaN
			continue
		}
		total += v * tr.Rate(s.TimeAt(i))
	}
	return total
}

// Response models how strongly a consumer reacts to a multi-tariff scheme.
type Response struct {
	// ShiftProbability is the chance a flexible appliance run is delayed
	// into the next low-price window. 0 disables the behaviour (consumers
	// ignore the tariff); 1 shifts every flexible run.
	ShiftProbability float64
}

// ShiftStart returns the (possibly shifted) start time of a flexible run
// planned at planned with the given shiftable slack. With probability
// ShiftProbability the start moves to a uniformly random time inside the
// next low window that begins within the slack; otherwise (or when the
// tariff has no low window, or the window is out of reach) planned is
// returned unchanged.
func (r Response) ShiftStart(rng *rand.Rand, planned time.Time, slack time.Duration, tr Tariff) time.Time {
	tou, ok := tr.(TimeOfUse)
	if !ok || r.ShiftProbability <= 0 {
		return planned
	}
	if tou.IsLow(planned) {
		return planned // already cheap
	}
	if rng.Float64() >= r.ShiftProbability {
		return planned
	}
	lo, hi, ok := tou.LowWindowFrom(planned)
	if !ok || lo.Sub(planned) > slack {
		return planned
	}
	// Latest admissible shifted start: inside the window and within slack.
	latest := planned.Add(slack)
	if hi.Before(latest) {
		latest = hi
	}
	span := latest.Sub(lo)
	if span <= 0 {
		return lo
	}
	return lo.Add(time.Duration(rng.Int63n(int64(span))))
}
