package timeseries

import (
	"fmt"
	"math"
	"time"

	"repro/internal/num"
)

// CountMissing reports the number of NaN values in the series.
func (s *Series) CountMissing() int {
	var n int
	for _, v := range s.values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// FillLinear replaces missing values by linear interpolation between the
// nearest non-missing neighbours, in place, and returns s. Leading and
// trailing gaps are filled with the nearest observed value. A fully missing
// series is left unchanged.
func (s *Series) FillLinear() *Series {
	n := len(s.values)
	first, last := -1, -1
	for i, v := range s.values {
		if !math.IsNaN(v) {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	if first == -1 {
		return s
	}
	for i := 0; i < first; i++ {
		s.values[i] = s.values[first]
	}
	for i := last + 1; i < n; i++ {
		s.values[i] = s.values[last]
	}
	i := first
	for i < last {
		if !math.IsNaN(s.values[i]) {
			i++
			continue
		}
		// Gap [i, j): find next observed value at j.
		j := i
		for math.IsNaN(s.values[j]) {
			j++
		}
		lo, hi := s.values[i-1], s.values[j]
		span := float64(j - (i - 1))
		for k := i; k < j; k++ {
			frac := float64(k-(i-1)) / span
			s.values[k] = lo + (hi-lo)*frac
		}
		i = j
	}
	return s
}

// FillSeasonal replaces missing values with the per-phase mean over the
// given period, in place, and returns s. Phases with no observations at all
// fall back to the global mean. The technique follows the disaggregation /
// missing-value literature the paper cites [14].
func (s *Series) FillSeasonal(period int) *Series {
	if period < 1 || s.Len() == 0 {
		return s
	}
	prof, err := TypicalProfile(s, period)
	if err != nil {
		return s
	}
	global := s.Mean()
	for i, v := range s.values {
		if !math.IsNaN(v) {
			continue
		}
		fill := prof[i%period]
		if math.IsNaN(fill) {
			fill = global
		}
		if !math.IsNaN(fill) {
			s.values[i] = fill
		}
	}
	return s
}

// DisaggregateWith splits each coarse interval into factor fine intervals
// distributing its energy according to the weight profile, whose length must
// equal factor. Weights are normalised per group; a zero-sum weight vector
// falls back to an even split. Total energy is conserved. This implements
// profile-guided temporal disaggregation ("reasoning about the finer
// granularity of the data than the input", §5 [14]).
func (s *Series) DisaggregateWith(factor int, weights []float64) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: disaggregation factor %d", ErrResolution, factor)
	}
	if len(weights) != factor {
		return nil, fmt.Errorf("timeseries: weight profile length %d != factor %d", len(weights), factor)
	}
	var wsum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("timeseries: weights must be non-negative, got %v", w)
		}
		wsum += w
	}
	out := make([]float64, 0, len(s.values)*factor)
	for _, v := range s.values {
		if math.IsNaN(v) {
			for k := 0; k < factor; k++ {
				out = append(out, math.NaN())
			}
			continue
		}
		if num.Zero(wsum) {
			share := v / float64(factor)
			for k := 0; k < factor; k++ {
				out = append(out, share)
			}
			continue
		}
		for k := 0; k < factor; k++ {
			out = append(out, v*weights[k]/wsum)
		}
	}
	return &Series{start: s.start, resolution: s.resolution / time.Duration(factor), values: out}, nil
}
