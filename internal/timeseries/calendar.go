package timeseries

import (
	"time"
)

// DayType classifies calendar days for profile estimation: the multi-tariff
// extraction computes "typical behavior during the work days, weekends,
// holidays" (§3.3), and the schedule-based extraction differentiates
// weekday vs weekend usage (§4.2).
type DayType int

const (
	// Workday is Monday through Friday.
	Workday DayType = iota
	// Weekend is Saturday and Sunday.
	Weekend
)

// String implements fmt.Stringer.
func (d DayType) String() string {
	switch d {
	case Workday:
		return "workday"
	case Weekend:
		return "weekend"
	default:
		return "unknown"
	}
}

// DayTypeOf classifies the calendar day containing t.
func DayTypeOf(t time.Time) DayType {
	switch t.UTC().Weekday() {
	case time.Saturday, time.Sunday:
		return Weekend
	default:
		return Workday
	}
}

// TruncateDay reports midnight (UTC) of the calendar day containing t.
func TruncateDay(t time.Time) time.Time {
	u := t.UTC()
	return time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
}

// Days splits the series into calendar-day sub-series. The first and last
// day may be partial. An empty series yields no days.
func (s *Series) Days() []*Series {
	var days []*Series
	if s.Len() == 0 {
		return days
	}
	dayStart := TruncateDay(s.start)
	for dayStart.Before(s.End()) {
		next := dayStart.Add(24 * time.Hour)
		if win, err := s.Window(dayStart, next); err == nil {
			days = append(days, win)
		}
		dayStart = next
	}
	return days
}

// DaysByType splits the series into calendar days and groups them by
// DayType.
func (s *Series) DaysByType() map[DayType][]*Series {
	out := make(map[DayType][]*Series)
	for _, d := range s.Days() {
		t := DayTypeOf(d.Start())
		out[t] = append(out[t], d)
	}
	return out
}

// IntervalsPerDay reports how many intervals of the series' resolution fit
// in 24 hours, or 0 when the resolution does not divide a day evenly.
func (s *Series) IntervalsPerDay() int {
	day := 24 * time.Hour
	if s.resolution <= 0 || day%s.resolution != 0 {
		return 0
	}
	return int(day / s.resolution)
}
