package timeseries

import (
	"testing"
	"time"
)

func TestDayTypeOf(t *testing.T) {
	tests := []struct {
		t    time.Time
		want DayType
	}{
		{time.Date(2012, 6, 1, 12, 0, 0, 0, time.UTC), Workday}, // Friday
		{time.Date(2012, 6, 2, 12, 0, 0, 0, time.UTC), Weekend}, // Saturday
		{time.Date(2012, 6, 3, 12, 0, 0, 0, time.UTC), Weekend}, // Sunday
		{time.Date(2012, 6, 4, 12, 0, 0, 0, time.UTC), Workday}, // Monday
	}
	for _, tc := range tests {
		if got := DayTypeOf(tc.t); got != tc.want {
			t.Errorf("DayTypeOf(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestDayTypeString(t *testing.T) {
	if Workday.String() != "workday" || Weekend.String() != "weekend" {
		t.Error("DayType.String mismatch")
	}
	if DayType(99).String() != "unknown" {
		t.Error("unknown DayType.String mismatch")
	}
}

func TestTruncateDay(t *testing.T) {
	in := time.Date(2012, 6, 1, 17, 42, 13, 5, time.UTC)
	want := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	if got := TruncateDay(in); !got.Equal(want) {
		t.Errorf("TruncateDay = %v, want %v", got, want)
	}
}

func TestDaysFullDays(t *testing.T) {
	s := MustNew(t0, time.Hour, make([]float64, 48))
	days := s.Days()
	if len(days) != 2 {
		t.Fatalf("Days = %d, want 2", len(days))
	}
	for i, d := range days {
		if d.Len() != 24 {
			t.Errorf("day %d len = %d, want 24", i, d.Len())
		}
	}
	if !days[1].Start().Equal(t0.Add(24 * time.Hour)) {
		t.Errorf("day 1 start = %v", days[1].Start())
	}
}

func TestDaysPartialEdges(t *testing.T) {
	// Starts at 22:00, covers 28 hours: partial, full, partial.
	start := time.Date(2012, 6, 1, 22, 0, 0, 0, time.UTC)
	s := MustNew(start, time.Hour, make([]float64, 28))
	days := s.Days()
	if len(days) != 3 {
		t.Fatalf("Days = %d, want 3", len(days))
	}
	if days[0].Len() != 2 || days[1].Len() != 24 || days[2].Len() != 2 {
		t.Errorf("day lengths = %d, %d, %d", days[0].Len(), days[1].Len(), days[2].Len())
	}
}

func TestDaysEmpty(t *testing.T) {
	s := MustNew(t0, time.Hour, nil)
	if got := s.Days(); len(got) != 0 {
		t.Errorf("Days of empty = %d", len(got))
	}
}

func TestDaysByType(t *testing.T) {
	// 2012-06-01 is a Friday; 7 days → 5 workdays + 2 weekend days.
	s := MustNew(t0, time.Hour, make([]float64, 24*7))
	byType := s.DaysByType()
	if len(byType[Workday]) != 5 {
		t.Errorf("workdays = %d, want 5", len(byType[Workday]))
	}
	if len(byType[Weekend]) != 2 {
		t.Errorf("weekend days = %d, want 2", len(byType[Weekend]))
	}
}

func TestIntervalsPerDay(t *testing.T) {
	tests := []struct {
		res  time.Duration
		want int
	}{
		{15 * time.Minute, 96},
		{time.Hour, 24},
		{time.Minute, 1440},
		{7 * time.Hour, 0}, // does not divide a day
	}
	for _, tc := range tests {
		s := MustNew(t0, tc.res, []float64{1})
		if got := s.IntervalsPerDay(); got != tc.want {
			t.Errorf("IntervalsPerDay(%v) = %d, want %d", tc.res, got, tc.want)
		}
	}
}
