package timeseries

import (
	"fmt"
	"math"
	"time"
)

// Downsample merges every factor consecutive intervals into one by summing
// their energy. A trailing partial group is summed as well (its interval is
// still factor*resolution wide in the result; callers that need exact
// coverage should trim first). Missing values within a group are ignored
// unless the whole group is missing, in which case the result is NaN.
func (s *Series) Downsample(factor int) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: downsample factor %d", ErrResolution, factor)
	}
	if factor == 1 {
		return s.Clone(), nil
	}
	n := (len(s.values) + factor - 1) / factor
	out := make([]float64, n)
	for g := 0; g < n; g++ {
		var sum float64
		var seen int
		for i := g * factor; i < (g+1)*factor && i < len(s.values); i++ {
			if !math.IsNaN(s.values[i]) {
				sum += s.values[i]
				seen++
			}
		}
		if seen == 0 {
			out[g] = math.NaN()
		} else {
			out[g] = sum
		}
	}
	return &Series{start: s.start, resolution: s.resolution * time.Duration(factor), values: out}, nil
}

// Upsample splits every interval into factor equal sub-intervals, dividing
// its energy evenly among them. Total energy is conserved. Missing values
// expand to missing sub-intervals.
func (s *Series) Upsample(factor int) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: upsample factor %d", ErrResolution, factor)
	}
	if factor == 1 {
		return s.Clone(), nil
	}
	out := make([]float64, 0, len(s.values)*factor)
	for _, v := range s.values {
		if math.IsNaN(v) {
			for k := 0; k < factor; k++ {
				out = append(out, math.NaN())
			}
			continue
		}
		share := v / float64(factor)
		for k := 0; k < factor; k++ {
			out = append(out, share)
		}
	}
	return &Series{start: s.start, resolution: s.resolution / time.Duration(factor), values: out}, nil
}

// ResampleTo converts the series to the target resolution, which must be an
// integer multiple or divisor of the current one. Energy is conserved.
func (s *Series) ResampleTo(target time.Duration) (*Series, error) {
	if target <= 0 {
		return nil, fmt.Errorf("%w: target %v", ErrResolution, target)
	}
	switch {
	case target == s.resolution:
		return s.Clone(), nil
	case target > s.resolution:
		if target%s.resolution != 0 {
			return nil, fmt.Errorf("%w: %v not a multiple of %v", ErrResolution, target, s.resolution)
		}
		return s.Downsample(int(target / s.resolution))
	default:
		if s.resolution%target != 0 {
			return nil, fmt.Errorf("%w: %v not a divisor of %v", ErrResolution, target, s.resolution)
		}
		return s.Upsample(int(s.resolution / target))
	}
}
