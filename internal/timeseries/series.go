// Package timeseries provides the regular time series substrate used across
// the flexibility-extraction system.
//
// A Series is a regularly sampled sequence of energy amounts: Value(i) holds
// the energy, in kWh, consumed (or produced) during the half-open interval
// [TimeAt(i), TimeAt(i)+Resolution()). Representing energy per interval —
// rather than instantaneous power — matches the flex-offer model of the
// MIRABEL project, where profile slices carry energy amounts, and makes
// temporal aggregation exact: downsampling sums energy without loss.
//
// Missing observations are represented as NaN and are skipped by the
// statistics in this package; see missing.go for fill strategies.
//
// # Concurrency and ownership
//
// A Series carries no synchronisation. Any number of goroutines may read a
// Series concurrently (Value, TimeAt, the statistics, Clone, …) as long as
// none mutates it; SetValue and the in-place fill operations require
// exclusive access. Code that needs a private mutable copy — the extractors
// in internal/core, for example — must Clone first and mutate the clone.
// The batch engine in internal/pipeline relies on exactly this discipline to
// share one input series across many workers; see that package's ownership
// model for the contract it imposes on extractors and sinks.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Common errors returned by Series operations.
var (
	// ErrEmpty is returned when an operation requires a non-empty series.
	ErrEmpty = errors.New("timeseries: empty series")
	// ErrResolution is returned for non-positive or incompatible resolutions.
	ErrResolution = errors.New("timeseries: invalid resolution")
	// ErrMisaligned is returned when two series do not share a start time
	// and resolution as required by element-wise operations.
	ErrMisaligned = errors.New("timeseries: series are misaligned")
	// ErrRange is returned when an index or time range falls outside the series.
	ErrRange = errors.New("timeseries: range out of bounds")
)

// Series is a regularly sampled energy time series. The zero value is not
// usable; construct one with New or Zeros.
//
// Series is not safe for concurrent mutation; concurrent reads are safe.
type Series struct {
	start      time.Time
	resolution time.Duration
	values     []float64
}

// New constructs a Series starting at start with the given resolution and
// values. The values slice is copied. The start time is normalised to UTC.
func New(start time.Time, resolution time.Duration, values []float64) (*Series, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrResolution, resolution)
	}
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{start: start.UTC(), resolution: resolution, values: v}, nil
}

// MustNew is like New but panics on error. Intended for tests and literals
// with constant arguments.
func MustNew(start time.Time, resolution time.Duration, values []float64) *Series {
	s, err := New(start, resolution, values)
	if err != nil {
		panic(err)
	}
	return s
}

// Zeros constructs a Series of n zero values.
func Zeros(start time.Time, resolution time.Duration, n int) (*Series, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length %d", ErrRange, n)
	}
	return New(start, resolution, make([]float64, n))
}

// Len reports the number of intervals in the series.
func (s *Series) Len() int { return len(s.values) }

// Start reports the start time of the first interval.
func (s *Series) Start() time.Time { return s.start }

// End reports the end of the last interval (exclusive).
func (s *Series) End() time.Time {
	return s.start.Add(time.Duration(len(s.values)) * s.resolution)
}

// Resolution reports the interval duration.
func (s *Series) Resolution() time.Duration { return s.resolution }

// Value reports the energy of interval i. It panics if i is out of range,
// mirroring slice indexing.
func (s *Series) Value(i int) float64 { return s.values[i] }

// SetValue sets the energy of interval i. It panics if i is out of range.
func (s *Series) SetValue(i int, v float64) { s.values[i] = v }

// Values returns a copy of the underlying values.
func (s *Series) Values() []float64 {
	v := make([]float64, len(s.values))
	copy(v, s.values)
	return v
}

// TimeAt reports the start time of interval i. i may equal Len(), in which
// case the series end is returned.
func (s *Series) TimeAt(i int) time.Time {
	return s.start.Add(time.Duration(i) * s.resolution)
}

// IndexOf reports the interval index containing time t and whether t falls
// within the series extent.
func (s *Series) IndexOf(t time.Time) (int, bool) {
	d := t.Sub(s.start)
	if d < 0 {
		return 0, false
	}
	i := int(d / s.resolution)
	if i >= len(s.values) {
		return 0, false
	}
	return i, true
}

// At reports the value of the interval containing t, if t is in range.
func (s *Series) At(t time.Time) (float64, bool) {
	i, ok := s.IndexOf(t)
	if !ok {
		return 0, false
	}
	return s.values[i], true
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.values))
	copy(v, s.values)
	return &Series{start: s.start, resolution: s.resolution, values: v}
}

// Slice returns a copy of intervals [i, j).
func (s *Series) Slice(i, j int) (*Series, error) {
	if i < 0 || j > len(s.values) || i > j {
		return nil, fmt.Errorf("%w: slice [%d, %d) of %d", ErrRange, i, j, len(s.values))
	}
	v := make([]float64, j-i)
	copy(v, s.values[i:j])
	return &Series{start: s.TimeAt(i), resolution: s.resolution, values: v}, nil
}

// Window returns the sub-series covering [from, to). Both bounds are clamped
// to the series extent; an error is returned only when the window is
// entirely outside the series or inverted.
func (s *Series) Window(from, to time.Time) (*Series, error) {
	if to.Before(from) {
		return nil, fmt.Errorf("%w: window end before start", ErrRange)
	}
	i := int(math.Ceil(float64(from.Sub(s.start)) / float64(s.resolution)))
	if from.Sub(s.start)%s.resolution == 0 {
		i = int(from.Sub(s.start) / s.resolution)
	}
	j := int(to.Sub(s.start) / s.resolution)
	if to.Sub(s.start)%s.resolution != 0 {
		j++
	}
	if i < 0 {
		i = 0
	}
	if j > len(s.values) {
		j = len(s.values)
	}
	if i >= j {
		return nil, fmt.Errorf("%w: window [%v, %v) outside series", ErrRange, from, to)
	}
	return s.Slice(i, j)
}

// Append extends the series with additional values and returns s for
// chaining.
func (s *Series) Append(values ...float64) *Series {
	s.values = append(s.values, values...)
	return s
}

// Total reports the sum of all non-missing values (total energy).
func (s *Series) Total() float64 {
	var sum float64
	for _, v := range s.values {
		if !math.IsNaN(v) {
			sum += v
		}
	}
	return sum
}

// Scale multiplies every value by f in place and returns s.
func (s *Series) Scale(f float64) *Series {
	for i, v := range s.values {
		s.values[i] = v * f
	}
	return s
}

// AddScalar adds c to every value in place and returns s.
func (s *Series) AddScalar(c float64) *Series {
	for i, v := range s.values {
		s.values[i] = v + c
	}
	return s
}

// aligned reports whether two series share start, resolution and length.
func (s *Series) aligned(o *Series) bool {
	return s.start.Equal(o.start) && s.resolution == o.resolution && len(s.values) == len(o.values)
}

// Add returns a new series with element-wise sums. Both series must be
// aligned (same start, resolution and length).
func (s *Series) Add(o *Series) (*Series, error) {
	if !s.aligned(o) {
		return nil, ErrMisaligned
	}
	out := s.Clone()
	for i := range out.values {
		out.values[i] += o.values[i]
	}
	return out, nil
}

// Sub returns a new series with element-wise differences s - o. Both series
// must be aligned.
func (s *Series) Sub(o *Series) (*Series, error) {
	if !s.aligned(o) {
		return nil, ErrMisaligned
	}
	out := s.Clone()
	for i := range out.values {
		out.values[i] -= o.values[i]
	}
	return out, nil
}

// ClampMin raises every value below floor to floor, in place, and returns s.
// Useful after subtracting extracted flexible energy to keep consumption
// non-negative in the presence of rounding.
func (s *Series) ClampMin(floor float64) *Series {
	for i, v := range s.values {
		if !math.IsNaN(v) && v < floor {
			s.values[i] = floor
		}
	}
	return s
}

// Sum aggregates several aligned series element-wise, e.g. to form the total
// consumption of a population of households.
func Sum(series ...*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	out := series[0].Clone()
	for _, s := range series[1:] {
		if !out.aligned(s) {
			return nil, ErrMisaligned
		}
		for i := range out.values {
			out.values[i] += s.values[i]
		}
	}
	return out, nil
}

// String implements fmt.Stringer with a compact summary.
func (s *Series) String() string {
	return fmt.Sprintf("Series[%s..%s @%v, n=%d, total=%.3f kWh]",
		s.start.Format(time.RFC3339), s.End().Format(time.RFC3339), s.resolution, len(s.values), s.Total())
}
