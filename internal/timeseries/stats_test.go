package timeseries

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestMeanStdMinMax(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestStatsSkipNaN(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN(), 1, 3, math.NaN()})
	if got := s.Mean(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean with NaN = %v, want 2", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min with NaN = %v, want 1", got)
	}
	if got := s.Max(); got != 3 {
		t.Errorf("Max with NaN = %v, want 3", got)
	}
}

func TestStatsAllMissing(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN(), math.NaN()})
	for name, got := range map[string]float64{
		"Mean": s.Mean(), "Std": s.Std(), "Min": s.Min(), "Max": s.Max(),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s of all-missing = %v, want NaN", name, got)
		}
	}
}

func TestQuantile(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{4, 1, 3, 2})
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tc := range tests {
		if got := s.Quantile(tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", got)
	}
	one := MustNew(t0, time.Hour, []float64{7})
	if got := one.Quantile(0.5); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestSparseness(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{0, 0.001, 5, 0, math.NaN()})
	if got := s.Sparseness(0.01); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("Sparseness = %v, want 0.75", got)
	}
	empty := MustNew(t0, time.Hour, nil)
	if got := empty.Sparseness(0.01); got != 0 {
		t.Errorf("Sparseness of empty = %v, want 0", got)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly periodic series has ACF ~1 at its period.
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 12)
	}
	s := MustNew(t0, time.Hour, vals)
	if got := s.Autocorrelation(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("ACF(0) = %v, want 1", got)
	}
	if got := s.Autocorrelation(12); got < 0.6 {
		t.Errorf("ACF(period) = %v, want high", got)
	}
	if got := s.Autocorrelation(6); got > -0.6 {
		t.Errorf("ACF(half period) = %v, want strongly negative", got)
	}
	if got := s.Autocorrelation(-1); !math.IsNaN(got) {
		t.Errorf("ACF(-1) = %v, want NaN", got)
	}
	if got := s.Autocorrelation(48); !math.IsNaN(got) {
		t.Errorf("ACF(n) = %v, want NaN", got)
	}
	flat := MustNew(t0, time.Hour, []float64{3, 3, 3, 3})
	if got := flat.Autocorrelation(1); !math.IsNaN(got) {
		t.Errorf("ACF of constant = %v, want NaN", got)
	}
}

func TestDominantPeriod(t *testing.T) {
	vals := make([]float64, 96)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	s := MustNew(t0, time.Hour, vals)
	lag, acf := s.DominantPeriod(2, 40)
	if lag != 24 {
		t.Errorf("DominantPeriod lag = %d, want 24 (acf %v)", lag, acf)
	}
	if lag, acf := s.DominantPeriod(10, 5); lag != 0 || !math.IsNaN(acf) {
		t.Errorf("invalid range DominantPeriod = (%d, %v)", lag, acf)
	}
}

func TestPearson(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1, 2, 3, 4})
	b := MustNew(t0, time.Hour, []float64{2, 4, 6, 8})
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Pearson(a, 2a) = %v, want 1", got)
	}
	c := MustNew(t0, time.Hour, []float64{4, 3, 2, 1})
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-9) {
		t.Errorf("Pearson(a, -a) = %v, want -1", got)
	}
	flat := MustNew(t0, time.Hour, []float64{5, 5, 5, 5})
	if got := Pearson(a, flat); !math.IsNaN(got) {
		t.Errorf("Pearson vs constant = %v, want NaN", got)
	}
	short := MustNew(t0, time.Hour, []float64{1, 2})
	if got := Pearson(a, short); !math.IsNaN(got) {
		t.Errorf("Pearson misaligned = %v, want NaN", got)
	}
}

func TestPearsonSkipsNaNPairs(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1, 2, math.NaN(), 4})
	b := MustNew(t0, time.Hour, []float64{2, 4, 100, 8})
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Pearson skipping NaN = %v, want 1", got)
	}
}

func TestPeakToAverage(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 1, 1, 5})
	if got := s.PeakToAverage(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("PeakToAverage = %v, want 2.5", got)
	}
	zero := MustNew(t0, time.Hour, []float64{0, 0})
	if got := zero.PeakToAverage(); !math.IsNaN(got) {
		t.Errorf("PeakToAverage of zeros = %v, want NaN", got)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	uniform := MustNew(t0, time.Hour, []float64{1, 1, 1, 1})
	if got := uniform.NormalizedEntropy(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("entropy of uniform = %v, want 1", got)
	}
	spike := MustNew(t0, time.Hour, []float64{0, 0, 10, 0})
	if got := spike.NormalizedEntropy(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("entropy of spike = %v, want 0", got)
	}
	mixed := MustNew(t0, time.Hour, []float64{1, 3, 0, 2})
	got := mixed.NormalizedEntropy()
	if got <= 0 || got >= 1 {
		t.Errorf("entropy of mixed = %v, want in (0,1)", got)
	}
	empty := MustNew(t0, time.Hour, nil)
	if got := empty.NormalizedEntropy(); got != 0 {
		t.Errorf("entropy of empty = %v, want 0", got)
	}
}

func TestBlockQuantileBaseline(t *testing.T) {
	// Flat base 1.0 with a spike in the second block.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 1
	}
	for i := 12; i < 16; i++ {
		vals[i] = 10
	}
	s := MustNew(t0, time.Minute, vals)
	base, err := s.BlockQuantileBaseline(10, 0.25)
	if err != nil {
		t.Fatalf("BlockQuantileBaseline: %v", err)
	}
	if base.Len() != s.Len() {
		t.Fatal("length mismatch")
	}
	// The spike must not lift the baseline: every value stays near 1.
	for i := 0; i < base.Len(); i++ {
		if base.Value(i) < 0.99 || base.Value(i) > 1.01 {
			t.Fatalf("baseline[%d] = %v, want ~1", i, base.Value(i))
		}
	}
}

func TestBlockQuantileBaselineInterpolates(t *testing.T) {
	// Two blocks with different levels: values between centres interpolate.
	vals := append(make([]float64, 0, 20), make([]float64, 20)...)
	for i := 0; i < 10; i++ {
		vals[i] = 1
	}
	for i := 10; i < 20; i++ {
		vals[i] = 3
	}
	s := MustNew(t0, time.Minute, vals)
	base, err := s.BlockQuantileBaseline(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Block centres at 5 (value 1) and 15 (value 3); index 10 is halfway.
	if !almostEqual(base.Value(10), 2, 1e-9) {
		t.Errorf("midpoint = %v, want 2", base.Value(10))
	}
	// Edges clamp to the nearest anchor.
	if !almostEqual(base.Value(0), 1, 1e-9) || !almostEqual(base.Value(19), 3, 1e-9) {
		t.Errorf("edges = %v, %v", base.Value(0), base.Value(19))
	}
}

func TestBlockQuantileBaselineErrors(t *testing.T) {
	s := MustNew(t0, time.Minute, []float64{1, 2, 3})
	if _, err := s.BlockQuantileBaseline(0, 0.5); !errors.Is(err, ErrRange) {
		t.Errorf("window 0: %v", err)
	}
	if _, err := s.BlockQuantileBaseline(10, 0.5); !errors.Is(err, ErrRange) {
		t.Errorf("window > n: %v", err)
	}
	if _, err := s.BlockQuantileBaseline(2, -0.1); !errors.Is(err, ErrRange) {
		t.Errorf("bad quantile: %v", err)
	}
}

func TestBlockQuantileBaselineAllMissing(t *testing.T) {
	s := MustNew(t0, time.Minute, []float64{math.NaN(), math.NaN()})
	base, err := s.BlockQuantileBaseline(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(base.Value(0)) {
		t.Errorf("all-missing baseline = %v", base.Value(0))
	}
}
