package timeseries

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/num"
)

// Statistics in this file skip NaN (missing) observations. When every
// observation is missing the neutral value 0 (or NaN where documented) is
// returned rather than an error, because callers typically fold statistics
// into larger computations.

// Mean reports the arithmetic mean of non-missing values, or NaN when there
// are none.
func (s *Series) Mean() float64 {
	var sum float64
	var n int
	for _, v := range s.values {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Std reports the population standard deviation of non-missing values, or
// NaN when there are none.
func (s *Series) Std() float64 {
	m := s.Mean()
	if math.IsNaN(m) {
		return math.NaN()
	}
	var sum float64
	var n int
	for _, v := range s.values {
		if !math.IsNaN(v) {
			d := v - m
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n))
}

// Min reports the smallest non-missing value, or NaN when there are none.
func (s *Series) Min() float64 {
	min := math.NaN()
	for _, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(min) || v < min {
			min = v
		}
	}
	return min
}

// Max reports the largest non-missing value, or NaN when there are none.
func (s *Series) Max() float64 {
	max := math.NaN()
	for _, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(max) || v > max {
			max = v
		}
	}
	return max
}

// Quantile reports the q-quantile (0 <= q <= 1) of non-missing values using
// linear interpolation between order statistics, or NaN when there are none.
func (s *Series) Quantile(q float64) float64 {
	var vals []float64
	for _, v := range s.values {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sort.Float64s(vals)
	if len(vals) == 1 {
		return vals[0]
	}
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Sparseness reports the fraction of non-missing values whose magnitude is
// at most eps. The paper lists sparseness among the statistics one would
// compare against real flex-offer data (§3.1).
func (s *Series) Sparseness(eps float64) float64 {
	var zero, n int
	for _, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		n++
		if math.Abs(v) <= eps {
			zero++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(zero) / float64(n)
}

// Autocorrelation reports the lag-k autocorrelation coefficient of the
// series. Missing values propagate: pairs with a NaN member are skipped.
// Returns NaN for out-of-range lags or constant series.
func (s *Series) Autocorrelation(lag int) float64 {
	n := len(s.values)
	if lag < 0 || lag >= n {
		return math.NaN()
	}
	m := s.Mean()
	if math.IsNaN(m) {
		return math.NaN()
	}
	var numer, den float64
	for i := 0; i < n; i++ {
		v := s.values[i]
		if math.IsNaN(v) {
			continue
		}
		d := v - m
		den += d * d
		if i+lag < n && !math.IsNaN(s.values[i+lag]) {
			numer += d * (s.values[i+lag] - m)
		}
	}
	if num.Zero(den) {
		return math.NaN()
	}
	return numer / den
}

// Pearson reports the Pearson correlation coefficient between two aligned
// series, skipping pairs with missing members. Returns NaN when either
// series is constant over the compared pairs or the series are misaligned.
func Pearson(a, b *Series) float64 {
	if !a.aligned(b) {
		return math.NaN()
	}
	var sx, sy, sxx, syy, sxy float64
	var n int
	for i := range a.values {
		x, y := a.values[i], b.values[i]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	nf := float64(n)
	cov := sxy/nf - (sx/nf)*(sy/nf)
	vx := sxx/nf - (sx/nf)*(sx/nf)
	vy := syy/nf - (sy/nf)*(sy/nf)
	if vx <= 0 || vy <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// PeakToAverage reports the ratio of the maximum to the mean value — a
// simple peakiness measure used when judging how concentrated consumption
// (or extracted flexibility) is. Returns NaN for empty or zero-mean series.
func (s *Series) PeakToAverage() float64 {
	m := s.Mean()
	if math.IsNaN(m) || num.Zero(m) {
		return math.NaN()
	}
	return s.Max() / m
}

// NormalizedEntropy reports the Shannon entropy of the value distribution
// across intervals, normalised to [0, 1] by log(n). A uniform series scores
// 1; a series with all energy in a single interval scores 0. Negative and
// missing values are treated as zero mass. Used to quantify how "uniformly
// dispatched within the day" a profile is (the paper's complaint about the
// random baseline, §1).
func (s *Series) NormalizedEntropy() float64 {
	n := len(s.values)
	if n <= 1 {
		return 0
	}
	var total float64
	for _, v := range s.values {
		if !math.IsNaN(v) && v > 0 {
			total += v
		}
	}
	if num.Zero(total) {
		return 0
	}
	var h float64
	for _, v := range s.values {
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		p := v / total
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(n))
}

// BlockQuantileBaseline estimates a slowly varying baseline: the series is
// partitioned into blocks of `window` intervals, each block contributes its
// q-quantile at the block centre, and the baseline interpolates linearly
// between centres (clamped flat at the edges). Unlike a per-phase profile,
// this baseline cannot absorb loads that recur at the same time every day —
// the classic blind spot of phase-median base estimation in load
// disaggregation. Returns an error for invalid windows or quantiles.
func (s *Series) BlockQuantileBaseline(window int, q float64) (*Series, error) {
	n := s.Len()
	if window < 1 || window > n {
		return nil, fmt.Errorf("%w: window %d for series of %d", ErrRange, window, n)
	}
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("%w: quantile %v", ErrRange, q)
	}
	type anchor struct {
		center int
		value  float64
	}
	var anchors []anchor
	for from := 0; from < n; from += window {
		to := from + window
		if to > n {
			to = n
		}
		block, err := s.Slice(from, to)
		if err != nil {
			return nil, err
		}
		v := block.Quantile(q)
		if math.IsNaN(v) {
			continue // all-missing block contributes no anchor
		}
		anchors = append(anchors, anchor{center: (from + to) / 2, value: v})
	}
	out := make([]float64, n)
	if len(anchors) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return &Series{start: s.start, resolution: s.resolution, values: out}, nil
	}
	ai := 0
	for i := 0; i < n; i++ {
		for ai+1 < len(anchors) && anchors[ai+1].center <= i {
			ai++
		}
		switch {
		case i <= anchors[0].center:
			out[i] = anchors[0].value
		case i >= anchors[len(anchors)-1].center:
			out[i] = anchors[len(anchors)-1].value
		default:
			a, b := anchors[ai], anchors[ai+1]
			frac := float64(i-a.center) / float64(b.center-a.center)
			out[i] = a.value + frac*(b.value-a.value)
		}
	}
	return &Series{start: s.start, resolution: s.resolution, values: out}, nil
}

// DominantPeriod searches lags in [minLag, maxLag] and reports the lag with
// the highest autocorrelation together with that coefficient. It is the
// periodicity detector used by the frequency-based extraction to estimate
// appliance usage periods. To avoid picking points on the decaying shoulder
// of lag 0, lags before the first zero crossing of the ACF are skipped when
// a crossing exists inside the range. Returns (0, NaN) when the range is
// empty or invalid.
func (s *Series) DominantPeriod(minLag, maxLag int) (int, float64) {
	if minLag < 1 || maxLag < minLag || maxLag >= len(s.values) {
		return 0, math.NaN()
	}
	acfs := make([]float64, maxLag+1)
	for lag := minLag; lag <= maxLag; lag++ {
		acfs[lag] = s.Autocorrelation(lag)
	}
	// Skip the shoulder: start searching after the ACF first dips <= 0.
	searchFrom := minLag
	for lag := minLag; lag <= maxLag; lag++ {
		if !math.IsNaN(acfs[lag]) && acfs[lag] <= 0 {
			searchFrom = lag + 1
			break
		}
	}
	if searchFrom > maxLag {
		searchFrom = minLag
	}
	bestLag, bestACF := 0, math.Inf(-1)
	for lag := searchFrom; lag <= maxLag; lag++ {
		if !math.IsNaN(acfs[lag]) && acfs[lag] > bestACF {
			bestLag, bestACF = lag, acfs[lag]
		}
	}
	if bestLag == 0 {
		return 0, math.NaN()
	}
	return bestLag, bestACF
}
