package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDownsample(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	d, err := s.Downsample(4)
	if err != nil {
		t.Fatalf("Downsample: %v", err)
	}
	if d.Len() != 2 || d.Value(0) != 10 || d.Value(1) != 26 {
		t.Errorf("Downsample = %v", d.Values())
	}
	if d.Resolution() != time.Hour {
		t.Errorf("Downsample resolution = %v, want 1h", d.Resolution())
	}
	if _, err := s.Downsample(0); !errors.Is(err, ErrResolution) {
		t.Errorf("Downsample(0) err = %v, want ErrResolution", err)
	}
}

func TestDownsamplePartialTrailingGroup(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1, 2, 3, 4, 5})
	d, err := s.Downsample(4)
	if err != nil {
		t.Fatalf("Downsample: %v", err)
	}
	if d.Len() != 2 || d.Value(1) != 5 {
		t.Errorf("Downsample partial = %v", d.Values())
	}
}

func TestDownsampleMissing(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1, math.NaN(), math.NaN(), math.NaN()})
	d, _ := s.Downsample(2)
	if d.Value(0) != 1 {
		t.Errorf("group with partial data = %v, want 1", d.Value(0))
	}
	if !math.IsNaN(d.Value(1)) {
		t.Errorf("all-missing group = %v, want NaN", d.Value(1))
	}
}

func TestUpsampleConservesEnergy(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{4, 8})
	u, err := s.Upsample(4)
	if err != nil {
		t.Fatalf("Upsample: %v", err)
	}
	if u.Len() != 8 || u.Value(0) != 1 || u.Value(4) != 2 {
		t.Errorf("Upsample = %v", u.Values())
	}
	if !almostEqual(u.Total(), s.Total(), 1e-9) {
		t.Errorf("Upsample total = %v, want %v", u.Total(), s.Total())
	}
	if u.Resolution() != 15*time.Minute {
		t.Errorf("Upsample resolution = %v", u.Resolution())
	}
}

func TestUpsampleMissing(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN()})
	u, _ := s.Upsample(2)
	if !math.IsNaN(u.Value(0)) || !math.IsNaN(u.Value(1)) {
		t.Errorf("Upsample of NaN = %v", u.Values())
	}
}

func TestResampleTo(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1, 2, 3, 4})
	same, err := s.ResampleTo(15 * time.Minute)
	if err != nil || same.Len() != 4 {
		t.Fatalf("ResampleTo same = %v, %v", same, err)
	}
	hourly, err := s.ResampleTo(time.Hour)
	if err != nil || hourly.Len() != 1 || hourly.Value(0) != 10 {
		t.Fatalf("ResampleTo hour = %v, %v", hourly, err)
	}
	fine, err := s.ResampleTo(5 * time.Minute)
	if err != nil || fine.Len() != 12 {
		t.Fatalf("ResampleTo 5m = %v, %v", fine, err)
	}
	if _, err := s.ResampleTo(40 * time.Minute); !errors.Is(err, ErrResolution) {
		t.Errorf("non-multiple ResampleTo err = %v, want ErrResolution", err)
	}
	if _, err := s.ResampleTo(0); !errors.Is(err, ErrResolution) {
		t.Errorf("zero ResampleTo err = %v, want ErrResolution", err)
	}
}

// Property: downsampling conserves total energy for any non-negative series
// whose length is a multiple of the factor.
func TestDownsampleConservesEnergyProperty(t *testing.T) {
	f := func(seed int64, factorRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		factor := int(factorRaw%8) + 1
		n := factor * (rng.Intn(20) + 1)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 10
		}
		s := MustNew(t0, time.Minute, vals)
		d, err := s.Downsample(factor)
		if err != nil {
			return false
		}
		return almostEqual(d.Total(), s.Total(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: upsample then downsample is the identity (energy per original
// interval is restored).
func TestUpDownRoundTripProperty(t *testing.T) {
	f := func(seed int64, factorRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		factor := int(factorRaw%6) + 1
		n := rng.Intn(30) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 5
		}
		s := MustNew(t0, time.Hour, vals)
		u, err := s.Upsample(factor)
		if err != nil {
			return false
		}
		d, err := u.Downsample(factor)
		if err != nil {
			return false
		}
		if d.Len() != s.Len() {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEqual(d.Value(i), s.Value(i), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
