package timeseries

import (
	"math"
	"testing"
	"time"
)

func TestCountMissing(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), 2, math.NaN()})
	if got := s.CountMissing(); got != 2 {
		t.Errorf("CountMissing = %d, want 2", got)
	}
}

func TestFillLinearInterior(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), math.NaN(), 4})
	s.FillLinear()
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if !almostEqual(s.Value(i), w, 1e-12) {
			t.Errorf("FillLinear[%d] = %v, want %v", i, s.Value(i), w)
		}
	}
}

func TestFillLinearEdges(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN(), 2, math.NaN(), 6, math.NaN()})
	s.FillLinear()
	want := []float64{2, 2, 4, 6, 6}
	for i, w := range want {
		if !almostEqual(s.Value(i), w, 1e-12) {
			t.Errorf("FillLinear edges[%d] = %v, want %v", i, s.Value(i), w)
		}
	}
}

func TestFillLinearAllMissing(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN(), math.NaN()})
	s.FillLinear()
	if s.CountMissing() != 2 {
		t.Error("FillLinear invented values for an all-missing series")
	}
}

func TestFillSeasonal(t *testing.T) {
	// Period 2: phase 0 mean = 10, phase 1 mean = 20.
	s := MustNew(t0, time.Hour, []float64{10, 20, math.NaN(), math.NaN(), 10, 20})
	s.FillSeasonal(2)
	if !almostEqual(s.Value(2), 10, 1e-12) || !almostEqual(s.Value(3), 20, 1e-12) {
		t.Errorf("FillSeasonal = %v", s.Values())
	}
}

func TestFillSeasonalFallbackToGlobalMean(t *testing.T) {
	// Phase 1 has no observations; falls back to global mean of phase-0 data.
	s := MustNew(t0, time.Hour, []float64{4, math.NaN(), 8, math.NaN()})
	s.FillSeasonal(2)
	if !almostEqual(s.Value(1), 6, 1e-12) || !almostEqual(s.Value(3), 6, 1e-12) {
		t.Errorf("FillSeasonal fallback = %v", s.Values())
	}
}

func TestDisaggregateWithProfile(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{12})
	d, err := s.DisaggregateWith(4, []float64{1, 2, 3, 0})
	if err != nil {
		t.Fatalf("DisaggregateWith: %v", err)
	}
	want := []float64{2, 4, 6, 0}
	for i, w := range want {
		if !almostEqual(d.Value(i), w, 1e-12) {
			t.Errorf("disagg[%d] = %v, want %v", i, d.Value(i), w)
		}
	}
	if !almostEqual(d.Total(), s.Total(), 1e-9) {
		t.Errorf("disagg total = %v, want %v", d.Total(), s.Total())
	}
	if d.Resolution() != 15*time.Minute {
		t.Errorf("disagg resolution = %v", d.Resolution())
	}
}

func TestDisaggregateZeroWeightsEvenSplit(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{8})
	d, err := s.DisaggregateWith(4, []float64{0, 0, 0, 0})
	if err != nil {
		t.Fatalf("DisaggregateWith zero weights: %v", err)
	}
	for i := 0; i < 4; i++ {
		if !almostEqual(d.Value(i), 2, 1e-12) {
			t.Errorf("even split[%d] = %v, want 2", i, d.Value(i))
		}
	}
}

func TestDisaggregateErrors(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{8})
	if _, err := s.DisaggregateWith(0, nil); err == nil {
		t.Error("factor 0 succeeded")
	}
	if _, err := s.DisaggregateWith(2, []float64{1}); err == nil {
		t.Error("wrong weight length succeeded")
	}
	if _, err := s.DisaggregateWith(2, []float64{1, -1}); err == nil {
		t.Error("negative weight succeeded")
	}
}

func TestDisaggregateMissing(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{math.NaN()})
	d, err := s.DisaggregateWith(2, []float64{1, 1})
	if err != nil {
		t.Fatalf("DisaggregateWith: %v", err)
	}
	if !math.IsNaN(d.Value(0)) || !math.IsNaN(d.Value(1)) {
		t.Errorf("disagg of NaN = %v", d.Values())
	}
}
