package timeseries_test

import (
	"fmt"
	"time"

	"repro/internal/timeseries"
)

// ExampleSeries_Downsample converts a 15-minute consumption series to
// hourly resolution; downsampling sums energy, so the total is conserved.
func ExampleSeries_Downsample() {
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	quarterHourly, _ := timeseries.New(start, 15*time.Minute,
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.5, 0.5, 0.5})
	hourly, _ := quarterHourly.Downsample(4)
	fmt.Printf("hourly values: %.1f and %.1f kWh\n", hourly.Value(0), hourly.Value(1))
	fmt.Printf("totals: %.1f == %.1f\n", quarterHourly.Total(), hourly.Total())
	// Output:
	// hourly values: 1.0 and 2.0 kWh
	// totals: 3.0 == 3.0
}

// ExampleSeries_Days splits a series into calendar days for per-day
// processing (the unit the peak-based extraction works on).
func ExampleSeries_Days() {
	start := time.Date(2012, 6, 4, 22, 0, 0, 0, time.UTC) // 22:00
	s, _ := timeseries.New(start, time.Hour, make([]float64, 28))
	for _, day := range s.Days() {
		fmt.Printf("%s: %d hours\n", day.Start().Format("Jan 2"), day.Len())
	}
	// Output:
	// Jun 4: 2 hours
	// Jun 5: 24 hours
	// Jun 6: 2 hours
}
