package timeseries

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that everything it
// accepts round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,kwh\n2012-06-04T00:00:00Z,1.5\n2012-06-04T00:15:00Z,2\n")
	f.Add("timestamp,kwh\n2012-06-04T00:00:00Z,\n")
	f.Add("timestamp,kwh\n")
	f.Add("")
	f.Add("garbage")
	f.Add("timestamp,kwh\n2012-06-04T00:00:00Z,1\n2012-06-04T00:00:00Z,1\n")
	f.Add("timestamp,kwh\nnot-a-time,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted series must survive a write/read cycle unchanged.
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV after accept: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if back.Len() != s.Len() || !back.Start().Equal(s.Start()) {
			t.Fatalf("round trip changed shape: %v vs %v", back, s)
		}
	})
}

// FuzzSeriesJSON checks the JSON unmarshaller never panics and accepted
// payloads round-trip.
func FuzzSeriesJSON(f *testing.F) {
	f.Add(`{"start":"2012-06-04T00:00:00Z","resolution":"15m0s","values":[1,null,3]}`)
	f.Add(`{"start":"2012-06-04T00:00:00Z","resolution":"-5m","values":[]}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"start":1}`)
	f.Fuzz(func(t *testing.T, input string) {
		var s Series
		if err := s.UnmarshalJSON([]byte(input)); err != nil {
			return
		}
		data, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal after accept: %v", err)
		}
		var back Series
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), s.Len())
		}
	})
}
