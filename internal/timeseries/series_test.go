package timeseries

import (
	"errors"
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestNewValidates(t *testing.T) {
	if _, err := New(t0, 0, []float64{1}); !errors.Is(err, ErrResolution) {
		t.Fatalf("New with zero resolution: err = %v, want ErrResolution", err)
	}
	if _, err := New(t0, -time.Minute, []float64{1}); !errors.Is(err, ErrResolution) {
		t.Fatalf("New with negative resolution: err = %v, want ErrResolution", err)
	}
	s, err := New(t0, 15*time.Minute, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestNewCopiesValues(t *testing.T) {
	vals := []float64{1, 2, 3}
	s := MustNew(t0, time.Hour, vals)
	vals[0] = 99
	if s.Value(0) != 1 {
		t.Errorf("New did not copy values: Value(0) = %v", s.Value(0))
	}
	got := s.Values()
	got[1] = 99
	if s.Value(1) != 2 {
		t.Errorf("Values did not copy: Value(1) = %v", s.Value(1))
	}
}

func TestStartNormalizedToUTC(t *testing.T) {
	loc := time.FixedZone("CET", 3600)
	s := MustNew(time.Date(2012, 6, 1, 1, 0, 0, 0, loc), time.Hour, []float64{1})
	if got := s.Start(); !got.Equal(t0) || got.Location() != time.UTC {
		t.Errorf("Start = %v, want %v in UTC", got, t0)
	}
}

func TestEndAndTimeAt(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, make([]float64, 96))
	if want := t0.Add(24 * time.Hour); !s.End().Equal(want) {
		t.Errorf("End = %v, want %v", s.End(), want)
	}
	if want := t0.Add(30 * time.Minute); !s.TimeAt(2).Equal(want) {
		t.Errorf("TimeAt(2) = %v, want %v", s.TimeAt(2), want)
	}
}

func TestIndexOfAndAt(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{10, 20, 30})
	tests := []struct {
		t      time.Time
		wantI  int
		wantOK bool
	}{
		{t0, 0, true},
		{t0.Add(59 * time.Minute), 0, true},
		{t0.Add(time.Hour), 1, true},
		{t0.Add(3 * time.Hour), 0, false},
		{t0.Add(-time.Second), 0, false},
	}
	for _, tc := range tests {
		i, ok := s.IndexOf(tc.t)
		if ok != tc.wantOK || (ok && i != tc.wantI) {
			t.Errorf("IndexOf(%v) = (%d, %v), want (%d, %v)", tc.t, i, ok, tc.wantI, tc.wantOK)
		}
	}
	if v, ok := s.At(t0.Add(90 * time.Minute)); !ok || v != 20 {
		t.Errorf("At = (%v, %v), want (20, true)", v, ok)
	}
}

func TestSliceAndWindow(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{0, 1, 2, 3, 4, 5})
	sub, err := s.Slice(2, 5)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if sub.Len() != 3 || sub.Value(0) != 2 || !sub.Start().Equal(t0.Add(2*time.Hour)) {
		t.Errorf("Slice(2,5) = %v", sub)
	}
	if _, err := s.Slice(4, 2); !errors.Is(err, ErrRange) {
		t.Errorf("inverted Slice err = %v, want ErrRange", err)
	}
	if _, err := s.Slice(0, 7); !errors.Is(err, ErrRange) {
		t.Errorf("overlong Slice err = %v, want ErrRange", err)
	}

	win, err := s.Window(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if win.Len() != 2 || win.Value(0) != 1 {
		t.Errorf("Window = %v", win)
	}
	// Window clamps to the series extent.
	win, err = s.Window(t0.Add(-time.Hour), t0.Add(100*time.Hour))
	if err != nil {
		t.Fatalf("clamped Window: %v", err)
	}
	if win.Len() != 6 {
		t.Errorf("clamped Window len = %d, want 6", win.Len())
	}
	if _, err := s.Window(t0.Add(10*time.Hour), t0.Add(12*time.Hour)); !errors.Is(err, ErrRange) {
		t.Errorf("out-of-range Window err = %v, want ErrRange", err)
	}
	if _, err := s.Window(t0.Add(2*time.Hour), t0); !errors.Is(err, ErrRange) {
		t.Errorf("inverted Window err = %v, want ErrRange", err)
	}
}

func TestWindowPartialIntervals(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{0, 1, 2, 3})
	// A window starting mid-interval should start at the next full interval,
	// and a window ending mid-interval should include that interval.
	win, err := s.Window(t0.Add(30*time.Minute), t0.Add(150*time.Minute))
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if !win.Start().Equal(t0.Add(time.Hour)) || win.Len() != 2 {
		t.Errorf("partial Window = %v (start %v, len %d)", win, win.Start(), win.Len())
	}
}

func TestArithmetic(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1, 2, 3})
	b := MustNew(t0, time.Hour, []float64{10, 20, 30})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.Value(2) != 33 {
		t.Errorf("Add value = %v, want 33", sum.Value(2))
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff.Value(1) != 18 {
		t.Errorf("Sub value = %v, want 18", diff.Value(1))
	}
	// Source series untouched.
	if a.Value(0) != 1 || b.Value(0) != 10 {
		t.Error("Add/Sub mutated operands")
	}
	c := MustNew(t0.Add(time.Hour), time.Hour, []float64{1, 2, 3})
	if _, err := a.Add(c); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned Add err = %v, want ErrMisaligned", err)
	}
	d := MustNew(t0, 30*time.Minute, []float64{1, 2, 3})
	if _, err := a.Add(d); !errors.Is(err, ErrMisaligned) {
		t.Errorf("different-resolution Add err = %v, want ErrMisaligned", err)
	}
}

func TestScaleAddScalarClampMin(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, -2, 3})
	s.Scale(2).AddScalar(1)
	want := []float64{3, -3, 7}
	for i, w := range want {
		if s.Value(i) != w {
			t.Errorf("Value(%d) = %v, want %v", i, s.Value(i), w)
		}
	}
	s.ClampMin(0)
	if s.Value(1) != 0 || s.Value(2) != 7 {
		t.Errorf("ClampMin: got %v", s.Values())
	}
}

func TestTotalSkipsNaN(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), 3})
	if got := s.Total(); got != 4 {
		t.Errorf("Total = %v, want 4", got)
	}
}

func TestSum(t *testing.T) {
	a := MustNew(t0, time.Hour, []float64{1, 2})
	b := MustNew(t0, time.Hour, []float64{3, 4})
	c := MustNew(t0, time.Hour, []float64{5, 6})
	got, err := Sum(a, b, c)
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	if got.Value(0) != 9 || got.Value(1) != 12 {
		t.Errorf("Sum values = %v", got.Values())
	}
	if _, err := Sum(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Sum err = %v, want ErrEmpty", err)
	}
	d := MustNew(t0, 30*time.Minute, []float64{1, 2})
	if _, err := Sum(a, d); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned Sum err = %v, want ErrMisaligned", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 2})
	c := s.Clone()
	c.SetValue(0, 99)
	if s.Value(0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestAppend(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1})
	s.Append(2, 3)
	if s.Len() != 3 || s.Value(2) != 3 {
		t.Errorf("Append: %v", s.Values())
	}
}

func TestZeros(t *testing.T) {
	s, err := Zeros(t0, time.Hour, 5)
	if err != nil {
		t.Fatalf("Zeros: %v", err)
	}
	if s.Len() != 5 || s.Total() != 0 {
		t.Errorf("Zeros = %v", s)
	}
	if _, err := Zeros(t0, time.Hour, -1); err == nil {
		t.Error("Zeros(-1) succeeded, want error")
	}
}

func TestStringSummary(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, 2})
	str := s.String()
	if str == "" {
		t.Error("String() empty")
	}
}
