package timeseries

import (
	"math"
	"testing"
	"time"
)

// synthetic series with known trend and season.
func trendSeason(n, period int, slope float64, amp float64) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 + slope*float64(i) + amp*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	return vals
}

func TestDecomposeRecoversComponents(t *testing.T) {
	const period = 24
	s := MustNew(t0, time.Hour, trendSeason(24*14, period, 0.01, 3))
	d, err := Decompose(s, period)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if d.Period != period || len(d.SeasonalIndex) != period {
		t.Fatalf("Period = %d, index len = %d", d.Period, len(d.SeasonalIndex))
	}
	// Seasonal index should be near-sinusoidal with amplitude ~3.
	var maxIdx float64
	for _, v := range d.SeasonalIndex {
		if v > maxIdx {
			maxIdx = v
		}
	}
	if maxIdx < 2.5 || maxIdx > 3.5 {
		t.Errorf("seasonal amplitude = %v, want ~3", maxIdx)
	}
	// Seasonal index sums to ~0 (centred).
	var sum float64
	for _, v := range d.SeasonalIndex {
		sum += v
	}
	if !almostEqual(sum, 0, 1e-9) {
		t.Errorf("seasonal index sum = %v, want 0", sum)
	}
	// Residuals should be tiny for this noiseless construction.
	var maxResid float64
	for i := 0; i < d.Residual.Len(); i++ {
		if v := math.Abs(d.Residual.Value(i)); !math.IsNaN(v) && v > maxResid {
			maxResid = v
		}
	}
	if maxResid > 0.5 {
		t.Errorf("max residual = %v, want small", maxResid)
	}
	// value = trend + seasonal + residual wherever trend is defined.
	for i := 0; i < s.Len(); i++ {
		tr := d.Trend.Value(i)
		if math.IsNaN(tr) {
			continue
		}
		recon := tr + d.Seasonal.Value(i) + d.Residual.Value(i)
		if !almostEqual(recon, s.Value(i), 1e-9) {
			t.Fatalf("reconstruction at %d: %v != %v", i, recon, s.Value(i))
		}
	}
}

func TestDecomposeOddPeriod(t *testing.T) {
	const period = 7
	s := MustNew(t0, time.Hour, trendSeason(7*10, period, 0, 2))
	d, err := Decompose(s, period)
	if err != nil {
		t.Fatalf("Decompose odd period: %v", err)
	}
	for i := 0; i < s.Len(); i++ {
		tr := d.Trend.Value(i)
		if math.IsNaN(tr) {
			continue
		}
		recon := tr + d.Seasonal.Value(i) + d.Residual.Value(i)
		if !almostEqual(recon, s.Value(i), 1e-9) {
			t.Fatalf("odd-period reconstruction at %d", i)
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	s := MustNew(t0, time.Hour, trendSeason(20, 24, 0, 1))
	if _, err := Decompose(s, 24); err == nil {
		t.Error("Decompose with < 2 periods succeeded")
	}
	if _, err := Decompose(s, 1); err == nil {
		t.Error("Decompose with period 1 succeeded")
	}
	withNaN := MustNew(t0, time.Hour, append(trendSeason(48, 24, 0, 1), math.NaN()))
	if _, err := Decompose(withNaN, 24); err == nil {
		t.Error("Decompose with NaN succeeded")
	}
}

func TestTypicalProfile(t *testing.T) {
	// Two days of a 4-interval pattern.
	s := MustNew(t0, 6*time.Hour, []float64{1, 2, 3, 4, 3, 4, 5, 6})
	prof, err := TypicalProfile(s, 4)
	if err != nil {
		t.Fatalf("TypicalProfile: %v", err)
	}
	want := []float64{2, 3, 4, 5}
	for i, w := range want {
		if !almostEqual(prof[i], w, 1e-12) {
			t.Errorf("profile[%d] = %v, want %v", i, prof[i], w)
		}
	}
	if _, err := TypicalProfile(s, 0); err == nil {
		t.Error("TypicalProfile period 0 succeeded")
	}
	empty := MustNew(t0, time.Hour, nil)
	if _, err := TypicalProfile(empty, 4); err == nil {
		t.Error("TypicalProfile of empty series succeeded")
	}
}

func TestTypicalProfileMissingPhase(t *testing.T) {
	s := MustNew(t0, time.Hour, []float64{1, math.NaN(), 1, math.NaN()})
	prof, err := TypicalProfile(s, 2)
	if err != nil {
		t.Fatalf("TypicalProfile: %v", err)
	}
	if prof[0] != 1 || !math.IsNaN(prof[1]) {
		t.Errorf("profile = %v, want [1 NaN]", prof)
	}
}

func TestMedianProfile(t *testing.T) {
	// Phase 0 observations: 1, 1, 100 (outlier) → median 1.
	s := MustNew(t0, time.Hour, []float64{1, 5, 1, 5, 100, 5})
	prof, err := MedianProfile(s, 2)
	if err != nil {
		t.Fatalf("MedianProfile: %v", err)
	}
	if prof[0] != 1 || prof[1] != 5 {
		t.Errorf("median profile = %v, want [1 5]", prof)
	}
	if _, err := MedianProfile(s, 0); err == nil {
		t.Error("MedianProfile period 0 succeeded")
	}
}

func TestMedianHelper(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range tests {
		if got := median(append([]float64(nil), tc.in...)); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
