package timeseries

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// CSV layout: a header row "timestamp,kwh" followed by one row per interval
// with an RFC 3339 timestamp and a decimal energy value. Missing values are
// written as empty fields and parsed back to NaN. The resolution is inferred
// from the first two rows and validated against every subsequent row, so a
// file with gaps or irregular sampling is rejected rather than silently
// misread.

// WriteCSV writes the series to w in the CSV layout described above.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "kwh"}); err != nil {
		return fmt.Errorf("timeseries: write csv header: %w", err)
	}
	for i, v := range s.values {
		field := ""
		if !math.IsNaN(v) {
			field = strconv.FormatFloat(v, 'f', -1, 64)
		}
		if err := cw.Write([]string{s.TimeAt(i).Format(time.RFC3339), field}); err != nil {
			return fmt.Errorf("timeseries: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series from r in the layout written by WriteCSV.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("timeseries: read csv header: %w", err)
	}
	if header[0] != "timestamp" {
		return nil, fmt.Errorf("timeseries: unexpected csv header %q", header)
	}
	var (
		start      time.Time
		prev       time.Time
		resolution time.Duration
		values     []float64
	)
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("timeseries: read csv row %d: %w", row, err)
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad timestamp %q: %w", row, rec[0], err)
		}
		v := math.NaN()
		if rec[1] != "" {
			v, err = strconv.ParseFloat(rec[1], 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: row %d: bad value %q: %w", row, rec[1], err)
			}
		}
		switch len(values) {
		case 0:
			start = ts
		case 1:
			resolution = ts.Sub(prev)
			if resolution <= 0 {
				return nil, fmt.Errorf("%w: inferred %v", ErrResolution, resolution)
			}
		default:
			if ts.Sub(prev) != resolution {
				return nil, fmt.Errorf("timeseries: row %d: irregular step %v (expected %v)", row, ts.Sub(prev), resolution)
			}
		}
		prev = ts
		values = append(values, v)
	}
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	if len(values) == 1 {
		resolution = 15 * time.Minute // single-row files default to the MIRABEL granularity
	}
	return New(start, resolution, values)
}

// seriesJSON is the wire representation of a Series. NaN is not valid JSON,
// so missing values are carried as nulls via *float64.
type seriesJSON struct {
	Start      time.Time  `json:"start"`
	Resolution string     `json:"resolution"`
	Values     []*float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler.
func (s *Series) MarshalJSON() ([]byte, error) {
	out := seriesJSON{Start: s.start, Resolution: s.resolution.String(), Values: make([]*float64, len(s.values))}
	for i := range s.values {
		if !math.IsNaN(s.values[i]) {
			v := s.values[i]
			out.Values[i] = &v
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Series) UnmarshalJSON(data []byte) error {
	var in seriesJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("timeseries: unmarshal: %w", err)
	}
	res, err := time.ParseDuration(in.Resolution)
	if err != nil {
		return fmt.Errorf("timeseries: unmarshal resolution: %w", err)
	}
	if res <= 0 {
		return fmt.Errorf("%w: %v", ErrResolution, res)
	}
	vals := make([]float64, len(in.Values))
	for i, p := range in.Values {
		if p == nil {
			vals[i] = math.NaN()
		} else {
			vals[i] = *p
		}
	}
	s.start = in.Start.UTC()
	s.resolution = res
	s.values = vals
	return nil
}
