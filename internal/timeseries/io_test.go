package timeseries

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1.5, math.NaN(), 0, 2.25})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.Start().Equal(s.Start()) || got.Resolution() != s.Resolution() || got.Len() != s.Len() {
		t.Fatalf("round trip shape mismatch: %v vs %v", got, s)
	}
	for i := 0; i < s.Len(); i++ {
		if !almostEqual(got.Value(i), s.Value(i), 1e-12) {
			t.Errorf("round trip value[%d] = %v, want %v", i, got.Value(i), s.Value(i))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "foo,bar\n"},
		{"no rows", "timestamp,kwh\n"},
		{"bad timestamp", "timestamp,kwh\nnot-a-time,1\n"},
		{"bad value", "timestamp,kwh\n2012-06-01T00:00:00Z,abc\n"},
		{"irregular step", "timestamp,kwh\n2012-06-01T00:00:00Z,1\n2012-06-01T00:15:00Z,2\n2012-06-01T00:45:00Z,3\n"},
		{"backwards time", "timestamp,kwh\n2012-06-01T00:15:00Z,1\n2012-06-01T00:00:00Z,2\n"},
		{"wrong field count", "timestamp,kwh\n2012-06-01T00:00:00Z,1,extra\n"},
	}
	for _, tc := range tests {
		if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadCSV succeeded, want error", tc.name)
		}
	}
}

func TestReadCSVSingleRowDefaultsResolution(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("timestamp,kwh\n2012-06-01T00:00:00Z,1.5\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if s.Resolution() != 15*time.Minute {
		t.Errorf("single-row resolution = %v, want 15m", s.Resolution())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := MustNew(t0, 15*time.Minute, []float64{1, math.NaN(), 3})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Series
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !got.Start().Equal(s.Start()) || got.Resolution() != s.Resolution() {
		t.Fatalf("JSON round trip shape: %v", &got)
	}
	for i := 0; i < s.Len(); i++ {
		if !almostEqual(got.Value(i), s.Value(i), 1e-12) {
			t.Errorf("JSON value[%d] = %v, want %v", i, got.Value(i), s.Value(i))
		}
	}
}

func TestUnmarshalJSONErrors(t *testing.T) {
	var s Series
	for _, in := range []string{
		`{`,
		`{"start":"2012-06-01T00:00:00Z","resolution":"nope","values":[]}`,
		`{"start":"2012-06-01T00:00:00Z","resolution":"-15m0s","values":[]}`,
	} {
		if err := s.UnmarshalJSON([]byte(in)); err == nil {
			t.Errorf("UnmarshalJSON(%q) succeeded, want error", in)
		}
	}
}

// Property: CSV round trip is the identity for random non-negative series.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		vals := make([]float64, n)
		for i := range vals {
			if rng.Float64() < 0.1 {
				vals[i] = math.NaN()
			} else {
				vals[i] = rng.Float64() * 10
			}
		}
		s := MustNew(t0, 15*time.Minute, vals)
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEqual(got.Value(i), s.Value(i), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
