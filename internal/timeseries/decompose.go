package timeseries

import (
	"fmt"
	"math"
)

// Decomposition holds the classical additive decomposition of a series into
// trend, seasonal and residual components (value = trend + seasonal +
// residual). The paper cites the trend/seasonal/error composition of time
// series [12] as the standard structure extraction tools build on.
type Decomposition struct {
	Trend    *Series
	Seasonal *Series
	Residual *Series
	// Period is the seasonal period in intervals (e.g. 96 for a daily
	// season at 15-minute resolution).
	Period int
	// SeasonalIndex holds the per-phase seasonal means (length Period,
	// centred to sum to zero).
	SeasonalIndex []float64
}

// Decompose performs classical additive decomposition with the given
// seasonal period (in intervals). The trend is a centred moving average of
// width period; the seasonal component is the per-phase mean of the
// detrended series, centred to zero mean; the residual is what remains.
// The series must contain at least two full periods and no missing values.
func Decompose(s *Series, period int) (*Decomposition, error) {
	n := s.Len()
	if period < 2 {
		return nil, fmt.Errorf("timeseries: decompose period %d < 2", period)
	}
	if n < 2*period {
		return nil, fmt.Errorf("timeseries: decompose needs >= %d points, have %d", 2*period, n)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(s.values[i]) {
			return nil, fmt.Errorf("timeseries: decompose requires no missing values (index %d)", i)
		}
	}

	// Centred moving average of width `period`. For even periods the
	// classical 2xMA is used (half weight on the edge points).
	trend := make([]float64, n)
	for i := range trend {
		trend[i] = math.NaN()
	}
	half := period / 2
	if period%2 == 1 {
		for i := half; i < n-half; i++ {
			var sum float64
			for j := i - half; j <= i+half; j++ {
				sum += s.values[j]
			}
			trend[i] = sum / float64(period)
		}
	} else {
		for i := half; i < n-half; i++ {
			sum := 0.5*s.values[i-half] + 0.5*s.values[i+half]
			for j := i - half + 1; j <= i+half-1; j++ {
				sum += s.values[j]
			}
			trend[i] = sum / float64(period)
		}
	}

	// Per-phase means of the detrended series.
	idx := make([]float64, period)
	cnt := make([]int, period)
	for i := 0; i < n; i++ {
		if math.IsNaN(trend[i]) {
			continue
		}
		p := i % period
		idx[p] += s.values[i] - trend[i]
		cnt[p]++
	}
	var mean float64
	for p := 0; p < period; p++ {
		if cnt[p] > 0 {
			idx[p] /= float64(cnt[p])
		}
		mean += idx[p]
	}
	mean /= float64(period)
	for p := range idx {
		idx[p] -= mean // centre so the seasonal component sums to ~0
	}

	seasonal := make([]float64, n)
	resid := make([]float64, n)
	for i := 0; i < n; i++ {
		seasonal[i] = idx[i%period]
		if math.IsNaN(trend[i]) {
			resid[i] = math.NaN()
		} else {
			resid[i] = s.values[i] - trend[i] - seasonal[i]
		}
	}

	mk := func(v []float64) *Series {
		return &Series{start: s.start, resolution: s.resolution, values: v}
	}
	return &Decomposition{
		Trend:         mk(trend),
		Seasonal:      mk(seasonal),
		Residual:      mk(resid),
		Period:        period,
		SeasonalIndex: idx,
	}, nil
}

// TypicalProfile computes the per-phase mean profile over the given period
// (in intervals): element p is the mean of all observations at phase p.
// Unlike Decompose it tolerates missing values, making it the workhorse for
// estimating "usual consumption" from historical data, as the multi-tariff
// extraction requires (§3.3). The returned slice has length period.
func TypicalProfile(s *Series, period int) ([]float64, error) {
	if period < 1 {
		return nil, fmt.Errorf("timeseries: profile period %d < 1", period)
	}
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	sums := make([]float64, period)
	cnts := make([]int, period)
	for i, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		p := i % period
		sums[p] += v
		cnts[p]++
	}
	for p := 0; p < period; p++ {
		if cnts[p] == 0 {
			sums[p] = math.NaN()
		} else {
			sums[p] /= float64(cnts[p])
		}
	}
	return sums, nil
}

// MedianProfile computes the per-phase median profile over the given period,
// which is more robust to occasional appliance activations than the mean and
// therefore preferred when estimating the inflexible base consumption.
func MedianProfile(s *Series, period int) ([]float64, error) {
	if period < 1 {
		return nil, fmt.Errorf("timeseries: profile period %d < 1", period)
	}
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	buckets := make([][]float64, period)
	for i, v := range s.values {
		if math.IsNaN(v) {
			continue
		}
		p := i % period
		buckets[p] = append(buckets[p], v)
	}
	out := make([]float64, period)
	for p := 0; p < period; p++ {
		out[p] = median(buckets[p])
	}
	return out, nil
}

// median reports the median of vals, or NaN when empty. vals is reordered.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	// Insertion sort: phase buckets are short (one per day of history).
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m]
	}
	return (vals[m-1] + vals[m]) / 2
}
