package forecast

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

// seasonalSeries builds n points of a pure period-p pattern plus trend.
func seasonalSeries(n, p int, slope float64) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 + slope*float64(i) + 3*math.Sin(2*math.Pi*float64(i)/float64(p))
	}
	return timeseries.MustNew(t0, time.Hour, vals)
}

func TestSeasonalNaivePerfectOnPeriodicData(t *testing.T) {
	s := seasonalSeries(96, 24, 0)
	m := &SeasonalNaive{Period: 24}
	if err := m.Fit(s); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	fc, err := m.Forecast(24)
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	if !fc.Start().Equal(s.End()) {
		t.Errorf("forecast start = %v, want %v", fc.Start(), s.End())
	}
	for i := 0; i < 24; i++ {
		want := s.Value(72 + i)
		if math.Abs(fc.Value(i)-want) > 1e-9 {
			t.Fatalf("forecast[%d] = %v, want %v", i, fc.Value(i), want)
		}
	}
	// Horizon beyond one season repeats the season.
	fc2, _ := m.Forecast(48)
	if math.Abs(fc2.Value(0)-fc2.Value(24)) > 1e-9 {
		t.Error("seasonal naive does not repeat beyond one season")
	}
}

func TestSeasonalNaiveErrors(t *testing.T) {
	m := &SeasonalNaive{Period: 0}
	if err := m.Fit(seasonalSeries(48, 24, 0)); !errors.Is(err, ErrParam) {
		t.Errorf("period 0: %v", err)
	}
	m = &SeasonalNaive{Period: 100}
	if err := m.Fit(seasonalSeries(48, 24, 0)); !errors.Is(err, ErrTooShort) {
		t.Errorf("short series: %v", err)
	}
	m = &SeasonalNaive{Period: 24}
	if _, err := m.Forecast(10); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted forecast: %v", err)
	}
	if err := m.Fit(seasonalSeries(48, 24, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); !errors.Is(err, ErrParam) {
		t.Errorf("zero horizon: %v", err)
	}
}

func TestSESConvergesToConstant(t *testing.T) {
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 5
	}
	s := timeseries.MustNew(t0, time.Hour, vals)
	m := &SES{Alpha: 0.3}
	if err := m.Fit(s); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(fc.Value(i)-5) > 1e-9 {
			t.Fatalf("SES forecast[%d] = %v, want 5", i, fc.Value(i))
		}
	}
}

func TestSESTracksLevelShift(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		if i < 50 {
			vals[i] = 1
		} else {
			vals[i] = 10
		}
	}
	s := timeseries.MustNew(t0, time.Hour, vals)
	m := &SES{Alpha: 0.5}
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	fc, _ := m.Forecast(1)
	if fc.Value(0) < 9 {
		t.Errorf("SES after level shift = %v, want near 10", fc.Value(0))
	}
}

func TestSESErrors(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		m := &SES{Alpha: alpha}
		if err := m.Fit(seasonalSeries(10, 5, 0)); !errors.Is(err, ErrParam) {
			t.Errorf("alpha %v: %v", alpha, err)
		}
	}
	m := &SES{Alpha: 0.5}
	empty := timeseries.MustNew(t0, time.Hour, nil)
	if err := m.Fit(empty); !errors.Is(err, ErrTooShort) {
		t.Errorf("empty: %v", err)
	}
}

func TestHoltWintersBeatsSESOnSeasonalTrend(t *testing.T) {
	train := seasonalSeries(24*10, 24, 0.05)
	testVals := make([]float64, 24)
	n := train.Len()
	for i := range testVals {
		j := n + i
		testVals[i] = 10 + 0.05*float64(j) + 3*math.Sin(2*math.Pi*float64(j)/24)
	}
	test := timeseries.MustNew(train.End(), time.Hour, testVals)

	hw := &HoltWinters{Alpha: 0.3, Beta: 0.05, Gamma: 0.2, Period: 24}
	hwMetrics, err := Evaluate(hw, train, test)
	if err != nil {
		t.Fatalf("Evaluate HW: %v", err)
	}
	ses := &SES{Alpha: 0.3}
	sesMetrics, err := Evaluate(ses, train, test)
	if err != nil {
		t.Fatalf("Evaluate SES: %v", err)
	}
	if hwMetrics.RMSE >= sesMetrics.RMSE {
		t.Errorf("HW RMSE %v not better than SES %v on seasonal data", hwMetrics.RMSE, sesMetrics.RMSE)
	}
	if hwMetrics.RMSE > 1.0 {
		t.Errorf("HW RMSE %v too large on clean seasonal data", hwMetrics.RMSE)
	}
}

func TestHoltWintersErrors(t *testing.T) {
	s := seasonalSeries(96, 24, 0)
	bad := []*HoltWinters{
		{Alpha: 0, Beta: 0.1, Gamma: 0.1, Period: 24},
		{Alpha: 0.1, Beta: 2, Gamma: 0.1, Period: 24},
		{Alpha: 0.1, Beta: 0.1, Gamma: 0.1, Period: 1},
	}
	for i, m := range bad {
		if err := m.Fit(s); !errors.Is(err, ErrParam) {
			t.Errorf("bad model %d: %v", i, err)
		}
	}
	m := &HoltWinters{Alpha: 0.1, Beta: 0.1, Gamma: 0.1, Period: 60}
	if err := m.Fit(s); !errors.Is(err, ErrTooShort) {
		t.Errorf("short: %v", err)
	}
	m2 := &HoltWinters{Alpha: 0.1, Beta: 0.1, Gamma: 0.1, Period: 24}
	if _, err := m2.Forecast(5); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
}

func TestAccuracy(t *testing.T) {
	a := timeseries.MustNew(t0, time.Hour, []float64{2, 4, 0})
	p := timeseries.MustNew(t0, time.Hour, []float64{3, 2, 1})
	m, err := Accuracy(a, p)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	// errors: +1, -2, +1 → MAE 4/3; RMSE sqrt(6/3); MAPE over non-zero
	// actuals: (0.5 + 0.5)/2 *100 = 50.
	if math.Abs(m.MAE-4.0/3) > 1e-9 {
		t.Errorf("MAE = %v", m.MAE)
	}
	if math.Abs(m.RMSE-math.Sqrt(2)) > 1e-9 {
		t.Errorf("RMSE = %v", m.RMSE)
	}
	if math.Abs(m.MAPE-50) > 1e-9 {
		t.Errorf("MAPE = %v", m.MAPE)
	}
	short := timeseries.MustNew(t0, time.Hour, []float64{1})
	if _, err := Accuracy(a, short); !errors.Is(err, ErrParam) {
		t.Errorf("mismatched lengths: %v", err)
	}
}

func TestAccuracySkipsNaN(t *testing.T) {
	a := timeseries.MustNew(t0, time.Hour, []float64{math.NaN(), 2})
	p := timeseries.MustNew(t0, time.Hour, []float64{5, 2})
	m, err := Accuracy(a, p)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if m.MAE != 0 {
		t.Errorf("MAE = %v, want 0", m.MAE)
	}
	allNaN := timeseries.MustNew(t0, time.Hour, []float64{math.NaN()})
	if _, err := Accuracy(allNaN, timeseries.MustNew(t0, time.Hour, []float64{1})); err == nil {
		t.Error("all-NaN comparison succeeded")
	}
}

func TestEvaluateChecksContinuity(t *testing.T) {
	train := seasonalSeries(96, 24, 0)
	// Test series starting at the wrong time.
	wrong := timeseries.MustNew(t0.Add(1000*time.Hour), time.Hour, make([]float64, 24))
	m := &SeasonalNaive{Period: 24}
	if _, err := Evaluate(m, train, wrong); !errors.Is(err, ErrParam) {
		t.Errorf("discontinuous test: %v", err)
	}
}

func TestModelNames(t *testing.T) {
	models := []Model{
		&SeasonalNaive{Period: 96},
		&SES{Alpha: 0.5},
		&HoltWinters{Alpha: 0.1, Beta: 0.1, Gamma: 0.1, Period: 96},
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}

func TestHoltWintersDampingBoundsDrift(t *testing.T) {
	// Seasonal data with a deceptive local trend: damped forecasts must
	// stay closer to the seasonal level over a long horizon.
	vals := make([]float64, 24*10)
	for i := range vals {
		vals[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/24)
	}
	// Perturb the last two days upward to fake a trend.
	for i := 24 * 8; i < len(vals); i++ {
		vals[i] += 0.05 * float64(i-24*8)
	}
	s := timeseries.MustNew(t0, time.Hour, vals)

	undamped := &HoltWinters{Alpha: 0.3, Beta: 0.2, Gamma: 0.2, Period: 24}
	damped := &HoltWinters{Alpha: 0.3, Beta: 0.2, Gamma: 0.2, Period: 24, Damping: 0.8}
	if err := undamped.Fit(s); err != nil {
		t.Fatal(err)
	}
	if err := damped.Fit(s); err != nil {
		t.Fatal(err)
	}
	const h = 24 * 7
	fu, err := undamped.Forecast(h)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := damped.Forecast(h)
	if err != nil {
		t.Fatal(err)
	}
	// At the far end the undamped forecast has drifted further from the
	// underlying level (10) than the damped one.
	du := math.Abs(fu.Value(h-1) - 10)
	dd := math.Abs(fd.Value(h-1) - 10)
	if dd >= du {
		t.Errorf("damped drift %v >= undamped drift %v", dd, du)
	}
}

func TestHoltWintersDampingValidation(t *testing.T) {
	s := seasonalSeries(96, 24, 0)
	bad := &HoltWinters{Alpha: 0.3, Beta: 0.2, Gamma: 0.2, Period: 24, Damping: 1.5}
	if err := bad.Fit(s); !errors.Is(err, ErrParam) {
		t.Errorf("damping > 1: %v", err)
	}
	neg := &HoltWinters{Alpha: 0.3, Beta: 0.2, Gamma: 0.2, Period: 24, Damping: -0.1}
	if err := neg.Fit(s); !errors.Is(err, ErrParam) {
		t.Errorf("damping < 0: %v", err)
	}
}
