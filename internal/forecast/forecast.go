// Package forecast provides the consumption/production forecasting substrate
// of the MIRABEL stack (the paper's reference [6]: "reliable and near
// real-time forecasting of energy production and consumption"). Three
// classical models are implemented from scratch: seasonal naive, simple
// exponential smoothing, and additive Holt–Winters with a daily season.
package forecast

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// Common errors.
var (
	ErrNotFitted = errors.New("forecast: model not fitted")
	ErrTooShort  = errors.New("forecast: training series too short")
	ErrParam     = errors.New("forecast: invalid parameter")
)

// Model is a univariate time series forecaster.
type Model interface {
	// Name identifies the model.
	Name() string
	// Fit trains the model on the series.
	Fit(s *timeseries.Series) error
	// Forecast predicts the next h intervals, returned as a series
	// starting where the training series ended.
	Forecast(h int) (*timeseries.Series, error)
}

// --- Seasonal naive --------------------------------------------------------

// SeasonalNaive predicts the value observed one season earlier.
type SeasonalNaive struct {
	// Period is the season length in intervals.
	Period int

	lastSeason []float64
	end        seriesMeta
}

type seriesMeta struct {
	fitted bool
	s      *timeseries.Series
}

// Name implements Model.
func (m *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", m.Period) }

// Fit implements Model.
func (m *SeasonalNaive) Fit(s *timeseries.Series) error {
	if m.Period < 1 {
		return fmt.Errorf("%w: period %d", ErrParam, m.Period)
	}
	if s.Len() < m.Period {
		return fmt.Errorf("%w: need %d points, have %d", ErrTooShort, m.Period, s.Len())
	}
	vals := s.Values()
	m.lastSeason = vals[len(vals)-m.Period:]
	m.end = seriesMeta{fitted: true, s: s}
	return nil
}

// Forecast implements Model.
func (m *SeasonalNaive) Forecast(h int) (*timeseries.Series, error) {
	if !m.end.fitted {
		return nil, ErrNotFitted
	}
	if h < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrParam, h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.lastSeason[i%m.Period]
	}
	return timeseries.New(m.end.s.End(), m.end.s.Resolution(), out)
}

// --- Simple exponential smoothing ------------------------------------------

// SES is simple exponential smoothing with smoothing factor Alpha; its
// forecast is flat at the final level.
type SES struct {
	// Alpha in (0, 1] is the smoothing factor.
	Alpha float64

	level float64
	end   seriesMeta
}

// Name implements Model.
func (m *SES) Name() string { return fmt.Sprintf("ses(%.2f)", m.Alpha) }

// Fit implements Model.
func (m *SES) Fit(s *timeseries.Series) error {
	if m.Alpha <= 0 || m.Alpha > 1 {
		return fmt.Errorf("%w: alpha %v", ErrParam, m.Alpha)
	}
	if s.Len() < 1 {
		return fmt.Errorf("%w: empty series", ErrTooShort)
	}
	level := s.Value(0)
	for i := 1; i < s.Len(); i++ {
		level = m.Alpha*s.Value(i) + (1-m.Alpha)*level
	}
	m.level = level
	m.end = seriesMeta{fitted: true, s: s}
	return nil
}

// Forecast implements Model.
func (m *SES) Forecast(h int) (*timeseries.Series, error) {
	if !m.end.fitted {
		return nil, ErrNotFitted
	}
	if h < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrParam, h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.level
	}
	return timeseries.New(m.end.s.End(), m.end.s.Resolution(), out)
}

// --- Additive Holt–Winters --------------------------------------------------

// HoltWinters is triple exponential smoothing with additive trend and
// season, optionally with a damped trend for long horizons.
type HoltWinters struct {
	// Alpha, Beta, Gamma in (0, 1] smooth level, trend and season.
	Alpha, Beta, Gamma float64
	// Period is the season length in intervals.
	Period int
	// Damping in (0, 1] geometrically damps the trend over the forecast
	// horizon (Gardner-McKenzie): step h extrapolates the trend by
	// Damping + Damping² + … + Damping^h instead of h. Zero means 1
	// (no damping). Damping < 1 prevents small trend estimates from
	// drifting multi-day forecasts.
	Damping float64

	level, trend float64
	season       []float64
	end          seriesMeta
}

// Name implements Model.
func (m *HoltWinters) Name() string {
	return fmt.Sprintf("holt-winters(%.2f,%.2f,%.2f,%d)", m.Alpha, m.Beta, m.Gamma, m.Period)
}

// Fit implements Model.
func (m *HoltWinters) Fit(s *timeseries.Series) error {
	for _, p := range []float64{m.Alpha, m.Beta, m.Gamma} {
		if p <= 0 || p > 1 {
			return fmt.Errorf("%w: smoothing factor %v", ErrParam, p)
		}
	}
	if m.Damping < 0 || m.Damping > 1 {
		return fmt.Errorf("%w: damping %v outside [0, 1]", ErrParam, m.Damping)
	}
	if m.Period < 2 {
		return fmt.Errorf("%w: period %d", ErrParam, m.Period)
	}
	if s.Len() < 2*m.Period {
		return fmt.Errorf("%w: need %d points, have %d", ErrTooShort, 2*m.Period, s.Len())
	}
	vals := s.Values()
	p := m.Period

	// Initialise level/trend from the first two seasons, season from the
	// first season's deviations.
	var mean1, mean2 float64
	for i := 0; i < p; i++ {
		mean1 += vals[i]
		mean2 += vals[p+i]
	}
	mean1 /= float64(p)
	mean2 /= float64(p)
	level := mean1
	trend := (mean2 - mean1) / float64(p)
	season := make([]float64, p)
	for i := 0; i < p; i++ {
		season[i] = vals[i] - mean1
	}

	for i := p; i < len(vals); i++ {
		v := vals[i]
		si := i % p
		prevLevel := level
		level = m.Alpha*(v-season[si]) + (1-m.Alpha)*(level+trend)
		trend = m.Beta*(level-prevLevel) + (1-m.Beta)*trend
		season[si] = m.Gamma*(v-level) + (1-m.Gamma)*season[si]
	}
	m.level, m.trend, m.season = level, trend, season
	m.end = seriesMeta{fitted: true, s: s}
	return nil
}

// Forecast implements Model.
func (m *HoltWinters) Forecast(h int) (*timeseries.Series, error) {
	if !m.end.fitted {
		return nil, ErrNotFitted
	}
	if h < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrParam, h)
	}
	n := m.end.s.Len()
	phi := m.Damping
	if phi == 0 {
		phi = 1
	}
	out := make([]float64, h)
	trendSum := 0.0
	phiPow := 1.0
	for i := range out {
		phiPow *= phi
		trendSum += phiPow // Σ_{k=1..i+1} phi^k; equals i+1 when phi == 1
		out[i] = m.level + trendSum*m.trend + m.season[(n+i)%m.Period]
	}
	return timeseries.New(m.end.s.End(), m.end.s.Resolution(), out)
}

// --- Accuracy metrics -------------------------------------------------------

// Metrics summarises forecast accuracy.
type Metrics struct {
	MAE  float64
	RMSE float64
	// MAPE is in percent; intervals with actual == 0 are skipped.
	MAPE float64
}

// Accuracy compares a forecast against actuals (aligned series).
func Accuracy(actual, predicted *timeseries.Series) (Metrics, error) {
	if actual.Len() != predicted.Len() || actual.Len() == 0 {
		return Metrics{}, fmt.Errorf("%w: actual %d vs predicted %d points", ErrParam, actual.Len(), predicted.Len())
	}
	var sae, sse, sape float64
	var n, nPct int
	for i := 0; i < actual.Len(); i++ {
		a, p := actual.Value(i), predicted.Value(i)
		if math.IsNaN(a) || math.IsNaN(p) {
			continue
		}
		d := p - a
		sae += math.Abs(d)
		sse += d * d
		n++
		if a != 0 {
			sape += math.Abs(d / a)
			nPct++
		}
	}
	if n == 0 {
		return Metrics{}, fmt.Errorf("%w: no comparable points", ErrParam)
	}
	m := Metrics{
		MAE:  sae / float64(n),
		RMSE: math.Sqrt(sse / float64(n)),
	}
	if nPct > 0 {
		m.MAPE = 100 * sape / float64(nPct)
	}
	return m, nil
}

// Evaluate fits the model on train and scores it against test (which must
// start where train ends).
func Evaluate(m Model, train, test *timeseries.Series) (Metrics, error) {
	if err := m.Fit(train); err != nil {
		return Metrics{}, err
	}
	pred, err := m.Forecast(test.Len())
	if err != nil {
		return Metrics{}, err
	}
	if !pred.Start().Equal(test.Start()) {
		return Metrics{}, fmt.Errorf("%w: test does not follow train", ErrParam)
	}
	return Accuracy(test, pred)
}
