package household

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/appliance"
	"repro/internal/timeseries"
)

// Archetypes returns the household templates the population generator cycles
// through. They span the consumer diversity the paper alludes to: households
// with many flexible appliances, households with few ("only one washing
// machine for 2 persons household", §3.2), and EV owners (Fig. 1).
func Archetypes() []Config {
	return []Config{
		{
			ID: "flat-single", Residents: 1,
			Appliances: []string{"washing machine Y", "television", "refrigerator"},
			BaseLoadKW: 0.12, MorningPeak: 0.5, EveningPeak: 1.0, NoiseStd: 0.15,
		},
		{
			ID: "family-house", Residents: 4,
			Appliances: []string{
				"washing machine Y", "dishwasher Z", "tumble dryer", "oven",
				"television", "refrigerator", "vacuum cleaning robot X",
			},
			BaseLoadKW: 0.30, MorningPeak: 0.8, EveningPeak: 1.4, NoiseStd: 0.20,
		},
		{
			ID: "ev-commuter", Residents: 2,
			Appliances: []string{
				"small electric vehicle", "washing machine Y", "television", "refrigerator",
			},
			BaseLoadKW: 0.20, MorningPeak: 0.7, EveningPeak: 1.1, NoiseStd: 0.15,
		},
		{
			ID: "retired-couple", Residents: 2,
			Appliances: []string{
				"dishwasher Z", "oven", "television", "refrigerator", "water heater",
			},
			BaseLoadKW: 0.25, MorningPeak: 0.9, EveningPeak: 0.9, NoiseStd: 0.12,
		},
		{
			ID: "ev-villa", Residents: 4,
			Appliances: []string{
				"medium electric vehicle", "washing machine Y", "dishwasher Z",
				"tumble dryer", "television", "refrigerator", "water heater",
			},
			BaseLoadKW: 0.40, MorningPeak: 0.8, EveningPeak: 1.3, NoiseStd: 0.18,
		},
	}
}

// Population generates n household configs by cycling the archetypes, giving
// each a unique ID and seed (derived deterministically from seed) and a
// small per-household jitter on the base load so households differ within an
// archetype.
func Population(n int, seed int64) []Config {
	arch := Archetypes()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		cfg := arch[i%len(arch)]
		cfg.ID = fmt.Sprintf("%s-%03d", cfg.ID, i)
		cfg.Seed = rng.Int63()
		cfg.BaseLoadKW *= 0.8 + 0.4*rng.Float64()
		out = append(out, cfg)
	}
	return out
}

// SimulatePopulation simulates every config over the same horizon and also
// returns the aggregated total consumption — the "aggregated time series
// from thousands consumers" the paper's §6 compares aggregated flex-offers
// against.
func SimulatePopulation(reg *appliance.Registry, cfgs []Config, start time.Time, days int, resolution time.Duration) ([]*Result, *timeseries.Series, error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty population", ErrConfig)
	}
	results := make([]*Result, 0, len(cfgs))
	totals := make([]*timeseries.Series, 0, len(cfgs))
	for _, cfg := range cfgs {
		r, err := Simulate(reg, cfg, start, days, resolution)
		if err != nil {
			return nil, nil, fmt.Errorf("household %s: %w", cfg.ID, err)
		}
		results = append(results, r)
		totals = append(totals, r.Total)
	}
	agg, err := timeseries.Sum(totals...)
	if err != nil {
		return nil, nil, err
	}
	return results, agg, nil
}
