package household

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/tariff"
)

var (
	reg = appliance.Default()
	t0  = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
)

func familyCfg() Config {
	return Config{
		ID: "test-family", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "television", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.1,
		Seed: 42,
	}
}

func TestSimulateShape(t *testing.T) {
	r, err := Simulate(reg, familyCfg(), t0, 7, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if r.Total.Len() != 7*96 {
		t.Errorf("total len = %d, want %d", r.Total.Len(), 7*96)
	}
	if r.Total.Resolution() != 15*time.Minute {
		t.Errorf("resolution = %v", r.Total.Resolution())
	}
	if !r.Total.Start().Equal(t0) {
		t.Errorf("start = %v", r.Total.Start())
	}
	if len(r.PerAppliance) != 4 {
		t.Errorf("per-appliance series = %d, want 4", len(r.PerAppliance))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(reg, familyCfg(), t0, 3, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := Simulate(reg, familyCfg(), t0, 3, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a.Total.Total() != b.Total.Total() {
		t.Error("same seed produced different totals")
	}
	if len(a.Activations) != len(b.Activations) {
		t.Error("same seed produced different activations")
	}
	cfg := familyCfg()
	cfg.Seed = 43
	c, err := Simulate(reg, cfg, t0, 3, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a.Total.Total() == c.Total.Total() {
		t.Error("different seeds produced identical totals")
	}
}

// TestCompositionIdentity: total = base + sum of appliance contributions.
func TestCompositionIdentity(t *testing.T) {
	r, err := Simulate(reg, familyCfg(), t0, 5, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	recomposed := r.Base.Clone()
	for _, s := range r.PerAppliance {
		var err error
		recomposed, err = recomposed.Add(s)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	for i := 0; i < r.Total.Len(); i++ {
		if math.Abs(recomposed.Value(i)-r.Total.Value(i)) > 1e-9 {
			t.Fatalf("composition mismatch at %d: %v vs %v", i, recomposed.Value(i), r.Total.Value(i))
		}
	}
}

// TestActivationEnergyMatchesSeries: ground-truth activation energy equals
// the per-appliance series totals.
func TestActivationEnergyMatchesSeries(t *testing.T) {
	r, err := Simulate(reg, familyCfg(), t0, 5, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	byApp := make(map[string]float64)
	for _, a := range r.Activations {
		byApp[a.Appliance] += a.Energy
	}
	for name, s := range r.PerAppliance {
		if math.Abs(byApp[name]-s.Total()) > 1e-6 {
			t.Errorf("%s: activations %.6f vs series %.6f", name, byApp[name], s.Total())
		}
	}
}

func TestActivationsSortedAndInHorizon(t *testing.T) {
	r, err := Simulate(reg, familyCfg(), t0, 5, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(r.Activations) == 0 {
		t.Fatal("no activations in 5 days")
	}
	end := r.Total.End()
	for i, a := range r.Activations {
		if i > 0 && a.Start.Before(r.Activations[i-1].Start) {
			t.Fatal("activations not sorted")
		}
		if a.Start.Before(t0) || a.Start.Add(a.Duration).After(end) {
			t.Fatalf("activation %d outside horizon: %v", i, a.Start)
		}
		if a.Energy <= 0 {
			t.Fatalf("activation %d non-positive energy", i)
		}
	}
}

func TestBaseLoadDailyShapeHasEveningPeak(t *testing.T) {
	cfg := familyCfg()
	cfg.NoiseStd = 0
	cfg.Appliances = nil
	r, err := Simulate(reg, cfg, t0, 1, time.Hour)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	evening := r.Total.Value(19)
	night := r.Total.Value(3)
	if evening <= night*1.5 {
		t.Errorf("evening %.4f not clearly above night %.4f", evening, night)
	}
}

func TestSimulateErrors(t *testing.T) {
	bad := []struct {
		name string
		cfg  Config
		days int
		res  time.Duration
	}{
		{"zero days", familyCfg(), 0, 15 * time.Minute},
		{"sub-minute resolution", familyCfg(), 1, 30 * time.Second},
		{"non-dividing resolution", familyCfg(), 1, 7 * time.Minute},
		{"negative base", Config{BaseLoadKW: -1}, 1, 15 * time.Minute},
	}
	for _, tc := range bad {
		if _, err := Simulate(reg, tc.cfg, t0, tc.days, tc.res); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", tc.name, err)
		}
	}
	cfg := familyCfg()
	cfg.Appliances = []string{"does not exist"}
	if _, err := Simulate(reg, cfg, t0, 1, 15*time.Minute); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown appliance err = %v, want ErrConfig", err)
	}
}

func TestTariffResponseShiftsIntoLowWindow(t *testing.T) {
	tou := tariff.TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 22, LowEndHour: 6}
	cfg := familyCfg()
	cfg.Tariff = tou
	cfg.Response = tariff.Response{ShiftProbability: 1}
	r, err := Simulate(reg, cfg, t0, 28, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var shifted, flexible int
	for _, a := range r.Activations {
		if a.Flexible {
			flexible++
			if a.Shifted {
				shifted++
				if !tou.IsLow(a.Start) {
					t.Fatalf("shifted activation at %v not in low window", a.Start)
				}
			}
		} else if a.Shifted {
			t.Fatal("inflexible activation shifted")
		}
	}
	if flexible == 0 || shifted == 0 {
		t.Fatalf("flexible = %d, shifted = %d; want both > 0", flexible, shifted)
	}
}

func TestSimulatePair(t *testing.T) {
	tou := tariff.TimeOfUse{HighPrice: 0.4, LowPrice: 0.1, LowStartHour: 22, LowEndHour: 6}
	flat, multi, err := SimulatePair(reg, familyCfg(), tou, tariff.Response{ShiftProbability: 0.9}, t0, 14, 15*time.Minute)
	if err != nil {
		t.Fatalf("SimulatePair: %v", err)
	}
	// Periods are consecutive, not overlapping.
	if !multi.Total.Start().Equal(flat.Total.End()) {
		t.Errorf("multi starts %v, want %v", multi.Total.Start(), flat.Total.End())
	}
	// Flat period has no shifted activations; multi period has some.
	for _, a := range flat.Activations {
		if a.Shifted {
			t.Fatal("flat-period activation shifted")
		}
	}
	var shifted int
	for _, a := range multi.Activations {
		if a.Shifted {
			shifted++
		}
	}
	if shifted == 0 {
		t.Error("multi period has no shifted activations")
	}
}

func TestFlexibleShareWithinPlausibleBand(t *testing.T) {
	// Family archetype's ground-truth flexible share should be a small
	// two-digit percentage at most; the extraction experiments tune the
	// extracted share into the 0.1–6.5 % band.
	r, err := Simulate(reg, familyCfg(), t0, 28, 15*time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	share := r.FlexibleShare()
	if share <= 0 || share > 0.8 {
		t.Errorf("flexible share = %v, want in (0, 0.8]", share)
	}
	if r.FlexibleEnergy() <= 0 {
		t.Error("no flexible energy")
	}
}

func TestSeasonalAmplitudeModulatesBaseLoad(t *testing.T) {
	cfg := familyCfg()
	cfg.NoiseStd = 0
	cfg.Appliances = nil
	cfg.SeasonalAmplitude = 0.3

	winterStart := time.Date(2012, 1, 2, 0, 0, 0, 0, time.UTC)
	summerStart := time.Date(2012, 7, 2, 0, 0, 0, 0, time.UTC)
	winter, err := Simulate(reg, cfg, winterStart, 1, time.Hour)
	if err != nil {
		t.Fatalf("Simulate winter: %v", err)
	}
	summer, err := Simulate(reg, cfg, summerStart, 1, time.Hour)
	if err != nil {
		t.Fatalf("Simulate summer: %v", err)
	}
	if winter.Total.Total() <= summer.Total.Total()*1.2 {
		t.Errorf("winter %.3f not clearly above summer %.3f",
			winter.Total.Total(), summer.Total.Total())
	}

	// Zero amplitude: same-seed days in different seasons match exactly.
	cfg.SeasonalAmplitude = 0
	w0, err := Simulate(reg, cfg, winterStart, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := Simulate(reg, cfg, summerStart, 1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w0.Total.Total()-s0.Total.Total()) > 1e-9 {
		t.Error("zero amplitude still varies by season")
	}
}
