// Package household synthesises household electricity consumption time
// series. It stands in for the real-world MIRABEL trial data the paper
// extracts flexibilities from: total consumption is composed of an
// always-on base load with morning/evening peaks plus stochastic appliance
// runs drawn from the appliance registry. Because the simulator knows which
// appliance ran when, it also emits the ground-truth activations — which
// real data never provides — so extraction quality can be measured
// (precision/recall), closing the "actual quality of the output is not
// known" gap the paper points out in §3.1.
package household

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/appliance"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

// Activation is one ground-truth appliance run.
type Activation struct {
	// Appliance names the registry entry that ran.
	Appliance string
	// Start is the actual (possibly tariff-shifted) start time.
	Start time.Time
	// PlannedStart is the start before any tariff response.
	PlannedStart time.Time
	// Duration of the run.
	Duration time.Duration
	// Energy actually consumed by the run, in kWh.
	Energy float64
	// Flexible mirrors the appliance's flexibility flag.
	Flexible bool
	// Shifted reports whether the tariff response moved the run.
	Shifted bool
}

// Config describes one simulated household.
type Config struct {
	// ID identifies the household (used as flex-offer ConsumerID).
	ID string
	// Residents scales the base load.
	Residents int
	// Appliances lists registry names owned by the household.
	Appliances []string
	// BaseLoadKW is the average always-on power in kW.
	BaseLoadKW float64
	// MorningPeak and EveningPeak scale the base-load bumps around
	// 07:00 and 19:00 (0 disables a bump).
	MorningPeak float64
	EveningPeak float64
	// NoiseStd is the relative (multiplicative) noise on the base load.
	NoiseStd float64
	// SeasonalAmplitude modulates the base load over the year (fraction,
	// e.g. 0.3 for ±30 %), peaking in January and bottoming in July —
	// the "different seasons of the year" dimension the multi-tariff
	// extraction's typical-profile estimation has to cope with (§3.3).
	SeasonalAmplitude float64
	// Tariff is the billing scheme in effect; nil means flat billing.
	Tariff tariff.Tariff
	// Response is the consumer's tariff-shifting behaviour.
	Response tariff.Response
	// Seed drives all randomness for the household.
	Seed int64
}

// Result is the output of one simulation.
type Result struct {
	// Config echoes the simulated configuration.
	Config Config
	// Total is the household consumption series at the requested
	// resolution.
	Total *timeseries.Series
	// PerAppliance holds each appliance's contribution, aligned with
	// Total.
	PerAppliance map[string]*timeseries.Series
	// Base is the non-appliance (inflexible background) contribution.
	Base *timeseries.Series
	// Activations is the ground truth, ordered by start time.
	Activations []Activation
}

// ErrConfig is wrapped by configuration errors.
var ErrConfig = errors.New("household: invalid config")

// FlexibleEnergy reports the total ground-truth energy of flexible
// activations.
func (r *Result) FlexibleEnergy() float64 {
	var e float64
	for _, a := range r.Activations {
		if a.Flexible {
			e += a.Energy
		}
	}
	return e
}

// FlexibleShare reports the fraction of total consumption that is
// ground-truth flexible — comparable with the 0.1–6.5 % band the paper
// quotes from the MIRABEL trial specification [7].
func (r *Result) FlexibleShare() float64 {
	total := r.Total.Total()
	if total <= 0 {
		return 0
	}
	return r.FlexibleEnergy() / total
}

// Simulate synthesises `days` days of consumption starting at midnight of
// start's day, internally at 1-minute granularity, returned at the given
// resolution (which must divide 24 h and be a whole number of minutes).
func Simulate(reg *appliance.Registry, cfg Config, start time.Time, days int, resolution time.Duration) (*Result, error) {
	if days <= 0 {
		return nil, fmt.Errorf("%w: days %d", ErrConfig, days)
	}
	if resolution < time.Minute || resolution%time.Minute != 0 || (24*time.Hour)%resolution != 0 {
		return nil, fmt.Errorf("%w: resolution %v must be whole minutes dividing 24h", ErrConfig, resolution)
	}
	if cfg.BaseLoadKW < 0 || cfg.NoiseStd < 0 {
		return nil, fmt.Errorf("%w: negative base load or noise", ErrConfig)
	}
	apps := make([]*appliance.Appliance, 0, len(cfg.Appliances))
	for _, name := range cfg.Appliances {
		a, ok := reg.Get(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown appliance %q", ErrConfig, name)
		}
		apps = append(apps, a)
	}
	tr := cfg.Tariff
	if tr == nil {
		tr = tariff.Flat{Price: 0.30}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	day0 := timeseries.TruncateDay(start)
	minutes := days * 24 * 60
	base := make([]float64, minutes)
	perApp := make(map[string][]float64, len(apps))
	for _, a := range apps {
		perApp[a.Name] = make([]float64, minutes)
	}

	// Base load: kWh per minute with a daily shape, an annual seasonal
	// factor and multiplicative noise.
	residentFactor := 1 + 0.25*float64(max(cfg.Residents, 1)-1)
	perMinute := cfg.BaseLoadKW / 60 * residentFactor
	for m := 0; m < minutes; m++ {
		hour := float64(m%1440) / 60
		shape := 1 + cfg.MorningPeak*gauss(hour, 7, 1.5) + cfg.EveningPeak*gauss(hour, 19, 2.5)
		seasonal := 1.0
		if cfg.SeasonalAmplitude != 0 {
			doy := day0.Add(time.Duration(m) * time.Minute).YearDay()
			// Cosine over the year: maximum near Jan 1, minimum near Jul 1.
			seasonal = 1 + cfg.SeasonalAmplitude*math.Cos(2*math.Pi*float64(doy-1)/365)
			if seasonal < 0 {
				seasonal = 0
			}
		}
		noise := 1 + cfg.NoiseStd*rng.NormFloat64()
		if noise < 0 {
			noise = 0
		}
		base[m] = perMinute * shape * seasonal * noise
	}

	// Appliance runs.
	var activations []Activation
	horizonEnd := day0.Add(time.Duration(minutes) * time.Minute)
	for d := 0; d < days; d++ {
		dayStart := day0.Add(time.Duration(d) * 24 * time.Hour)
		isWeekend := timeseries.DayTypeOf(dayStart) == timeseries.Weekend
		for _, a := range apps {
			expected := a.RunsPerDay
			if isWeekend && a.WeekendFactor > 0 {
				expected *= a.WeekendFactor
			}
			runs := int(expected)
			if rng.Float64() < expected-float64(runs) {
				runs++
			}
			for k := 0; k < runs; k++ {
				hour := a.SampleStartHour(rng)
				minute := rng.Intn(60)
				planned := dayStart.Add(time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute)
				actual := planned
				shifted := false
				if a.Flexible {
					actual = cfg.Response.ShiftStart(rng, planned, a.TimeFlexibility, tr)
					shifted = !actual.Equal(planned)
				}
				if actual.Before(day0) || actual.Add(a.RunDuration()).After(horizonEnd) {
					continue // run does not fit in the horizon
				}
				run := a.SampleRun(rng)
				startIdx := int(actual.Sub(day0) / time.Minute)
				var energy float64
				for i, v := range run {
					perApp[a.Name][startIdx+i] += v
					energy += v
				}
				activations = append(activations, Activation{
					Appliance:    a.Name,
					Start:        actual,
					PlannedStart: planned,
					Duration:     a.RunDuration(),
					Energy:       energy,
					Flexible:     a.Flexible,
					Shifted:      shifted,
				})
			}
		}
	}
	sortActivations(activations)

	// Compose and resample.
	total := make([]float64, minutes)
	copy(total, base)
	for _, vals := range perApp {
		for i, v := range vals {
			total[i] += v
		}
	}
	factor := int(resolution / time.Minute)
	mk := func(vals []float64) (*timeseries.Series, error) {
		s, err := timeseries.New(day0, time.Minute, vals)
		if err != nil {
			return nil, err
		}
		return s.Downsample(factor)
	}
	totalS, err := mk(total)
	if err != nil {
		return nil, err
	}
	baseS, err := mk(base)
	if err != nil {
		return nil, err
	}
	perAppS := make(map[string]*timeseries.Series, len(perApp))
	for name, vals := range perApp {
		s, err := mk(vals)
		if err != nil {
			return nil, err
		}
		perAppS[name] = s
	}
	return &Result{
		Config:       cfg,
		Total:        totalS,
		PerAppliance: perAppS,
		Base:         baseS,
		Activations:  activations,
	}, nil
}

// SimulatePair simulates the same household under flat billing and under a
// time-of-use tariff with the configured response — the paired
// one-tariff/multi-tariff input the multi-tariff extraction needs (§3.3).
// Both runs share the household structure but cover independent periods
// (different random draws), as they would in reality: days under flat
// billing, then days after the multi-tariff scheme was introduced, which
// starts immediately after the flat period ends.
func SimulatePair(reg *appliance.Registry, cfg Config, tou tariff.TimeOfUse, resp tariff.Response, start time.Time, days int, resolution time.Duration) (flat, multi *Result, err error) {
	flatCfg := cfg
	flatCfg.Tariff = tariff.Flat{Price: tou.HighPrice}
	flatCfg.Response = tariff.Response{}
	flat, err = Simulate(reg, flatCfg, start, days, resolution)
	if err != nil {
		return nil, nil, err
	}
	multiCfg := cfg
	multiCfg.Tariff = tou
	multiCfg.Response = resp
	multiCfg.Seed = cfg.Seed + 1
	multi, err = Simulate(reg, multiCfg, flat.Total.End(), days, resolution)
	if err != nil {
		return nil, nil, err
	}
	return flat, multi, nil
}

// gauss is an unnormalised Gaussian bump used for the daily base-load shape.
func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-d * d / 2)
}

// sortActivations orders activations by start time, then appliance name.
func sortActivations(as []Activation) {
	sort.Slice(as, func(i, j int) bool {
		if !as[i].Start.Equal(as[j].Start) {
			return as[i].Start.Before(as[j].Start)
		}
		return as[i].Appliance < as[j].Appliance
	})
}
