package household

import (
	"strings"
	"testing"
	"time"
)

func TestArchetypesValid(t *testing.T) {
	for _, cfg := range Archetypes() {
		if cfg.ID == "" || cfg.BaseLoadKW <= 0 || len(cfg.Appliances) == 0 {
			t.Errorf("archetype %+v incomplete", cfg)
		}
		for _, name := range cfg.Appliances {
			if _, ok := reg.Get(name); !ok {
				t.Errorf("archetype %s references unknown appliance %q", cfg.ID, name)
			}
		}
	}
}

func TestPopulationDeterministicAndUnique(t *testing.T) {
	a := Population(10, 7)
	b := Population(10, 7)
	ids := make(map[string]bool)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed || a[i].BaseLoadKW != b[i].BaseLoadKW {
			t.Fatal("Population not deterministic")
		}
		if ids[a[i].ID] {
			t.Fatalf("duplicate household ID %s", a[i].ID)
		}
		ids[a[i].ID] = true
	}
	c := Population(10, 8)
	if c[0].Seed == a[0].Seed {
		t.Error("different population seeds produced identical household seeds")
	}
}

func TestPopulationCyclesArchetypes(t *testing.T) {
	n := len(Archetypes()) * 2
	cfgs := Population(n, 1)
	if len(cfgs) != n {
		t.Fatalf("len = %d", len(cfgs))
	}
	if !strings.HasPrefix(cfgs[0].ID, "flat-single") {
		t.Errorf("first household = %s", cfgs[0].ID)
	}
	if !strings.HasPrefix(cfgs[len(Archetypes())].ID, "flat-single") {
		t.Errorf("cycle household = %s", cfgs[len(Archetypes())].ID)
	}
}

func TestSimulatePopulationAggregates(t *testing.T) {
	cfgs := Population(6, 3)
	results, agg, err := SimulatePopulation(reg, cfgs, t0, 2, 15*time.Minute)
	if err != nil {
		t.Fatalf("SimulatePopulation: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	var sum float64
	for _, r := range results {
		sum += r.Total.Total()
	}
	if diff := sum - agg.Total(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("aggregate total %v != sum of households %v", agg.Total(), sum)
	}
}

func TestSimulatePopulationEmpty(t *testing.T) {
	if _, _, err := SimulatePopulation(reg, nil, t0, 1, 15*time.Minute); err == nil {
		t.Error("empty population succeeded")
	}
}
