package flexoffer

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzOfferValidate fuzzes direct offer construction — the path extraction
// pipeline workers take. The contract: Validate never panics, and any offer
// it accepts can flow through the whole downstream API (clone, stringify,
// energy accounting, default assignment) without panicking a worker or
// yielding NaN energy totals.
func FuzzOfferValidate(f *testing.F) {
	base := time.Date(2012, 6, 4, 22, 0, 0, 0, time.UTC).Unix()
	f.Add(4, int64(15*time.Minute), 0.5, 1.0, base, int64(7*time.Hour), int64(12*time.Hour), int64(6*time.Hour), int64(2*time.Hour), 2.0, 3.0, false)
	f.Add(1, int64(-1), 2.0, 1.0, base, int64(0), int64(0), int64(0), int64(0), 0.0, 0.0, false)
	f.Add(0, int64(time.Hour), 0.0, 0.0, base, int64(-time.Hour), int64(0), int64(0), int64(0), 0.0, 0.0, false)
	f.Add(3, int64(time.Minute), math.NaN(), math.NaN(), base, int64(time.Hour), int64(0), int64(0), int64(0), math.NaN(), math.Inf(1), true)
	f.Add(8, int64(15*time.Minute), -2.0, -1.0, base, int64(time.Hour), int64(2*time.Hour), int64(time.Hour), int64(30*time.Minute), -20.0, -5.0, true)

	f.Fuzz(func(t *testing.T, nSlices int, sliceDur int64, minE, maxE float64,
		startUnix, windowNs, creationLeadNs, acceptLeadNs, assignLeadNs int64,
		totMin, totMax float64, withConstraint bool) {
		if nSlices < 0 || nSlices > 256 {
			return // profile length is under caller control; bound the allocation
		}
		earliest := time.Unix(startUnix%(1<<40), 0).UTC()
		fo := &FlexOffer{
			ID:             "fuzz",
			ConsumerID:     "c",
			CreationTime:   earliest.Add(-time.Duration(creationLeadNs)),
			AcceptanceTime: earliest.Add(-time.Duration(acceptLeadNs)),
			AssignmentTime: earliest.Add(-time.Duration(assignLeadNs)),
			EarliestStart:  earliest,
			LatestStart:    earliest.Add(time.Duration(windowNs)),
		}
		for i := 0; i < nSlices; i++ {
			// Vary the bounds per slice so inverted/NaN bounds can land on
			// any index, not just slice 0.
			lo, hi := minE, maxE
			if i%2 == 1 {
				lo, hi = lo/2, hi*2
			}
			fo.Profile = append(fo.Profile, Slice{Duration: time.Duration(sliceDur), MinEnergy: lo, MaxEnergy: hi})
		}
		if withConstraint {
			fo.TotalConstraint = &EnergyConstraint{Min: totMin, Max: totMax}
		}
		if err := fo.Validate(); err != nil {
			return // rejected; construction is allowed to fail, not to panic
		}
		// Accepted offers must survive the downstream API.
		c := fo.Clone()
		if err := c.Validate(); err != nil {
			t.Fatalf("clone of valid offer invalid: %v", err)
		}
		_ = fo.String()
		_ = fo.Duration()
		_ = fo.LatestEnd()
		if e := fo.TotalAvgEnergy(); math.IsNaN(e) {
			t.Fatalf("validated offer has NaN total energy: %+v", fo)
		}
		lo, hi := fo.EffectiveTotalBounds()
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Fatalf("validated offer has NaN effective bounds [%v, %v]", lo, hi)
		}
		if _, err := fo.AssignDefault(fo.EarliestStart); err != nil {
			// Assignment may be infeasible (e.g. disjoint total constraint
			// after fitting); it must never panic.
			return
		}
	})
}

// FuzzReadJSON checks the set decoder never panics, only yields validated
// offers, and that accepted sets round-trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`[]`)
	f.Add(`[{"id":"a","earliest_start":"2012-06-04T22:00:00Z","latest_start":"2012-06-05T05:00:00Z","profile":[{"duration":900000000000,"min_energy_kwh":1,"max_energy_kwh":2}]}]`)
	f.Add(`[{"id":"bad","profile":[]}]`)
	f.Add(`{`)
	f.Add(`[{"id":"x","profile":[{"duration":-1,"min_energy_kwh":2,"max_energy_kwh":1}]}]`)
	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Everything accepted must validate and round-trip.
		if err := set.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatalf("write after accept: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(back) != len(set) {
			t.Fatalf("round trip changed size: %d vs %d", len(back), len(set))
		}
	})
}
