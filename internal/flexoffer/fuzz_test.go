package flexoffer

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the set decoder never panics, only yields validated
// offers, and that accepted sets round-trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`[]`)
	f.Add(`[{"id":"a","earliest_start":"2012-06-04T22:00:00Z","latest_start":"2012-06-05T05:00:00Z","profile":[{"duration":900000000000,"min_energy_kwh":1,"max_energy_kwh":2}]}]`)
	f.Add(`[{"id":"bad","profile":[]}]`)
	f.Add(`{`)
	f.Add(`[{"id":"x","profile":[{"duration":-1,"min_energy_kwh":2,"max_energy_kwh":1}]}]`)
	f.Fuzz(func(t *testing.T, input string) {
		set, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Everything accepted must validate and round-trip.
		if err := set.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatalf("write after accept: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(back) != len(set) {
			t.Fatalf("round trip changed size: %d vs %d", len(back), len(set))
		}
	})
}
