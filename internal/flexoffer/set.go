package flexoffer

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/timeseries"
)

// Set is a collection of flex-offers with bulk helpers. Extraction returns
// Sets; aggregation and scheduling consume them.
type Set []*FlexOffer

// TotalAvgEnergy reports the summed average energy of all offers.
func (set Set) TotalAvgEnergy() float64 {
	var e float64
	for _, f := range set {
		e += f.TotalAvgEnergy()
	}
	return e
}

// Validate validates every offer, returning the first error.
func (set Set) Validate() error {
	for _, f := range set {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SortByEarliestStart orders the set by earliest start time (ties broken by
// ID) in place.
func (set Set) SortByEarliestStart() {
	sort.SliceStable(set, func(i, j int) bool {
		if !set[i].EarliestStart.Equal(set[j].EarliestStart) {
			return set[i].EarliestStart.Before(set[j].EarliestStart)
		}
		return set[i].ID < set[j].ID
	})
}

// Within returns the offers whose earliest start falls in [from, to).
func (set Set) Within(from, to time.Time) Set {
	var out Set
	for _, f := range set {
		if !f.EarliestStart.Before(from) && f.EarliestStart.Before(to) {
			out = append(out, f)
		}
	}
	return out
}

// PlacementSeries builds a series over [start, start+n*resolution) counting
// the average energy each offer would consume if started at its earliest
// start — the temporal placement profile of the set. It is the quantity the
// paper plots in Fig. 4 and the basis of the realism metrics (where in the
// day extraction places flexibility).
func (set Set) PlacementSeries(start time.Time, resolution time.Duration, n int) (*timeseries.Series, error) {
	dst, err := timeseries.Zeros(start, resolution, n)
	if err != nil {
		return nil, err
	}
	for _, f := range set {
		a, err := f.AssignDefault(f.EarliestStart)
		if err != nil {
			return nil, fmt.Errorf("flexoffer: placement of %s: %w", f.ID, err)
		}
		if _, err := a.AddToSeries(dst); err != nil {
			return nil, fmt.Errorf("flexoffer: placement of %s: %w", f.ID, err)
		}
	}
	return dst, nil
}

// WriteJSON writes the set as a JSON array.
func (set Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(set)
}

// ReadJSON parses a set written by WriteJSON and validates every offer.
func ReadJSON(r io.Reader) (Set, error) {
	var set Set
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("flexoffer: decode set: %w", err)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
