package flexoffer_test

import (
	"fmt"
	"time"

	"repro/internal/flexoffer"
)

// ExampleFlexOffer builds the paper's Fig. 1 offer — an electric vehicle
// that needs 50 kWh over two hours, starting anywhere between 10 PM and
// 5 AM — and derives its headline quantities.
func ExampleFlexOffer() {
	tenPM := time.Date(2012, 6, 4, 22, 0, 0, 0, time.UTC)
	offer := &flexoffer.FlexOffer{
		ID:            "ev-1",
		EarliestStart: tenPM,
		LatestStart:   tenPM.Add(7 * time.Hour), // 5 AM
		Profile:       flexoffer.UniformProfile(8, 15*time.Minute, 5.625, 6.875),
	}
	if err := offer.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	fmt.Printf("duration        %v\n", offer.Duration())
	fmt.Printf("time flexible   %v\n", offer.TimeFlexibility())
	fmt.Printf("latest end      %s\n", offer.LatestEnd().Format("15:04"))
	fmt.Printf("energy          %.0f (%.0f..%.0f) kWh\n",
		offer.TotalAvgEnergy(), offer.TotalMinEnergy(), offer.TotalMaxEnergy())
	// Output:
	// duration        2h0m0s
	// time flexible   7h0m0s
	// latest end      07:00
	// energy          50 (45..55) kWh
}

// ExampleFlexOffer_Assign schedules an offer at a concrete start time with
// explicit per-slice energies and renders it as a time series.
func ExampleFlexOffer_Assign() {
	start := time.Date(2012, 6, 4, 21, 0, 0, 0, time.UTC)
	offer := &flexoffer.FlexOffer{
		ID:            "dishwasher",
		EarliestStart: start,
		LatestStart:   start.Add(4 * time.Hour),
		Profile:       flexoffer.UniformProfile(4, 15*time.Minute, 0.3, 0.5),
	}
	asg, err := offer.Assign(start.Add(time.Hour), []float64{0.4, 0.5, 0.5, 0.3})
	if err != nil {
		fmt.Println("infeasible:", err)
		return
	}
	fmt.Printf("start %s, total %.1f kWh\n", asg.Start.Format("15:04"), asg.TotalEnergy())
	series, _ := asg.ToSeries(15 * time.Minute)
	fmt.Printf("as series: %d intervals, %.1f kWh\n", series.Len(), series.Total())
	// Output:
	// start 22:00, total 1.7 kWh
	// as series: 4 intervals, 1.7 kWh
}
