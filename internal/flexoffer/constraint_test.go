package flexoffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// tecOffer builds a 4-slice offer, each slice 1..3 kWh, with a total
// constraint of [5, 7] kWh (tighter than the slice sums 4..12).
func tecOffer() *FlexOffer {
	return &FlexOffer{
		ID:              "tec",
		EarliestStart:   t0,
		LatestStart:     t0.Add(2 * time.Hour),
		Profile:         UniformProfile(4, 15*time.Minute, 1, 3),
		TotalConstraint: &EnergyConstraint{Min: 5, Max: 7},
	}
}

func TestTotalConstraintValidate(t *testing.T) {
	f := tecOffer()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	inverted := tecOffer()
	inverted.TotalConstraint = &EnergyConstraint{Min: 7, Max: 5}
	if err := inverted.Validate(); !errors.Is(err, ErrSliceBounds) {
		t.Errorf("inverted constraint: %v", err)
	}
	// Constraint entirely below the slice minima (4) is unsatisfiable.
	tooLow := tecOffer()
	tooLow.TotalConstraint = &EnergyConstraint{Min: 1, Max: 3}
	if err := tooLow.Validate(); !errors.Is(err, ErrSliceBounds) {
		t.Errorf("too-low constraint: %v", err)
	}
	// Constraint entirely above the slice maxima (12) is unsatisfiable.
	tooHigh := tecOffer()
	tooHigh.TotalConstraint = &EnergyConstraint{Min: 20, Max: 30}
	if err := tooHigh.Validate(); !errors.Is(err, ErrSliceBounds) {
		t.Errorf("too-high constraint: %v", err)
	}
}

func TestEffectiveTotalBounds(t *testing.T) {
	f := tecOffer()
	lo, hi := f.EffectiveTotalBounds()
	if lo != 5 || hi != 7 {
		t.Errorf("bounds = [%v, %v], want [5, 7]", lo, hi)
	}
	f.TotalConstraint = nil
	lo, hi = f.EffectiveTotalBounds()
	if lo != 4 || hi != 12 {
		t.Errorf("unconstrained bounds = [%v, %v], want [4, 12]", lo, hi)
	}
	// A constraint looser than the slices changes nothing.
	f.TotalConstraint = &EnergyConstraint{Min: 1, Max: 100}
	lo, hi = f.EffectiveTotalBounds()
	if lo != 4 || hi != 12 {
		t.Errorf("loose-constraint bounds = [%v, %v]", lo, hi)
	}
}

func TestAssignEnforcesTotalConstraint(t *testing.T) {
	f := tecOffer()
	// Per-slice feasible but total (4) below the constraint minimum (5).
	if _, err := f.Assign(t0, []float64{1, 1, 1, 1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("under-total assign: %v", err)
	}
	// Total 12 above the constraint maximum.
	if _, err := f.Assign(t0, []float64{3, 3, 3, 3}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("over-total assign: %v", err)
	}
	// Total 6 inside.
	if _, err := f.Assign(t0, []float64{1.5, 1.5, 1.5, 1.5}); err != nil {
		t.Errorf("valid assign: %v", err)
	}
}

func TestAssignDefaultFitsConstraint(t *testing.T) {
	// Slice averages sum to 8 > constraint max 7: AssignDefault must fit.
	f := tecOffer()
	asg, err := f.AssignDefault(t0)
	if err != nil {
		t.Fatalf("AssignDefault: %v", err)
	}
	if total := asg.TotalEnergy(); total < 5-1e-9 || total > 7+1e-9 {
		t.Errorf("fitted total = %v, want within [5, 7]", total)
	}
	// Without a constraint, the default stays at the averages.
	plain := tecOffer()
	plain.TotalConstraint = nil
	asg, err = plain.AssignDefault(t0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(asg.TotalEnergy(), 8, 1e-9) {
		t.Errorf("unconstrained default total = %v, want 8", asg.TotalEnergy())
	}
}

func TestFitEnergies(t *testing.T) {
	f := tecOffer()
	// Proposal violating both slice bounds and total constraint.
	fitted, err := f.FitEnergies([]float64{10, 0, 10, 0})
	if err != nil {
		t.Fatalf("FitEnergies: %v", err)
	}
	var total float64
	for i, e := range fitted {
		s := f.Profile[i]
		if e < s.MinEnergy-1e-9 || e > s.MaxEnergy+1e-9 {
			t.Errorf("fitted[%d] = %v outside [%v, %v]", i, e, s.MinEnergy, s.MaxEnergy)
		}
		total += e
	}
	if total < 5-1e-9 || total > 7+1e-9 {
		t.Errorf("fitted total = %v", total)
	}
	// Wrong arity.
	if _, err := f.FitEnergies([]float64{1}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("arity: %v", err)
	}
	// Input untouched.
	in := []float64{10, 0, 10, 0}
	if _, err := f.FitEnergies(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 10 {
		t.Error("FitEnergies mutated input")
	}
}

func TestCloneCopiesConstraint(t *testing.T) {
	f := tecOffer()
	c := f.Clone()
	c.TotalConstraint.Max = 100
	if f.TotalConstraint.Max == 100 {
		t.Error("Clone shares the constraint")
	}
}

// Property: FitEnergies always lands inside the slice bounds and the
// effective total bounds, for random proposals and random constraints.
func TestFitEnergiesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		f := &FlexOffer{
			ID:            "prop",
			EarliestStart: t0,
			LatestStart:   t0.Add(time.Hour),
			Profile:       make([]Slice, n),
		}
		var sumMin, sumMax float64
		for i := range f.Profile {
			lo := rng.Float64() * 2
			hi := lo + rng.Float64()*2
			f.Profile[i] = Slice{Duration: 15 * time.Minute, MinEnergy: lo, MaxEnergy: hi}
			sumMin += lo
			sumMax += hi
		}
		// A random satisfiable constraint inside [sumMin, sumMax].
		a := sumMin + rng.Float64()*(sumMax-sumMin)
		b := sumMin + rng.Float64()*(sumMax-sumMin)
		if a > b {
			a, b = b, a
		}
		f.TotalConstraint = &EnergyConstraint{Min: a, Max: b}
		if f.Validate() != nil {
			return false
		}
		proposal := make([]float64, n)
		for i := range proposal {
			proposal[i] = rng.Float64()*6 - 1
		}
		fitted, err := f.FitEnergies(proposal)
		if err != nil {
			return false
		}
		if _, err := f.Assign(t0, fitted); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
