package flexoffer

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallOffer(id string, start time.Time, energy float64) *FlexOffer {
	return &FlexOffer{
		ID:            id,
		EarliestStart: start,
		LatestStart:   start.Add(2 * time.Hour),
		Profile:       UniformProfile(2, 15*time.Minute, energy/2, energy/2),
	}
}

func TestSetTotalAvgEnergy(t *testing.T) {
	set := Set{smallOffer("a", t0, 2), smallOffer("b", t0, 3)}
	if got := set.TotalAvgEnergy(); !almostEqual(got, 5, 1e-9) {
		t.Errorf("TotalAvgEnergy = %v, want 5", got)
	}
}

func TestSetValidate(t *testing.T) {
	set := Set{smallOffer("a", t0, 2)}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := smallOffer("b", t0, 2)
	bad.Profile = nil
	set = append(set, bad)
	if err := set.Validate(); err == nil {
		t.Error("Validate accepted invalid offer")
	}
}

func TestSortByEarliestStart(t *testing.T) {
	set := Set{
		smallOffer("b", t0.Add(time.Hour), 1),
		smallOffer("c", t0, 1),
		smallOffer("a", t0, 1),
	}
	set.SortByEarliestStart()
	ids := []string{set[0].ID, set[1].ID, set[2].ID}
	if ids[0] != "a" || ids[1] != "c" || ids[2] != "b" {
		t.Errorf("sorted order = %v", ids)
	}
}

func TestWithin(t *testing.T) {
	set := Set{
		smallOffer("a", t0, 1),
		smallOffer("b", t0.Add(time.Hour), 1),
		smallOffer("c", t0.Add(3*time.Hour), 1),
	}
	got := set.Within(t0, t0.Add(2*time.Hour))
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("Within = %v", got)
	}
}

func TestPlacementSeries(t *testing.T) {
	set := Set{smallOffer("a", t0, 4), smallOffer("b", t0.Add(time.Hour), 8)}
	ps, err := set.PlacementSeries(t0, 15*time.Minute, 8)
	if err != nil {
		t.Fatalf("PlacementSeries: %v", err)
	}
	// Offer a: 4 kWh over first two intervals; offer b: 8 kWh at +1h.
	if !almostEqual(ps.Value(0), 2, 1e-9) || !almostEqual(ps.Value(4), 4, 1e-9) {
		t.Errorf("placement = %v", ps.Values())
	}
	if !almostEqual(ps.Total(), 12, 1e-9) {
		t.Errorf("placement total = %v, want 12", ps.Total())
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	set := Set{smallOffer("a", t0, 2), smallOffer("b", t0.Add(time.Hour), 3)}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got) != 2 || got[0].ID != "a" || !almostEqual(got[1].TotalAvgEnergy(), 3, 1e-9) {
		t.Errorf("round trip = %v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[{"id":"x","profile":[]}]`)); err == nil {
		t.Error("ReadJSON accepted empty profile")
	}
	if _, err := ReadJSON(strings.NewReader(`{not json`)); err == nil {
		t.Error("ReadJSON accepted malformed JSON")
	}
}
