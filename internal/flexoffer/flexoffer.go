// Package flexoffer implements the MIRABEL flex-offer concept: a profile of
// consecutive energy slices with per-slice minimum/maximum energy bounds
// (energy flexibility) and a start-time window (time flexibility), plus the
// lifecycle timestamps the market protocol requires.
//
// The model follows Fig. 1 of Kaulakienė et al. (EDBT/ICDT Workshops 2013):
// an offer states that its profile may begin anywhere in
// [EarliestStart, LatestStart], that slice i then consumes between
// MinEnergy(i) and MaxEnergy(i) kWh, and that the whole profile finishes by
// LatestEnd = LatestStart + profile duration.
package flexoffer

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Common validation errors.
var (
	ErrEmptyProfile   = errors.New("flexoffer: empty profile")
	ErrSliceBounds    = errors.New("flexoffer: slice energy bounds invalid")
	ErrSliceDuration  = errors.New("flexoffer: slice duration must be positive")
	ErrTimeWindow     = errors.New("flexoffer: invalid time window")
	ErrLifecycleOrder = errors.New("flexoffer: lifecycle timestamps out of order")
	ErrInfeasible     = errors.New("flexoffer: infeasible assignment")
)

// Slice is one interval of a flex-offer profile. MinEnergy and MaxEnergy
// bound the energy consumed during the slice; the solid and dotted areas of
// the paper's Fig. 1. Negative energies represent production flex-offers
// (the paper's §6 future-work direction); MinEnergy <= MaxEnergy must always
// hold.
type Slice struct {
	// Duration of the slice. In MIRABEL slices are usually 15 minutes.
	Duration time.Duration `json:"duration"`
	// MinEnergy is the minimum required energy in kWh.
	MinEnergy float64 `json:"min_energy_kwh"`
	// MaxEnergy is the maximum acceptable energy in kWh.
	MaxEnergy float64 `json:"max_energy_kwh"`
}

// AvgEnergy reports the midpoint of the slice's energy bounds, used as the
// default scheduled amount.
func (s Slice) AvgEnergy() float64 { return (s.MinEnergy + s.MaxEnergy) / 2 }

// EnergyFlexibility reports MaxEnergy - MinEnergy.
func (s Slice) EnergyFlexibility() float64 { return s.MaxEnergy - s.MinEnergy }

// FlexOffer is a flexibility object covering one potential (shiftable)
// consumption or production event.
type FlexOffer struct {
	// ID identifies the offer. Extraction assigns sequential IDs; callers
	// may overwrite them.
	ID string `json:"id"`
	// ConsumerID identifies the consumer (household / metering point) the
	// offer was extracted for.
	ConsumerID string `json:"consumer_id,omitempty"`
	// Appliance optionally names the appliance an appliance-level offer
	// represents (§4); empty for total-household offers (§3).
	Appliance string `json:"appliance,omitempty"`

	// CreationTime is when the offer was created.
	CreationTime time.Time `json:"creation_time"`
	// AcceptanceTime is the deadline by which the market must accept or
	// reject the offer.
	AcceptanceTime time.Time `json:"acceptance_time"`
	// AssignmentTime is the deadline by which an accepted offer must be
	// assigned a concrete start time.
	AssignmentTime time.Time `json:"assignment_time"`

	// EarliestStart is the earliest admissible profile start.
	EarliestStart time.Time `json:"earliest_start"`
	// LatestStart is the latest admissible profile start.
	LatestStart time.Time `json:"latest_start"`

	// Profile is the sequence of consecutive slices.
	Profile []Slice `json:"profile"`

	// TotalConstraint optionally bounds the *sum* of scheduled slice
	// energies tighter than the per-slice bounds allow — the MIRABEL
	// total-energy constraint (e.g. "between 45 and 50 kWh overall, even
	// though the slices individually admit more"). Nil means the slice
	// sums are the only bound.
	TotalConstraint *EnergyConstraint `json:"total_constraint,omitempty"`
}

// EnergyConstraint is an inclusive energy interval in kWh.
type EnergyConstraint struct {
	Min float64 `json:"min_kwh"`
	Max float64 `json:"max_kwh"`
}

// Duration reports the total profile duration.
func (f *FlexOffer) Duration() time.Duration {
	var d time.Duration
	for _, s := range f.Profile {
		d += s.Duration
	}
	return d
}

// LatestEnd reports the latest time at which the profile can finish:
// LatestStart plus the profile duration (the "latest end time" of Fig. 1).
func (f *FlexOffer) LatestEnd() time.Time { return f.LatestStart.Add(f.Duration()) }

// TimeFlexibility reports how far the profile start may be shifted:
// LatestStart - EarliestStart.
func (f *FlexOffer) TimeFlexibility() time.Duration {
	return f.LatestStart.Sub(f.EarliestStart)
}

// TotalMinEnergy reports the sum of per-slice minimum energies.
func (f *FlexOffer) TotalMinEnergy() float64 {
	var e float64
	for _, s := range f.Profile {
		e += s.MinEnergy
	}
	return e
}

// TotalMaxEnergy reports the sum of per-slice maximum energies.
func (f *FlexOffer) TotalMaxEnergy() float64 {
	var e float64
	for _, s := range f.Profile {
		e += s.MaxEnergy
	}
	return e
}

// TotalAvgEnergy reports the sum of per-slice average energies — the
// paper's "total energy amount (the sum of the average required energy in
// the profile intervals)" (§3.1).
func (f *FlexOffer) TotalAvgEnergy() float64 {
	var e float64
	for _, s := range f.Profile {
		e += s.AvgEnergy()
	}
	return e
}

// EnergyFlexibility reports the total spread between maximum and minimum
// energy across the profile.
func (f *FlexOffer) EnergyFlexibility() float64 {
	return f.TotalMaxEnergy() - f.TotalMinEnergy()
}

// Validate checks the structural invariants of the offer:
// a non-empty profile of positive-duration slices with Min <= Max, an
// ordered start window, and ordered lifecycle timestamps
// (creation <= acceptance <= assignment <= earliest start <= latest start).
// Zero-valued lifecycle timestamps are treated as "not specified" and only
// the specified ones are checked for order.
func (f *FlexOffer) Validate() error {
	if len(f.Profile) == 0 {
		return fmt.Errorf("%w (offer %s)", ErrEmptyProfile, f.ID)
	}
	for i, s := range f.Profile {
		if s.Duration <= 0 {
			return fmt.Errorf("%w: slice %d of offer %s has duration %v", ErrSliceDuration, i, f.ID, s.Duration)
		}
		// NaN fails every ordered comparison, so min > max would not catch
		// it; a NaN bound must never enter a store or scheduler.
		if math.IsNaN(s.MinEnergy) || math.IsNaN(s.MaxEnergy) || s.MinEnergy > s.MaxEnergy {
			return fmt.Errorf("%w: slice %d of offer %s has min %.4f > max %.4f",
				ErrSliceBounds, i, f.ID, s.MinEnergy, s.MaxEnergy)
		}
	}
	if f.LatestStart.Before(f.EarliestStart) {
		return fmt.Errorf("%w: latest start %v before earliest start %v (offer %s)",
			ErrTimeWindow, f.LatestStart, f.EarliestStart, f.ID)
	}
	if c := f.TotalConstraint; c != nil {
		if math.IsNaN(c.Min) || math.IsNaN(c.Max) || c.Min > c.Max {
			return fmt.Errorf("%w: total constraint [%.4f, %.4f] inverted (offer %s)",
				ErrSliceBounds, c.Min, c.Max, f.ID)
		}
		// The constraint interval must intersect what the slices admit.
		if c.Max < f.TotalMinEnergy() || c.Min > f.TotalMaxEnergy() {
			return fmt.Errorf("%w: total constraint [%.4f, %.4f] incompatible with slice bounds [%.4f, %.4f] (offer %s)",
				ErrSliceBounds, c.Min, c.Max, f.TotalMinEnergy(), f.TotalMaxEnergy(), f.ID)
		}
	}
	// Lifecycle order over the specified (non-zero) timestamps.
	seq := []struct {
		name string
		t    time.Time
	}{
		{"creation", f.CreationTime},
		{"acceptance", f.AcceptanceTime},
		{"assignment", f.AssignmentTime},
		{"earliest start", f.EarliestStart},
	}
	var prevName string
	var prev time.Time
	for _, step := range seq {
		if step.t.IsZero() {
			continue
		}
		if !prev.IsZero() && step.t.Before(prev) {
			return fmt.Errorf("%w: %s %v before %s %v (offer %s)",
				ErrLifecycleOrder, step.name, step.t, prevName, prev, f.ID)
		}
		prevName, prev = step.name, step.t
	}
	return nil
}

// Clone returns a deep copy of the offer.
func (f *FlexOffer) Clone() *FlexOffer {
	c := *f
	c.Profile = make([]Slice, len(f.Profile))
	copy(c.Profile, f.Profile)
	if f.TotalConstraint != nil {
		tc := *f.TotalConstraint
		c.TotalConstraint = &tc
	}
	return &c
}

// EffectiveTotalBounds reports the tightest admissible range for the total
// scheduled energy: the slice sums intersected with the total constraint
// (when present).
func (f *FlexOffer) EffectiveTotalBounds() (min, max float64) {
	min, max = f.TotalMinEnergy(), f.TotalMaxEnergy()
	if c := f.TotalConstraint; c != nil {
		if c.Min > min {
			min = c.Min
		}
		if c.Max < max {
			max = c.Max
		}
	}
	return min, max
}

// Shift moves the whole start window (and lifecycle deadlines that are set)
// by d, returning a new offer. Profile shape is unchanged.
func (f *FlexOffer) Shift(d time.Duration) *FlexOffer {
	c := f.Clone()
	move := func(t time.Time) time.Time {
		if t.IsZero() {
			return t
		}
		return t.Add(d)
	}
	c.CreationTime = move(c.CreationTime)
	c.AcceptanceTime = move(c.AcceptanceTime)
	c.AssignmentTime = move(c.AssignmentTime)
	c.EarliestStart = c.EarliestStart.Add(d)
	c.LatestStart = c.LatestStart.Add(d)
	return c
}

// UniformProfile builds n slices of the given duration, each bounded by
// [minEnergy, maxEnergy] kWh. It is the common case for extracted offers
// whose flexible energy is spread evenly over the profile.
func UniformProfile(n int, duration time.Duration, minEnergy, maxEnergy float64) []Slice {
	p := make([]Slice, n)
	for i := range p {
		p[i] = Slice{Duration: duration, MinEnergy: minEnergy, MaxEnergy: maxEnergy}
	}
	return p
}

// String implements fmt.Stringer with a compact, log-friendly summary.
func (f *FlexOffer) String() string {
	return fmt.Sprintf("FlexOffer[%s: start %s..%s, %d slices/%v, energy %.3f..%.3f kWh]",
		f.ID,
		f.EarliestStart.Format("2006-01-02T15:04"),
		f.LatestStart.Format("2006-01-02T15:04"),
		len(f.Profile), f.Duration(), f.TotalMinEnergy(), f.TotalMaxEnergy())
}
