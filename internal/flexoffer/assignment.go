package flexoffer

import (
	"fmt"
	"time"

	"repro/internal/num"
	"repro/internal/timeseries"
)

// Assignment is a concrete schedule for a flex-offer: a start time inside
// the offer's window and one energy amount per profile slice, each inside
// the slice's bounds. Scheduling (MIRABEL's step after aggregation [5])
// produces assignments.
type Assignment struct {
	Offer *FlexOffer `json:"offer"`
	// Start is the assigned profile start time.
	Start time.Time `json:"start"`
	// Energies holds the scheduled energy per slice, in kWh.
	Energies []float64 `json:"energies_kwh"`
}

// Assign schedules the offer at the given start with explicit per-slice
// energies. It returns ErrInfeasible when the start is outside the window or
// any energy violates its slice bounds.
func (f *FlexOffer) Assign(start time.Time, energies []float64) (*Assignment, error) {
	if start.Before(f.EarliestStart) || start.After(f.LatestStart) {
		return nil, fmt.Errorf("%w: start %v outside [%v, %v] (offer %s)",
			ErrInfeasible, start, f.EarliestStart, f.LatestStart, f.ID)
	}
	if len(energies) != len(f.Profile) {
		return nil, fmt.Errorf("%w: %d energies for %d slices (offer %s)",
			ErrInfeasible, len(energies), len(f.Profile), f.ID)
	}
	var total float64
	for i, e := range energies {
		s := f.Profile[i]
		if !num.Within(e, s.MinEnergy, s.MaxEnergy, num.DefaultTol) {
			return nil, fmt.Errorf("%w: slice %d energy %.4f outside [%.4f, %.4f] (offer %s)",
				ErrInfeasible, i, e, s.MinEnergy, s.MaxEnergy, f.ID)
		}
		total += e
	}
	if c := f.TotalConstraint; c != nil {
		if !num.Within(total, c.Min, c.Max, num.DefaultTol) {
			return nil, fmt.Errorf("%w: total energy %.4f outside constraint [%.4f, %.4f] (offer %s)",
				ErrInfeasible, total, c.Min, c.Max, f.ID)
		}
	}
	es := make([]float64, len(energies))
	copy(es, energies)
	return &Assignment{Offer: f, Start: start, Energies: es}, nil
}

// FitEnergies adjusts the proposed per-slice energies so that every slice
// stays within its bounds and the total lands inside the offer's effective
// total bounds, moving as little energy as possible: energies are first
// clamped per slice, then the surplus or deficit is redistributed across
// slices proportionally to their remaining headroom. The input slice is not
// modified.
func (f *FlexOffer) FitEnergies(proposed []float64) ([]float64, error) {
	if len(proposed) != len(f.Profile) {
		return nil, fmt.Errorf("%w: %d energies for %d slices (offer %s)",
			ErrInfeasible, len(proposed), len(f.Profile), f.ID)
	}
	out := make([]float64, len(proposed))
	var total float64
	for i, e := range proposed {
		s := f.Profile[i]
		if e < s.MinEnergy {
			e = s.MinEnergy
		}
		if e > s.MaxEnergy {
			e = s.MaxEnergy
		}
		out[i] = e
		total += e
	}
	lo, hi := f.EffectiveTotalBounds()
	if lo > hi {
		return nil, fmt.Errorf("%w: empty effective total bounds (offer %s)", ErrInfeasible, f.ID)
	}
	switch {
	case total < lo:
		// Raise energies toward slice maxima, proportionally to headroom.
		need := lo - total
		var headroom float64
		for i, s := range f.Profile {
			headroom += s.MaxEnergy - out[i]
		}
		if headroom > 0 {
			scale := need / headroom
			if scale > 1 {
				scale = 1
			}
			for i, s := range f.Profile {
				out[i] += (s.MaxEnergy - out[i]) * scale
			}
		}
	case total > hi:
		// Lower energies toward slice minima, proportionally to slack.
		excess := total - hi
		var slack float64
		for i, s := range f.Profile {
			slack += out[i] - s.MinEnergy
		}
		if slack > 0 {
			scale := excess / slack
			if scale > 1 {
				scale = 1
			}
			for i, s := range f.Profile {
				out[i] -= (out[i] - s.MinEnergy) * scale
			}
		}
	}
	return out, nil
}

// AssignDefault schedules the offer at the given start with every slice at
// its average energy, adjusted (via FitEnergies) into the total-energy
// constraint when the offer carries one.
func (f *FlexOffer) AssignDefault(start time.Time) (*Assignment, error) {
	energies := make([]float64, len(f.Profile))
	for i, s := range f.Profile {
		energies[i] = s.AvgEnergy()
	}
	fitted, err := f.FitEnergies(energies)
	if err != nil {
		return nil, err
	}
	return f.Assign(start, fitted)
}

// End reports when the assigned profile finishes.
func (a *Assignment) End() time.Time { return a.Start.Add(a.Offer.Duration()) }

// TotalEnergy reports the total scheduled energy.
func (a *Assignment) TotalEnergy() float64 {
	var e float64
	for _, v := range a.Energies {
		e += v
	}
	return e
}

// Validate re-checks the assignment against its offer, for assignments
// deserialised or constructed directly.
func (a *Assignment) Validate() error {
	if a.Offer == nil {
		return fmt.Errorf("%w: assignment without offer", ErrInfeasible)
	}
	_, err := a.Offer.Assign(a.Start, a.Energies)
	return err
}

// ToSeries renders the assignment as an energy time series at the given
// resolution, starting at the assignment start. Each slice's energy is
// spread evenly over the intervals it covers; slice durations must be
// multiples of the resolution.
func (a *Assignment) ToSeries(resolution time.Duration) (*timeseries.Series, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("flexoffer: non-positive resolution %v", resolution)
	}
	var values []float64
	for i, s := range a.Offer.Profile {
		if s.Duration%resolution != 0 {
			return nil, fmt.Errorf("flexoffer: slice %d duration %v not a multiple of resolution %v",
				i, s.Duration, resolution)
		}
		n := int(s.Duration / resolution)
		share := a.Energies[i] / float64(n)
		for k := 0; k < n; k++ {
			values = append(values, share)
		}
	}
	return timeseries.New(a.Start, resolution, values)
}

// AddToSeries accumulates the assignment's energy into an existing series in
// place (e.g. to rebuild a load curve from scheduled offers). Intervals of
// the assignment falling outside the series extent are ignored; the amount
// actually added is returned.
func (a *Assignment) AddToSeries(dst *timeseries.Series) (float64, error) {
	rendered, err := a.ToSeries(dst.Resolution())
	if err != nil {
		return 0, err
	}
	var added float64
	for i := 0; i < rendered.Len(); i++ {
		idx, ok := dst.IndexOf(rendered.TimeAt(i))
		if !ok {
			continue
		}
		v := rendered.Value(i)
		dst.SetValue(idx, dst.Value(idx)+v)
		added += v
	}
	return added, nil
}
