package flexoffer

import (
	"errors"
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2012, 6, 1, 22, 0, 0, 0, time.UTC)

// evOffer builds the paper's Fig. 1 example: EV charging, earliest start
// 10 PM, latest start 5 AM next day, 2-hour profile of 15-minute slices,
// 50 kWh total.
func evOffer() *FlexOffer {
	const slices = 8 // 2 h of 15-min slices
	const total = 50.0
	per := total / slices
	return &FlexOffer{
		ID:             "ev-1",
		ConsumerID:     "household-42",
		Appliance:      "electric vehicle",
		CreationTime:   t0.Add(-4 * time.Hour),
		AcceptanceTime: t0.Add(-2 * time.Hour),
		AssignmentTime: t0.Add(-1 * time.Hour),
		EarliestStart:  t0,                    // 22:00
		LatestStart:    t0.Add(7 * time.Hour), // 05:00
		Profile:        UniformProfile(slices, 15*time.Minute, per*0.9, per*1.1),
	}
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFig1DerivedQuantities(t *testing.T) {
	f := evOffer()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := f.Duration(); got != 2*time.Hour {
		t.Errorf("Duration = %v, want 2h", got)
	}
	if got := f.TimeFlexibility(); got != 7*time.Hour {
		t.Errorf("TimeFlexibility = %v, want 7h", got)
	}
	// Latest end: 05:00 + 2h = 07:00, the paper's "7am latest end time".
	if want := t0.Add(9 * time.Hour); !f.LatestEnd().Equal(want) {
		t.Errorf("LatestEnd = %v, want %v", f.LatestEnd(), want)
	}
	if got := f.TotalAvgEnergy(); !almostEqual(got, 50, 1e-9) {
		t.Errorf("TotalAvgEnergy = %v, want 50", got)
	}
	if got := f.TotalMinEnergy(); !almostEqual(got, 45, 1e-9) {
		t.Errorf("TotalMinEnergy = %v, want 45", got)
	}
	if got := f.TotalMaxEnergy(); !almostEqual(got, 55, 1e-9) {
		t.Errorf("TotalMaxEnergy = %v, want 55", got)
	}
	if got := f.EnergyFlexibility(); !almostEqual(got, 10, 1e-9) {
		t.Errorf("EnergyFlexibility = %v, want 10", got)
	}
}

func TestSliceHelpers(t *testing.T) {
	s := Slice{Duration: 15 * time.Minute, MinEnergy: 2, MaxEnergy: 4}
	if s.AvgEnergy() != 3 {
		t.Errorf("AvgEnergy = %v, want 3", s.AvgEnergy())
	}
	if s.EnergyFlexibility() != 2 {
		t.Errorf("EnergyFlexibility = %v, want 2", s.EnergyFlexibility())
	}
}

func TestValidateRejections(t *testing.T) {
	base := evOffer()
	tests := []struct {
		name   string
		mutate func(*FlexOffer)
		want   error
	}{
		{"empty profile", func(f *FlexOffer) { f.Profile = nil }, ErrEmptyProfile},
		{"zero slice duration", func(f *FlexOffer) { f.Profile[3].Duration = 0 }, ErrSliceDuration},
		{"min above max", func(f *FlexOffer) { f.Profile[0].MinEnergy = f.Profile[0].MaxEnergy + 1 }, ErrSliceBounds},
		{"inverted window", func(f *FlexOffer) { f.LatestStart = f.EarliestStart.Add(-time.Hour) }, ErrTimeWindow},
		{"acceptance before creation", func(f *FlexOffer) { f.AcceptanceTime = f.CreationTime.Add(-time.Hour) }, ErrLifecycleOrder},
		{"assignment before acceptance", func(f *FlexOffer) { f.AssignmentTime = f.AcceptanceTime.Add(-time.Minute) }, ErrLifecycleOrder},
		{"earliest start before assignment", func(f *FlexOffer) { f.AssignmentTime = f.EarliestStart.Add(time.Hour) }, ErrLifecycleOrder},
	}
	for _, tc := range tests {
		f := base.Clone()
		tc.mutate(f)
		if err := f.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestValidateSkipsZeroLifecycle(t *testing.T) {
	f := evOffer()
	f.CreationTime = time.Time{}
	f.AcceptanceTime = time.Time{}
	f.AssignmentTime = time.Time{}
	if err := f.Validate(); err != nil {
		t.Errorf("Validate with unset lifecycle = %v", err)
	}
}

func TestValidateAllowsProductionOffers(t *testing.T) {
	f := evOffer()
	for i := range f.Profile {
		f.Profile[i].MinEnergy = -2
		f.Profile[i].MaxEnergy = -1
	}
	if err := f.Validate(); err != nil {
		t.Errorf("production offer rejected: %v", err)
	}
}

func TestValidateAllowsZeroFlexibilityWindow(t *testing.T) {
	f := evOffer()
	f.LatestStart = f.EarliestStart
	if err := f.Validate(); err != nil {
		t.Errorf("zero time-flexibility offer rejected: %v", err)
	}
	if f.TimeFlexibility() != 0 {
		t.Errorf("TimeFlexibility = %v, want 0", f.TimeFlexibility())
	}
}

func TestCloneIndependence(t *testing.T) {
	f := evOffer()
	c := f.Clone()
	c.Profile[0].MinEnergy = 999
	c.ID = "other"
	if f.Profile[0].MinEnergy == 999 || f.ID == "other" {
		t.Error("Clone shares state with original")
	}
}

func TestShift(t *testing.T) {
	f := evOffer()
	s := f.Shift(24 * time.Hour)
	if !s.EarliestStart.Equal(f.EarliestStart.Add(24 * time.Hour)) {
		t.Errorf("Shift earliest = %v", s.EarliestStart)
	}
	if !s.CreationTime.Equal(f.CreationTime.Add(24 * time.Hour)) {
		t.Errorf("Shift creation = %v", s.CreationTime)
	}
	if s.TimeFlexibility() != f.TimeFlexibility() {
		t.Error("Shift changed time flexibility")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("shifted offer invalid: %v", err)
	}
	// Zero lifecycle stamps stay zero.
	f.CreationTime = time.Time{}
	s = f.Shift(time.Hour)
	if !s.CreationTime.IsZero() {
		t.Error("Shift moved zero timestamp")
	}
}

func TestUniformProfile(t *testing.T) {
	p := UniformProfile(4, 15*time.Minute, 1, 2)
	if len(p) != 4 {
		t.Fatalf("len = %d", len(p))
	}
	for _, s := range p {
		if s.Duration != 15*time.Minute || s.MinEnergy != 1 || s.MaxEnergy != 2 {
			t.Errorf("slice = %+v", s)
		}
	}
}

func TestStringer(t *testing.T) {
	if evOffer().String() == "" {
		t.Error("String() empty")
	}
}
