package flexoffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/timeseries"
)

func TestAssignValid(t *testing.T) {
	f := evOffer()
	energies := make([]float64, len(f.Profile))
	for i, s := range f.Profile {
		energies[i] = s.MinEnergy
	}
	a, err := f.Assign(f.EarliestStart.Add(time.Hour), energies)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if !a.End().Equal(a.Start.Add(2 * time.Hour)) {
		t.Errorf("End = %v", a.End())
	}
	if !almostEqual(a.TotalEnergy(), f.TotalMinEnergy(), 1e-9) {
		t.Errorf("TotalEnergy = %v", a.TotalEnergy())
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAssignRejections(t *testing.T) {
	f := evOffer()
	ok := make([]float64, len(f.Profile))
	for i, s := range f.Profile {
		ok[i] = s.AvgEnergy()
	}
	if _, err := f.Assign(f.EarliestStart.Add(-time.Minute), ok); !errors.Is(err, ErrInfeasible) {
		t.Errorf("early start err = %v", err)
	}
	if _, err := f.Assign(f.LatestStart.Add(time.Minute), ok); !errors.Is(err, ErrInfeasible) {
		t.Errorf("late start err = %v", err)
	}
	if _, err := f.Assign(f.EarliestStart, ok[:3]); !errors.Is(err, ErrInfeasible) {
		t.Errorf("wrong energy count err = %v", err)
	}
	bad := append([]float64(nil), ok...)
	bad[0] = f.Profile[0].MaxEnergy + 1
	if _, err := f.Assign(f.EarliestStart, bad); !errors.Is(err, ErrInfeasible) {
		t.Errorf("energy above max err = %v", err)
	}
	bad[0] = f.Profile[0].MinEnergy - 1
	if _, err := f.Assign(f.EarliestStart, bad); !errors.Is(err, ErrInfeasible) {
		t.Errorf("energy below min err = %v", err)
	}
}

func TestAssignBoundaryStarts(t *testing.T) {
	f := evOffer()
	if _, err := f.AssignDefault(f.EarliestStart); err != nil {
		t.Errorf("assign at earliest: %v", err)
	}
	if _, err := f.AssignDefault(f.LatestStart); err != nil {
		t.Errorf("assign at latest: %v", err)
	}
}

func TestAssignCopiesEnergies(t *testing.T) {
	f := evOffer()
	energies := make([]float64, len(f.Profile))
	for i, s := range f.Profile {
		energies[i] = s.AvgEnergy()
	}
	a, err := f.Assign(f.EarliestStart, energies)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	energies[0] = -999
	if a.Energies[0] == -999 {
		t.Error("Assign did not copy energies")
	}
}

func TestAssignmentValidateNilOffer(t *testing.T) {
	a := &Assignment{}
	if err := a.Validate(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("nil-offer Validate = %v", err)
	}
}

func TestToSeries(t *testing.T) {
	f := evOffer()
	a, err := f.AssignDefault(f.EarliestStart)
	if err != nil {
		t.Fatalf("AssignDefault: %v", err)
	}
	s, err := a.ToSeries(15 * time.Minute)
	if err != nil {
		t.Fatalf("ToSeries: %v", err)
	}
	if s.Len() != 8 || !s.Start().Equal(f.EarliestStart) {
		t.Errorf("series shape: %v", s)
	}
	if !almostEqual(s.Total(), 50, 1e-9) {
		t.Errorf("series total = %v, want 50", s.Total())
	}
	// Finer resolution splits slice energy evenly.
	fine, err := a.ToSeries(5 * time.Minute)
	if err != nil {
		t.Fatalf("ToSeries fine: %v", err)
	}
	if fine.Len() != 24 || !almostEqual(fine.Total(), 50, 1e-9) {
		t.Errorf("fine series: len=%d total=%v", fine.Len(), fine.Total())
	}
	if _, err := a.ToSeries(0); err == nil {
		t.Error("ToSeries(0) succeeded")
	}
	if _, err := a.ToSeries(7 * time.Minute); err == nil {
		t.Error("non-divisor resolution succeeded")
	}
}

func TestAddToSeries(t *testing.T) {
	f := evOffer()
	a, err := f.AssignDefault(f.EarliestStart)
	if err != nil {
		t.Fatalf("AssignDefault: %v", err)
	}
	dst, _ := timeseries.Zeros(f.EarliestStart.Add(-time.Hour), 15*time.Minute, 16)
	added, err := a.AddToSeries(dst)
	if err != nil {
		t.Fatalf("AddToSeries: %v", err)
	}
	// Destination covers -1h..+3h around start; the 2h profile fits fully.
	if !almostEqual(added, 50, 1e-9) || !almostEqual(dst.Total(), 50, 1e-9) {
		t.Errorf("added = %v, dst total = %v", added, dst.Total())
	}
	// Destination too short: only part is added.
	short, _ := timeseries.Zeros(f.EarliestStart, 15*time.Minute, 4)
	added, err = a.AddToSeries(short)
	if err != nil {
		t.Fatalf("AddToSeries short: %v", err)
	}
	if !almostEqual(added, 25, 1e-9) {
		t.Errorf("partial added = %v, want 25", added)
	}
}

// Property: any start within the window and any energies within bounds form
// a valid assignment whose series conserves the assigned energy.
func TestAssignmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		offer := evOffer()
		start := offer.EarliestStart.Add(time.Duration(rng.Int63n(int64(offer.TimeFlexibility()) + 1)))
		energies := make([]float64, len(offer.Profile))
		for i, s := range offer.Profile {
			energies[i] = s.MinEnergy + rng.Float64()*(s.MaxEnergy-s.MinEnergy)
		}
		a, err := offer.Assign(start, energies)
		if err != nil {
			return false
		}
		series, err := a.ToSeries(15 * time.Minute)
		if err != nil {
			return false
		}
		return almostEqual(series.Total(), a.TotalEnergy(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
