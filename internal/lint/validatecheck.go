package lint

import (
	"go/ast"
	"go/types"
)

// validatedTypes are the domain types whose composite literals must be
// validated before they travel: an unvalidated FlexOffer or Params can
// carry NaN energies or inverted windows deep into a pipeline worker or
// the market store before anything notices.
var validatedTypes = []struct {
	pathPat string
	name    string
}{
	{"internal/flexoffer", "FlexOffer"},
	{"internal/core", "Params"},
}

// ValidateCheck flags composite literals of flexoffer.FlexOffer and
// core.Params built outside their defining package without a Validate call
// on the same value in the same function. Constructors (offerBuilder,
// DefaultParams) and validated literals pass; everything else must either
// call Validate before handing the value on or carry a //lint:ignore with a
// reason.
var ValidateCheck = &Analyzer{
	Name: "validatecheck",
	Doc:  "flex-offer and params literals outside their package must be validated in the constructing function",
	Run:  runValidateCheck,
}

func runValidateCheck(pass *Pass) {
	local := false
	for _, t := range validatedTypes {
		if PathMatches(pass.Pkg.Path, t.pathPat) {
			local = true
		}
	}
	if local {
		// The defining packages own their invariants; their internals may
		// build partially-initialised values freely.
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncLits(pass, fd.Body)
				return false
			}
			// Package-level value: a target literal here can never be
			// validated before use.
			if lit, ok := n.(*ast.CompositeLit); ok && targetLit(pass, lit) != "" {
				pass.Reportf(lit.Pos(), "composite literal of %s at package scope is never validated; build it in a constructor and call Validate", targetLit(pass, lit))
				return false
			}
			return true
		})
	}
}

// checkFuncLits analyses one function body: every target composite literal
// must be validated within the body.
func checkFuncLits(pass *Pass, body *ast.BlockStmt) {
	// validatedObjs are variables with an x.Validate() call in this body;
	// validatedLits are literals validated directly, (&T{...}).Validate().
	validatedObjs := make(map[types.Object]bool)
	validatedLits := make(map[*ast.CompositeLit]bool)
	// litObj maps each target literal to the variable it initialises.
	litObj := make(map[*ast.CompositeLit]types.Object)
	var lits []*ast.CompositeLit

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if targetLit(pass, n) != "" {
				lits = append(lits, n)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, rhs := range n.Rhs {
				lit := unwrapLit(rhs)
				if lit == nil || targetLit(pass, lit) == "" {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						litObj[lit] = obj
					} else if obj := pass.Pkg.Info.Uses[id]; obj != nil {
						litObj[lit] = obj
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				lit := unwrapLit(v)
				if lit == nil || targetLit(pass, lit) == "" || i >= len(n.Names) {
					continue
				}
				if obj := pass.Pkg.Info.Defs[n.Names[i]]; obj != nil {
					litObj[lit] = obj
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Validate" {
				break
			}
			switch recv := ast.Unparen(sel.X).(type) {
			case *ast.Ident:
				if obj := pass.Pkg.Info.Uses[recv]; obj != nil {
					validatedObjs[obj] = true
				}
			default:
				if lit := unwrapLit(sel.X); lit != nil {
					validatedLits[lit] = true
				}
			}
		}
		return true
	})

	for _, lit := range lits {
		if validatedLits[lit] {
			continue
		}
		if obj, ok := litObj[lit]; ok && validatedObjs[obj] {
			continue
		}
		pass.Reportf(lit.Pos(), "composite literal of %s is not validated in this function; call Validate on it before it leaves (unvalidated offers must not reach the store or scheduler)", targetLit(pass, lit))
	}
}

// unwrapLit peels parens and a leading & off an expression, returning the
// composite literal underneath, or nil.
func unwrapLit(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		return lit
	}
	return nil
}

// targetLit reports the qualified name of the validated type the literal
// builds ("flexoffer.FlexOffer"), or "" when the literal is not a target.
func targetLit(pass *Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok {
		return ""
	}
	for _, t := range validatedTypes {
		if named, ok := namedType(tv.Type); ok && namedMatches(named, t.pathPat, t.name) {
			return named.Obj().Pkg().Name() + "." + t.name
		}
	}
	return ""
}

// namedType unwraps pointers and aliases down to a named type.
func namedType(t types.Type) (*types.Named, bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt, true
		default:
			return nil, false
		}
	}
}

// namedMatches reports whether the named type is name declared in a package
// matching pathPat.
func namedMatches(named *types.Named, pathPat, name string) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Name() == name &&
		PathMatches(obj.Pkg().Path(), pathPat)
}
