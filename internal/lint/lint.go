// Package lint is the analysis framework behind the flexvet static-analysis
// suite (scripts/flexvet). It loads and type-checks packages of this module
// with nothing but the standard library (go/parser + go/types with the
// source importer), runs a set of domain-aware analyzers over them, and
// reports diagnostics.
//
// The analyzers encode invariants of the flex-offer model that Go's type
// system cannot express — constructed offers must be validated before they
// travel, energy values must not be compared with ==, replayable paths must
// draw time from an injected clock, metric labels must stay bounded, and
// mutex-guarded state must be accessed under its lock. docs/LINTING.md
// documents every analyzer and the convention it enforces.
//
// A finding can be suppressed at the offending line (or the line above it)
// with an explanation:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer, a position, and a message. The
// JSON field names are the flexvet -json contract.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the slash-separated path of the offending file.
	File string `json:"file"`
	// Line is the 1-based line of the finding.
	Line int `json:"line"`
	// Col is the 1-based column of the finding.
	Col int `json:"col"`
	// Message explains the violation and what to do instead.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports, -enable/-disable flags and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the convention enforced.
	Doc string
	// Paths restricts the analyzer to packages whose import path ends in
	// one of these fragments (segment-aligned, so "internal/core" matches
	// "repro/internal/core" but not "repro/internal/score"). Empty means
	// every package.
	Paths []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// applies reports whether the analyzer's path scope covers pkgPath.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if PathMatches(pkgPath, p) {
			return true
		}
	}
	return false
}

// PathMatches reports whether pkgPath ends in the segment-aligned fragment
// pat ("internal/core" matches "repro/internal/core" and
// "repro/x/testdata/src/internal/core", but not "repro/internal/score").
func PathMatches(pkgPath, pat string) bool {
	if !strings.HasSuffix(pkgPath, pat) {
		return false
	}
	rest := pkgPath[:len(pkgPath)-len(pat)]
	return rest == "" || strings.HasSuffix(rest, "/")
}

// Pass carries one analyzer run over one package and collects its findings.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// All holds every loaded package, so cross-package questions ("does
	// this called function return only constants?") can be answered from
	// source.
	All []*Package
	// Shared caches the flow artifacts of this Run — call graph, CFGs,
	// module-wide analyzer facts — across every pass.
	Shared *Shared

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     strings.ReplaceAll(position.Filename, "\\", "/"),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over every loaded package, honours
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by file, line, column and analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	shared := newShared(pkgs)
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(pkg)
		out = append(out, malformed...)
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, Shared: shared}
			a.Run(pass)
			for _, d := range pass.diags {
				if !ignores.covers(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey addresses one suppression: a file/line and the analyzer name
// (or "all").
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// covers reports whether d is suppressed by a directive on its own line or
// the line directly above it.
func (s ignoreSet) covers(d Diagnostic) bool {
	for _, line := range []int{d.Line, d.Line - 1} {
		if s[ignoreKey{d.File, line, d.Analyzer}] || s[ignoreKey{d.File, line, "all"}] {
			return true
		}
	}
	return false
}

// collectIgnores extracts the //lint:ignore directives of a package through
// the shared directive parser. Any malformed directive — an ignore missing
// its analyzer name or reason, an unknown or incomplete //flexvet: marker —
// is reported as a diagnostic of the pseudo-analyzer "flexvet" instead of
// being honoured, so a typo cannot silently disable a check or grant a
// flow-analyzer exemption.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	ignores := make(ignoreSet)
	var malformed []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok, msg := ParseDirective(c.Text)
				if !ok {
					if msg != "" {
						pos := pkg.Fset.Position(c.Pos())
						malformed = append(malformed, Diagnostic{
							Analyzer: "flexvet",
							File:     strings.ReplaceAll(pos.Filename, "\\", "/"),
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  msg,
						})
					}
					continue
				}
				if d.Kind == DirIgnore {
					pos := pkg.Fset.Position(c.Pos())
					ignores[ignoreKey{strings.ReplaceAll(pos.Filename, "\\", "/"), pos.Line, d.Analyzer}] = true
				}
			}
		}
	}
	return ignores, malformed
}

// funcFor locates the declaration of the named function or method in any
// loaded package with the given import path, returning the declaring
// package and declaration. Methods are addressed as "Recv.Name". It returns
// nil, nil when the function is not part of the loaded source.
func funcFor(all []*Package, pkgPath, name string) (*Package, *ast.FuncDecl) {
	for _, pkg := range all {
		if pkg.Path != pkgPath {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if funcKey(fd) == name {
					return pkg, fd
				}
			}
		}
	}
	return nil, nil
}

// funcKey renders a FuncDecl's lookup key: "Name" for functions,
// "Recv.Name" for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr:
			t = rt.X
		case *ast.IndexListExpr:
			t = rt.X
		case *ast.Ident:
			return rt.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}
