package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives the module-wide lock-acquisition relation and flags the
// two shapes that deadlock: acquiring a lock of the same identity while one
// is already held (two shards of the sharded store, taken in submit order
// on one goroutine and sweep order on another), and acquisition-order
// cycles between distinct locks (A taken under B here, B taken under A
// there). A lock's identity is the owning named type plus the mutex field
// name, so Service.mu and Service.runMu stay distinct; *Locked methods are
// modelled as entering with their receiver's mu held, and held sets
// propagate through statically resolvable calls via the call graph.
// Holds are tracked positionally within a body (the repository's
// lock/defer-unlock idiom), and dynamic calls are opaque — the analyzer is
// deliberately conservative in both directions the way mutexguard is.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic, and no lock may be re-acquired while an instance of it is held",
	Run:  runLockOrder,
}

// lockKey identifies a lock class: the named type owning the mutex and the
// field's name.
type lockKey struct {
	typ   *types.TypeName
	field string
}

func (k lockKey) String() string {
	return k.typ.Name() + "." + k.field
}

// lockEvent is one acquisition or release at a source position. Deferred
// releases are modelled at the end of the body.
type lockEvent struct {
	pos     token.Pos
	key     lockKey
	acquire bool
}

// lockCall is a statically resolved call site.
type lockCall struct {
	pos token.Pos
	fn  *types.Func
}

// lockFacts summarises one function body for the ordering analysis.
type lockFacts struct {
	fn     *types.Func
	pkg    *Package
	events []lockEvent
	calls  []lockCall
	// entry is the lock a *Locked method holds on entry, if any.
	entry *lockKey
	// acquires is the transitive closure of lock classes this function may
	// acquire, computed by fixpoint over the call graph.
	acquires map[lockKey]bool
}

// lockEdge is one observed "to acquired while from held" pair with the
// witnessing call or acquisition site.
type lockEdge struct {
	from, to lockKey
	pkg      *Package
	pos      token.Pos
}

// lockOrderState is the module-wide relation, built once per Run and cached
// in Shared.Facts.
type lockOrderState struct {
	findings map[string][]Diagnostic // keyed by package path
}

func runLockOrder(pass *Pass) {
	state, ok := pass.Shared.Facts["lockorder"].(*lockOrderState)
	if !ok {
		state = buildLockOrderState(pass)
		pass.Shared.Facts["lockorder"] = state
	}
	for _, d := range state.findings[pass.Pkg.Path] {
		pass.diags = append(pass.diags, d)
	}
}

// buildLockOrderState computes per-function lock facts for every loaded
// package, closes the may-acquire sets over the call graph, records the
// held→acquired edges, and turns cycles and same-class double acquisitions
// into findings grouped by package.
func buildLockOrderState(pass *Pass) *lockOrderState {
	facts := make(map[*types.Func]*lockFacts)
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				facts[fn] = collectLockFacts(pkg, fd, fn)
			}
		}
	}
	// Fixpoint: a function may acquire what it acquires directly plus what
	// any statically resolved callee may acquire.
	for changed := true; changed; {
		changed = false
		for _, f := range facts {
			for _, c := range f.calls {
				callee, ok := facts[c.fn]
				if !ok {
					continue
				}
				for k := range callee.acquires {
					if !f.acquires[k] {
						f.acquires[k] = true
						changed = true
					}
				}
			}
		}
	}
	state := &lockOrderState{findings: make(map[string][]Diagnostic)}
	report := func(pkg *Package, pos token.Pos, msg string) {
		position := pkg.Fset.Position(pos)
		state.findings[pkg.Path] = append(state.findings[pkg.Path], Diagnostic{
			Analyzer: "lockorder",
			File:     strings.ReplaceAll(position.Filename, "\\", "/"),
			Line:     position.Line,
			Col:      position.Column,
			Message:  msg,
		})
	}
	var edges []lockEdge
	addEdge := func(f *lockFacts, pos token.Pos, held, acquired lockKey) {
		if held == acquired {
			report(f.pkg, pos, "acquiring "+acquired.String()+" while another "+held.String()+
				" is already held; same-class double acquisition (cross-shard) deadlocks under inverse order — release first or impose a total order")
			return
		}
		edges = append(edges, lockEdge{from: held, to: acquired, pkg: f.pkg, pos: pos})
	}
	for _, f := range facts {
		held := heldTracker(f)
		for _, ev := range f.events {
			if !ev.acquire {
				continue
			}
			for _, h := range held(ev.pos) {
				addEdge(f, ev.pos, h, ev.key)
			}
		}
		for _, c := range f.calls {
			callee, ok := facts[c.fn]
			if !ok {
				continue
			}
			for k := range callee.acquires {
				for _, h := range held(c.pos) {
					addEdge(f, c.pos, h, k)
				}
			}
		}
	}
	reportCycleEdges(edges, report)
	// Deterministic output inside each package.
	for _, ds := range state.findings {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].File != ds[j].File {
				return ds[i].File < ds[j].File
			}
			return ds[i].Line < ds[j].Line
		})
	}
	return state
}

// heldTracker returns a positional query over f's lock events: which lock
// classes are held at pos. A *Locked method's receiver lock is always held.
func heldTracker(f *lockFacts) func(token.Pos) []lockKey {
	events := make([]lockEvent, len(f.events))
	copy(events, f.events)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return func(pos token.Pos) []lockKey {
		count := make(map[lockKey]int)
		for _, ev := range events {
			if ev.pos >= pos {
				break
			}
			if ev.acquire {
				count[ev.key]++
			} else if count[ev.key] > 0 {
				count[ev.key]--
			}
		}
		var out []lockKey
		if f.entry != nil {
			out = append(out, *f.entry)
		}
		for k, c := range count {
			if c > 0 {
				out = append(out, k)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
		return out
	}
}

// reportCycleEdges finds every edge that participates in an acquisition
// cycle (to can transitively lead back to from) and reports its witness.
func reportCycleEdges(edges []lockEdge, report func(*Package, token.Pos, string)) {
	succs := make(map[lockKey]map[lockKey]bool)
	for _, e := range edges {
		if succs[e.from] == nil {
			succs[e.from] = make(map[lockKey]bool)
		}
		succs[e.from][e.to] = true
	}
	reaches := func(from, to lockKey) bool {
		seen := map[lockKey]bool{from: true}
		stack := []lockKey{from}
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if k == to {
				return true
			}
			for n := range succs[k] {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		return false
	}
	reported := make(map[token.Pos]bool)
	for _, e := range edges {
		if reported[e.pos] || !reaches(e.to, e.from) {
			continue
		}
		reported[e.pos] = true
		report(e.pkg, e.pos, "lock-order cycle: "+e.to.String()+" is acquired here while "+e.from.String()+
			" is held, but elsewhere "+e.from.String()+" is (transitively) acquired under "+e.to.String()+" — two goroutines taking the two orders deadlock")
	}
}

// collectLockFacts scans one body for mutex operations and static calls.
func collectLockFacts(pkg *Package, fd *ast.FuncDecl, fn *types.Func) *lockFacts {
	f := &lockFacts{fn: fn, pkg: pkg, acquires: make(map[lockKey]bool)}
	if strings.HasSuffix(fd.Name.Name, lockedSuffix) {
		if recv := receiverNamed(fn); recv != nil {
			f.entry = &lockKey{typ: recv.Obj(), field: "mu"}
		}
	}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, ok := mutexOp(pkg, call); ok {
			// A deferred unlock releases at function end — positionally,
			// never — so it contributes no release event.
			if !deferred[call] {
				f.events = append(f.events, lockEvent{pos: call.Pos(), key: key, acquire: acquire})
			}
			if acquire {
				f.acquires[key] = true
			}
			return true
		}
		if callee := Callee(pkg.Info, call); callee != nil {
			f.calls = append(f.calls, lockCall{pos: call.Pos(), fn: callee})
		}
		return true
	})
	return f
}

// mutexOp matches x.f.Lock/RLock/Unlock/RUnlock where f is a sync.Mutex,
// sync.RWMutex, or a source type wrapping one (it declares Lock and
// Unlock), and returns the lock class (named type of x, field f).
func mutexOp(pkg *Package, call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockKey{}, false, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	muType, ok := pkg.Info.Types[muSel]
	if !ok || !isLockable(muType.Type) {
		return lockKey{}, false, false
	}
	ownerType, ok := pkg.Info.Types[muSel.X]
	if !ok {
		return lockKey{}, false, false
	}
	named, isNamed := namedType(ownerType.Type)
	if !isNamed {
		return lockKey{}, false, false
	}
	return lockKey{typ: named.Obj(), field: muSel.Sel.Name}, acquire, true
}

// isLockable reports whether t is sync.Mutex/RWMutex or a named source type
// declaring both Lock and Unlock (the store's instrumented lockMeter).
func isLockable(t types.Type) bool {
	named, ok := namedType(t)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
		return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
	}
	var hasLock, hasUnlock bool
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}
