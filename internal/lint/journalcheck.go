package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// journalRule hard-codes a cross-package write-ahead pairing that a
// //flexvet:journaled annotation cannot express because the mutator lives
// in another package: inside packages matching pkg, every call to
// recvType.method (recvType defined under recvPkg) must be dominated by a
// call to one of the gate functions in the same function body.
type journalRule struct {
	pkg      string
	recvPkg  string
	recvType string
	method   string
	gates    []string
}

// journalRules carries the scheduler's decision-ledger contract
// (docs/SCHEDULING.md): sched must append a ledger record before the market
// store mutation that applies the decision, so a crash between the two
// replays the decision instead of losing it.
var journalRules = []journalRule{
	{
		pkg:      "internal/sched",
		recvPkg:  "internal/market",
		recvType: "Store",
		method:   "Assign",
		gates:    []string{"journalDecision", "journalRun", "appendRecord"},
	},
}

// JournalCheck enforces write-ahead order on the durable state machines:
// a method annotated "//flexvet:journaled <gate>" mutates journaled state,
// so every call to it must be dominated — on every control-flow path, per
// the CFG — by a call to the gate on the same receiver (the market shards'
// journalLocked). The journalRules table adds the cross-package pairing for
// the scheduler ledger. Recovery code that re-applies events already in the
// journal opts out with "//flexvet:replay <reason>", and *Locked methods of
// the annotated type are exempt — their callers hold the obligation, and
// must themselves be annotated if they transitively mutate.
var JournalCheck = &Analyzer{
	Name:  "journalcheck",
	Doc:   "mutations of journaled state must be dominated by the write-ahead append that records them",
	Paths: []string{"internal/market", "internal/sched"},
	Run:   runJournalCheck,
}

func runJournalCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := funcDirective(fd, DirReplay); ok {
				continue // recovery path: events are already journaled
			}
			checkJournalOrder(pass, fd)
		}
	}
}

func checkJournalOrder(pass *Pass, fd *ast.FuncDecl) {
	cfg := pass.Shared.CFGOf(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkAnnotatedMutation(pass, fd, cfg, call)
		checkRuledMutation(pass, fd, cfg, call)
		return true
	})
}

// checkAnnotatedMutation handles the //flexvet:journaled mechanism: the
// callee's declaration names the gate, and a call to that gate on the same
// receiver must dominate this call site.
func checkAnnotatedMutation(pass *Pass, fd *ast.FuncDecl, cfg *CFG, call *ast.CallExpr) {
	callee := Callee(pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	site, ok := pass.Shared.Graph().Decl(callee)
	if !ok {
		return
	}
	d, ok := funcDirective(site.Decl, DirJournaled)
	if !ok {
		return
	}
	recvNamed := receiverNamed(callee)
	if recvNamed != nil && sameLockedReceiver(pass, fd, recvNamed) {
		return // a *Locked peer: its caller holds the write-ahead obligation
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // method expression / value: out of the convention
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		pass.Reportf(sel.Sel.Pos(), "%s mutates journaled state but is called through a non-trivial receiver expression; hold a named receiver so the write-ahead order is checkable", callee.Name())
		return
	}
	obj := pass.Pkg.Info.Uses[base]
	if obj == nil {
		return
	}
	if !gateDominates(pass, fd, cfg, call.Pos(), func(c *ast.CallExpr) bool {
		s, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || s.Sel.Name != d.Arg {
			return false
		}
		b, ok := ast.Unparen(s.X).(*ast.Ident)
		return ok && pass.Pkg.Info.Uses[b] == obj
	}) {
		pass.Reportf(sel.Sel.Pos(), "%s.%s mutates journaled state but no %s.%s call dominates it; append to the journal before mutating, on every path", base.Name, callee.Name(), base.Name, d.Arg)
	}
}

// checkRuledMutation handles the journalRules table: cross-package mutators
// whose write-ahead gate is a function of the calling package.
func checkRuledMutation(pass *Pass, fd *ast.FuncDecl, cfg *CFG, call *ast.CallExpr) {
	callee := Callee(pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	recvNamed := receiverNamed(callee)
	if recvNamed == nil || callee.Pkg() == nil {
		return
	}
	for _, r := range journalRules {
		if !PathMatches(pass.Pkg.Path, r.pkg) {
			continue
		}
		if callee.Name() != r.method || recvNamed.Obj().Name() != r.recvType || !PathMatches(callee.Pkg().Path(), r.recvPkg) {
			continue
		}
		if isGateFunc(fd, r.gates) {
			continue // the gate itself may apply what it just journaled
		}
		if !gateDominates(pass, fd, cfg, call.Pos(), func(c *ast.CallExpr) bool {
			return calleeNameIn(c, r.gates)
		}) {
			pass.Reportf(call.Pos(), "%s.%s applies a scheduling decision but no ledger append (%s) dominates it; journal the decision before mutating the store", r.recvType, r.method, strings.Join(r.gates, "/"))
		}
		return
	}
}

// gateDominates reports whether some call matching isGate dominates pos in
// fd's body.
func gateDominates(pass *Pass, fd *ast.FuncDecl, cfg *CFG, pos token.Pos, isGate func(*ast.CallExpr) bool) bool {
	if cfg == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || !isGate(c) {
			return true
		}
		if cfg.Dominates(c.Pos(), pos) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeNameIn matches a call to a plain function or method whose bare name
// is one of names.
func calleeNameIn(call *ast.CallExpr, names []string) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// isGateFunc reports whether fd itself is one of the named gate functions.
func isGateFunc(fd *ast.FuncDecl, gates []string) bool {
	for _, g := range gates {
		if fd.Name.Name == g {
			return true
		}
	}
	return false
}

// receiverNamed returns the named receiver type of a method, nil for plain
// functions or unnamed receivers.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, ok := namedType(sig.Recv().Type())
	if !ok {
		return nil
	}
	return named
}

// sameLockedReceiver reports whether fd is a *Locked method on the given
// named type — the convention's escape hatch, mirroring mutexguard: the
// caller of a Locked method owns both the lock and the write-ahead order.
func sameLockedReceiver(pass *Pass, fd *ast.FuncDecl, named *types.Named) bool {
	if !strings.HasSuffix(fd.Name.Name, lockedSuffix) {
		return false
	}
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := receiverNamed(fn)
	return recv != nil && recv.Obj() == named.Obj()
}
