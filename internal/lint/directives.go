package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Directive kinds understood by the flexvet comment parser. The //lint:ignore
// family suppresses findings; the //flexvet: family marks functions for the
// flow-aware analyzers (docs/LINTING.md documents each one).
const (
	// DirIgnore suppresses an analyzer's findings on the directive's line
	// and the line below it. The analyzer name and a reason are mandatory.
	DirIgnore = "ignore"
	// DirHotpath subjects a function to alloccheck's per-element allocation
	// rules (the zero-allocation submit/list/extract paths).
	DirHotpath = "hotpath"
	// DirReplay exempts a recovery function from journalcheck: it applies
	// events that were already journaled, so writing ahead again would be
	// wrong. The reason is mandatory.
	DirReplay = "replay"
	// DirJournaled marks a method that mutates journaled state: every call
	// to it must be dominated by a call to the named journal gate on the
	// same receiver (journalcheck enforces this).
	DirJournaled = "journaled"
)

// lintPrefix and flexvetPrefix open the two directive families; ignorePrefix
// is the only //lint: form. Anything else under either prefix is malformed
// and reported, so a typo cannot silently disable a check.
const (
	lintPrefix    = "//lint:"
	ignorePrefix  = "//lint:ignore"
	flexvetPrefix = "//flexvet:"
)

// Directive is one parsed flexvet comment directive.
type Directive struct {
	// Kind is one of the Dir* constants.
	Kind string
	// Analyzer is the suppressed analyzer's name, or "all" (DirIgnore only).
	Analyzer string
	// Arg is the directive argument: the journal-gate method name for
	// DirJournaled.
	Arg string
	// Reason is the human explanation (mandatory for DirIgnore and
	// DirReplay, optional elsewhere).
	Reason string
}

// ParseDirective classifies one comment line (the raw text, "//" included).
// It returns ok=true and the parsed directive for a well-formed one;
// ok=false with a non-empty msg for a malformed one, which the framework
// reports under the pseudo-analyzer "flexvet"; and ok=false with msg==""
// for an ordinary comment. The parser never panics, whatever the input.
func ParseDirective(text string) (d Directive, ok bool, msg string) {
	switch {
	case strings.HasPrefix(text, ignorePrefix):
		rest := text[len(ignorePrefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			// "//lint:ignored", "//lint:ignoreX" — a directive-shaped typo.
			return Directive{}, false, `malformed //lint: directive: want "//lint:ignore <analyzer> <reason>"`
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return Directive{}, false, `malformed //lint:ignore directive: want "//lint:ignore <analyzer> <reason>"`
		}
		return Directive{Kind: DirIgnore, Analyzer: fields[0], Reason: strings.Join(fields[1:], " ")}, true, ""
	case strings.HasPrefix(text, lintPrefix):
		return Directive{}, false, `malformed //lint: directive: want "//lint:ignore <analyzer> <reason>"`
	case strings.HasPrefix(text, flexvetPrefix):
		rest := text[len(flexvetPrefix):]
		name := rest
		var args []string
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			name, args = rest[:i], strings.Fields(rest[i:])
		}
		switch name {
		case DirHotpath:
			// Trailing words are free-form commentary.
			return Directive{Kind: DirHotpath, Reason: strings.Join(args, " ")}, true, ""
		case DirReplay:
			if len(args) == 0 {
				return Directive{}, false, `malformed //flexvet:replay directive: the reason is mandatory ("//flexvet:replay <reason>")`
			}
			return Directive{Kind: DirReplay, Reason: strings.Join(args, " ")}, true, ""
		case DirJournaled:
			if len(args) == 0 {
				return Directive{}, false, `malformed //flexvet:journaled directive: want "//flexvet:journaled <gate method>"`
			}
			return Directive{Kind: DirJournaled, Arg: args[0], Reason: strings.Join(args[1:], " ")}, true, ""
		default:
			return Directive{}, false, fmt.Sprintf("unknown //flexvet: directive %q (known: hotpath, replay, journaled)", name)
		}
	}
	return Directive{}, false, ""
}

// funcDirective returns the first well-formed directive of the given kind
// in fd's doc comment. Malformed directives are not matched here — the
// framework already reports them — so a typo never grants an exemption.
func funcDirective(fd *ast.FuncDecl, kind string) (Directive, bool) {
	if fd == nil || fd.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fd.Doc.List {
		if d, ok, _ := ParseDirective(c.Text); ok && d.Kind == kind {
			return d, true
		}
	}
	return Directive{}, false
}
