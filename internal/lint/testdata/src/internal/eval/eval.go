// Package eval exercises the floatcmp analyzer: the path suffix
// internal/eval puts this fixture inside the analyzer's numeric-package
// scope.
package eval

func equalExact(a, b float64) bool {
	return a == b // want:floatcmp
}

func notEqualZero(a float64) bool {
	return a != 0 // want:floatcmp
}

func mixedConversion(a float64, n int) bool {
	return float64(n) == a // want:floatcmp
}

// constFold is folded at compile time and cannot mis-compare runtime
// energies, so floatcmp leaves it alone.
func constFold() bool {
	const half = 0.5
	return half == 0.5
}

func intsAreFine(a, b int) bool {
	return a == b
}

func orderingIsFine(a, b float64) bool {
	return a < b
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression with a reason
	return a == b
}
