// Package pipeline exercises the clockcheck analyzer: the path suffix
// internal/pipeline puts this fixture inside the analyzer's replayable-path
// scope.
package pipeline

import "time"

// Config carries the injected clock, the sanctioned time source.
type Config struct {
	// Clock supplies time; nil means live.
	Clock func() time.Time
}

func bad() time.Duration {
	start := time.Now()      // want:clockcheck
	return time.Since(start) // want:clockcheck
}

func badUntil(t time.Time) time.Duration {
	return time.Until(t) // want:clockcheck
}

func good(cfg Config) time.Time {
	if cfg.Clock != nil {
		return cfg.Clock()
	}
	return time.Date(2012, time.June, 4, 0, 0, 0, 0, time.UTC)
}

func suppressed() time.Time {
	//lint:ignore clockcheck fixture demonstrates the sanctioned live default
	return time.Now()
}
