// Package obs is a minimal stand-in for repro/internal/obs in analyzer
// fixtures: just enough surface for labelcard to recognise the metric vec
// types. Fixtures import this instead of the real package so tests never
// type-check net/http.
package obs

// Counter is a fixture counter.
type Counter struct{}

// Inc increments.
func (c *Counter) Inc() {}

// CounterVec is a fixture counter vec.
type CounterVec struct{}

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

// Histogram is a fixture histogram.
type Histogram struct{}

// Observe records v.
func (h *Histogram) Observe(v float64) {}

// HistogramVec is a fixture histogram vec.
type HistogramVec struct{}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return &Histogram{} }

// Label normalises a status code onto a constant label set; every return is
// a constant, so labelcard proves calls to it bounded across packages.
func Label(status int) string {
	if status >= 400 {
		return "err"
	}
	return "ok"
}
