// Package flexoffer is a minimal stand-in for repro/internal/flexoffer in
// analyzer fixtures: validatecheck matches the FlexOffer type by name and
// path suffix, so this tiny package stands in for the real model without
// dragging its dependency tree into the tests.
package flexoffer

import "errors"

// FlexOffer is the fixture flex-offer.
type FlexOffer struct {
	// ID identifies the offer.
	ID string
	// Slices is the profile length.
	Slices int
}

// Validate checks the offer.
func (f *FlexOffer) Validate() error {
	if f.ID == "" {
		return errors.New("flexoffer: missing id")
	}
	return nil
}
