// Package core is a minimal stand-in for repro/internal/core in analyzer
// fixtures: validatecheck matches the Params type by name and path suffix.
package core

import "errors"

// Params is the fixture extraction parameter set.
type Params struct {
	// Threshold is the fixture's only knob.
	Threshold float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Threshold < 0 {
		return errors.New("core: negative threshold")
	}
	return nil
}

// DefaultParams returns validated defaults.
func DefaultParams() Params {
	return Params{Threshold: 1}
}
