package market

var Value = 1

const Threshold = 2
