// Package market exercises the doccheck analyzer: the path suffix
// internal/market puts this fixture inside the contract-package scope.
package market

// Documented is a documented type.
type Documented struct{}

// DocumentedMethod has a doc comment.
func (Documented) DocumentedMethod() {}

type Undocumented struct{} // want:doccheck

func Exported() {} // want:doccheck

func (Documented) Method() {} // want:doccheck

// hidden is unexported and needs no doc.
func hidden() {}

type internalOnly struct{}

// Touch is a method on an unexported type — not part of the public surface.
func (internalOnly) Touch() {}
