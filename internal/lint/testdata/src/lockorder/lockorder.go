// Package lockorder is the lockorder fixture: an acquisition-order cycle
// between two lock classes and same-class (cross-shard) double
// acquisitions, direct and through a callee.
package lockorder

import "sync"

type alpha struct {
	mu   sync.Mutex
	peer *beta
}

type beta struct {
	mu   sync.Mutex
	peer *alpha
}

func (a *alpha) poke() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

func (b *beta) poke() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func (a *alpha) crossCall() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.peer.poke() // want:lockorder
}

func (b *beta) crossCall() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peer.poke() // want:lockorder
}

type shard struct {
	mu sync.Mutex
	n  int
}

func moveBoth(from, to *shard) {
	from.mu.Lock()
	defer from.mu.Unlock()
	to.mu.Lock() // want:lockorder
	defer to.mu.Unlock()
	from.n--
	to.n++
}

func moveSequential(from, to *shard) {
	from.mu.Lock()
	from.n--
	from.mu.Unlock()
	to.mu.Lock()
	to.n++
	to.mu.Unlock()
}

func lockShard(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func transitive(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockShard(b) // want:lockorder
}

func eachInTurn(all []*shard) {
	for _, s := range all {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}
