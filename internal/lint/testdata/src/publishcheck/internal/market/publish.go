// Package market is the publishcheck fixture: event-stream publishes must
// only be reachable under the shard's write lock.
package market

import "sync"

type shard struct {
	mu   sync.RWMutex
	seq  uint64
	subs []chan uint64
}

func (sh *shard) publishLocked(v uint64) {
	sh.seq = v
	for _, c := range sh.subs {
		select {
		case c <- v:
		default:
		}
	}
}

// insertLocked reaches the publish, so its call sites inherit the
// write-lock obligation.
func (sh *shard) insertLocked(v uint64) {
	sh.publishLocked(v)
}

func (sh *shard) goodPublish(v uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.insertLocked(v)
}

func (sh *shard) unlocked(v uint64) {
	sh.insertLocked(v) // want:publishcheck
}

func (sh *shard) publishUnderRead(v uint64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.publishLocked(v) // want:publishcheck
}

func (sh *shard) oneArm(v uint64, cond bool) {
	if cond {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh.insertLocked(v) // want:publishcheck
}
