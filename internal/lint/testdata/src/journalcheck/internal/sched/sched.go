// Package sched is the journalcheck fixture for the cross-package ledger
// rule: market Store.Assign calls must be dominated by a ledger append.
package sched

import "repro/internal/lint/testdata/src/journalcheck/internal/market"

type service struct {
	store  *market.Store
	ledger func(kind string) error
}

// journalDecision appends the decision record to the write-ahead ledger; it
// no-ops without one so write-ahead order is unconditional at call sites.
func (s *service) journalDecision(kind string) error {
	if s.ledger == nil {
		return nil
	}
	return s.ledger(kind)
}

func (s *service) goodRun(id string) error {
	if err := s.journalDecision("assign"); err != nil {
		return err
	}
	return s.store.Assign(id)
}

func (s *service) unjournaledRun(id string) error {
	return s.store.Assign(id) // want:journalcheck
}

func (s *service) lateLedger(id string) error {
	if err := s.store.Assign(id); err != nil { // want:journalcheck
		return err
	}
	return s.journalDecision("assign")
}

func (s *service) oneArmLedger(id string, dry bool) error {
	if !dry {
		if err := s.journalDecision("assign"); err != nil {
			return err
		}
	}
	return s.store.Assign(id) // want:journalcheck
}

// replayRun re-applies decisions the ledger already holds.
//
//flexvet:replay recovery replays decisions from the ledger
func (s *service) replayRun(id string) error {
	return s.store.Assign(id)
}
