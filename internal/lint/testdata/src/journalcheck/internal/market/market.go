// Package market is the journalcheck fixture: a miniature journaled shard
// whose annotated mutators must be dominated by the write-ahead gate.
package market

import "sync"

type record struct {
	id    string
	state int
}

type shard struct {
	mu      sync.RWMutex
	records map[string]*record
	order   []string
	journal func(kind string) error
}

// journalLocked appends the event to the write-ahead journal; it no-ops
// without one so write-ahead order is unconditional at call sites.
func (sh *shard) journalLocked(kind string) error {
	if sh.journal == nil {
		return nil
	}
	return sh.journal(kind)
}

// insertLocked applies a submit that journalLocked already recorded.
//
//flexvet:journaled journalLocked
func (sh *shard) insertLocked(r *record) {
	sh.records[r.id] = r
	sh.order = append(sh.order, r.id)
}

// transitionLocked applies a decision that journalLocked already recorded.
//
//flexvet:journaled journalLocked
func (sh *shard) transitionLocked(r *record, to int) {
	r.state = to
}

func (sh *shard) goodSubmit(r *record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.journalLocked("submit"); err != nil {
		return err
	}
	sh.insertLocked(r)
	return nil
}

func (sh *shard) goodBatch(rs []*record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.journalLocked("batch"); err != nil {
		return err
	}
	for _, r := range rs {
		sh.insertLocked(r)
	}
	return nil
}

func (sh *shard) reordered(r *record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.insertLocked(r) // want:journalcheck
	if err := sh.journalLocked("submit"); err != nil {
		return err
	}
	return nil
}

func (sh *shard) oneArmOnly(r *record, fast bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !fast {
		if err := sh.journalLocked("submit"); err != nil {
			return err
		}
	}
	sh.insertLocked(r) // want:journalcheck
	return nil
}

func (sh *shard) wrongReceiver(peer *shard, r *record) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if err := sh.journalLocked("submit"); err != nil {
		return err
	}
	peer.insertLocked(r) // want:journalcheck
	return nil
}

// applyReplay re-applies an event read back from the journal.
//
//flexvet:replay recovery applies events the journal already holds
func (sh *shard) applyReplay(r *record) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.insertLocked(r)
}

// Store is the cross-package mutator the sched fixture drives.
type Store struct {
	sh shard
}

// Assign transitions a record; the scheduler must ledger the decision
// before calling this.
func (s *Store) Assign(id string) error {
	sh := &s.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.journalLocked("assign"); err != nil {
		return err
	}
	if r, ok := sh.records[id]; ok {
		sh.transitionLocked(r, 1)
	}
	return nil
}
