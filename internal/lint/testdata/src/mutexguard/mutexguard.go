// Package mutexguard exercises the guarded-field annotations: fields marked
// "guarded by mu" must be accessed with the receiver's lock already taken in
// the same function.
package mutexguard

import "sync"

// counter is the fixture guarded struct.
type counter struct {
	mu sync.RWMutex
	n  int      // guarded by mu
	s  []string // guarded by mu
	id string   // immutable, deliberately unguarded
}

func (c *counter) bad() int {
	return c.n // want:mutexguard
}

func (c *counter) badBeforeLock() int {
	v := c.n // want:mutexguard
	c.mu.Lock()
	defer c.mu.Unlock()
	return v + c.n
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodRead() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.s...)
}

func (c *counter) unguardedIsFine() string {
	return c.id
}

func nonTrivial(get func() *counter) int {
	get().mu.Lock()
	return get().n // want:mutexguard
}

func (c *counter) suppressed() int {
	//lint:ignore mutexguard fixture demonstrates suppression with a reason
	return c.n
}

func (c *counter) suppressedAll() int {
	//lint:ignore all fixture demonstrates the blanket form
	return c.n
}

func (c *counter) malformedDirective() int {
	//lint:ignore want:flexvet
	return c.n // want:mutexguard
}

// incrLocked follows the *Locked convention: the caller holds c.mu, so
// the guarded accesses in its body are exempt.
func (c *counter) incrLocked() {
	c.n++
	c.s = append(c.s, "x")
}

// chainLocked may call sibling *Locked helpers freely — the obligation
// stays with the outermost non-Locked caller.
func (c *counter) chainLocked() {
	c.incrLocked()
}

func (c *counter) callsHelperWithLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incrLocked()
}

func (c *counter) callsHelperWithoutLock() {
	c.incrLocked() // want:mutexguard
}

func (c *counter) callsHelperBeforeLock() {
	c.incrLocked() // want:mutexguard
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incrLocked()
}

func nonTrivialLockedCall(get func() *counter) {
	get().mu.Lock()
	get().incrLocked() // want:mutexguard
}

// unguardedHelper has no guarded fields on its receiver, so its *Locked
// method carries no obligation.
type unguardedHelper struct{ n int }

func (u *unguardedHelper) bumpLocked() { u.n++ }

func freeStanding(u *unguardedHelper) {
	u.bumpLocked()
}
