// Package alloccheck is the alloccheck fixture: functions marked
// //flexvet:hotpath (the marker sits in doc comments, like the ones below)
// must not allocate per element.
package alloccheck

import "fmt"

type item struct {
	id string
	kw float64
}

func sink(v any) {}

// render is marked hot, so fmt string building is a finding.
//
//flexvet:hotpath
func render(n int) string {
	return fmt.Sprintf("%d", n) // want:alloccheck
}

// renderCold is unmarked: alloccheck must stay away.
func renderCold(n int) string {
	return fmt.Sprintf("%d", n)
}

//flexvet:hotpath
func badAppend(xs []item) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x.id) // want:alloccheck
	}
	return out
}

//flexvet:hotpath
func goodAppend(xs []item) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, x.id)
	}
	return out
}

//flexvet:hotpath
func badClosure(xs []item) float64 {
	var total float64
	for i := range xs {
		add := func() { total += xs[i].kw } // want:alloccheck
		add()
	}
	return total
}

//flexvet:hotpath
func hoistedClosure(xs []item) float64 {
	var total float64
	weigh := func(i item) float64 { return i.kw }
	for _, x := range xs {
		total += weigh(x)
	}
	return total
}

//flexvet:hotpath
func badBoxing(xs []item) {
	for _, x := range xs {
		sink(x.kw) // want:alloccheck
	}
}

//flexvet:hotpath
func pointerNoBox(xs []*item) {
	for _, x := range xs {
		sink(x)
	}
}

// typo's directive is mistyped: the framework reports it instead of
// honouring it, so the Sprintf below stays unflagged (and unexempted).
//
//flexvet:hotpth want:flexvet
func typo(n int) string {
	return fmt.Sprintf("%d", n)
}
