// Package wal is the errflow fixture for the write-ahead log's method set.
package wal

// Log mimics the WAL's durability-critical API.
type Log struct{}

// Append writes one record and returns its LSN.
func (l *Log) Append(p []byte) (uint64, error) { return 0, nil }

// Sync flushes buffered records to stable storage.
func (l *Log) Sync() error { return nil }

func appendDropped(l *Log, p []byte) {
	l.Append(p) // want:errflow
}

func appendBlank(l *Log, p []byte) uint64 {
	lsn, _ := l.Append(p) // want:errflow
	return lsn
}

func syncDeferred(l *Log) {
	defer l.Sync() // want:errflow
}

func syncGone(l *Log) {
	go l.Sync() // want:errflow
}

func appendChecked(l *Log, p []byte) (uint64, error) {
	lsn, err := l.Append(p)
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

func syncChecked(l *Log) error {
	return l.Sync()
}
