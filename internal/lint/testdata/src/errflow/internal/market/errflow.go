// Package market is the errflow fixture: errors from the tracked store
// mutators and journal gates must be inspected on every path.
package market

// Store mimics the market store's mutator surface.
type Store struct{}

// Submit records an offer.
func (s *Store) Submit(id string) error { return nil }

// Accept transitions an offer.
func (s *Store) Accept(id string) error { return nil }

type shard struct {
	journal func(kind string) error
}

// journalLocked is the write-ahead gate; errflow tracks it because the
// insertLocked annotation names it.
func (sh *shard) journalLocked(kind string) error {
	if sh.journal == nil {
		return nil
	}
	return sh.journal(kind)
}

// insertLocked applies a submit that journalLocked already recorded.
//
//flexvet:journaled journalLocked
func (sh *shard) insertLocked(id string) {}

func dropped(s *Store) {
	s.Submit("a") // want:errflow
}

func blank(s *Store) {
	_ = s.Submit("a") // want:errflow
}

func overwritten(s *Store) error {
	err := s.Submit("a") // want:errflow
	err = s.Accept("a")
	return err
}

func shadowed(s *Store, strict bool) error {
	err := s.Submit("a") // want:errflow
	if strict {
		if err := s.Accept("a"); err != nil {
			return err
		}
		return nil
	}
	return err
}

func partiallyChecked(s *Store, strict bool) error {
	err := s.Submit("a") // want:errflow
	if strict {
		return err
	}
	return nil
}

func gateDropped(sh *shard) {
	sh.journalLocked("submit") // want:errflow
}

func gateChecked(sh *shard) error {
	if err := sh.journalLocked("submit"); err != nil {
		return err
	}
	sh.insertLocked("a")
	return nil
}

func checked(s *Store) error {
	if err := s.Submit("a"); err != nil {
		return err
	}
	return nil
}

func checkedBothPaths(s *Store, strict bool) error {
	err := s.Submit("a")
	if strict {
		return err
	}
	return wrap(err)
}

func wrap(err error) error { return err }

func loopChecked(s *Store, ids []string) error {
	for _, id := range ids {
		if err := s.Submit(id); err != nil {
			return err
		}
	}
	return nil
}
