package validatecheck

import (
	"repro/internal/lint/testdata/src/internal/core"
	"repro/internal/lint/testdata/src/internal/flexoffer"
)

func goodAssigned() error {
	f := &flexoffer.FlexOffer{ID: "c"}
	if err := f.Validate(); err != nil {
		return err
	}
	submit(f, core.DefaultParams())
	return nil
}

func goodDirect() error {
	return (&flexoffer.FlexOffer{ID: "d"}).Validate()
}

func goodParams() error {
	p := core.Params{Threshold: 2}
	if err := p.Validate(); err != nil {
		return err
	}
	submit(nil, p)
	return nil
}

func goodVarDecl() error {
	var f = flexoffer.FlexOffer{ID: "e"}
	if err := f.Validate(); err != nil {
		return err
	}
	submit(&f, core.DefaultParams())
	return nil
}

func suppressed() {
	//lint:ignore validatecheck fixture demonstrates suppression with a reason
	f := &flexoffer.FlexOffer{ID: "f"}
	submit(f, core.DefaultParams())
}
