// Package validatecheck exercises the validatecheck analyzer: FlexOffer and
// Params composite literals built outside their defining packages must be
// validated before they travel.
package validatecheck

import (
	"repro/internal/lint/testdata/src/internal/core"
	"repro/internal/lint/testdata/src/internal/flexoffer"
)

// template at package scope can never be validated before use.
var template = flexoffer.FlexOffer{ID: "t"} // want:validatecheck

// submit stands in for a store/scheduler boundary the values travel across.
func submit(f *flexoffer.FlexOffer, p core.Params) {}

func badDirectOffer() {
	submit(&flexoffer.FlexOffer{ID: "a"}, core.DefaultParams()) // want:validatecheck
}

func badDirectParams() {
	submit(nil, core.Params{Threshold: 1}) // want:validatecheck
}

func badAssigned() {
	f := &flexoffer.FlexOffer{ID: "b"} // want:validatecheck
	submit(f, core.DefaultParams())
}
