// Package labelcard exercises the labelcard analyzer against the obs stub:
// every value passed to a metric vec's With must be provably bounded.
package labelcard

import "repro/internal/lint/testdata/src/internal/obs"

// metrics bundles the fixture vecs.
type metrics struct {
	requests *obs.CounterVec
	latency  *obs.HistogramVec
}

// classOf normalises a status code onto a constant set in this package.
func classOf(status int) string {
	if status >= 500 {
		return "5xx"
	}
	return "2xx"
}

// identity returns its argument unchanged — NOT bounded.
func identity(s string) string {
	return s
}

func badParameter(m *metrics, route string) {
	m.requests.With(route).Inc() // want:labelcard
}

func badField(m *metrics, r struct{ Method string }) {
	m.requests.With(r.Method).Inc() // want:labelcard
}

func badReassigned(m *metrics, status int) {
	label := "a"
	if status > 0 {
		label = classOf(status)
	}
	m.requests.With(label).Inc() // want:labelcard
}

func badPassThrough(m *metrics, route string) {
	m.requests.With(identity(route)).Inc() // want:labelcard
}

func badHistogram(m *metrics, route string) {
	m.latency.With(route).Observe(1) // want:labelcard
}

func good(m *metrics, status int) {
	m.requests.With("static").Inc()
	m.requests.With(classOf(status)).Inc()
	m.latency.With(obs.Label(status)).Observe(1)
	label := classOf(status)
	m.requests.With(label).Inc()
}

func suppressed(m *metrics, route string) {
	//lint:ignore labelcard fixture demonstrates a contract-bounded label
	m.requests.With(route).Inc()
}
