package lint

import (
	"go/ast"
	"go/types"
)

// AllocCheck enforces the ROADMAP's zero-allocation ambition on the
// functions that opted in with a "//flexvet:hotpath" doc directive (the
// submit/list/extract paths). Inside a marked function it flags the four
// per-element allocation patterns that creep back in during refactors:
// fmt.Sprint/Sprintf/Sprintln anywhere (fmt.Errorf on error paths is
// deliberately out of scope), function literals inside loops (one closure
// allocation per iteration), interface boxing of concrete non-pointer
// arguments inside loops, and append growth into a slice that was not
// preallocated with a capacity. The check is marker-driven: unmarked
// functions are never inspected, so cold paths stay free to trade
// allocations for clarity.
var AllocCheck = &Analyzer{
	Name: "alloccheck",
	Doc:  "//flexvet:hotpath functions must not allocate per element: no fmt.Sprint*, closures or interface boxing in loops, or un-preallocated append growth",
	Run:  runAllocCheck,
}

func runAllocCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := funcDirective(fd, DirHotpath); !ok {
				continue
			}
			checkHotpath(pass, fd)
		}
	}
}

func checkHotpath(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
		case *ast.ForStmt:
			walk(n.Init, inLoop)
			walk(n.Cond, inLoop)
			walk(n.Post, true)
			walk(n.Body, true)
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
		case *ast.FuncLit:
			if inLoop {
				pass.Reportf(n.Pos(), "closure allocated on every loop iteration in a hotpath function; hoist it out of the loop or pass the loop variables as arguments")
				return // inner findings would double-count the same alloc
			}
			walk(n.Body, false)
		case *ast.CallExpr:
			checkHotCall(pass, n, inLoop)
			walk(n.Fun, inLoop)
			for _, a := range n.Args {
				walk(a, inLoop)
			}
		case *ast.AssignStmt:
			if inLoop {
				checkAppendGrowth(pass, fd, n)
			}
			for _, e := range n.Rhs {
				walk(e, inLoop)
			}
			for _, e := range n.Lhs {
				walk(e, inLoop)
			}
		default:
			// Generic descent for every other node shape.
			var children []ast.Node
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil || m == n {
					return true
				}
				children = append(children, m)
				return false
			})
			for _, c := range children {
				walk(c, inLoop)
			}
		}
	}
	walk(fd.Body, false)
}

// checkHotCall flags fmt string building anywhere in a hotpath function and
// interface boxing of concrete values inside loops.
func checkHotCall(pass *Pass, call *ast.CallExpr, inLoop bool) {
	if name, ok := fmtSprintCall(pass, call); ok {
		pass.Reportf(call.Pos(), "fmt.%s allocates (reflection plus a string) in a hotpath function; build the output with strconv.Append* into a reused buffer", name)
		return
	}
	if !inLoop {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// A conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 && boxes(pass, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand on every loop iteration in a hotpath function; keep the concrete type or hoist the conversion", types.TypeString(tv.Type, types.RelativeTo(nil)))
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin or dynamic: no parameter types to inspect
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-arg boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, paramType, arg) {
			pass.Reportf(arg.Pos(), "argument boxed into interface %s on every loop iteration in a hotpath function; use a concrete parameter type or hoist the call", types.TypeString(paramType, types.RelativeTo(nil)))
		}
	}
}

// boxes reports whether passing arg as paramType heap-allocates an
// interface box: the parameter is an interface, the argument is concrete,
// non-constant, and not pointer-shaped (pointers, maps, chans and funcs fit
// in the interface data word without allocating).
func boxes(pass *Pass, paramType types.Type, arg ast.Expr) bool {
	if !types.IsInterface(paramType) {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // constants are hoisted or statically boxed
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface:
		return false // interface to interface: no new box
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: stored directly in the data word
	case *types.Basic:
		b := tv.Type.Underlying().(*types.Basic)
		return b.Kind() != types.UntypedNil
	}
	return true
}

// fmtSprintCall matches fmt.Sprint, fmt.Sprintf and fmt.Sprintln.
func fmtSprintCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Sprint", "Sprintf", "Sprintln":
	default:
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkAppendGrowth flags `x = append(x, ...)` inside a loop when x is a
// local slice declared without a capacity: every growth step reallocates
// and copies. Parameters, captured variables and slices built from calls
// are left alone — their capacity is the caller's business.
func checkAppendGrowth(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if _, isBuiltin := pass.Pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
		return
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Pkg.Info.Uses[lhs]
	if obj == nil || pass.Pkg.Info.Uses[first] != obj {
		return // growing into a different slice: a copy, not growth
	}
	init, declared := localSliceInit(pass, fd, obj)
	if !declared || !uncapacitated(pass, init) {
		return
	}
	pass.Reportf(as.Pos(), "append grows %s on every loop iteration in a hotpath function but it was declared without capacity; preallocate with make(..., 0, n)", lhs.Name)
}

// localSliceInit finds the declaration of obj inside fd and returns its
// initialiser expression (nil for `var x []T`). declared is false when obj
// is a parameter, a receiver, or declared outside fd.
func localSliceInit(pass *Pass, fd *ast.FuncDecl, obj types.Object) (ast.Expr, bool) {
	var init ast.Expr
	declared := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || pass.Pkg.Info.Defs[id] != obj {
					continue
				}
				declared = true
				if len(n.Rhs) == len(n.Lhs) {
					init = n.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Pkg.Info.Defs[name] != obj {
					continue
				}
				declared = true
				if i < len(n.Values) {
					init = n.Values[i]
				}
			}
		}
		return true
	})
	return init, declared
}

// uncapacitated reports whether a slice initialiser reserves no capacity:
// no initialiser at all, an empty literal, or make with a constant zero
// length and no capacity argument.
func uncapacitated(pass *Pass, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case nil:
		return true
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		fun, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" {
			return false
		}
		if _, isBuiltin := pass.Pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
			return false
		}
		if len(e.Args) != 2 {
			return false // explicit capacity (3 args): preallocated
		}
		tv, ok := pass.Pkg.Info.Types[e.Args[1]]
		if !ok || tv.Value == nil {
			return false // non-constant length: sized by the caller
		}
		return tv.Value.String() == "0"
	}
	return false
}
