package lint

import (
	"go/ast"
	"go/types"
)

// DeclSite pairs a function declaration with the package that defines it.
type DeclSite struct {
	// Pkg is the defining package.
	Pkg *Package
	// Decl is the function or method declaration.
	Decl *ast.FuncDecl
}

// CallGraph maps the *types.Func objects of every loaded package to their
// declarations, so analyzers can chase statically resolvable calls across
// package boundaries. Dynamic calls — func values, interface methods —
// resolve to nothing, and the flow analyzers treat them as opaque.
type CallGraph struct {
	decls map[*types.Func]DeclSite
}

// NewCallGraph indexes the function declarations of every loaded package.
func NewCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{decls: make(map[*types.Func]DeclSite)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = DeclSite{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return g
}

// Decl returns the declaration of fn. ok is false when fn is not declared
// in the loaded source (standard library, interface methods).
func (g *CallGraph) Decl(fn *types.Func) (DeclSite, bool) {
	site, ok := g.decls[fn]
	return site, ok
}

// Callee statically resolves a call expression to the *types.Func it
// invokes: a plain function, a qualified pkg.F, or a method value call.
// Dynamic calls (func-typed values, method expressions applied later) and
// builtins return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field of func type: dynamic
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// No selection entry: a qualified identifier pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Shared caches the flow artifacts of one Run so every analyzer pass reuses
// them: the module-wide call graph, per-function control-flow graphs, and a
// grab-bag of analyzer-computed module-wide facts.
type Shared struct {
	pkgs  []*Package
	graph *CallGraph
	cfgs  map[*ast.FuncDecl]*CFG

	// Facts caches module-wide analyzer state keyed by analyzer name
	// (lockorder stores its acquisition relation here), built on first use.
	Facts map[string]any
}

func newShared(pkgs []*Package) *Shared {
	return &Shared{
		pkgs:  pkgs,
		cfgs:  make(map[*ast.FuncDecl]*CFG),
		Facts: make(map[string]any),
	}
}

// Graph returns the call graph over every loaded package, built on first
// use.
func (s *Shared) Graph() *CallGraph {
	if s.graph == nil {
		s.graph = NewCallGraph(s.pkgs)
	}
	return s.graph
}

// CFGOf returns the control-flow graph of fd's body, cached per
// declaration; nil for bodyless declarations.
func (s *Shared) CFGOf(fd *ast.FuncDecl) *CFG {
	if fd == nil || fd.Body == nil {
		return nil
	}
	if c, ok := s.cfgs[fd]; ok {
		return c
	}
	c := NewCFG(fd.Body)
	s.cfgs[fd] = c
	return c
}
