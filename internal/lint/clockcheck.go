package lint

import (
	"go/ast"
	"go/types"
)

// ClockCheck flags reads of the wall clock — time.Now, time.Since,
// time.Until — in the replayable paths: the extraction pipeline, the core
// extractors, and mirabeld's seeding. Those paths must draw time from the
// injected clock (pipeline.Config.Clock, the market.NewStore clock), or
// `mirabeld -clock` replays of historical datasets silently diverge from
// live runs.
var ClockCheck = &Analyzer{
	Name: "clockcheck",
	Doc:  "replayable paths must use the injected clock, not time.Now/Since/Until",
	Paths: []string{
		"internal/pipeline",
		"internal/core",
		"cmd/mirabeld",
	},
	Run: runClockCheck,
}

// wallClockFuncs are the time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runClockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s in a replayable path; draw time from the injected clock (pipeline.Config.Clock / market.NewStore clock) so -clock replays stay deterministic", fn.Name())
			return true
		})
	}
}
