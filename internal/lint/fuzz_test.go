package lint

import (
	"strings"
	"testing"
)

// FuzzLintDirectives drives the directive parser with arbitrary comment
// text and checks its structural invariants: it never panics, a successful
// parse fills the fields its kind mandates, and a failed parse of a
// directive-prefixed comment always carries a diagnosis message.
func FuzzLintDirectives(f *testing.F) {
	seeds := []string{
		"//lint:ignore floatcmp tolerance is intentional",
		"//lint:ignore doccheck",
		"//lint:ignore",
		"//lint:ignoreall everything",
		"//lint: ignore floatcmp x",
		"//flexvet:hotpath",
		"//flexvet:hotpath called per sample",
		"//flexvet:replay recovery applies journaled events",
		"//flexvet:replay",
		"//flexvet:journaled journalLocked",
		"//flexvet:journaled journalLocked the gate appends first",
		"//flexvet:journaled",
		"//flexvet:hotpth typo",
		"//flexvet:",
		"// ordinary comment",
		"//lint:ignore\tmutexguard\ttabs as separators",
		"//flexvet:journaled égate unicode",
		"//lint:ignore a b\x00c",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, msg := ParseDirective(text)
		if ok && msg != "" {
			t.Fatalf("ParseDirective(%q): ok with non-empty message %q", text, msg)
		}
		if ok {
			switch d.Kind {
			case DirIgnore:
				if d.Analyzer == "" || d.Reason == "" {
					t.Fatalf("ParseDirective(%q): ignore directive missing analyzer/reason: %+v", text, d)
				}
			case DirHotpath:
				// No mandatory arguments.
			case DirReplay:
				if d.Reason == "" {
					t.Fatalf("ParseDirective(%q): replay directive missing reason: %+v", text, d)
				}
			case DirJournaled:
				if d.Arg == "" {
					t.Fatalf("ParseDirective(%q): journaled directive missing gate: %+v", text, d)
				}
			default:
				t.Fatalf("ParseDirective(%q): unknown kind %q", text, d.Kind)
			}
		}
		// Any comment that opts into the directive namespaces must either
		// parse or be diagnosed -- silence hides typos like //flexvet:hotpth.
		if strings.HasPrefix(text, "//lint:") || strings.HasPrefix(text, "//flexvet:") {
			if !ok && msg == "" {
				t.Fatalf("ParseDirective(%q): directive-prefixed text neither parsed nor diagnosed", text)
			}
		}
	})
}
