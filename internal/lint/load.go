package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path within the module.
	Path string
	// Fset positions every file of every package loaded by one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, ordered by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression, definition and use maps.
	Info *types.Info
}

// Loader parses and type-checks packages of the enclosing module. One
// Loader shares a FileSet and a source importer across every Load call, so
// the (expensive) from-source type-check of imported packages happens once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string
}

// NewLoader builds a loader for the module enclosing dir, walking upwards
// until it finds go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		imp:    importer.ForCompiler(fset, "source", nil),
		Root:   root,
		Module: mod,
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// Load expands the patterns ("dir", "dir/...", "./...") into package
// directories, then parses and type-checks each. Directories named testdata
// or vendor and hidden directories are skipped by wildcard expansion but
// may be named explicitly (the analyzer fixtures live under testdata).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand resolves patterns to a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = filepath.Clean(strings.TrimSuffix(base, "/"))
			if base == "" || base == "." {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !hasGoFiles(pat) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if goSource(e) {
			return true
		}
	}
	return false
}

// goSource reports whether the directory entry is a non-test Go file.
func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loadDir parses and type-checks the package in one directory. Directories
// without Go files yield nil.
func (l *Loader) loadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !goSource(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// importPath derives the module-relative import path of a directory.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}
