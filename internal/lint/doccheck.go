package lint

import (
	"go/ast"
)

// DocCheck fails on exported identifiers without doc comments in the
// packages that define this repository's public contracts: the
// observability surface (internal/obs), the admission gate
// (internal/admission), the market store and HTTP API
// (internal/market), the batch pipeline (internal/pipeline), the
// write-ahead log behind the durable store (internal/wal), the
// aggregation, scheduling and KPI services the daemon mounts
// (internal/agg, internal/sched, internal/kpi) and the flex-offer model
// itself (internal/flexoffer). An undocumented exported name there is an
// undocumented promise. It subsumes the former standalone
// scripts/docscheck command.
var DocCheck = &Analyzer{
	Name: "doccheck",
	Doc:  "exported identifiers in the contract packages must have doc comments",
	Paths: []string{
		"internal/obs",
		"internal/admission",
		"internal/market",
		"internal/pipeline",
		"internal/flexoffer",
		"internal/faultinject",
		"internal/wal",
		"internal/agg",
		"internal/sched",
		"internal/kpi",
	},
	Run: runDocCheck,
}

func runDocCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			checkDeclDocs(pass, decl)
		}
	}
}

// checkDeclDocs reports the undocumented exported identifiers of one
// declaration. A GenDecl comment covers every spec it groups (the usual
// const/var block style).
func checkDeclDocs(pass *Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						pass.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok.String(), name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = rt.X
		case *ast.IndexListExpr:
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}
