package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errflowTargets lists the methods whose error results guard durability:
// dropping one silently de-syncs the journal from the in-memory state. The
// journal gates named by //flexvet:journaled annotations and the
// journalRules table join the set automatically.
var errflowTargets = []struct {
	pkg     string
	typ     string
	methods []string
}{
	{pkg: "internal/wal", typ: "Log", methods: []string{"Append", "Sync", "WriteSnapshot", "Compact"}},
	{pkg: "internal/market", typ: "Store", methods: []string{"Submit", "Accept", "Reject", "Assign", "ExpireOverdue"}},
	{pkg: "internal/market", typ: "Journal", methods: []string{"Snapshot"}},
}

// ErrFlow tracks the error results of the durability-critical calls — WAL
// appends and syncs, ledger writes, store mutators — through the CFG: the
// error may not be discarded (a bare call, defer, go, or assignment to _),
// and once bound to a variable it must be read on every path before being
// overwritten or going out of scope. A shadowing redeclaration does not
// count as a read, so the classic `err := ...; if err := other(); ...`
// mistake is caught too.
var ErrFlow = &Analyzer{
	Name:  "errflow",
	Doc:   "errors from WAL appends, ledger writes and store mutators must be inspected before being dropped or overwritten",
	Paths: []string{"internal/market", "internal/sched", "internal/wal"},
	Run:   runErrFlow,
}

func runErrFlow(pass *Pass) {
	gates := journalGateNames(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrFlow(pass, fd, gates)
		}
	}
}

// journalGateNames collects the function names whose error results errflow
// must track: every gate referenced by a //flexvet:journaled annotation in
// the package, plus the journalRules gates when the package is under a
// rule's scope.
func journalGateNames(pass *Pass) map[string]bool {
	gates := make(map[string]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d, ok := funcDirective(fd, DirJournaled); ok {
				gates[d.Arg] = true
			}
		}
	}
	for _, r := range journalRules {
		if PathMatches(pass.Pkg.Path, r.pkg) {
			for _, g := range r.gates {
				gates[g] = true
			}
		}
	}
	return gates
}

// checkErrFlow walks one function body statement-wise, classifying every
// call to a tracked function by how its error result is received.
func checkErrFlow(pass *Pass, fd *ast.FuncDecl, gates map[string]bool) {
	cfg := pass.Shared.CFGOf(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, what, _ := trackedCall(pass, s.X, gates); call != nil {
				pass.Reportf(call.Pos(), "error from %s is discarded; a dropped %s error de-syncs the journal from the applied state — inspect it", what, what)
			}
		case *ast.DeferStmt:
			if call, what, _ := trackedCall(pass, s.Call, gates); call != nil {
				pass.Reportf(call.Pos(), "error from %s is discarded by defer; inspect it in a closure instead", what)
			}
		case *ast.GoStmt:
			if call, what, _ := trackedCall(pass, s.Call, gates); call != nil {
				pass.Reportf(call.Pos(), "error from %s is discarded by go; the goroutine must inspect it", what)
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, what, errIdx := trackedCall(pass, s.Rhs[0], gates)
			if call == nil || errIdx >= len(s.Lhs) {
				return true
			}
			checkErrBinding(pass, fd, cfg, s, s.Lhs[errIdx], s.Tok, call, what)
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				call, what, errIdx := trackedCall(pass, vs.Values[0], gates)
				if call == nil || errIdx >= len(vs.Names) {
					continue
				}
				checkErrBinding(pass, fd, cfg, s, vs.Names[errIdx], token.DEFINE, call, what)
			}
		}
		return true
	})
}

// checkErrBinding handles a tracked call whose error result is bound to lhs
// by the statement def: blank means discarded; a named binding is traced
// through the CFG until its first read, overwrite, or scope exit.
func checkErrBinding(pass *Pass, fd *ast.FuncDecl, cfg *CFG, def ast.Stmt, lhs ast.Expr, tok token.Token, call *ast.CallExpr, what string) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // bound to a field or index: it escapes, assume inspected
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is assigned to _; a dropped %s error de-syncs the journal from the applied state — inspect it", what, what)
		return
	}
	var obj types.Object
	if tok == token.DEFINE {
		obj = pass.Pkg.Info.Defs[id]
	} else {
		obj = pass.Pkg.Info.Uses[id]
	}
	if obj == nil || cfg == nil {
		return
	}
	traceErrUse(pass, cfg, def, obj, call, what)
}

// traceErrUse walks the CFG forward from the binding statement and checks
// that every path reads obj before overwriting it or leaving the function.
func traceErrUse(pass *Pass, cfg *CFG, def ast.Stmt, obj types.Object, call *ast.CallExpr, what string) {
	startBlk, startIdx := cfg.nodeAt(def.Pos())
	if startBlk == nil {
		return
	}
	// Scan the rest of the binding block, then flood the successors. Each
	// block is visited once; a read closes a path, a write before a read or
	// an un-read fall into the exit is the finding.
	type frontier struct {
		b    *Block
		from int
	}
	queue := []frontier{{startBlk, startIdx + 1}}
	seen := map[*Block]bool{startBlk: true}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		resolved := false
		for i := f.from; i < len(f.b.Nodes); i++ {
			read, written := touchesObj(pass, f.b.Nodes[i], obj)
			if read {
				resolved = true
				break
			}
			if written {
				pos := pass.Pkg.Fset.Position(f.b.Nodes[i].Pos())
				pass.Reportf(call.Pos(), "error from %s is overwritten at line %d before being inspected", what, pos.Line)
				return
			}
		}
		if resolved {
			continue
		}
		if f.b == cfg.Exit {
			pass.Reportf(call.Pos(), "error from %s can reach a return without being inspected; check it on every path", what)
			return
		}
		for _, s := range f.b.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, frontier{s, 0})
			}
		}
	}
}

// touchesObj classifies one CFG node's use of obj: read (any use outside a
// plain-assignment left-hand side) and written (a plain = to it). A :=
// redeclaration introduces a different object, so shadowing is neither.
func touchesObj(pass *Pass, n ast.Node, obj types.Object) (read, written bool) {
	lhs := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				lhs[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[id] != obj {
			return true
		}
		if lhs[id] {
			written = true
		} else {
			read = true
		}
		return true
	})
	return read, written
}

// trackedCall matches an expression that is a call to one of errflow's
// targets and returns the call, a human name for it, and the index of the
// error result. Only calls that actually return an error are tracked.
func trackedCall(pass *Pass, e ast.Expr, gates map[string]bool) (*ast.CallExpr, string, int) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, "", 0
	}
	fn := Callee(pass.Pkg.Info, call)
	if fn == nil {
		return nil, "", 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, "", 0
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return nil, "", 0
	}
	if gates[fn.Name()] {
		return call, fn.Name(), errIdx
	}
	recv := receiverNamed(fn)
	if recv == nil || fn.Pkg() == nil {
		return nil, "", 0
	}
	for _, t := range errflowTargets {
		if recv.Obj().Name() != t.typ || !PathMatches(fn.Pkg().Path(), t.pkg) {
			continue
		}
		for _, m := range t.methods {
			if fn.Name() == m {
				return call, t.typ + "." + m, errIdx
			}
		}
	}
	return nil, "", 0
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
