package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody wraps src in a function, parses it, and returns the body's CFG
// together with the file source for position lookups.
func parseBody(t *testing.T, src string) (*CFG, string, *token.FileSet) {
	t.Helper()
	file := "package p\n\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, file)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body), file, fset
}

// posOf returns the position of the first occurrence of needle in the file.
func posOf(t *testing.T, file string, fset *token.FileSet, needle string) token.Pos {
	t.Helper()
	idx := strings.Index(file, needle)
	if idx < 0 {
		t.Fatalf("needle %q not found in source", needle)
	}
	// The single parsed file starts at Base(); offsets map 1:1.
	return token.Pos(fset.File(token.Pos(1)).Base() + idx)
}

func TestCFGDominates(t *testing.T) {
	cases := []struct {
		name string
		src  string
		a, b string // source needles
		want bool
	}{
		{
			name: "straight line",
			src:  "x := 1\ny := 2\n_ = x\n_ = y",
			a:    "x := 1", b: "y := 2", want: true,
		},
		{
			name: "straight line reversed",
			src:  "x := 1\ny := 2\n_ = x\n_ = y",
			a:    "y := 2", b: "x := 1", want: false,
		},
		{
			name: "one-arm if does not dominate join",
			src:  "c := true\nif c {\n\tprintln(\"arm\")\n}\nprintln(\"join\")",
			a:    `println("arm")`, b: `println("join")`, want: false,
		},
		{
			name: "cond dominates both arms and join",
			src:  "c := true\nif c {\n\tprintln(\"arm\")\n} else {\n\tprintln(\"other\")\n}\nprintln(\"join\")",
			a:    "c := true", b: `println("join")`, want: true,
		},
		{
			name: "neither arm dominates join",
			src:  "c := true\nif c {\n\tprintln(\"arm\")\n} else {\n\tprintln(\"other\")\n}\nprintln(\"join\")",
			a:    `println("other")`, b: `println("join")`, want: false,
		},
		{
			name: "early return leaves else arm dominating the tail",
			src:  "c := true\nif c {\n\treturn\n}\nprintln(\"tail\")",
			a:    "c := true", b: `println("tail")`, want: true,
		},
		{
			name: "panic-terminated arm leaves the other dominating the join",
			src:  "c := true\nif c {\n\tprintln(\"live\")\n} else {\n\tpanic(\"dead end\")\n}\nprintln(\"join\")",
			a:    `println("live")`, b: `println("join")`, want: true,
		},
		{
			name: "loop head dominates body",
			src:  "for i := 0; i < 3; i++ {\n\tprintln(\"body\")\n}\nprintln(\"done\")",
			a:    "i < 3", b: `println("body")`, want: true,
		},
		{
			name: "loop body does not dominate done",
			src:  "for i := 0; i < 3; i++ {\n\tprintln(\"body\")\n}\nprintln(\"done\")",
			a:    `println("body")`, b: `println("done")`, want: false,
		},
		{
			name: "statement before labeled break dominates the break target",
			src:  "outer:\nfor {\n\tfor {\n\t\tprintln(\"inner\")\n\t\tbreak outer\n\t}\n}\nprintln(\"after\")",
			a:    `println("inner")`, b: `println("after")`, want: true,
		},
		{
			name: "labeled continue keeps outer loop body reachable from head",
			src:  "outer:\nfor i := 0; i < 3; i++ {\n\tfor {\n\t\tcontinue outer\n\t}\n\tprintln(\"unreached\")\n}\nprintln(\"after\")",
			a:    "i < 3", b: `println("after")`, want: true,
		},
		{
			name: "range head dominates body",
			src:  "xs := []int{1}\nfor _, x := range xs {\n\tprintln(x)\n}\nprintln(\"done\")",
			a:    "_, x", b: "println(x)", want: true,
		},
		{
			name: "type switch arm with return does not dominate the tail",
			src:  "var v any = 1\nswitch v.(type) {\ncase int:\n\tprintln(\"int\")\n\treturn\ncase string:\n\tprintln(\"str\")\n}\nprintln(\"tail\")",
			a:    `println("int")`, b: `println("tail")`, want: false,
		},
		{
			name: "type switch subject dominates every arm",
			src:  "var v any = 1\nswitch v.(type) {\ncase int:\n\tprintln(\"int\")\ncase string:\n\tprintln(\"str\")\n}\nprintln(\"tail\")",
			a:    "var v any", b: `println("str")`, want: true,
		},
		{
			name: "fallthrough links case bodies",
			src:  "x := 1\nswitch x {\ncase 1:\n\tprintln(\"one\")\n\tfallthrough\ncase 2:\n\tprintln(\"two\")\n}\nprintln(\"tail\")",
			a:    `println("one")`, b: `println("two")`, want: false,
		},
		{
			name: "select arm with return does not dominate the tail",
			src:  "ch := make(chan int, 1)\nselect {\ncase <-ch:\n\tprintln(\"got\")\n\treturn\ndefault:\n\tprintln(\"none\")\n}\nprintln(\"tail\")",
			a:    `println("got")`, b: `println("tail")`, want: false,
		},
		{
			name: "condless for with break dominates its own tail",
			src:  "for {\n\tprintln(\"once\")\n\tbreak\n}\nprintln(\"after\")",
			a:    `println("once")`, b: `println("after")`, want: true,
		},
		{
			name: "statement after deferred unlock still dominated by earlier lock",
			src:  "var mu, x = 1, 2\n_ = mu\ndefer println(\"unlock\")\nprintln(\"work\")\n_ = x",
			a:    "var mu, x", b: `println("work")`, want: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, file, fset := parseBody(t, c.src)
			a := posOf(t, file, fset, c.a)
			b := posOf(t, file, fset, c.b)
			if got := cfg.Dominates(a, b); got != c.want {
				t.Errorf("Dominates(%q, %q) = %v, want %v\nsource:\n%s", c.a, c.b, got, c.want, file)
			}
		})
	}
}

func TestCFGRecordsDefers(t *testing.T) {
	cfg, _, _ := parseBody(t, "defer println(\"a\")\nif true {\n\tdefer println(\"b\")\n}")
	if len(cfg.Defers) != 2 {
		t.Errorf("expected 2 recorded defers, got %d", len(cfg.Defers))
	}
}

func TestCFGExitReachable(t *testing.T) {
	// Every block reachable from entry must reach exit through some path;
	// in particular the builder must terminate on nested loops with branches.
	cfg, _, _ := parseBody(t, `
for i := 0; i < 10; i++ {
	switch {
	case i == 1:
		continue
	case i == 2:
		break
	}
	for j := 0; j < i; j++ {
		if j == 3 {
			goto done
		}
	}
}
done:
println("end")`)
	if cfg.Exit == nil || len(cfg.Blocks) == 0 {
		t.Fatalf("degenerate CFG: %+v", cfg)
	}
	// Dominator sanity: entry dominates every block's first node.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if !cfg.Dominates(cfg.Blocks[0].Nodes[0].Pos(), n.Pos()) {
				// Entry's first node position dominates all reachable nodes.
				t.Errorf("entry does not dominate node at %v", n.Pos())
			}
		}
	}
}
