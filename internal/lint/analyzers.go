package lint

// All returns every flexvet analyzer, in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocCheck,
		ClockCheck,
		DocCheck,
		ErrFlow,
		FloatCmp,
		JournalCheck,
		LabelCard,
		LockOrder,
		MutexGuard,
		PublishCheck,
		ValidateCheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
