package lint

// All returns every flexvet analyzer, in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		ClockCheck,
		DocCheck,
		FloatCmp,
		LabelCard,
		MutexGuard,
		ValidateCheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
