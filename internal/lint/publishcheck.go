package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// publishName is the event-stream emission convention: a method named
// publishLocked fans an event out to the shard's subscribers and, per
// docs/SCHEDULING.md, must only ever run under the mutating shard's write
// lock — a reader holding RLock could otherwise race the sequence numbers,
// and an unlocked caller could publish state that was never applied.
const publishName = "publishLocked"

// PublishCheck proves the stream contract with the CFG: a call into the
// publish set (publishLocked itself, plus every *Locked method of the same
// type that transitively reaches it — insertLocked, transitionLocked) from
// a non-*Locked function must be dominated by receiver.mu.Lock() — the
// write lock, on every path, with RLock explicitly insufficient. *Locked
// methods of the publishing type are exempt inside their own bodies (the
// caller holds the lock by contract), which is exactly what moves the
// obligation to the call sites this analyzer checks.
var PublishCheck = &Analyzer{
	Name:  "publishcheck",
	Doc:   "event-stream publishes must only be reachable with the mutating shard's write lock held",
	Paths: []string{"internal/market"},
	Run:   runPublishCheck,
}

func runPublishCheck(pass *Pass) {
	publishers := publisherFuncs(pass)
	if len(publishers) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if _, isPublisher := publishers[fn]; isPublisher {
					continue // its own caller holds the lock by contract
				}
			}
			checkPublishCalls(pass, fd, publishers)
		}
	}
}

// publisherFuncs computes the publish set: methods named publishLocked seed
// it, and any *Locked method of the same receiver type that calls a member
// joins it, to a fixpoint. The map carries each member's receiver type so
// call sites can be matched to the right lock.
func publisherFuncs(pass *Pass) map[*types.Func]*types.TypeName {
	publishers := make(map[*types.Func]*types.TypeName)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Name.Name == publishName {
				if recv := receiverNamed(fn); recv != nil {
					publishers[fn] = recv.Obj()
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if _, ok := publishers[fn]; ok || !strings.HasSuffix(fd.Name.Name, lockedSuffix) {
				continue
			}
			recv := receiverNamed(fn)
			if recv == nil {
				continue
			}
			reaches := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || reaches {
					return !reaches
				}
				callee := Callee(pass.Pkg.Info, call)
				if callee == nil {
					return true
				}
				if typ, ok := publishers[callee]; ok && typ == recv.Obj() {
					reaches = true
				}
				return true
			})
			if reaches {
				publishers[fn] = recv.Obj()
				changed = true
			}
		}
	}
	return publishers
}

// checkPublishCalls requires every call into the publish set from fd to be
// dominated by a write Lock of the same receiver.
func checkPublishCalls(pass *Pass, fd *ast.FuncDecl, publishers map[*types.Func]*types.TypeName) {
	cfg := pass.Shared.CFGOf(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := Callee(pass.Pkg.Info, call)
		if callee == nil {
			return true
		}
		typ, ok := publishers[callee]
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			pass.Reportf(sel.Sel.Pos(), "%s.%s publishes to the event stream but is called through a non-trivial receiver expression; hold a named receiver so the lock discipline is checkable", typ.Name(), callee.Name())
			return true
		}
		obj := pass.Pkg.Info.Uses[base]
		if obj == nil || cfg == nil {
			return true
		}
		if lockDominates(pass, fd, cfg, call.Pos(), obj, "Lock") {
			return true
		}
		if lockDominates(pass, fd, cfg, call.Pos(), obj, "RLock") {
			pass.Reportf(sel.Sel.Pos(), "%s.%s publishes to the event stream under a read lock; publishing mutates the stream state, take %s.mu.Lock() (write) instead", typ.Name(), callee.Name(), base.Name)
		} else {
			pass.Reportf(sel.Sel.Pos(), "%s.%s publishes to the event stream but %s.mu.Lock() does not dominate this call; subscribers must only observe events produced under the shard's write lock", typ.Name(), callee.Name(), base.Name)
		}
		return true
	})
}

// lockDominates reports whether a call obj.mu.<method>() dominates pos in
// fd's body.
func lockDominates(pass *Pass, fd *ast.FuncDecl, cfg *CFG, pos token.Pos, obj types.Object, method string) bool {
	return gateDominates(pass, fd, cfg, pos, func(c *ast.CallExpr) bool {
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return false
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return false
		}
		base, ok := ast.Unparen(muSel.X).(*ast.Ident)
		return ok && pass.Pkg.Info.Uses[base] == obj
	})
}
