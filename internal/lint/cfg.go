package lint

import (
	"go/ast"
	"go/token"
)

// Block is one basic block of a control-flow graph: statements and
// controlling expressions that execute in sequence, with a single entry.
type Block struct {
	// Index is the block's position in CFG.Blocks (the entry block is 0).
	Index int
	// Nodes are the statements and control expressions of the block, in
	// execution order. Conditions and loop headers appear as bare
	// expressions; whole statements appear as statements. Function-literal
	// bodies are opaque — they get their own CFG, not blocks here.
	Nodes []ast.Node
	// Succs are the possible successors.
	Succs []*Block
	// Preds are the predecessors.
	Preds []*Block
}

// CFG is the intra-procedural control-flow graph of one function body with
// dominator information. Build one with NewCFG, or Shared.CFGOf which
// caches per declaration. The write-ahead analyzers ask one question of it:
// Dominates — does the journal append execute before the mutation on every
// path? goto is approximated as an edge to the exit; a call to panic
// terminates its block.
type CFG struct {
	// Entry is the function entry block.
	Entry *Block
	// Exit is the synthetic exit block reached by every return, fall-off
	// and (approximated) goto.
	Exit *Block
	// Blocks lists every block: entry first, exit last. Blocks left without
	// predecessors are unreachable code.
	Blocks []*Block
	// Defers collects the defer statements registered anywhere in the body,
	// in source order; they run at every exit.
	Defers []*ast.DeferStmt

	// idom[i] is the Blocks index of block i's immediate dominator; the
	// entry is its own idom, unreachable blocks hold -1.
	idom []int
}

// NewCFG builds the control-flow graph of one function body and computes
// its dominator tree.
func NewCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{}
	entry := &Block{Index: 0}
	cfg.Entry = entry
	cfg.Blocks = []*Block{entry}
	cfg.Exit = &Block{}
	b := &cfgBuilder{cfg: cfg, cur: entry}
	b.stmt(body)
	if b.cur != nil {
		edge(b.cur, cfg.Exit)
	}
	cfg.Exit.Index = len(cfg.Blocks)
	cfg.Blocks = append(cfg.Blocks, cfg.Exit)
	cfg.computeDominators()
	return cfg
}

// Dominates reports whether, on every execution path from the function
// entry to the statement containing b, the statement containing a executes
// first. Within one basic block the node order decides; across blocks the
// dominator tree does. Positions not covered by the graph answer false;
// an unreachable b is vacuously dominated (no path reaches it at all).
func (c *CFG) Dominates(a, b token.Pos) bool {
	ba, ia := c.nodeAt(a)
	bb, ib := c.nodeAt(b)
	if ba == nil || bb == nil {
		return false
	}
	if ba == bb {
		return ia <= ib
	}
	if c.idom[bb.Index] == -1 {
		return true // b is dead code; no path reaches it
	}
	if c.idom[ba.Index] == -1 {
		return false // a is dead code; it executes on no path
	}
	// Strict block domination: walk b's dominator chain towards the entry.
	for x := bb.Index; ; {
		parent := c.idom[x]
		if parent == ba.Index {
			return true
		}
		if parent == x { // reached the entry
			return false
		}
		x = parent
	}
}

// nodeAt locates the block and node index covering pos. The builder keeps
// block nodes disjoint, so at most one node contains any position.
func (c *CFG) nodeAt(pos token.Pos) (*Block, int) {
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return b, i
			}
		}
	}
	return nil, -1
}

// computeDominators runs the iterative dominator algorithm (Cooper, Harvey,
// Kennedy) over a reverse post-order of the reachable blocks.
func (c *CFG) computeDominators() {
	n := len(c.Blocks)
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(c.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make([]int, n)
	for i := range rpo {
		rpo[i] = -1
	}
	for i, b := range order {
		rpo[b.Index] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[c.Entry.Index] = c.Entry.Index
	intersect := func(a, b int) int {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			newIdom := -1
			for _, p := range b.Preds {
				if idom[p.Index] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(p.Index, newIdom)
				}
			}
			if newIdom != -1 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	c.idom = idom
}

// cfgFrame is one enclosing breakable construct during the build: a loop
// (break and continue targets) or a switch/select (break target only).
type cfgFrame struct {
	label  string
	isLoop bool
	brk    *Block
	cont   *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil after a terminator; restarted lazily for dead code
	// frames stacks the enclosing for/range/switch/select constructs.
	frames []cfgFrame
	// pendingLabel carries a label down to the construct it names.
	pendingLabel string
	// fallTarget is the next case clause's body while building a switch.
	fallTarget *Block
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// block returns the current block, starting a fresh (unreachable) one after
// a terminator so dead statements stay addressable.
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// jump links the current block to target when control can still reach it.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break (needLoop=false) or continue (needLoop=true)
// to its enclosing frame, innermost first.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *cfgFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		done := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(done)
		} else {
			edge(cond, done)
		}
		if thenEnd != nil {
			edge(thenEnd, done)
		}
		b.cur = done
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		done := b.newBlock()
		edge(b.cur, body)
		if s.Cond != nil {
			edge(b.cur, done)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, cfgFrame{label: label, isLoop: true, brk: done, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			edge(b.cur, head)
		} else {
			b.jump(head)
		}
		b.cur = done
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		body := b.newBlock()
		done := b.newBlock()
		edge(head, body)
		edge(head, done)
		b.frames = append(b.frames, cfgFrame{label: label, isLoop: true, brk: done, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(head)
		b.cur = done
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		done := b.newBlock()
		b.frames = append(b.frames, cfgFrame{label: label, brk: done})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			edge(head, blk)
			b.cur = blk
			b.stmt(clause.Comm)
			for _, st := range clause.Body {
				b.stmt(st)
			}
			b.jump(done)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A case-less select blocks forever; done then has no preds.
		b.cur = done
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.jump(f.brk)
			}
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.jump(f.cont)
			}
		case token.GOTO:
			b.jump(b.cfg.Exit) // approximation: goto leaves the analysis
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.jump(b.fallTarget)
			}
		}
		b.cur = nil
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
		b.cur = nil
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil
		}
	case *ast.EmptyStmt:
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line statements.
		b.add(s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch: every clause body is a successor of the head block, fallthrough
// (expression switches only) links a body to the next clause's body, and a
// missing default makes the exit reachable directly from the head.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt, allowFallthrough bool) {
	head := b.block()
	done := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, st := range body.List {
		clauses = append(clauses, st.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		bodies[i] = b.newBlock()
		edge(head, bodies[i])
		if clause.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, done)
	}
	b.frames = append(b.frames, cfgFrame{label: label, brk: done})
	prevFall := b.fallTarget
	for i, clause := range clauses {
		b.cur = bodies[i]
		for _, e := range clause.List {
			b.add(e)
		}
		if allowFallthrough && i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = nil
		}
		for _, st := range clause.Body {
			b.stmt(st)
		}
		b.jump(done)
	}
	b.fallTarget = prevFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// isPanicCall matches a direct call to the panic builtin (by name — the
// builder has no type information, and shadowing panic would be perverse).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
