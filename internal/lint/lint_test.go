package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads the given fixture directories (relative to this
// package's testdata/src) through a fresh Loader, exactly as flexvet would.
func loadFixture(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = filepath.Join("testdata", "src", d)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("Load(%v): %v", dirs, err)
	}
	return pkgs
}

// wantRe matches the golden markers embedded in fixture comments:
// "want:<analyzer>" expects a diagnostic of that analyzer on the same line.
// (The marker doubles as the malformed-directive fixture: a directive of the
// form "//lint:ignore want:flexvet" has no reason, so the framework reports
// it at that line under the pseudo-analyzer "flexvet".)
var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// wantDiags scans the fixture files of dirs for golden markers and returns
// the expected diagnostics as sorted "file:line analyzer" strings.
func wantDiags(t *testing.T, dirs ...string) []string {
	t.Helper()
	var want []string
	for _, d := range dirs {
		dir := filepath.Join("testdata", "src", d)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", dir, err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile(%s): %v", path, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					want = append(want, fmt.Sprintf("%s:%d %s", filepath.ToSlash(path), i+1, m[1]))
				}
			}
		}
	}
	sort.Strings(want)
	return want
}

// gotDiags renders diagnostics in the same "file:line analyzer" form.
func gotDiags(diags []Diagnostic) []string {
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Analyzer)
	}
	sort.Strings(got)
	return got
}

// checkFixture runs one analyzer over the fixture dirs and compares the
// diagnostics against the golden markers, plus any extra hard-coded
// expectations (for violations that cannot carry a marker comment).
func checkFixture(t *testing.T, a *Analyzer, dirs []string, extra ...string) {
	t.Helper()
	pkgs := loadFixture(t, dirs...)
	want := append(wantDiags(t, dirs...), extra...)
	sort.Strings(want)
	got := gotDiags(Run(pkgs, []*Analyzer{a}))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s diagnostics mismatch\n got:\n  %s\nwant:\n  %s",
			a.Name, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func TestValidateCheck(t *testing.T) {
	checkFixture(t, ValidateCheck, []string{"validatecheck"})
}

func TestValidateCheckSkipsDefiningPackages(t *testing.T) {
	// The stub packages sit at internal/flexoffer and internal/core path
	// suffixes: validatecheck must treat them as the defining packages and
	// stay silent about their internal literals.
	pkgs := loadFixture(t, "internal/flexoffer", "internal/core")
	if got := Run(pkgs, []*Analyzer{ValidateCheck}); len(got) != 0 {
		t.Errorf("expected no diagnostics in defining packages, got %v", got)
	}
}

func TestFloatCmp(t *testing.T) {
	checkFixture(t, FloatCmp, []string{"internal/eval"})
}

func TestFloatCmpOutOfScope(t *testing.T) {
	// The mutexguard fixture is outside floatcmp's numeric-package scope;
	// the analyzer must not run there at all.
	pkgs := loadFixture(t, "mutexguard")
	for _, d := range Run(pkgs, []*Analyzer{FloatCmp}) {
		if d.Analyzer == FloatCmp.Name {
			t.Errorf("floatcmp ran outside its path scope: %v", d)
		}
	}
}

func TestClockCheck(t *testing.T) {
	checkFixture(t, ClockCheck, []string{"internal/pipeline"})
}

func TestLabelCard(t *testing.T) {
	// The obs stub is loaded alongside so the cross-package normaliser
	// (obs.Label) can be proven bounded from source.
	checkFixture(t, LabelCard, []string{"labelcard", "internal/obs"})
}

func TestMutexGuard(t *testing.T) {
	checkFixture(t, MutexGuard, []string{"mutexguard"})
}

func TestDocCheck(t *testing.T) {
	// bare.go's violations are hard-coded: a marker comment on a var/const
	// spec would itself count as documentation.
	checkFixture(t, DocCheck, []string{"internal/market"},
		"testdata/src/internal/market/bare.go:3 doccheck",
		"testdata/src/internal/market/bare.go:5 doccheck",
	)
}

func TestJournalCheck(t *testing.T) {
	// The sched stub imports the market stub, so both load together and the
	// cross-package ledger rule resolves Store.Assign from source.
	checkFixture(t, JournalCheck, []string{
		"journalcheck/internal/market",
		"journalcheck/internal/sched",
	})
}

func TestErrFlow(t *testing.T) {
	checkFixture(t, ErrFlow, []string{
		"errflow/internal/market",
		"errflow/internal/wal",
	})
}

func TestLockOrder(t *testing.T) {
	checkFixture(t, LockOrder, []string{"lockorder"})
}

func TestPublishCheck(t *testing.T) {
	checkFixture(t, PublishCheck, []string{"publishcheck/internal/market"})
}

func TestAllocCheck(t *testing.T) {
	checkFixture(t, AllocCheck, []string{"alloccheck"})
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		pkg, pat string
		want     bool
	}{
		{"repro/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"repro/internal/score", "internal/core", false},
		{"repro/internal/lint/testdata/src/internal/core", "internal/core", true},
		{"repro/internal/corex", "internal/core", false},
		{"repro/cmd/mirabeld", "cmd/mirabeld", true},
	}
	for _, c := range cases {
		if got := PathMatches(c.pkg, c.pat); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.pkg, c.pat, got, c.want)
		}
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("expected 11 analyzers, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("flexvet") != nil {
		t.Error("the pseudo-analyzer name must not be registered")
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown name must be nil")
	}
}
