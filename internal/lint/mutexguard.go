package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardMarker is the field annotation the analyzer enforces. A struct field
// whose doc or trailing comment contains it may only be read or written in
// functions that acquire <receiver>.mu first.
const guardMarker = "guarded by mu"

// lockedSuffix names the helper convention: a method whose name ends in
// "Locked" declares that its caller already holds the receiver's mu. Its
// body is exempt from the lock-first rule, and in exchange every call to
// it from a non-Locked function must be preceded by a Lock/RLock of the
// same receiver.
const lockedSuffix = "Locked"

// MutexGuard enforces the "guarded by mu" field annotations: any function
// that touches an annotated field must lock (or read-lock) the same
// receiver's mu earlier in the same function body. Methods following the
// *Locked naming convention are the sanctioned escape hatch — their
// bodies run under the caller's lock, so the obligation moves to the call
// site: calling x.fooLocked() without x.mu.Lock/RLock earlier in the
// function is a finding. The check is intra-procedural by design — the
// market store and the pipeline accumulator keep every guarded access
// behind a method-local Lock/RLock-defer-Unlock pair (or inside a *Locked
// helper), and this analyzer keeps it that way.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  "fields annotated 'guarded by mu' must be accessed with the lock held in the same function",
	Run:  runMutexGuard,
}

func runMutexGuard(pass *Pass) {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	// Types with at least one guarded field: calls to their *Locked
	// methods carry the caller-holds-mu obligation.
	guardedTypes := make(map[*types.TypeName]bool, len(guarded))
	for key := range guarded {
		guardedTypes[key.typ] = true
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, lockedSuffix) {
				// The caller holds the lock by contract; both the field
				// accesses and any nested *Locked calls are its problem.
				continue
			}
			checkGuardedAccesses(pass, fd, guarded, guardedTypes)
		}
	}
}

// guardKey addresses one annotated field: the struct's named type and the
// field name.
type guardKey struct {
	typ   *types.TypeName
	field string
}

// guardedFields collects the annotated fields of the package's structs.
func guardedFields(pass *Pass) map[guardKey]bool {
	out := make(map[guardKey]bool)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !strings.Contains(field.Doc.Text()+field.Comment.Text(), guardMarker) {
					continue
				}
				for _, name := range field.Names {
					out[guardKey{obj, name.Name}] = true
				}
			}
			return true
		})
	}
	return out
}

// checkGuardedAccesses walks one function: guarded field accesses and
// calls to *Locked methods of guarded types must be preceded
// (positionally) by a Lock or RLock of the same receiver's mu.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[guardKey]bool, guardedTypes map[*types.TypeName]bool) {
	// locks[obj] is the earliest position at which obj.mu.Lock/RLock is
	// called in this function.
	locks := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return true
		}
		base, ok := ast.Unparen(muSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[base]
		if obj == nil {
			return true
		}
		if cur, ok := locks[obj]; !ok || call.Pos() < cur {
			locks[obj] = call.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkLockedCall(pass, call, guardedTypes, locks)
			return true
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		named, ok := namedType(selection.Recv())
		if !ok {
			return true
		}
		key := guardKey{named.Obj(), sel.Sel.Name}
		if !guarded[key] {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by mu but accessed through a non-trivial receiver expression; hold a named receiver so the lock discipline is checkable", named.Obj().Name(), sel.Sel.Name)
			return true
		}
		obj := pass.Pkg.Info.Uses[base]
		lockPos, locked := locks[obj]
		if obj == nil || !locked || sel.Pos() < lockPos {
			pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by mu but accessed without %s.mu.Lock/RLock earlier in this function", named.Obj().Name(), sel.Sel.Name, base.Name)
		}
		return true
	})
}

// checkLockedCall enforces the caller side of the *Locked convention: a
// call to a guarded type's fooLocked method from a function that is not
// itself *Locked must be preceded by a Lock/RLock of the same receiver.
func checkLockedCall(pass *Pass, call *ast.CallExpr, guardedTypes map[*types.TypeName]bool, locks map[types.Object]token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, lockedSuffix) {
		return
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	named, ok := namedType(selection.Recv())
	if !ok || !guardedTypes[named.Obj()] {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		pass.Reportf(sel.Sel.Pos(), "%s.%s assumes the caller holds mu but is called through a non-trivial receiver expression; hold a named receiver so the lock discipline is checkable", named.Obj().Name(), sel.Sel.Name)
		return
	}
	obj := pass.Pkg.Info.Uses[base]
	lockPos, locked := locks[obj]
	if obj == nil || !locked || sel.Pos() < lockPos {
		pass.Reportf(sel.Sel.Pos(), "%s.%s assumes the caller holds mu but %s.mu.Lock/RLock was not taken earlier in this function", named.Obj().Name(), sel.Sel.Name, base.Name)
	}
}
