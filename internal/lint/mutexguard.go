package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardMarker is the field annotation the analyzer enforces. A struct field
// whose doc or trailing comment contains it may only be read or written in
// functions that acquire <receiver>.mu first.
const guardMarker = "guarded by mu"

// MutexGuard enforces the "guarded by mu" field annotations: any function
// that touches an annotated field must lock (or read-lock) the same
// receiver's mu earlier in the same function body. The check is
// intra-procedural by design — the market store and the pipeline
// accumulator keep every guarded access behind a method-local
// Lock/RLock-defer-Unlock pair, and this analyzer keeps it that way.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  "fields annotated 'guarded by mu' must be accessed with the lock held in the same function",
	Run:  runMutexGuard,
}

func runMutexGuard(pass *Pass) {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
}

// guardKey addresses one annotated field: the struct's named type and the
// field name.
type guardKey struct {
	typ   *types.TypeName
	field string
}

// guardedFields collects the annotated fields of the package's structs.
func guardedFields(pass *Pass) map[guardKey]bool {
	out := make(map[guardKey]bool)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !strings.Contains(field.Doc.Text()+field.Comment.Text(), guardMarker) {
					continue
				}
				for _, name := range field.Names {
					out[guardKey{obj, name.Name}] = true
				}
			}
			return true
		})
	}
	return out
}

// checkGuardedAccesses walks one function: guarded field accesses must be
// preceded (positionally) by a Lock or RLock of the same receiver's mu.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[guardKey]bool) {
	// locks[obj] is the earliest position at which obj.mu.Lock/RLock is
	// called in this function.
	locks := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return true
		}
		base, ok := ast.Unparen(muSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[base]
		if obj == nil {
			return true
		}
		if cur, ok := locks[obj]; !ok || call.Pos() < cur {
			locks[obj] = call.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		named, ok := namedType(selection.Recv())
		if !ok {
			return true
		}
		key := guardKey{named.Obj(), sel.Sel.Name}
		if !guarded[key] {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by mu but accessed through a non-trivial receiver expression; hold a named receiver so the lock discipline is checkable", named.Obj().Name(), sel.Sel.Name)
			return true
		}
		obj := pass.Pkg.Info.Uses[base]
		lockPos, locked := locks[obj]
		if obj == nil || !locked || sel.Pos() < lockPos {
			pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by mu but accessed without %s.mu.Lock/RLock earlier in this function", named.Obj().Name(), sel.Sel.Name, base.Name)
		}
		return true
	})
}
