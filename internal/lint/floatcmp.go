package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags direct == and != comparisons of floating-point values in
// the numeric packages. Energy arithmetic accumulates rounding error
// (subtractProportional, aggregation sums), so exact equality is almost
// always a latent bug; the num package (internal/num) provides the
// tolerance helpers, and math.IsNaN is the way to test for NaN.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "no == / != on float64 energy values; use the internal/num tolerance helpers",
	Paths: []string{
		"internal/core",
		"internal/flexoffer",
		"internal/agg",
		"internal/eval",
		"internal/kpi",
		"internal/timeseries",
		"internal/num",
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			// A fully constant comparison is folded at compile time and
			// cannot mis-compare runtime energies.
			if tv, ok := pass.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			pass.Reportf(be.OpPos, "%s on floating-point values; use num.Eq / num.EqTol (internal/num) or math.IsNaN instead of exact comparison", be.Op)
			return true
		})
	}
}

// isFloat reports whether the expression has floating-point type.
func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
