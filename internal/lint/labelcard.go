package lint

import (
	"go/ast"
	"go/types"
)

// LabelCard enforces the bounded-label-cardinality rule on the obs metric
// vecs: every value passed to CounterVec.With / HistogramVec.With must be
// provably bounded, or the metric family grows one child per distinct value
// and an attacker-controlled string (a request path, a method name) becomes
// an unbounded memory leak on /metrics.
//
// A value counts as bounded when it is a constant, a call to a function
// whose every return is a constant (statusClass, State.String), or a local
// variable assigned exactly once from a bounded expression. Anything else —
// parameters, struct fields, arbitrary expressions — must either be routed
// through such a normalising function or carry a //lint:ignore with the
// reason the set is bounded by contract.
var LabelCard = &Analyzer{
	Name: "labelcard",
	Doc:  "obs vec label values must come from a bounded set",
	Run:  runLabelCard,
}

func runLabelCard(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				vec := vecWithCall(pass, call)
				if vec == "" {
					return true
				}
				for _, arg := range call.Args {
					if !bounded(pass, fd.Body, arg, 0, make(map[types.Object]bool)) {
						pass.Reportf(arg.Pos(), "unbounded label value passed to obs %s.With: route it through a normalising function with constant returns, or //lint:ignore labelcard with the reason the set is bounded (see docs/LINTING.md)", vec)
					}
				}
				return true
			})
		}
	}
}

// vecWithCall reports the vec type name ("CounterVec"/"HistogramVec") when
// call is a With call on an obs metric vec, else "".
func vecWithCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named, ok := namedType(sig.Recv().Type())
	if !ok {
		return ""
	}
	for _, name := range []string{"CounterVec", "HistogramVec"} {
		if namedMatches(named, "internal/obs", name) {
			return name
		}
	}
	return ""
}

// maxBoundDepth caps the recursion through helper functions and local
// assignments when proving a label value bounded.
const maxBoundDepth = 4

// bounded reports whether the expression provably draws from a bounded set
// of values. scope is the function body the expression appears in (used to
// trace local variables).
func bounded(pass *Pass, scope *ast.BlockStmt, e ast.Expr, depth int, visiting map[types.Object]bool) bool {
	if depth > maxBoundDepth {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // constant
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		return boundedCall(pass, e, depth, visiting)
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[e]
		if obj == nil || visiting[obj] {
			return false
		}
		if _, ok := obj.(*types.Var); !ok {
			return false
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		return boundedVar(pass, scope, obj, depth, visiting)
	}
	return false
}

// boundedCall reports whether a call's callee returns only constants (in
// every return statement), looked up from the loaded source.
func boundedCall(pass *Pass, call *ast.CallExpr, depth int, visiting map[types.Object]bool) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		named, ok := namedType(sig.Recv().Type())
		if !ok {
			return false
		}
		key = named.Obj().Name() + "." + key
	}
	declPkg, decl := funcFor(pass.All, fn.Pkg().Path(), key)
	if decl == nil || decl.Body == nil {
		return false
	}
	declPass := &Pass{Analyzer: pass.Analyzer, Pkg: declPkg, All: pass.All}
	sawReturn := false
	allBounded := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function returns are not this function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			allBounded = false
			return true
		}
		for _, res := range ret.Results {
			if !bounded(declPass, decl.Body, res, depth+1, visiting) {
				allBounded = false
			}
		}
		return true
	})
	return sawReturn && allBounded
}

// boundedVar reports whether a local variable is assigned exactly once in
// scope, from a bounded expression.
func boundedVar(pass *Pass, scope *ast.BlockStmt, obj types.Object, depth int, visiting map[types.Object]bool) bool {
	var sources []ast.Expr
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				for _, lhs := range n.Lhs {
					if identIs(pass, lhs, obj) {
						sources = append(sources, nil) // multi-value: opaque
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if identIs(pass, lhs, obj) {
					sources = append(sources, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Pkg.Info.Defs[name] == obj {
					if i < len(n.Values) {
						sources = append(sources, n.Values[i])
					} else {
						sources = append(sources, nil)
					}
				}
			}
		case *ast.RangeStmt:
			if identIs(pass, n.Key, obj) || identIs(pass, n.Value, obj) {
				sources = append(sources, nil)
			}
		}
		return true
	})
	if len(sources) != 1 || sources[0] == nil {
		return false
	}
	return bounded(pass, scope, sources[0], depth+1, visiting)
}

// identIs reports whether e is an identifier defining or using obj.
func identIs(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Pkg.Info.Defs[id] == obj || pass.Pkg.Info.Uses[id] == obj
}
