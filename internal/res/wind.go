// Package res simulates renewable energy source (RES) production. MIRABEL
// schedules flexible demand against surplus RES production; since real wind
// farm telemetry is unavailable, a standard AR(1) wind-speed process driven
// through a turbine power curve stands in. The paper's framing (§1, §6):
// RES production "solely depends on the weather conditions, thus it can
// only be predicted, but not planned".
package res

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
)

// ErrModel is wrapped by configuration errors.
var ErrModel = errors.New("res: invalid model")

// Turbine describes a wind turbine (or a farm of identical turbines) via
// its power curve parameters.
type Turbine struct {
	// CutInSpeed is the wind speed (m/s) below which no power is produced.
	CutInSpeed float64
	// RatedSpeed is the speed at which rated power is reached.
	RatedSpeed float64
	// CutOutSpeed is the speed above which the turbine shuts down.
	CutOutSpeed float64
	// RatedPowerKW is the rated output of the whole farm in kW.
	RatedPowerKW float64
}

// DefaultTurbine returns a small community wind farm sized to a few hundred
// households.
func DefaultTurbine() Turbine {
	return Turbine{CutInSpeed: 3, RatedSpeed: 12, CutOutSpeed: 25, RatedPowerKW: 500}
}

// Power reports the farm output in kW at the given wind speed, using the
// standard cubic ramp between cut-in and rated speed.
func (t Turbine) Power(speed float64) float64 {
	switch {
	case speed < t.CutInSpeed || speed >= t.CutOutSpeed:
		return 0
	case speed >= t.RatedSpeed:
		return t.RatedPowerKW
	default:
		num := math.Pow(speed, 3) - math.Pow(t.CutInSpeed, 3)
		den := math.Pow(t.RatedSpeed, 3) - math.Pow(t.CutInSpeed, 3)
		return t.RatedPowerKW * num / den
	}
}

// WindModel is an AR(1) wind speed process with a diurnal component.
type WindModel struct {
	// MeanSpeed is the long-run average wind speed in m/s.
	MeanSpeed float64
	// Persistence in [0, 1) is the AR(1) coefficient per step.
	Persistence float64
	// Volatility is the standard deviation of the AR innovation (m/s).
	Volatility float64
	// DiurnalAmplitude modulates speed over the day (m/s, peak near 14:00).
	DiurnalAmplitude float64
}

// DefaultWindModel returns plausible onshore parameters.
func DefaultWindModel() WindModel {
	return WindModel{MeanSpeed: 7.5, Persistence: 0.97, Volatility: 0.6, DiurnalAmplitude: 1.0}
}

// Validate checks the model parameters.
func (m WindModel) Validate() error {
	if m.MeanSpeed < 0 || m.Volatility < 0 || m.DiurnalAmplitude < 0 {
		return fmt.Errorf("%w: negative parameter", ErrModel)
	}
	if m.Persistence < 0 || m.Persistence >= 1 {
		return fmt.Errorf("%w: persistence %v outside [0, 1)", ErrModel, m.Persistence)
	}
	return nil
}

// Simulate produces a production energy series (kWh per interval) over
// days, starting at midnight of start's day.
func Simulate(model WindModel, turbine Turbine, start time.Time, days int, resolution time.Duration, seed int64) (*timeseries.Series, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if days <= 0 {
		return nil, fmt.Errorf("%w: days %d", ErrModel, days)
	}
	if resolution <= 0 || (24*time.Hour)%resolution != 0 {
		return nil, fmt.Errorf("%w: resolution %v must divide 24h", ErrModel, resolution)
	}
	rng := rand.New(rand.NewSource(seed))
	n := days * int(24*time.Hour/resolution)
	day0 := timeseries.TruncateDay(start)
	hours := resolution.Hours()

	vals := make([]float64, n)
	speed := model.MeanSpeed
	for i := 0; i < n; i++ {
		// AR(1) around the mean.
		speed = model.MeanSpeed + model.Persistence*(speed-model.MeanSpeed) + model.Volatility*rng.NormFloat64()
		if speed < 0 {
			speed = 0
		}
		// Diurnal bump peaking mid-afternoon.
		hourOfDay := float64(i%(n/days)) * hours
		diurnal := model.DiurnalAmplitude * math.Sin(2*math.Pi*(hourOfDay-8)/24)
		effective := speed + diurnal
		if effective < 0 {
			effective = 0
		}
		vals[i] = turbine.Power(effective) * hours // kW * h = kWh
	}
	return timeseries.New(day0, resolution, vals)
}

// ForecastWithError returns a perturbed copy of a production series,
// emulating forecast error that grows with lead time: interval i gets
// multiplicative noise with standard deviation errStd*sqrt(1+i/horizon).
// The result is clamped to be non-negative.
func ForecastWithError(actual *timeseries.Series, errStd float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	out := actual.Clone()
	n := out.Len()
	if n == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		growth := math.Sqrt(1 + float64(i)/float64(n))
		noise := 1 + errStd*growth*rng.NormFloat64()
		if noise < 0 {
			noise = 0
		}
		out.SetValue(i, out.Value(i)*noise)
	}
	return out
}
